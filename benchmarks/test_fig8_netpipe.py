"""Fig. 8: NetPIPE TCP results, virtio vs SR-IOV."""

from repro.analysis import render_series
from repro.experiments.fig8 import run_fig8


def test_fig8_netpipe(benchmark, record):
    result = benchmark.pedantic(
        run_fig8, kwargs={"pings": 20}, rounds=1, iterations=1
    )
    latency = {
        f"{mode}/{transport}": [
            (float(size), result.latency_us(mode, transport, size))
            for size in result.sizes
        ]
        for mode in ("shared", "gapped")
        for transport in ("virtio", "sriov")
    }
    throughput = {
        name: [
            (size, result.throughput_gbps(name.split("/")[0],
                                          name.split("/")[1], int(size)))
            for size, _ in points
        ]
        for name, points in latency.items()
    }
    text = render_series(
        "bytes", latency,
        title="Fig. 8a: NetPIPE one-way latency (us)", y_format="{:.1f}",
    )
    text += "\n\n" + render_series(
        "bytes", throughput,
        title="Fig. 8b: NetPIPE throughput (Gb/s)", y_format="{:.2f}",
    )
    record("fig8_netpipe", text)

    small, large = result.sizes[0], result.sizes[-1]
    # virtio: substantially higher latency and 30-70% lower throughput
    # on core-gapped CVMs (exit- and emulation-intensive)
    assert result.latency_us("gapped", "virtio", small) > 1.3 * (
        result.latency_us("shared", "virtio", small)
    )
    mid = result.sizes[3]
    ratio = result.throughput_gbps("gapped", "virtio", mid) / (
        result.throughput_gbps("shared", "virtio", mid)
    )
    assert ratio < 0.8
    # SR-IOV: within 10-20 us of the baseline at all sizes
    for size in result.sizes:
        delta = result.latency_us("gapped", "sriov", size) - (
            result.latency_us("shared", "sriov", size)
        )
        assert -5 < delta < 20
    # and near-parity throughput at large messages
    big_ratio = result.throughput_gbps("gapped", "sriov", large) / (
        result.throughput_gbps("shared", "sriov", large)
    )
    assert big_ratio > 0.95
