"""Frozen pre-optimization copy of ``repro.sim.engine``.

Verbatim snapshot of the event loop before the hot-path work (tuple
heap entries, closure-free resume, O(1) ``pending_events``, heap
compaction), kept so ``benchmarks/test_perf_baseline.py`` can measure
the live engine against the exact baseline it replaced.  Do not edit
or import from production code.
"""


from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, List, Optional

__all__ = [
    "Delay",
    "Event",
    "AnyOf",
    "Wakeup",
    "Process",
    "Simulator",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for illegal uses of the simulation API."""


class Delay:
    """Yieldable request to sleep for ``ns`` simulated nanoseconds."""

    __slots__ = ("ns",)

    def __init__(self, ns: int):
        if ns < 0:
            raise SimulationError(f"negative delay: {ns}")
        self.ns = int(ns)

    def __repr__(self) -> str:
        return f"Delay({self.ns})"


class Event:
    """A one-shot event that processes can wait on.

    Waiting on an already-fired event resumes immediately with the fired
    value, so there is no race between firing and waiting.
    """

    __slots__ = ("name", "fired", "value", "_waiters")

    def __init__(self, name: str = ""):
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    def fire(self, value: Any = None) -> None:
        """Fire the event, waking every current and future waiter."""
        if self.fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        if self.fired:
            callback(self.value)
        else:
            self._waiters.append(callback)

    def remove_waiter(self, callback: Callable[[Any], None]) -> None:
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass

    def __repr__(self) -> str:
        state = "fired" if self.fired else "pending"
        return f"Event({self.name!r}, {state})"


class Wakeup:
    """Result of an :class:`AnyOf` wait: which source won, and its value."""

    __slots__ = ("index", "source", "value")

    def __init__(self, index: int, source: Any, value: Any):
        self.index = index
        self.source = source
        self.value = value

    def __repr__(self) -> str:
        return f"Wakeup(index={self.index}, source={self.source!r})"


class AnyOf:
    """Yieldable wait on several delays and/or events; first one wins.

    Losing delays are cancelled and losing event subscriptions removed,
    so an ``AnyOf`` leaves no residue once it resumes.
    """

    __slots__ = ("sources",)

    def __init__(self, sources: Iterable[Any]):
        self.sources = list(sources)
        if not self.sources:
            raise SimulationError("AnyOf requires at least one source")
        for src in self.sources:
            if not isinstance(src, (Delay, Event, Process)):
                raise SimulationError(f"AnyOf cannot wait on {src!r}")


ProcessBody = Generator[Any, Any, Any]


class Process:
    """A running simulation process wrapping a generator body."""

    __slots__ = ("sim", "body", "name", "done", "result", "failed", "_finished")

    def __init__(self, sim: "Simulator", body: ProcessBody, name: str):
        self.sim = sim
        self.body = body
        self.name = name
        self.done = Event(f"done:{name}")
        self.result: Any = None
        self.failed: Optional[BaseException] = None
        self._finished = False

    @property
    def finished(self) -> bool:
        return self._finished

    def __repr__(self) -> str:
        state = "finished" if self._finished else "running"
        return f"Process({self.name!r}, {state})"


class _Timer:
    """A cancellable entry in the event heap."""

    __slots__ = ("when", "key", "seq", "callback", "cancelled")

    def __init__(
        self, when: int, key: int, seq: int, callback: Callable[[], None]
    ):
        self.when = when
        self.key = key
        self.seq = seq
        self.callback = callback
        self.cancelled = False

    def __lt__(self, other: "_Timer") -> bool:
        return (self.when, self.key, self.seq) < (
            other.when,
            other.key,
            other.seq,
        )


class Simulator:
    """The deterministic event loop.

    Typical use::

        sim = Simulator()
        proc = sim.spawn(my_generator(), name="worker")
        sim.run(until=1_000_000)   # or sim.run() to drain all events
    """

    #: multiplier for the "seeded" tie-break hash (splitmix64 constant);
    #: pure integer math so permutations replay identically everywhere
    _TIE_MIX = 0x9E3779B97F4A7C15

    def __init__(self, tie_break: str = "fifo") -> None:
        self.now: int = 0
        self._heap: List[_Timer] = []
        self._seq: int = 0
        self._live_processes: int = 0
        self.tie_break = tie_break
        self._tie_key = self._make_tie_key(tie_break)

    @classmethod
    def _make_tie_key(cls, tie_break: str) -> Callable[[int], int]:
        """Key function ordering same-timestamp timers.

        The default ``"fifo"`` preserves schedule order — the engine's
        documented semantics.  The alternatives exist for the schedule-
        race sanitizer (:mod:`repro.lint.sanitizer`): they permute the
        order of *causally unrelated* same-timestamp events (a timer
        can only run after it was created, so causal chains survive any
        key).  Results that change under a permuted key were riding on
        arbitrary tie order.

        * ``"fifo"``   -- schedule order (default semantics)
        * ``"lifo"``   -- reverse schedule order
        * ``"seeded:N"`` -- deterministic pseudo-random order from salt N
        """
        if tie_break == "fifo":
            return lambda seq: 0
        if tie_break == "lifo":
            return lambda seq: -seq
        if tie_break.startswith("seeded:"):
            salt = int(tie_break.split(":", 1)[1])
            mask = (1 << 64) - 1
            mix = cls._TIE_MIX

            def seeded(seq: int) -> int:
                value = (seq + salt) & mask
                value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & mask
                value = ((value ^ (value >> 27)) * mix) & mask
                return value ^ (value >> 31)

            return seeded
        raise SimulationError(f"unknown tie_break: {tie_break!r}")

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------

    def schedule(self, delay_ns: int, callback: Callable[[], None]) -> _Timer:
        """Run ``callback`` after ``delay_ns``; returns a cancellable timer."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay: {delay_ns}")
        self._seq += 1
        timer = _Timer(
            self.now + int(delay_ns),
            self._tie_key(self._seq),
            self._seq,
            callback,
        )
        heapq.heappush(self._heap, timer)
        return timer

    def call_soon(self, callback: Callable[[], None]) -> _Timer:
        return self.schedule(0, callback)

    def spawn(self, body: ProcessBody, name: str = "proc") -> Process:
        """Create a process from a generator and start it at the current time."""
        proc = Process(self, body, name)
        self._live_processes += 1
        self.call_soon(lambda: self._step(proc, None, None))
        return proc

    # ------------------------------------------------------------------
    # process stepping
    # ------------------------------------------------------------------

    def _step(
        self,
        proc: Process,
        send_value: Any,
        throw_exc: Optional[BaseException],
    ) -> None:
        try:
            if throw_exc is not None:
                yielded = proc.body.throw(throw_exc)
            else:
                yielded = proc.body.send(send_value)
        except StopIteration as stop:
            self._finish(proc, getattr(stop, "value", None), None)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via run()
            self._finish(proc, None, exc)
            return
        self._arm(proc, yielded)

    def _finish(
        self, proc: Process, result: Any, exc: Optional[BaseException]
    ) -> None:
        proc.result = result
        proc.failed = exc
        proc._finished = True
        self._live_processes -= 1
        if exc is not None and not proc.done._waiters:
            raise exc
        proc.done.fire(result if exc is None else exc)

    def _arm(self, proc: Process, yielded: Any) -> None:
        """Arm the wakeup condition a process yielded."""
        if isinstance(yielded, Delay):
            self.schedule(yielded.ns, lambda: self._step(proc, None, None))
        elif isinstance(yielded, Event):
            yielded.add_waiter(lambda value: self._step(proc, value, None))
        elif isinstance(yielded, Process):
            yielded.done.add_waiter(
                lambda value: self._resume_from_child(proc, yielded)
            )
        elif isinstance(yielded, AnyOf):
            self._arm_any_of(proc, yielded)
        else:
            self._step(
                proc,
                None,
                SimulationError(f"process {proc.name!r} yielded {yielded!r}"),
            )

    def _resume_from_child(self, proc: Process, child: Process) -> None:
        if child.failed is not None:
            self._step(proc, None, child.failed)
        else:
            self._step(proc, child.result, None)

    def _arm_any_of(self, proc: Process, any_of: AnyOf) -> None:
        state = {"settled": False}
        timers: List[_Timer] = []
        subscriptions: List[tuple] = []

        def settle(index: int, source: Any, value: Any) -> None:
            if state["settled"]:
                return
            state["settled"] = True
            for timer in timers:
                timer.cancelled = True
            for event, callback in subscriptions:
                event.remove_waiter(callback)
            # resume via the event loop rather than synchronously: a
            # process looping on already-fired sources must not recurse
            self.call_soon(
                lambda: self._step(proc, Wakeup(index, source, value), None)
            )

        for index, source in enumerate(any_of.sources):
            if state["settled"]:
                break
            if isinstance(source, Delay):
                timer = self.schedule(
                    source.ns,
                    lambda i=index, s=source: settle(i, s, None),
                )
                timers.append(timer)
            elif isinstance(source, Process):
                callback = (
                    lambda value, i=index, s=source: settle(i, s, value)
                )
                subscriptions.append((source.done, callback))
                source.done.add_waiter(callback)
            else:  # Event
                callback = (
                    lambda value, i=index, s=source: settle(i, s, value)
                )
                subscriptions.append((source, callback))
                source.add_waiter(callback)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def run(self, until: Optional[int] = None) -> int:
        """Process events until the heap drains or the clock passes ``until``.

        Returns the simulated time at which the run stopped.
        """
        while self._heap:
            timer = self._heap[0]
            if timer.cancelled:
                heapq.heappop(self._heap)
                continue
            if until is not None and timer.when > until:
                self.now = until
                return self.now
            heapq.heappop(self._heap)
            if timer.when < self.now:
                raise SimulationError("time went backwards")
            self.now = timer.when
            timer.callback()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_until_done(self, proc: Process, limit: Optional[int] = None) -> Any:
        """Run until ``proc`` finishes; returns its result, raising its error."""
        while not proc.finished:
            if not self._heap:
                raise SimulationError(
                    f"deadlock: {proc.name!r} pending with no events queued"
                )
            if limit is not None and self.now > limit:
                raise SimulationError(
                    f"process {proc.name!r} still running at t={self.now}"
                )
            self.run_one()
        if proc.failed is not None:
            raise proc.failed
        return proc.result

    def run_one(self) -> None:
        """Process exactly one (non-cancelled) event."""
        while self._heap:
            timer = heapq.heappop(self._heap)
            if timer.cancelled:
                continue
            self.now = timer.when
            timer.callback()
            return

    @property
    def pending_events(self) -> int:
        return sum(1 for t in self._heap if not t.cancelled)
