"""Fig. 6: CoreMark-PRO scaling for shared-core VMs and core-gapped CVMs."""

from repro.analysis import render_series
from repro.experiments.fig6 import run_fig6
from repro.sim.clock import ms


def test_fig6_coremark_scaling(benchmark, record):
    result = benchmark.pedantic(
        run_fig6,
        kwargs={
            "core_counts": [2, 4, 8, 16, 32, 48, 64],
            "duration_ns": ms(600),
            "busywait_duration_ns": ms(250),
        },
        rounds=1,
        iterations=1,
    )
    series = {
        name: [(float(x), y) for x, y in points]
        for name, points in result.series.items()
    }
    text = render_series(
        "cores",
        series,
        title=(
            "Fig. 6: CoreMark-PRO score vs physical cores "
            "(core-gapped uses N-1 guest cores + 1 host core)"
        ),
        y_format="{:.0f}",
    )
    r2r = ", ".join(
        f"{n}c={v:.1f}us" for n, v in sorted(result.run_to_run_us.items())
    )
    text += f"\n\nrun-to-run latency (no delegation): {r2r} (paper: 26.18 +- 0.96 us)"
    record("fig6_coremark_scaling", text)

    shared = dict(result.series["shared"])
    gapped = dict(result.series["gapped"])
    busy = dict(result.series["gapped-busywait"])

    # near-linear scaling to 64 cores for the async+delegation design
    assert gapped[64] > 25 * gapped[2]
    # fair-accounting handicap at small counts: shared wins at 2 cores...
    assert shared[2] > gapped[2]
    # ...but core gapping is competitive (within 2%) or ahead at 64
    assert gapped[64] > 0.98 * shared[64]
    # the Quarantine-style ablation saturates around ~10 guest cores
    assert busy[24] < 1.4 * busy[8]
    assert busy[24] < 0.25 * gapped[16]
    # run-to-run latency stays flat with core count (paper S5.2; the
    # paper's 26.18 us figure is for the delegated config, where exits
    # are rare -- our samples come from the no-delegation series, which
    # congests the single host core beyond ~32 guest cores, so the
    # flatness claim is checked on 4..32 cores)
    values = [
        v for n, v in sorted(result.run_to_run_us.items()) if 4 <= n <= 32
    ]
    assert max(values) - min(values) < 15
    assert all(10 < v < 40 for v in values)
