"""Chaos audit: workloads under fault injection keep every invariant.

The fault plans in :mod:`repro.experiments.chaos` stress each transport
of the core-gapping design -- exit IPIs, completion slots, the wake-up
thread, hotplug, dedicated cores, virtio completions -- with the
hardening layer (watchdog, bounded retries, sync timeouts) enabled.

The contract asserted for every (plan, scenario) cell:

* the core-gap auditor stays clean and conservation holds (faults may
  cost performance, never isolation or accounting);
* no cell hangs: every workload completes, is refused admission, or
  fails with a recorded host-side run error (invariant #2);
* plans with fault opportunities actually inject.
"""

import pytest

from repro.experiments.chaos import (
    ChaosOutcome,
    default_fault_plans,
    plan_scenarios,
    run_chaos_case,
    run_chaos_matrix,
)

SEED = 7

PLANS = {plan.name: plan for plan in default_fault_plans()}

MATRIX = [
    (scenario, plan.name)
    for plan in default_fault_plans()
    for scenario in plan_scenarios(plan)
]

#: plans whose faults have opportunities in every scenario they run in
ALWAYS_INJECTS = {
    "drop-exit-ipi",
    "jitter-ipi",
    "stall-completion",
    "corrupt-completion",
    "wakeup-stall",
    "hotplug-flaky",
    "hotplug-storm",
    "dead-core",
    "virtio-delay",
}


@pytest.mark.parametrize(("scenario", "plan_name"), MATRIX)
def test_chaos_cell(scenario, plan_name):
    outcome = run_chaos_case(scenario, PLANS[plan_name], seed=SEED)

    # never a hang, never an unhandled exception (reaching here at all
    # covers the latter)
    assert outcome.status != "hung", outcome.detail
    assert outcome.status in ("completed", "host_error", "refused")

    # zero isolation or accounting violations under any fault plan
    assert outcome.audit_problems == []

    # failures are clean and host-visible
    if outcome.status == "host_error":
        assert outcome.host_errors
    if outcome.status == "refused":
        assert outcome.detail

    if plan_name == "control":
        assert outcome.status == "completed"
        assert outcome.injections == {}
    elif plan_name in ALWAYS_INJECTS:
        assert sum(outcome.injections.values()) > 0, (
            f"plan {plan_name} never injected on {scenario}"
        )


def test_chaos_expected_failure_modes():
    """The fault plans that must degrade do, and degrade cleanly."""
    dead = run_chaos_case("coremark", PLANS["dead-core"], seed=SEED)
    assert dead.status == "host_error"
    assert any("unanswered" in err for err in dead.host_errors)
    assert dead.recoveries["run_retries"] > 0

    corrupt = run_chaos_case("coremark", PLANS["corrupt-completion"], seed=SEED)
    assert corrupt.status == "host_error"
    assert any("corrupted" in err for err in corrupt.host_errors)

    storm = run_chaos_case("coremark", PLANS["hotplug-storm"], seed=SEED)
    assert storm.status == "refused"
    assert "aborted hotplug" in storm.detail

    flaky = run_chaos_case("coremark", PLANS["hotplug-flaky"], seed=SEED)
    assert flaky.status == "completed"  # spare cores absorb one abort


def test_chaos_matrix_summary(record):
    outcomes = run_chaos_matrix(seed=SEED)
    assert all(isinstance(o, ChaosOutcome) for o in outcomes)
    assert all(o.survived for o in outcomes)

    lines = [
        "Chaos audit matrix (seed {})".format(SEED),
        "",
        f"{'plan':<20} {'scenario':<10} {'status':<12} "
        f"{'injections':<12} {'ms':>8}",
    ]
    for o in outcomes:
        lines.append(
            f"{o.plan:<20} {o.scenario:<10} {o.status:<12} "
            f"{sum(o.injections.values()):<12} {o.duration_ns / 1e6:>8.1f}"
        )
    record("chaos_audit", "\n".join(lines))
