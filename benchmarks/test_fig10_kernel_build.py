"""Fig. 10: Linux kernel build, virtio disk."""

from repro.analysis import render_series
from repro.experiments.fig10 import run_fig10


def test_fig10_kernel_build(benchmark, record):
    result = benchmark.pedantic(
        run_fig10, kwargs={"core_counts": [4, 8, 16]}, rounds=1, iterations=1
    )
    series = {
        mode: [(float(x), y) for x, y in points]
        for mode, points in result.series.items()
    }
    text = render_series(
        "cores", series,
        title=(
            "Fig. 10: scaled-down kernel build time (s), virtio disk "
            "(core-gapped runs N-1 vCPUs)"
        ),
        y_format="{:.2f}",
    )
    record("fig10_kernel_build", text)

    shared = dict(result.series["shared"])
    gapped = dict(result.series["gapped"])
    # both configurations scale with more cores
    assert shared[16] < shared[4]
    assert gapped[16] < gapped[4]
    # comparable performance despite one fewer vCPU (paper: "scales
    # similarly", within ~20% everywhere, near-parity at 16)
    for n in (4, 8, 16):
        assert gapped[n] < 1.25 * shared[n]
    assert gapped[16] < 1.1 * shared[16]
