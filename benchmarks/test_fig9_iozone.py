"""Fig. 9: IOzone sync read/write throughput to a virtio block device."""

from repro.analysis import render_series
from repro.experiments.fig9 import run_fig9

MIB = 1024 * 1024


def test_fig9_iozone(benchmark, record):
    result = benchmark.pedantic(
        run_fig9, kwargs={"ops_per_record": 8}, rounds=1, iterations=1
    )
    series = {
        f"{mode}/{op.split('_')[1]}": [
            (float(rec), result.throughput(mode, rec, op))
            for rec in result.records
        ]
        for mode in ("shared", "gapped")
        for op in ("blk_read", "blk_write")
    }
    text = render_series(
        "record bytes", series,
        title="Fig. 9: IOzone O_DIRECT throughput (MiB/s), virtio block",
        y_format="{:.0f}",
    )
    record("fig9_iozone", text)

    small = result.records[0]
    large = result.records[-1]
    # small records: core-gapping pays its higher exit latency per record
    for op in ("blk_read", "blk_write"):
        ratio = result.throughput("gapped", small, op) / (
            result.throughput("shared", small, op)
        )
        assert ratio < 0.8
    # large (>10 MiB) records: similar throughput (paper's crossover)
    for op in ("blk_read", "blk_write"):
        ratio = result.throughput("gapped", large, op) / (
            result.throughput("shared", large, op)
        )
        assert ratio > 0.9
