"""Extension bench: core-gapped vs shared-core *confidential* VMs.

Tests the paper's S5.5 prediction, which its hardware could not: once
the baseline also pays confidentiality costs (world switches +
mitigation flushes per exit), core gapping wins outright.
"""

from repro.analysis import render_series
from repro.experiments.ext_shared_cvm import run_shared_cvm_comparison
from repro.sim.clock import ms


def test_ext_shared_cvm_comparison(benchmark, record):
    result = benchmark.pedantic(
        run_shared_cvm_comparison,
        kwargs={"core_counts": [4, 8, 16, 32], "duration_ns": ms(600)},
        rounds=1,
        iterations=1,
    )
    series = {
        mode: [(float(x), y) for x, y in points]
        for mode, points in result.series.items()
    }
    text = render_series(
        "cores",
        series,
        title=(
            "Extension: CoreMark score, shared VM vs shared CVM vs "
            "core-gapped CVM (the S5.5 prediction)"
        ),
        y_format="{:.0f}",
    )
    record("ext_shared_cvm", text)

    for n in (8, 16, 32):
        # confidentiality costs the shared-core design real throughput
        assert result.score("shared-cvm", n) < result.score("shared", n)
    # the S5.5 prediction: core-gapped CVMs overtake shared-core CVMs
    # earlier than they overtake the non-confidential baseline -- here
    # by 32 cores (vs ~48-64 against plain shared VMs in fig. 6)
    assert result.score("gapped", 32) > result.score("shared-cvm", 32)
    gap_vs_cvm_16 = result.score("gapped", 16) / result.score("shared-cvm", 16)
    gap_vs_shared_16 = result.score("gapped", 16) / result.score("shared", 16)
    assert gap_vs_cvm_16 > gap_vs_shared_16  # closer against the fair baseline
