"""Fig. 3: vulnerability timeline and core-gapping coverage."""

from repro.security import CATALOG, mitigated_by_core_gapping, render_fig3, unmitigated


def test_fig3_vulnerability_timeline(benchmark, record):
    text = benchmark.pedantic(render_fig3, rounds=1, iterations=1)
    record("fig3_vulnerabilities", text)
    closed = sum(1 for v in CATALOG if mitigated_by_core_gapping(v))
    remaining = {v.name for v in unmitigated()}
    # the paper's claim: 30+ vulns closed; only CrossTalk demonstrated a
    # severe cross-core leak, plus NetSpectre remotely
    assert closed >= 30
    assert "CrossTalk" in remaining and "NetSpectre" in remaining
    assert len(remaining) <= 3
