"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's tables or figures, prints
it (visible with ``-s``), and writes it to ``benchmarks/results/`` so
the numbers survive the run.  Use::

    pytest benchmarks/ --benchmark-only

Absolute times come from the calibrated simulation; the assertions guard
the paper's *qualitative* claims (orderings, ratios, crossovers).
"""

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir():
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record(results_dir):
    """Print a rendered table/figure and persist it."""

    def _record(name: str, text: str) -> None:
        print(f"\n{text}\n")
        (results_dir / f"{name}.txt").write_text(text + "\n")

    return _record
