"""Security evaluation: the core-gap invariant and attack outcomes.

Not a table in the paper, but the claim the whole paper exists for
(S2.4/S3): identical attacker code succeeds against shared-core
schedules and fails against core-gapped ones, and the schedule auditor
finds zero distrusting co-residency in core-gapped runs.
"""

from repro.analysis import render_table
from repro.experiments import System, SystemConfig
from repro.guest.actions import Compute
from repro.guest.vm import GuestVm
from repro.hw import Machine, SocTopology
from repro.security import (
    CoreGapAuditor,
    btb_injection_attack,
    cache_covert_channel,
    prime_probe_attack,
    store_buffer_attack,
)
from repro.sim.clock import ms


def _attack_matrix():
    machine = Machine(SocTopology(name="sec", n_cores=4, memory_gib=1))
    secret = [1, 0, 1, 1, 0, 0, 1, 0] * 8
    rows = []
    pp_shared = prime_probe_attack(machine, 0, 0, secret)
    pp_gapped = prime_probe_attack(machine, 1, 2, secret)
    rows.append(
        ("L1 prime+probe", f"{pp_shared.accuracy:.0%}", f"{pp_gapped.accuracy:.0%}")
    )
    rows.append(
        (
            "BTB injection (Spectre-v2)",
            str(btb_injection_attack(machine, 3, 3)),
            str(btb_injection_attack(machine, 3, 0)),
        )
    )
    rows.append(
        (
            "store-buffer forward (MDS)",
            hex(store_buffer_attack(machine, 1, 1) or 0),
            str(store_buffer_attack(machine, 1, 2)),
        )
    )
    cc_shared = cache_covert_channel(machine, 2, 2, secret)
    cc_gapped = cache_covert_channel(machine, 2, 3, secret)
    rows.append(
        (
            "L1 covert channel",
            f"{cc_shared.accuracy:.0%}",
            f"{cc_gapped.accuracy:.0%}",
        )
    )
    return machine, rows, (pp_shared, pp_gapped, cc_shared, cc_gapped)


def _gapped_system_audit():
    system = System(SystemConfig(mode="gapped", n_cores=8, housekeeping=None))

    def factory(vm, index):
        def body():
            while True:
                yield Compute(200_000)

        return body()

    for name in ("victim", "attacker"):
        vm = GuestVm(name, 3, factory)
        kvm = system.launch(vm)
        system.start(kvm)
    system.run_for(ms(50))
    return CoreGapAuditor().audit(system.machine, system.tracer)


def test_security_attacks_and_audit(benchmark, record):
    machine, rows, results = benchmark.pedantic(
        _attack_matrix, rounds=1, iterations=1
    )
    pp_shared, pp_gapped, cc_shared, cc_gapped = results
    report = _gapped_system_audit()
    text = render_table(
        ["attack", "shared core", "core gapped"],
        rows,
        title="Security: attack outcomes, time-sliced vs core-gapped",
    )
    text += f"\n\nschedule audit (2 CVMs, hostile host): {report.summary()}"
    record("security_audit", text)

    assert pp_shared.leaked and not pp_gapped.leaked
    assert cc_shared.leaked and not cc_gapped.leaked
    assert report.clean
