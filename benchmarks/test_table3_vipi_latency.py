"""Table 3: virtual inter-processor interrupt latency."""

from repro.analysis import render_comparison
from repro.experiments import PAPER_TARGETS
from repro.experiments.table3 import run_table3


def test_table3_virtual_ipi_latency(benchmark, record):
    result = benchmark.pedantic(
        run_table3, kwargs={"count": 150}, rounds=1, iterations=1
    )
    nodeleg = result.latency_us["gapped-nodeleg"].mean
    deleg = result.latency_us["gapped-deleg"].mean
    shared = result.latency_us["shared"].mean
    text = render_comparison(
        [
            (
                "core-gapped CVM, without delegation",
                nodeleg,
                PAPER_TARGETS["table3_vipi_nodeleg_us"],
            ),
            (
                "core-gapped CVM, with delegation",
                deleg,
                PAPER_TARGETS["table3_vipi_deleg_us"],
            ),
            (
                "shared-core VM",
                shared,
                PAPER_TARGETS["table3_vipi_shared_us"],
            ),
        ],
        title="Table 3: virtual IPI latency (us), measured vs paper",
        unit=" us",
    )
    record("table3_vipi_latency", text)

    # the paper's ordering and the ~20x delegation win
    assert deleg < shared < nodeleg
    assert nodeleg / deleg > 10
    # within 2x of every absolute number
    assert 0.5 < deleg / PAPER_TARGETS["table3_vipi_deleg_us"] < 2
    assert 0.5 < nodeleg / PAPER_TARGETS["table3_vipi_nodeleg_us"] < 2
    assert 0.5 < shared / PAPER_TARGETS["table3_vipi_shared_us"] < 2
