"""Table 1: confidential VM terms in different ISAs."""

from repro.isa import render_table1


def test_table1_terminology(benchmark, record):
    table = benchmark.pedantic(render_table1, rounds=1, iterations=1)
    record("table1_terminology", "Table 1: CVM terms per ISA\n" + table)
    assert "RMM" in table and "TDX module" in table and "TSM" in table
