"""Perf smoke: engine events/sec, per-lever breakdown, parallel suite.

Measurements are written to ``BENCH_perf.json`` (schema 2) at the repo
root so the bench trajectory survives across PRs:

* **engine micro** (schema-1 keys, unchanged): scheduled events per
  second on a synthetic Delay/AnyOf-heavy workload, on the live engine
  *and* on the frozen pre-optimization snapshot
  (``benchmarks/_legacy_engine.py``).
* **levers** (schema 2): the same claim decomposed per optimisation —
  calendar queue vs binary heap, batched bucket dispatch vs
  one-event-at-a-time dispatch, and compute-span coalescing vs the
  per-chunk expansion.  Coalescing is scored in *legacy-equivalent*
  events/sec: the coalesced run retires the same simulated work with
  ~``chunks``× fewer engine events, so its effective rate is the
  expanded run's event count over the coalesced run's wall time.
* **fig-6 cell macro** and **suite parallel** (schema-1 keys): one
  gapped CoreMark cell, and a subsweep at ``jobs=1`` vs ``jobs=4``;
  schema 2 adds the ``--jobs auto`` resolution for this host.

Methodology: every timed sample starts from a collected heap
(``gc.collect`` before each run, GC left *on*) so each engine pays its
own garbage, not its predecessor's — the legacy engine's cancelled
AnyOf losers create cyclic garbage whose collection otherwise lands in
whichever measurement runs next.  Wall-clock assertions are gated on
``os.cpu_count()`` where parallelism is the thing measured.
"""

import gc
import json
import os
import pathlib
import sys
import time

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import _legacy_engine  # noqa: E402  (the frozen pre-optimization engine)

import repro.sim.engine as live_engine  # noqa: E402
from repro.costs import DEFAULT_COSTS  # noqa: E402
from repro.experiments.fig6 import _coremark_cell, fig6_cells  # noqa: E402
from repro.experiments.runner import resolve_jobs, run_cells  # noqa: E402
from repro.sim.clock import ms  # noqa: E402

BENCH_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_perf.json"

#: filled by the tests, flushed to BENCH_perf.json by the module fixture
RESULTS = {"schema": 2}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    RESULTS["cpu_count"] = os.cpu_count()
    RESULTS["python"] = sys.version.split()[0]
    yield
    BENCH_PATH.write_text(json.dumps(RESULTS, indent=2, sort_keys=True) + "\n")


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        gc.collect()  # each sample pays its own garbage, not the last run's
        t0 = time.perf_counter()  # lint: allow(DET001) - measuring wall time
        fn()
        elapsed = time.perf_counter() - t0  # lint: allow(DET001)
        best = min(best, elapsed)
    return best


# ---------------------------------------------------------------------------
# engine micro workloads


def _engine_workload(mod, n_procs=40, n_iter=300, scheduler=None):
    """Delay/AnyOf mix shaped like the run-call paths the experiments
    drive hardest; returns the count of scheduled timers."""
    if scheduler is None:
        sim = mod.Simulator()
    else:
        sim = mod.Simulator(scheduler=scheduler)

    def worker(i):
        for k in range(n_iter):
            yield mod.Delay(10 + (i + k) % 7)
            wakeup = yield mod.AnyOf([mod.Delay(3), mod.Delay(10**6)])
            assert wakeup.index == 0

    for i in range(n_procs):
        sim.spawn(worker(i), name=f"w{i}")
    sim.run()
    return sim._seq


def _run_unbatched(sim):
    """Drain a simulator one event per call — the dispatch path minus
    the bucket-batched inner loop of :meth:`Simulator.run`."""
    while sim._live:
        sim.run_one()
    return sim.now


def _span_workload(mod, coalesced, n_procs=8, n_spans=60, chunks=32):
    """The compute-span shape: each span is ``chunks`` identical fixed
    delays racing a never-firing doorbell (exactly what
    ``PhysicalCore.execute`` queues per chunk).  ``coalesced=True``
    queues each span as ONE such race, the event-stream effect of
    ``execute_span``.  Returns (scheduled_events, end_time): end times
    must agree between the two forms — same simulated outcome.
    """
    sim = mod.Simulator()
    chunk_ns = 500

    def worker(i):
        for _ in range(n_spans):
            if coalesced:
                wakeup = yield mod.AnyOf(
                    [mod.Delay(chunk_ns * chunks), mod.Delay(10**12)]
                )
                assert wakeup.index == 0
            else:
                for _ in range(chunks):
                    wakeup = yield mod.AnyOf(
                        [mod.Delay(chunk_ns), mod.Delay(10**12)]
                    )
                    assert wakeup.index == 0

    for i in range(n_procs):
        sim.spawn(worker(i), name=f"s{i}")
    sim.run()
    return sim._seq, sim.now


# ---------------------------------------------------------------------------
# engine: headline + per-lever breakdown


def test_engine_events_per_sec_vs_legacy():
    n_events = _engine_workload(live_engine)  # warm both modules up
    assert n_events == _engine_workload(_legacy_engine)

    legacy_s = _best_of(lambda: _engine_workload(_legacy_engine), repeats=5)
    live_s = _best_of(lambda: _engine_workload(live_engine), repeats=5)
    speedup = legacy_s / live_s
    RESULTS["engine"] = {
        "scheduled_events": n_events,
        "events_per_sec_live": round(n_events / live_s),
        "events_per_sec_legacy": round(n_events / legacy_s),
        "single_process_speedup": round(speedup, 3),
    }
    # generous floor against loaded CI hosts; the measured margin is
    # far above it (see BENCH_perf.json)
    assert speedup >= 1.10, f"engine regressed vs pre-PR baseline: {speedup:.3f}x"


def test_lever_calendar_vs_heap():
    n_events = _engine_workload(live_engine, scheduler="heap")
    assert n_events == _engine_workload(live_engine, scheduler="calendar")

    heap_s = _best_of(
        lambda: _engine_workload(live_engine, scheduler="heap"), repeats=5
    )
    calendar_s = _best_of(
        lambda: _engine_workload(live_engine, scheduler="calendar"), repeats=5
    )
    RESULTS.setdefault("levers", {})["scheduler"] = {
        "scheduled_events": n_events,
        "events_per_sec_heap": round(n_events / heap_s),
        "events_per_sec_calendar": round(n_events / calendar_s),
        "calendar_vs_heap_speedup": round(heap_s / calendar_s, 3),
    }
    # noise floor only: on a loaded single-CPU host the two samples
    # can land 10-20% apart either way on this micro workload; the
    # real regression guard is the headline live-vs-legacy assert
    assert heap_s / calendar_s >= 0.75


def test_lever_batched_vs_unbatched_dispatch():
    def build():
        sim = live_engine.Simulator()

        def worker(i):
            for k in range(400):
                yield live_engine.Delay(5 + (i + k) % 11)

        for i in range(30):
            sim.spawn(worker(i), name=f"w{i}")
        return sim

    n_events = build()._seq  # spawns only; run() adds the rest
    batched_s = _best_of(lambda: build().run(), repeats=5)
    unbatched_s = _best_of(lambda: _run_unbatched(build()), repeats=5)
    total = build()
    total.run()
    RESULTS.setdefault("levers", {})["batch_dispatch"] = {
        "scheduled_events": total._seq,
        "events_per_sec_batched": round(total._seq / batched_s),
        "events_per_sec_unbatched": round(total._seq / unbatched_s),
        "batched_vs_unbatched_speedup": round(unbatched_s / batched_s, 3),
    }
    assert n_events <= total._seq
    # noise floor (measured margin is well above parity)
    assert unbatched_s / batched_s >= 0.85


def test_lever_coalescing_effective_rate():
    expanded_events, expanded_end = _span_workload(live_engine, False)
    coalesced_events, coalesced_end = _span_workload(live_engine, True)
    assert coalesced_end == expanded_end  # same simulated outcome
    assert coalesced_events < expanded_events

    legacy_s = _best_of(lambda: _span_workload(_legacy_engine, False))
    expanded_s = _best_of(lambda: _span_workload(live_engine, False))
    coalesced_s = _best_of(lambda: _span_workload(live_engine, True))

    legacy_rate = expanded_events / legacy_s
    effective_rate = expanded_events / coalesced_s
    overall = legacy_s / coalesced_s
    RESULTS.setdefault("levers", {})["coalescing"] = {
        "expanded_events": expanded_events,
        "coalesced_events": coalesced_events,
        "event_reduction": round(expanded_events / coalesced_events, 2),
        "events_per_sec_expanded": round(expanded_events / expanded_s),
        "events_per_sec_effective": round(effective_rate),
        "coalesced_vs_expanded_speedup": round(expanded_s / coalesced_s, 3),
    }
    RESULTS["levers"]["overall"] = {
        "workload": "compute-span shape, legacy-equivalent events/sec",
        "events_per_sec_legacy": round(legacy_rate),
        "events_per_sec_coalesced_effective": round(effective_rate),
        "speedup_vs_legacy": round(overall, 2),
    }
    # the PR's acceptance target: >=10x legacy events/sec on the span
    # workload, raw dispatch and event elision multiplied together
    assert overall >= 10.0, (
        f"effective speedup vs legacy below target: {overall:.2f}x"
    )


# ---------------------------------------------------------------------------
# macro + suite


def test_fig6_cell_wallclock():
    run = lambda: _coremark_cell("gapped", 8, int(ms(200)), DEFAULT_COSTS)
    score, _ = run()
    assert score > 0
    RESULTS["fig6_cell"] = {
        "cell": "gapped/8-core coremark, 200 ms simulated",
        "seconds": round(_best_of(run), 4),
    }


def test_suite_parallel_speedup():
    cells = fig6_cells(
        core_counts=[2, 4, 8], duration_ns=int(ms(100)), include_busywait=False
    )
    serial_s = _best_of(lambda: run_cells(cells, jobs=1), repeats=2)
    jobs4_s = _best_of(lambda: run_cells(cells, jobs=4), repeats=2)
    speedup = serial_s / jobs4_s
    cpus = os.cpu_count() or 1
    auto_jobs = resolve_jobs("auto", n_cells=len(cells))
    RESULTS["suite"] = {
        "cells": len(cells),
        "jobs": 4,
        "serial_seconds": round(serial_s, 4),
        "jobs4_seconds": round(jobs4_s, 4),
        "parallel_speedup": round(speedup, 3),
        "auto_jobs": auto_jobs,
        "auto_jobs_note": (
            "single-CPU host: --jobs auto resolves to serial (a spawn "
            "pool would timeshare one core and pay start-up on top)"
            if cpus <= 1
            else f"{cpus} CPUs: --jobs auto resolves to "
            f"min(cpus, cells) = {auto_jobs} workers"
        ),
        "note": (
            "speedup requires >=4 CPUs; on fewer cores workers timeshare "
            "and pay process-spawn overhead, so the ratio is recorded "
            "but not asserted"
        )
        if cpus < 4
        else "",
    }
    if cpus <= 1:
        assert auto_jobs == 1
    else:
        assert 1 <= auto_jobs <= min(cpus, len(cells))
    if cpus >= 4:
        assert speedup >= 2.0, f"parallel speedup collapsed: {speedup:.2f}x"


def test_snapshot_fork_vs_reboot():
    """Fork one booted rack into N variants vs N from-scratch boots.

    The boot prefix (realm build, REC binding, device attach, client
    wiring) is what ``fork_map`` amortizes; the serve phase is paid
    either way.  Recorded as boot-amortization speedup: (boot+serve)*N
    from scratch vs boot once + N copy-on-write forks.
    """
    from repro.experiments.config import SystemConfig
    from repro.fleet import ScenarioSpec, boot_server, place, redis_tenant, uniform_rack
    from repro.snap import can_fork, fork_map

    if not can_fork():
        RESULTS["snap"] = {"note": "os.fork unavailable; not measured"}
        pytest.skip("os.fork unavailable on this platform")

    spec = ScenarioSpec(
        servers=uniform_rack(1, SystemConfig(mode="gapped", n_cores=8), seed=1),
        tenants=(
            redis_tenant("acme", n_vcpus=3, rate_rps=6000.0),
            redis_tenant("bravo", n_vcpus=3, rate_rps=4000.0),
        ),
        duration_ns=int(ms(10)),
        seed=1,
    )
    n_variants = 4
    serve_ns = [int(ms(2)) * (i + 1) for i in range(n_variants)]

    def boot():
        server = boot_server(spec, place(spec), 0)
        for client in server.clients:
            client.start(spec.duration_ns)
        return server

    def reboot_all():
        digests = []
        for duration in serve_ns:
            server = boot()
            server.system.run_for(duration)
            digests.append(server.system.state_digest())
        return digests

    def fork_all():
        server = boot()

        def variant(duration):
            server.system.run_for(duration)
            return server.system.state_digest()

        return fork_map(serve_ns, variant)

    assert fork_all() == reboot_all()  # warm-up doubles as correctness

    reboot_s = _best_of(reboot_all, repeats=3)
    fork_s = _best_of(fork_all, repeats=3)
    speedup = reboot_s / fork_s
    RESULTS["snap"] = {
        "variants": n_variants,
        "reboot_seconds": round(reboot_s, 4),
        "fork_seconds": round(fork_s, 4),
        "fork_vs_reboot_speedup": round(speedup, 3),
    }
    # forking must at least not cost more than rebooting; the real
    # margin scales with boot cost, which is modest at this size, so
    # the floor is deliberately loose against CI scheduler noise
    assert speedup >= 1.0, f"fork slower than reboot: {speedup:.3f}x"
