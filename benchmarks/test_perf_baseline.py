"""Perf smoke: engine events/sec, one fig-6 cell, parallel suite speedup.

Three measurements, written to ``BENCH_perf.json`` at the repo root so
the bench trajectory survives across PRs:

* **engine micro**: scheduled events per second on a synthetic
  Delay/AnyOf-heavy workload, on the live engine *and* on the frozen
  pre-optimization snapshot (``benchmarks/_legacy_engine.py``) — the
  single-process speedup claim, measured against the exact baseline.
* **fig-6 cell macro**: wall-clock of one gapped 8-core CoreMark cell,
  the unit of work the parallel runner fans out.
* **suite parallel**: a small fig-6 subsweep at ``jobs=1`` vs
  ``jobs=4`` through ``repro.experiments.runner``.

Wall-clock assertions are gated on ``os.cpu_count()``: a single-CPU
host cannot show parallel speedup (workers timeshare one core and pay
spawn overhead on top), so there the numbers are recorded but only the
engine-speedup floor is enforced.
"""

import json
import os
import pathlib
import sys
import time

import pytest

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent))
import _legacy_engine  # noqa: E402  (the frozen pre-PR engine)

import repro.sim.engine as live_engine  # noqa: E402
from repro.costs import DEFAULT_COSTS  # noqa: E402
from repro.experiments.fig6 import _coremark_cell, fig6_cells  # noqa: E402
from repro.experiments.runner import run_cells  # noqa: E402
from repro.sim.clock import ms  # noqa: E402

BENCH_PATH = pathlib.Path(__file__).resolve().parents[1] / "BENCH_perf.json"

#: filled by the tests, flushed to BENCH_perf.json by the module fixture
RESULTS = {"schema": 1}


@pytest.fixture(scope="module", autouse=True)
def _emit_bench_json():
    RESULTS["cpu_count"] = os.cpu_count()
    RESULTS["python"] = sys.version.split()[0]
    yield
    BENCH_PATH.write_text(json.dumps(RESULTS, indent=2, sort_keys=True) + "\n")


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()  # lint: allow(DET001) - measuring wall time
        fn()
        elapsed = time.perf_counter() - t0  # lint: allow(DET001)
        best = min(best, elapsed)
    return best


def _engine_workload(mod, n_procs=40, n_iter=300):
    """Delay/AnyOf mix shaped like the run-call paths the experiments
    drive hardest; returns the count of scheduled timers."""
    sim = mod.Simulator()

    def worker(i):
        for k in range(n_iter):
            yield mod.Delay(10 + (i + k) % 7)
            wakeup = yield mod.AnyOf([mod.Delay(3), mod.Delay(10**6)])
            assert wakeup.index == 0

    for i in range(n_procs):
        sim.spawn(worker(i), name=f"w{i}")
    sim.run()
    return sim._seq


def test_engine_events_per_sec_vs_legacy():
    n_events = _engine_workload(live_engine)  # warm both modules up
    assert n_events == _engine_workload(_legacy_engine)

    legacy_s = _best_of(lambda: _engine_workload(_legacy_engine), repeats=5)
    live_s = _best_of(lambda: _engine_workload(live_engine), repeats=5)
    speedup = legacy_s / live_s
    RESULTS["engine"] = {
        "scheduled_events": n_events,
        "events_per_sec_live": round(n_events / live_s),
        "events_per_sec_legacy": round(n_events / legacy_s),
        "single_process_speedup": round(speedup, 3),
    }
    # the issue targets >=15%; enforce a floor below the measured margin
    # so scheduler noise on loaded CI hosts does not flake the suite
    assert speedup >= 1.10, f"engine regressed vs pre-PR baseline: {speedup:.3f}x"


def test_fig6_cell_wallclock():
    run = lambda: _coremark_cell("gapped", 8, int(ms(200)), DEFAULT_COSTS)
    score, _ = run()
    assert score > 0
    RESULTS["fig6_cell"] = {
        "cell": "gapped/8-core coremark, 200 ms simulated",
        "seconds": round(_best_of(run), 4),
    }


def test_suite_parallel_speedup():
    cells = fig6_cells(
        core_counts=[2, 4, 8], duration_ns=int(ms(100)), include_busywait=False
    )
    serial_s = _best_of(lambda: run_cells(cells, jobs=1), repeats=2)
    jobs4_s = _best_of(lambda: run_cells(cells, jobs=4), repeats=2)
    speedup = serial_s / jobs4_s
    cpus = os.cpu_count() or 1
    RESULTS["suite"] = {
        "cells": len(cells),
        "jobs": 4,
        "serial_seconds": round(serial_s, 4),
        "jobs4_seconds": round(jobs4_s, 4),
        "parallel_speedup": round(speedup, 3),
        "note": (
            "speedup requires >=4 CPUs; on fewer cores workers timeshare "
            "and pay process-spawn overhead, so the ratio is recorded "
            "but not asserted"
        )
        if cpus < 4
        else "",
    }
    if cpus >= 4:
        assert speedup >= 2.0, f"parallel speedup collapsed: {speedup:.2f}x"


def test_snapshot_fork_vs_reboot():
    """Fork one booted rack into N variants vs N from-scratch boots.

    The boot prefix (realm build, REC binding, device attach, client
    wiring) is what ``fork_map`` amortizes; the serve phase is paid
    either way.  Recorded as boot-amortization speedup: (boot+serve)*N
    from scratch vs boot once + N copy-on-write forks.
    """
    from repro.experiments.config import SystemConfig
    from repro.fleet import ScenarioSpec, boot_server, place, redis_tenant, uniform_rack
    from repro.snap import can_fork, fork_map

    if not can_fork():
        RESULTS["snap"] = {"note": "os.fork unavailable; not measured"}
        pytest.skip("os.fork unavailable on this platform")

    spec = ScenarioSpec(
        servers=uniform_rack(1, SystemConfig(mode="gapped", n_cores=8), seed=1),
        tenants=(
            redis_tenant("acme", n_vcpus=3, rate_rps=6000.0),
            redis_tenant("bravo", n_vcpus=3, rate_rps=4000.0),
        ),
        duration_ns=int(ms(10)),
        seed=1,
    )
    n_variants = 4
    serve_ns = [int(ms(2)) * (i + 1) for i in range(n_variants)]

    def boot():
        server = boot_server(spec, place(spec), 0)
        for client in server.clients:
            client.start(spec.duration_ns)
        return server

    def reboot_all():
        digests = []
        for duration in serve_ns:
            server = boot()
            server.system.run_for(duration)
            digests.append(server.system.state_digest())
        return digests

    def fork_all():
        server = boot()

        def variant(duration):
            server.system.run_for(duration)
            return server.system.state_digest()

        return fork_map(serve_ns, variant)

    assert fork_all() == reboot_all()  # warm-up doubles as correctness

    reboot_s = _best_of(reboot_all, repeats=3)
    fork_s = _best_of(fork_all, repeats=3)
    speedup = reboot_s / fork_s
    RESULTS["snap"] = {
        "variants": n_variants,
        "reboot_seconds": round(reboot_s, 4),
        "fork_seconds": round(fork_s, 4),
        "fork_vs_reboot_speedup": round(speedup, 3),
    }
    # forking must at least not cost more than rebooting; the real
    # margin scales with boot cost, which is modest at this size, so
    # the floor is deliberately loose against CI scheduler noise
    assert speedup >= 1.0, f"fork slower than reboot: {speedup:.3f}x"
