"""Fig. 7: aggregate CoreMark-PRO for an increasing count of 4-core VMs."""

from repro.analysis import render_series
from repro.experiments.fig7 import run_fig7
from repro.sim.clock import ms


def test_fig7_multi_vm_scaling(benchmark, record):
    vm_counts = [1, 2, 4, 8, 12, 15]
    result = benchmark.pedantic(
        run_fig7,
        kwargs={"vm_counts": vm_counts, "duration_ns": ms(600)},
        rounds=1,
        iterations=1,
    )
    series = {
        name: [(float(x), y) for x, y in points]
        for name, points in result.series.items()
    }
    text = render_series(
        "VMs (4 vCPUs each)",
        series,
        title=(
            "Fig. 7: aggregate CoreMark-PRO score, many 4-core VMs; all "
            "core-gapped VMMs share ONE host core"
        ),
        y_format="{:.0f}",
    )
    record("fig7_multivm_scaling", text)

    gapped = dict(result.series["gapped"])
    # linear aggregate scaling: 15 VMs on one host core does not hurt
    # throughput (the paper's point about delegation + async RPC)
    per_vm_1 = gapped[1]
    per_vm_15 = gapped[15] / 15
    assert per_vm_15 > 0.95 * per_vm_1
