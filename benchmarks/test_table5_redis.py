"""Table 5: Redis benchmark (50 clients, 512-byte objects, SR-IOV)."""

from repro.analysis import render_table
from repro.experiments import PAPER_TARGETS
from repro.experiments.table5 import run_table5


def test_table5_redis(benchmark, record):
    result = benchmark.pedantic(
        run_table5, kwargs={"n_requests": 10_000}, rounds=1, iterations=1
    )
    rows = []
    for row in result.rows:
        paper = PAPER_TARGETS["table5"][row.op][
            "gapped" if row.mode == "gapped" else "shared"
        ]
        rows.append(
            (
                row.op,
                "core gapped" if row.mode == "gapped" else "shared core",
                f"{row.throughput_krps:.1f}",
                f"{row.mean_ms:.2f}",
                f"{row.p95_ms:.2f}",
                f"{row.p99_ms:.2f}",
                f"{paper[0]:.1f}",
            )
        )
    text = render_table(
        ["op", "config", "krps", "mean ms", "p95 ms", "p99 ms", "paper krps"],
        rows,
        title="Table 5: Redis, 50 clients, 512-byte objects (SR-IOV)",
    )
    record("table5_redis", text)

    # the paper's headline: core gapping delivers higher throughput on
    # every command, with the biggest win on LRANGE_100
    for op in ("SET", "GET", "LRANGE_100"):
        shared = result.row(op, "shared")
        gapped = result.row(op, "gapped")
        assert gapped.throughput_krps >= shared.throughput_krps * 0.99
        # absolute throughput within 25% of the paper
        paper_sh = PAPER_TARGETS["table5"][op]["shared"][0]
        paper_gp = PAPER_TARGETS["table5"][op]["gapped"][0]
        assert 0.75 < shared.throughput_krps / paper_sh < 1.35
        assert 0.75 < gapped.throughput_krps / paper_gp < 1.35
    # LRANGE latency improves under core gapping (reduced contention)
    assert (
        result.row("LRANGE_100", "gapped").p99_ms
        <= result.row("LRANGE_100", "shared").p99_ms
    )
