"""Table 4: interrupt delegation effect on CoreMark-PRO exit counts."""

from repro.analysis import render_table
from repro.experiments import PAPER_TARGETS
from repro.experiments.table4 import run_table4
from repro.sim.clock import sec


def test_table4_interrupt_delegation_exits(benchmark, record):
    result = benchmark.pedantic(
        run_table4,
        kwargs={"duration_ns": int(sec(4.5))},
        rounds=1,
        iterations=1,
    )
    text = render_table(
        ["", "without delegation", "with delegation", "paper w/o", "paper w/"],
        [
            (
                "interrupt-related exits",
                result.interrupt_exits[False],
                result.interrupt_exits[True],
                PAPER_TARGETS["table4_irq_exits_nodeleg"],
                PAPER_TARGETS["table4_irq_exits_deleg"],
            ),
            (
                "total exits",
                result.total_exits[False],
                result.total_exits[True],
                PAPER_TARGETS["table4_total_exits_nodeleg"],
                PAPER_TARGETS["table4_total_exits_deleg"],
            ),
        ],
        title=(
            "Table 4: delegation on CoreMark-PRO (16 cores, 4.5 s run); "
            f"total-exit reduction {result.reduction_factor():.1f}x "
            "(paper: 28.5x)"
        ),
    )
    record("table4_exit_counts", text)

    # paper: 33954 -> 390 interrupt exits, 37712 -> 1324 total (28x)
    assert 0.8 < (
        result.interrupt_exits[False]
        / PAPER_TARGETS["table4_irq_exits_nodeleg"]
    ) < 1.2
    assert result.interrupt_exits[True] < 2 * PAPER_TARGETS[
        "table4_irq_exits_deleg"
    ]
    assert result.reduction_factor() > 15
