"""Table 2: comparison of null RMM call latencies."""

import pytest

from repro.analysis import render_comparison
from repro.experiments import PAPER_TARGETS
from repro.experiments.table2 import run_table2


def test_table2_null_rmm_call_latencies(benchmark, record):
    result = benchmark.pedantic(
        run_table2, kwargs={"iterations": 300}, rounds=1, iterations=1
    )
    text = render_comparison(
        [
            (
                "core-gapped asynchronous (vCPU run calls)",
                result.async_ns.mean,
                PAPER_TARGETS["table2_async_ns"],
            ),
            (
                "core-gapped synchronous (page table update)",
                result.sync_ns.mean,
                PAPER_TARGETS["table2_sync_ns"],
            ),
            (
                "same-core synchronous",
                result.samecore_ns.mean,
                PAPER_TARGETS["table2_samecore_ns"],
            ),
        ],
        title="Table 2: null RMM call latency (ns), measured vs paper",
        unit=" ns",
    )
    record("table2_rpc_latency", text)

    assert result.sync_ns.mean < result.async_ns.mean < result.samecore_ns.mean
    assert result.sync_ns.mean == pytest.approx(
        PAPER_TARGETS["table2_sync_ns"], rel=0.2
    )
    assert result.async_ns.mean == pytest.approx(
        PAPER_TARGETS["table2_async_ns"], rel=0.2
    )
    # ">12.8 us" for the same-core call
    assert result.samecore_ns.mean > PAPER_TARGETS["table2_samecore_ns"]
