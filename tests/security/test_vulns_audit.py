"""Tests for the vulnerability catalog (fig. 3) and the auditor."""

import pytest

from repro.hw import Machine, SocTopology
from repro.isa import HOST_DOMAIN, MONITOR_DOMAIN, realm_domain
from repro.security import (
    CATALOG,
    CoreGapAuditor,
    Kind,
    Scope,
    mitigated_by_core_gapping,
    render_fig3,
    timeline,
    unmitigated,
)
from repro.sim.trace import Tracer


class TestCatalog:
    def test_catalog_covers_thirty_plus_vulns(self):
        assert len(CATALOG) >= 30

    def test_years_span_2018_to_2024(self):
        years = {v.year for v in CATALOG}
        assert min(years) == 2018
        assert max(years) == 2024

    def test_only_crosstalk_and_netspectre_survive(self):
        """The paper's headline claim (S2.2 / fig. 3): every catalogued
        vulnerability except CrossTalk, NetSpectre (and the MWAIT
        side channel) is closed by core gapping."""
        names = {v.name for v in unmitigated()}
        assert "CrossTalk" in names
        assert "NetSpectre" in names
        assert "Spectre" not in names
        assert "Meltdown" not in names
        # everything unmitigated is genuinely cross-core or remote
        for vuln in unmitigated():
            assert vuln.scope in (Scope.CROSS_CORE, Scope.REMOTE)

    def test_ghostrace_mitigated_despite_cross_core(self):
        ghostrace = next(v for v in CATALOG if v.name == "GhostRace")
        assert ghostrace.scope is Scope.CROSS_CORE
        assert ghostrace.needs_shared_kernel
        assert mitigated_by_core_gapping(ghostrace)

    def test_sibling_thread_attacks_mitigated(self):
        for vuln in CATALOG:
            if vuln.scope is Scope.SIBLING_THREAD:
                assert mitigated_by_core_gapping(vuln), vuln.name

    def test_timeline_sorted(self):
        years = [v.year for v in timeline()]
        assert years == sorted(years)

    def test_both_kinds_present(self):
        kinds = {v.kind for v in CATALOG}
        assert kinds == {Kind.TRANSIENT, Kind.ARCH_BUG}

    def test_render_mentions_every_vuln(self):
        text = render_fig3()
        for vuln in CATALOG:
            assert vuln.name in text

    def test_mitigation_ratio_matches_paper(self):
        closed = sum(1 for v in CATALOG if mitigated_by_core_gapping(v))
        # "the vast majority (30+) were not exploitable across cores"
        assert closed >= 30


class TestAuditor:
    def test_clean_trace_passes(self):
        tracer = Tracer()
        tracer.begin_span(0, 0, "host")
        tracer.end_span(100, 0)
        tracer.begin_span(0, 1, "realm:1")
        tracer.end_span(100, 1)
        auditor = CoreGapAuditor()
        assert auditor.audit_schedule(tracer) == []

    def test_time_sliced_sharing_detected(self):
        """Host runs *between* two guest spans: inside the guest's
        occupancy window, i.e. the classic time-slicing leak."""
        tracer = Tracer()
        tracer.begin_span(0, 0, "realm:1")
        tracer.end_span(100, 0)
        tracer.begin_span(100, 0, "host")
        tracer.end_span(200, 0)
        tracer.begin_span(200, 0, "realm:1")
        tracer.end_span(300, 0)
        violations = CoreGapAuditor().audit_schedule(tracer)
        assert len(violations) == 1
        assert violations[0].core == 0

    def test_host_before_guest_lifetime_allowed(self):
        """The host legitimately used the core before it was dedicated
        (S3: the invariant covers first-to-last instruction of the
        vCPU, not all of history)."""
        tracer = Tracer()
        tracer.begin_span(0, 0, "host")
        tracer.end_span(100, 0)
        tracer.begin_span(100, 0, "realm:1")
        tracer.end_span(200, 0)
        assert CoreGapAuditor().audit_schedule(tracer) == []

    def test_host_before_and_after_allowed(self):
        """Hotplug off, realm lifetime, reclaim, hotplug on: clean."""
        tracer = Tracer()
        tracer.begin_span(0, 0, "host")
        tracer.end_span(100, 0)
        tracer.begin_span(100, 0, "realm:1")
        tracer.end_span(200, 0)
        tracer.begin_span(200, 0, "host")
        tracer.end_span(300, 0)
        assert CoreGapAuditor().audit_schedule(tracer) == []

    def test_monitor_sharing_allowed(self):
        tracer = Tracer()
        tracer.begin_span(0, 0, "realm:1")
        tracer.end_span(100, 0)
        tracer.begin_span(100, 0, MONITOR_DOMAIN.name)
        tracer.end_span(200, 0)
        tracer.begin_span(200, 0, "realm:1")
        tracer.end_span(300, 0)
        assert CoreGapAuditor().audit_schedule(tracer) == []

    def test_interleaved_realms_on_one_core_flagged(self):
        """Two realms time-slicing one core: the co-scheduling attack
        the binding enforcement exists to prevent."""
        tracer = Tracer()
        tracer.begin_span(0, 0, "realm:1")
        tracer.end_span(100, 0)
        tracer.begin_span(100, 0, "realm:2")
        tracer.end_span(200, 0)
        tracer.begin_span(200, 0, "realm:1")
        tracer.end_span(300, 0)
        violations = CoreGapAuditor().audit_schedule(tracer)
        assert len(violations) == 1

    def test_tenure_cut_splits_occupancy_window(self):
        """Unbind + scrub ends the realm's tenure: host use between two
        *tenures* of the same realm on the same core is legitimate
        (shrink parks the vCPU, the host reclaims the core, a later
        grow re-dedicates it)."""
        tracer = Tracer()
        tracer.begin_span(0, 0, "realm:1")
        tracer.end_span(100, 0)
        tracer.tenure_cut(100, 0, "realm:1")
        tracer.begin_span(100, 0, "host")
        tracer.end_span(200, 0)
        tracer.begin_span(200, 0, "realm:1")
        tracer.end_span(300, 0)
        assert CoreGapAuditor().audit_schedule(tracer) == []

    def test_tenure_cut_does_not_excuse_sharing_within_a_tenure(self):
        """A cut on another core (or after the fact) changes nothing:
        host time inside one uncut occupancy window stays a violation."""
        tracer = Tracer()
        tracer.begin_span(0, 0, "realm:1")
        tracer.end_span(100, 0)
        tracer.tenure_cut(100, 1, "realm:1")  # different core
        tracer.begin_span(100, 0, "host")
        tracer.end_span(200, 0)
        tracer.begin_span(200, 0, "realm:1")
        tracer.end_span(300, 0)
        violations = CoreGapAuditor().audit_schedule(tracer)
        assert len(violations) == 1

    def test_sequential_realms_clean_after_scrub(self):
        """Realm 2 reuses realm 1's core after destruction: legitimate
        (the release path flushes all microarchitectural state; the
        residency audit checks that side)."""
        tracer = Tracer()
        tracer.begin_span(0, 0, "realm:1")
        tracer.end_span(100, 0)
        tracer.begin_span(100, 0, "realm:2")
        tracer.end_span(200, 0)
        assert CoreGapAuditor().audit_schedule(tracer) == []

    def test_residency_violation_detected(self):
        machine = Machine(SocTopology(name="a", n_cores=2, memory_gib=1))
        core = machine.core(0)
        core.uarch.l1d.access(0x100, realm_domain(1))
        core.uarch.l1d.access(0x200, HOST_DOMAIN)
        violations = CoreGapAuditor().audit_residency(machine)
        assert any(v.structure == "l1d" and v.core == 0 for v in violations)

    def test_residency_clean_when_separated(self):
        machine = Machine(SocTopology(name="a", n_cores=2, memory_gib=1))
        machine.core(0).uarch.l1d.access(0x100, realm_domain(1))
        machine.core(1).uarch.l1d.access(0x200, HOST_DOMAIN)
        assert CoreGapAuditor().audit_residency(machine) == []

    def test_monitor_residency_allowed(self):
        machine = Machine(SocTopology(name="a", n_cores=1, memory_gib=1))
        machine.core(0).uarch.l1d.access(0x100, realm_domain(1))
        machine.core(0).uarch.l1d.access(0x200, MONITOR_DOMAIN)
        assert CoreGapAuditor().audit_residency(machine) == []

    def test_report_summary(self):
        tracer = Tracer()
        tracer.begin_span(0, 0, "realm:1")
        tracer.end_span(10, 0)
        machine = Machine(SocTopology(name="a", n_cores=1, memory_gib=1))
        report = CoreGapAuditor().audit(machine, tracer)
        assert report.clean
        assert "CLEAN" in report.summary()
