"""Unit tests for the side-channel primitive toolbox."""

import pytest

from repro.hw import Machine, SocTopology
from repro.isa import realm_domain
from repro.security.channels import (
    L1_HIT_THRESHOLD_NS,
    btb_inject,
    btb_probe,
    eviction_addresses,
    prime_sets,
    probe_sets,
    store_buffer_leak,
)

ATTACKER = realm_domain(66)
VICTIM = realm_domain(1)


@pytest.fixture
def core():
    machine = Machine(SocTopology(name="c", n_cores=1, memory_gib=1))
    return machine.core(0)


class TestEvictionSets:
    def test_addresses_map_to_requested_set(self, core):
        cache = core.uarch.l1d
        for set_index in (0, 5, cache.geometry.n_sets - 1):
            addrs = eviction_addresses(cache, set_index)
            assert len(addrs) == cache.geometry.ways
            for addr in addrs:
                assert cache.geometry.set_index(addr) == set_index

    def test_addresses_have_distinct_tags(self, core):
        cache = core.uarch.l1d
        addrs = eviction_addresses(cache, 3)
        tags = {cache.geometry.tag(a) for a in addrs}
        assert len(tags) == len(addrs)


class TestPrimeProbePrimitives:
    def test_prime_fills_the_sets(self, core):
        plan = prime_sets(core, ATTACKER, [2, 9])
        for set_index in (2, 9):
            occupancy = core.uarch.l1d.set_occupancy(set_index)
            assert len(occupancy) == core.uarch.l1d.geometry.ways
            assert all(line.domain == ATTACKER for line in occupancy)

    def test_probe_quiet_set_sees_nothing(self, core):
        plan = prime_sets(core, ATTACKER, [4])
        activity = probe_sets(core, ATTACKER, plan)
        assert activity[4] is False

    def test_probe_detects_victim_eviction(self, core):
        plan = prime_sets(core, ATTACKER, [4])
        # victim touches enough lines in set 4 to evict one of ours
        for addr in eviction_addresses(core.uarch.l1d, 4, base=1 << 27)[:1]:
            core.access_memory(addr, VICTIM)
        activity = probe_sets(core, ATTACKER, plan)
        assert activity[4] is True

    def test_threshold_separates_l1_from_l2(self, core):
        # a fresh fill comes from DRAM (slow); a re-access is L1 (fast)
        slow = core.access_memory(0x5000, ATTACKER)
        fast = core.access_memory(0x5000, ATTACKER)
        assert fast < L1_HIT_THRESHOLD_NS < slow


class TestBtbPrimitives:
    def test_inject_then_probe_on_same_core(self, core):
        btb_inject(core, ATTACKER, victim_branch_pc=0x8000,
                   gadget_target=0x666)
        assert btb_probe(core, 0x8000, 0x666)

    def test_probe_untrained_is_false(self, core):
        assert not btb_probe(core, 0x8000, 0x666)


class TestStoreBufferPrimitive:
    def test_leak_requires_foreign_store(self, core):
        core.uarch.store_buffer.push(0x40, 7, ATTACKER)
        # our own store forwarding is not a leak
        assert store_buffer_leak(core, ATTACKER, 0x40) is None
        core.uarch.store_buffer.push(0x48, 9, VICTIM)
        assert store_buffer_leak(core, ATTACKER, 0x48) == 9
