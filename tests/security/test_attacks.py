"""Tests for attack simulations: leaks on shared cores, silence across.

These are the observed-outcome security claims: identical attacker code
recovers the secret when co-located and fails when core-gapped.
"""

import pytest

from repro.hw import Machine, SocTopology
from repro.security import (
    btb_injection_attack,
    cache_covert_channel,
    prime_probe_attack,
    store_buffer_attack,
)
from repro.sim import RngFactory


@pytest.fixture
def machine():
    return Machine(SocTopology(name="sec", n_cores=4, memory_gib=1))


SECRET = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 1, 0, 0, 1, 0, 1] * 4


class TestPrimeProbe:
    def test_same_core_recovers_secret(self, machine):
        result = prime_probe_attack(machine, 0, 0, SECRET)
        assert result.scenario == "shared-core"
        assert result.leaked
        assert result.accuracy == 1.0

    def test_cross_core_recovers_nothing(self, machine):
        result = prime_probe_attack(machine, 0, 1, SECRET)
        assert result.scenario == "core-gapped"
        assert not result.leaked
        # the attacker's probe sees its own lines still resident: every
        # guess degenerates to 0
        assert result.recovered_bits == [0] * len(SECRET)

    def test_accuracy_metric(self, machine):
        result = prime_probe_attack(machine, 0, 1, [1] * 10)
        assert result.accuracy == 0.0


class TestBtbInjection:
    def test_same_core_steers_prediction(self, machine):
        assert btb_injection_attack(machine, 0, 0)

    def test_cross_core_cannot_steer(self, machine):
        assert not btb_injection_attack(machine, 0, 1)


class TestStoreBuffer:
    def test_same_core_forwards_secret(self, machine):
        leaked = store_buffer_attack(machine, 0, 0, secret=0xDEAD)
        assert leaked == 0xDEAD

    def test_cross_core_store_buffer_private(self, machine):
        assert store_buffer_attack(machine, 0, 1, secret=0xDEAD) is None


class TestCovertChannel:
    MESSAGE = [1, 0, 0, 1, 1, 1, 0, 1] * 8

    def test_time_sliced_channel_works(self, machine):
        result = cache_covert_channel(machine, 0, 0, self.MESSAGE)
        assert result.accuracy == 1.0

    def test_core_gapped_channel_silent(self, machine):
        result = cache_covert_channel(machine, 0, 1, self.MESSAGE)
        # receiver sees no evictions: reads all zeros
        assert result.recovered_bits == [0] * len(self.MESSAGE)
        assert not result.leaked
