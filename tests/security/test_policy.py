"""Tests for the isolation-policy layer (repro.hw.policy).

Four contracts:

* **Bit-identity**: resolving the default policy for each mode
  reproduces pre-policy behavior exactly -- pinned against a golden
  sanitizer digest emitted before the policy layer existed, and against
  explicit-policy == derived-policy runs.
* **Mechanics**: the flush policy actually clears ``domains_present()``
  on every structure ``flush_all`` covers, at the switch, and charges
  the per-structure cost model whose switch rows sum to the world-switch
  mitigation term.
* **Leakage ordering**: no defense leaks measurably more than both real
  policies, on every scored axis.
* **Determinism**: the defenses sweep is jobs-independent.
"""

import json
from pathlib import Path

import pytest

from repro.experiments.config import SystemConfig
from repro.hw import Machine, SocTopology
from repro.hw.policy import (
    CoreGapPolicy,
    FlushCostModel,
    FlushOnSwitchPolicy,
    NoDefensePolicy,
    POLICIES,
    resolve_policy,
)
from repro.isa.smc import WorldSwitchCosts
from repro.isa.worlds import realm_domain
from repro.security.policy import leakage_probe, tolerated_residency

GOLDEN = Path(__file__).parent / "golden" / "policy_probe.json"


# ---------------------------------------------------------------------------
# resolution + validation


class TestResolution:
    def test_defaults_per_mode(self):
        assert resolve_policy("gapped").name == "core-gap"
        assert resolve_policy("shared-cvm").name == "flush"
        assert resolve_policy("shared").name == "none"

    def test_explicit_names(self):
        assert resolve_policy("gapped", "core-gap") is POLICIES["core-gap"]
        assert resolve_policy("shared", "flush") is POLICIES["flush"]
        assert resolve_policy("shared-cvm", "none") is POLICIES["none"]

    @pytest.mark.parametrize(
        "mode,policy",
        [
            ("gapped", "flush"),
            ("gapped", "none"),
            ("shared", "core-gap"),
            ("shared-cvm", "core-gap"),
        ],
    )
    def test_illegal_pairs_rejected(self, mode, policy):
        with pytest.raises(ValueError):
            SystemConfig(mode=mode, policy=policy)

    def test_unknown_names_rejected(self):
        with pytest.raises(ValueError):
            resolve_policy("gapped", "quarantine")
        with pytest.raises(ValueError):
            resolve_policy("emulated")

    def test_label_mentions_only_non_default_policy(self):
        assert SystemConfig(mode="gapped", policy="core-gap").label() == "gapped"
        assert (
            SystemConfig(mode="shared", policy="flush").label()
            == "shared+policy=flush"
        )


# ---------------------------------------------------------------------------
# cost model

class TestCosts:
    def test_switch_flush_matches_world_switch_term(self):
        """The per-structure split must sum to the aggregate the smc
        model always charged, or shared-cvm digests drift."""
        assert (
            FlushCostModel().switch_flush_ns()
            == WorldSwitchCosts().mitigation_flush_ns
        )

    def test_flush_policy_round_trip_matches_legacy(self):
        ws = WorldSwitchCosts()
        assert (
            FlushOnSwitchPolicy().world_switch_round_trip_ns(ws)
            == ws.round_trip()
        )

    def test_no_flush_policies_pay_no_flush(self):
        ws = WorldSwitchCosts()
        for policy in (CoreGapPolicy(), NoDefensePolicy()):
            assert policy.switch_flush_ns() == 0
            assert policy.world_switch_round_trip_ns(ws) == ws.round_trip(
                flush=False
            )

    def test_flush_ns_override_on_smc(self):
        ws = WorldSwitchCosts()
        assert ws.one_way(flush_ns=0) == ws.one_way(flush=False)
        assert ws.one_way(flush_ns=ws.mitigation_flush_ns) == ws.one_way()


# ---------------------------------------------------------------------------
# bit-identity with pre-policy behavior


class TestDigestIdentity:
    def test_core_gap_digest_identical_to_pre_policy_golden(self):
        """The sanitizer probe (gapped + shared scenarios) must match the
        digest recorded before the policy layer existed, byte for byte."""
        from repro.lint.sanitizer import RunDigest, diff_digests, run_probe

        golden = RunDigest.from_json(GOLDEN.read_text())
        assert diff_digests(golden, run_probe()) == []

    @pytest.mark.parametrize("mode", ["gapped", "shared", "shared-cvm"])
    def test_explicit_policy_equals_derived(self, mode):
        """Naming the default policy explicitly changes nothing."""
        from repro.experiments.workbench import run_coremark
        from repro.sim.clock import ms

        def run(policy):
            config = SystemConfig(mode=mode, n_cores=4, policy=policy)
            r = run_coremark(config, n_cores_used=4, duration_ns=ms(30))
            return (r.score, sorted(r.exit_counts.items()))

        derived = run(None)
        explicit = run(config_policy_name(mode))
        assert derived == explicit


def config_policy_name(mode):
    return {"gapped": "core-gap", "shared-cvm": "flush", "shared": "none"}[mode]


# ---------------------------------------------------------------------------
# switch-time scrubbing mechanics


def _dirty_core(machine, core_index):
    """Leave two distrusting domains' state in every structure."""
    core = machine.core(core_index)
    a, b = realm_domain(1), realm_domain(2)
    for vmid, domain, base in ((1, a, 1 << 20), (2, b, 1 << 22)):
        core.access_memory(base, domain, write=True)
        core.uarch.tlb.fill(base, base, vmid, domain)
        core.uarch.branch.train(base, base + 64, domain)
    return core, {a, b}


class TestSwitchScrub:
    def test_flush_policy_clears_covered_structures_at_switch(self):
        machine = Machine(SocTopology(name="scrub", n_cores=1, memory_gib=1))
        core, domains = _dirty_core(machine, 0)
        assert domains <= core.uarch.domains_present()
        flushes_before = core.uarch.flush_count
        FlushOnSwitchPolicy().on_switch(core)
        assert core.uarch.flush_count == flushes_before + 1
        # everything flush_all covers is clean; only the L2 may remain
        for name, structure in core.uarch.structures():
            if name == "l2":
                continue
            assert structure.domains_present() == set(), name

    def test_no_defense_scrubs_nothing(self):
        machine = Machine(SocTopology(name="scrub", n_cores=1, memory_gib=1))
        core, domains = _dirty_core(machine, 0)
        NoDefensePolicy().on_switch(core)
        NoDefensePolicy().on_reassignment(core)
        assert domains <= core.uarch.domains_present()
        assert core.uarch.flush_count == 0

    def test_core_gap_reassignment_scrubs_l2_too(self):
        machine = Machine(SocTopology(name="scrub", n_cores=1, memory_gib=1))
        core, _ = _dirty_core(machine, 0)
        CoreGapPolicy().on_switch(core)  # switches are free: no scrub
        assert core.uarch.flush_count == 0
        CoreGapPolicy().on_reassignment(core)
        assert core.uarch.domains_present() == set()


# ---------------------------------------------------------------------------
# leakage ordering


class TestLeakage:
    @pytest.fixture(scope="class")
    def results(self):
        return {
            name: leakage_probe(POLICIES[name], n_bits=48, seed=0)
            for name in ("core-gap", "flush", "none")
        }

    def test_no_defense_leaks(self, results):
        assert results["none"].accuracy == 1.0
        assert results["none"].leaked

    def test_real_defenses_block_the_attack(self, results):
        for name in ("core-gap", "flush"):
            assert results[name].accuracy < 0.95, name
            assert not results[name].leaked, name

    def test_pollution_strictly_ordered(self, results):
        assert (
            results["none"].cross_pollution_ns
            > results["flush"].cross_pollution_ns
            > results["core-gap"].cross_pollution_ns
            == 0
        )

    def test_flush_scrubs_the_l1_but_leaves_the_l2(self, results):
        assert "l1d" in results["flush"].scrubbed_structures
        assert results["flush"].residual_structures == ("l2",)
        assert results["flush"].flushes > 0
        assert results["core-gap"].flushes == 0

    def test_core_gapped_attacker_core_is_clean(self, results):
        assert results["core-gap"].residual_structures == ()
        assert results["core-gap"].cross_pollution_ns == 0

    def test_residue_within_policy_tolerance(self, results):
        for name, result in results.items():
            tolerated = tolerated_residency(POLICIES[name])
            assert set(result.residual_structures) <= tolerated, name


# ---------------------------------------------------------------------------
# sweep determinism


QUICK_SWEEP = dict(
    coremark_cores=4,
    coremark_duration_ns=20_000_000,
    netpipe_sizes=(1024,),
    netpipe_pings=5,
    iozone_records=(4096,),
    iozone_ops=2,
    redis_cores=4,
    redis_requests=200,
    fleet_level=1,
    fleet_duration_ns=30_000_000,
    leakage_bits=16,
)


class TestDefensesSweep:
    def test_jobs_independent(self):
        from repro.experiments.defenses import run_defenses
        from repro.experiments.runner import canonical_digest

        serial = run_defenses(jobs=1, **QUICK_SWEEP)
        parallel = run_defenses(jobs=2, **QUICK_SWEEP)
        assert canonical_digest(serial) == canonical_digest(parallel)

    def test_covers_every_policy_and_workload(self):
        from repro.experiments.defenses import POLICY_MATRIX, defenses_cells

        cells = defenses_cells(**QUICK_SWEEP)
        ids = {c.cell_id for c in cells}
        for policy, _ in POLICY_MATRIX:
            for workload in (
                "coremark", "netpipe", "iozone", "redis", "fleet", "leakage",
            ):
                assert f"defenses/{policy}/{workload}" in ids

    def test_checked_in_measurements_match_schema(self):
        """The committed defenses.json must carry every policy the
        matrix compares (freshness itself is CI's report --check)."""
        path = Path("benchmarks/results/defenses.json")
        payload = json.loads(path.read_text())
        assert payload["sweep"] == "defenses"
        data = payload["data"]
        assert data["policies"] == ["core-gap", "flush", "none"]
        for policy in data["policies"]:
            assert set(data["overhead"][policy]) == {
                "coremark", "netpipe", "iozone", "redis", "fleet",
            }
            assert data["leakage"][policy]["policy"] == policy
