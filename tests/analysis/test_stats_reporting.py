"""Tests for statistics and report rendering."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    Summary,
    mean,
    percentile,
    render_comparison,
    render_series,
    render_table,
    stdev,
    summarize,
)


class TestStats:
    def test_mean(self):
        assert mean([1, 2, 3]) == 2.0
        assert mean([]) == 0.0

    def test_stdev(self):
        assert stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, rel=1e-3)
        assert stdev([5]) == 0.0
        assert stdev([]) == 0.0

    def test_percentile_nearest_rank(self):
        data = list(range(1, 101))
        assert percentile(data, 50) == 50
        assert percentile(data, 95) == 95
        assert percentile(data, 99) == 99
        assert percentile(data, 0) == 1
        assert percentile(data, 100) == 100

    def test_percentile_empty(self):
        assert percentile([], 50) == 0.0

    def test_summarize(self):
        summary = summarize([1.0, 2.0, 3.0, 4.0])
        assert summary.n == 4
        assert summary.mean == 2.5
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0
        assert summary.p50 == 2.0

    def test_summarize_empty(self):
        assert summarize([]).n == 0

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), min_size=1))
    @settings(max_examples=100, deadline=None)
    def test_summary_bounds(self, samples):
        summary = summarize(samples)
        eps = 1e-9 * max(1.0, abs(summary.minimum), abs(summary.maximum))
        assert summary.minimum - eps <= summary.mean <= summary.maximum + eps
        assert summary.minimum <= summary.p50 <= summary.p95 <= summary.p99
        assert summary.p99 <= summary.maximum
        assert summary.stdev >= 0

    @given(
        st.lists(st.floats(min_value=0, max_value=1e6), min_size=2),
        st.floats(min_value=0, max_value=100),
    )
    @settings(max_examples=100, deadline=None)
    def test_percentile_monotone(self, samples, pct):
        low = percentile(samples, pct / 2)
        high = percentile(samples, pct)
        assert low <= high


class TestRendering:
    def test_table_alignment(self):
        text = render_table(["a", "bbbb"], [["xx", 1], ["y", 22]])
        lines = text.splitlines()
        assert len(lines) == 4  # header, rule, 2 rows
        assert all(len(line) <= len(max(lines, key=len)) for line in lines)
        assert "xx" in lines[2]

    def test_table_with_title(self):
        text = render_table(["h"], [["v"]], title="My Table")
        assert text.splitlines()[0] == "My Table"

    def test_series_merges_x_values(self):
        text = render_series(
            "x",
            {"a": [(1, 10.0), (2, 20.0)], "b": [(2, 5.0), (3, 7.0)]},
        )
        lines = text.splitlines()
        assert len(lines) == 5  # header, rule, x=1,2,3
        assert "-" in lines[2]  # b missing at x=1

    def test_comparison_ratio(self):
        text = render_comparison([("metric", 2.0, 4.0)])
        assert "0.50x" in text
