"""Tests for trace recording and reproducible RNG streams."""

from repro.sim import RngFactory, Tracer


class TestTracer:
    def test_span_recording(self):
        tracer = Tracer()
        tracer.begin_span(0, 1, "host")
        tracer.end_span(100, 1)
        assert len(tracer.spans) == 1
        span = tracer.spans[0]
        assert (span.core, span.domain, span.duration) == (1, "host", 100)

    def test_begin_implicitly_closes_previous(self):
        tracer = Tracer()
        tracer.begin_span(0, 1, "host")
        tracer.begin_span(50, 1, "realm:1")
        tracer.end_span(100, 1)
        assert [s.domain for s in tracer.spans] == ["host", "realm:1"]
        assert tracer.spans[0].end == 50

    def test_zero_length_spans_dropped(self):
        tracer = Tracer()
        tracer.begin_span(10, 0, "host")
        tracer.end_span(10, 0)
        assert tracer.spans == []

    def test_close_all(self):
        tracer = Tracer()
        tracer.begin_span(0, 0, "a")
        tracer.begin_span(0, 1, "b")
        tracer.close_all_spans(30)
        assert len(tracer.spans) == 2

    def test_busy_time_filters(self):
        tracer = Tracer()
        tracer.begin_span(0, 0, "a")
        tracer.end_span(10, 0)
        tracer.begin_span(0, 1, "a")
        tracer.end_span(20, 1)
        tracer.begin_span(20, 1, "b")
        tracer.end_span(50, 1)
        assert tracer.busy_time() == 60
        assert tracer.busy_time(core=1) == 50
        assert tracer.busy_time(domain="a") == 30
        assert tracer.busy_time(core=1, domain="b") == 30

    def test_domains_on_core_in_order(self):
        tracer = Tracer()
        for t, domain in [(0, "x"), (10, "y"), (20, "x")]:
            tracer.begin_span(t, 0, domain)
            tracer.end_span(t + 10, 0)
        assert tracer.domains_on_core(0) == ["x", "y"]

    def test_counters_and_samples(self):
        tracer = Tracer()
        tracer.count("exits", 3)
        tracer.count("exits")
        tracer.sample("lat", 5.0)
        tracer.sample("lat", 7.0)
        assert tracer.counters["exits"] == 4
        assert tracer.samples("lat") == [5.0, 7.0]
        assert tracer.samples("missing") == []

    def test_disabled_tracer_keeps_counters_only(self):
        tracer = Tracer(enabled=False)
        tracer.record(0, "ev", core=0)
        assert tracer.counters["ev"] == 1
        assert tracer.records == []


class TestRng:
    def test_same_seed_same_stream(self):
        a = RngFactory(7).stream("x")
        b = RngFactory(7).stream("x")
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)
        ]

    def test_different_names_independent(self):
        factory = RngFactory(7)
        a = factory.stream("x")
        b = factory.stream("y")
        assert [a.random() for _ in range(5)] != [
            b.random() for _ in range(5)
        ]

    def test_stream_cached(self):
        factory = RngFactory(7)
        assert factory.stream("x") is factory.stream("x")

    def test_fork_changes_seed_space(self):
        base = RngFactory(7)
        fork = base.fork("child")
        assert base.stream("x").random() != fork.stream("x").random()
