"""Seed-derivation regression tests: fork/stream key injection.

The original scheme hashed ``f"{seed}:{name}"`` for streams and
``f"{seed}:fork:{name}"`` for forks, so ``fork("x")`` and
``stream("fork:x")`` collided — two supposedly independent consumers
drew identical sequences.  The length-prefixed encoding makes the
``(kind, name)`` -> bytes mapping injective.
"""

from repro.sim.rng import RngFactory, derive_seed


def draws(rng, n=8):
    return [rng.random() for _ in range(n)]


class TestForkStreamCollision:
    def test_fork_and_colliding_stream_differ(self):
        factory = RngFactory(0)
        forked = factory.fork("x")
        colliding = factory.stream("fork:x")
        assert forked.seed != derive_seed(0, "stream", "fork:x")
        assert draws(forked.stream("y")) != draws(colliding)

    def test_fork_seed_not_equal_to_any_stream_seed(self):
        for name in ["x", "fork:x", ":x", "x:", "fork::x"]:
            assert derive_seed(0, "fork", name) != derive_seed(
                0, "stream", name
            )

    def test_separator_injection_is_harmless(self):
        # names that concatenate identically must derive differently
        assert derive_seed(0, "stream", "a:b") != derive_seed(
            0, "stream", "a"
        )
        assert derive_seed(1, "stream", "2:x") != derive_seed(
            12, "stream", ":x"
        )
        assert derive_seed(0, "stream", "ab") != derive_seed(
            0, "stream", "a b"
        )

    def test_derivation_is_stable(self):
        # pin the derivation so refactors cannot silently re-seed every
        # experiment in the repo
        assert derive_seed(0, "stream", "x") == derive_seed(0, "stream", "x")
        a = RngFactory(7).stream("noise").random()
        b = RngFactory(7).stream("noise").random()
        assert a == b


class TestFactorySemantics:
    def test_streams_cached_and_reproducible(self):
        factory = RngFactory(3)
        assert factory.stream("a") is factory.stream("a")
        assert draws(RngFactory(3).stream("a")) == draws(
            RngFactory(3).stream("a")
        )

    def test_forks_are_independent_seed_spaces(self):
        base = RngFactory(3)
        left = base.fork("left")
        right = base.fork("right")
        assert draws(left.stream("x")) != draws(right.stream("x"))
        assert draws(left.stream("x")) != draws(base.stream("x"))

    def test_nested_forks_differ(self):
        base = RngFactory(3)
        assert (
            base.fork("a").fork("b").seed != base.fork("b").fork("a").seed
        )
