"""Regressions for the event-loop fast paths.

Covers the hot-path work on :mod:`repro.sim.engine`: the shared pop
loop (``run``/``run_one`` both police monotonic time), the O(1)
``pending_events`` counter, and heap compaction — cancelled ``AnyOf``
losers must not accumulate without bound.
"""

import pytest

from repro.sim.engine import AnyOf, Delay, Event, SimulationError, Simulator, Wakeup


def test_run_one_raises_on_backwards_time():
    # run() has always policed monotonic time; run_one() shares the same
    # pop loop now and must too
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.now = 50  # simulate a corrupted clock
    with pytest.raises(SimulationError, match="time went backwards"):
        sim.run_one()


def test_run_raises_on_backwards_time():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    sim.now = 50
    with pytest.raises(SimulationError, match="time went backwards"):
        sim.run()


def test_cancelled_anyof_losers_do_not_accumulate():
    # each iteration races a short delay against a very long one; the
    # loser is cancelled but its heap entry can only be dropped lazily.
    # Compaction must keep the heap near the live-timer count instead
    # of letting ~n_iter stale entries pile up.
    sim = Simulator()
    n_iter = 1000

    def racer():
        for _ in range(n_iter):
            wakeup = yield AnyOf([Delay(1), Delay(10**9)])
            assert isinstance(wakeup, Wakeup) and wakeup.index == 0

    sim.spawn(racer())
    sim.run()
    assert sim.pending_events == 0
    # far smaller than n_iter: bounded by the compaction threshold plus
    # the handful of live timers present at any instant
    assert len(sim._heap) <= 2 * Simulator._COMPACT_MIN


def test_compaction_preserves_event_order():
    # force repeated compactions while interleaved live timers remain
    # queued; firing order must be untouched
    sim = Simulator()
    fired = []
    keep = [sim.schedule(100 + i, lambda i=i: fired.append(i)) for i in range(10)]
    for round_ in range(5):
        doomed = [sim.schedule(50, lambda: fired.append("doomed")) for _ in range(40)]
        for t in doomed:
            t.cancel()
    assert sim.pending_events == len(keep)
    sim.run()
    assert fired == list(range(10))


def test_pending_events_tracks_cancel_and_uncancel():
    sim = Simulator()
    timer = sim.schedule(10, lambda: None)
    sim.schedule(20, lambda: None)
    assert sim.pending_events == 2
    timer.cancelled = True
    timer.cancelled = True  # idempotent
    assert sim.pending_events == 1
    timer.cancelled = False  # re-arm before it was popped
    assert sim.pending_events == 2
    sim.run()
    assert sim.pending_events == 0


def test_cancelling_a_fired_timer_does_not_corrupt_counters():
    # an AnyOf winner cancels its whole batch, including the timer that
    # already fired; that must not drive the live counter negative
    sim = Simulator()
    done = []

    def waiter():
        yield AnyOf([Delay(5), Delay(7)])
        done.append(True)

    sim.spawn(waiter())
    sim.run()
    assert done == [True]
    assert sim.pending_events == 0
    assert sim._live == 0 and sim._stale == 0


def test_run_until_done_sees_through_cancelled_timers():
    # only a cancelled timer left in the heap + a process blocked on an
    # event that never fires: that is a deadlock, not progress
    sim = Simulator()
    never = Event("never")

    def blocked():
        yield never

    proc = sim.spawn(blocked())
    sim.run_one()  # start the process; it parks on the event
    timer = sim.schedule(10, lambda: None)
    timer.cancel()
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_done(proc)
