"""Tests for the timeout/deadline/retry primitives (hardening layer)."""

import pytest

from repro.sim import (
    Deadline,
    Event,
    RetryPolicy,
    SimulationError,
    Simulator,
    TIMED_OUT,
    with_timeout,
)


class TestWithTimeout:
    def test_inner_event_wins(self):
        sim = Simulator()
        inner = Event("inner")
        guarded = with_timeout(sim, inner, 1_000)
        sim.schedule(500, lambda: inner.fire("value"))
        sim.run()
        assert guarded.fired
        assert guarded.value == "value"

    def test_timeout_wins(self):
        sim = Simulator()
        inner = Event("inner")
        guarded = with_timeout(sim, inner, 1_000)
        sim.run()
        assert guarded.fired
        assert guarded.value is TIMED_OUT
        assert sim.now == 1_000

    def test_loser_is_cancelled_both_ways(self):
        sim = Simulator()
        # inner wins: the timer must not fire the guarded event again
        inner = Event("inner")
        guarded = with_timeout(sim, inner, 1_000)
        sim.schedule(10, lambda: inner.fire("v"))
        sim.run()
        assert guarded.value == "v"
        # timeout wins: firing the inner event later must not re-fire
        # the guarded event (the waiter was removed)
        sim2 = Simulator()
        inner2 = Event("inner")
        guarded2 = with_timeout(sim2, inner2, 1_000)
        sim2.run()
        assert guarded2.value is TIMED_OUT
        inner2.fire("late")  # no double-fire on guarded2
        assert guarded2.value is TIMED_OUT

    def test_already_fired_event_resolves_immediately(self):
        sim = Simulator()
        inner = Event("inner")
        inner.fire(42)
        guarded = with_timeout(sim, inner, 1_000)
        assert guarded.fired
        assert guarded.value == 42
        sim.run()  # the (never-armed) timer leaves no residue
        assert sim.now == 0

    def test_guarded_waits_leave_no_residue_on_inner(self):
        # repeated timed-out waits against the same long-lived event
        # must not accumulate waiters
        sim = Simulator()
        inner = Event("inner")
        for _ in range(5):
            with_timeout(sim, inner, 100)
        sim.run()
        assert inner._waiters == []

    def test_non_positive_timeout_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError, match="non-positive"):
            with_timeout(sim, Event("e"), 0)

    def test_timed_out_sentinel_repr(self):
        assert repr(TIMED_OUT) == "TIMED_OUT"


class TestDeadline:
    def test_expiry_tracks_clock(self):
        sim = Simulator()
        deadline = Deadline(sim, 500)
        assert not deadline.expired
        assert deadline.remaining_ns() == 500
        sim.schedule(500, lambda: None)
        sim.run()
        assert deadline.expired
        assert deadline.remaining_ns() == 0

    def test_negative_budget_rejected(self):
        with pytest.raises(SimulationError, match="negative"):
            Deadline(Simulator(), -1)


class TestRetryPolicy:
    def test_exponential_backoff_sequence(self):
        policy = RetryPolicy(1_000, max_retries=3)
        assert list(policy.timeouts()) == [1_000, 2_000, 4_000, 8_000]
        assert policy.total_budget_ns() == 15_000

    def test_backoff_cap(self):
        policy = RetryPolicy(1_000, max_retries=4, max_timeout_ns=3_000)
        assert list(policy.timeouts()) == [
            1_000, 2_000, 3_000, 3_000, 3_000,
        ]

    def test_zero_retries_is_single_attempt(self):
        policy = RetryPolicy(7, max_retries=0)
        assert list(policy.timeouts()) == [7]

    def test_invalid_parameters_rejected(self):
        with pytest.raises(SimulationError):
            RetryPolicy(0, max_retries=1)
        with pytest.raises(SimulationError):
            RetryPolicy(10, max_retries=-1)


class TestRetryJitter:
    """Jittered backoff: seeded, stream-owned, default-off.

    The jitter draws must come from the caller's named RngFactory
    stream (``retry:<consumer>``) so schedules replay bit-identically
    and never couple to another consumer's draws (the SEED002
    discipline, exercised at runtime here).
    """

    def test_default_policy_draws_nothing(self):
        from repro.sim.rng import RngFactory

        factory = RngFactory(3)
        stream = factory.stream("retry:probe")
        before = stream.getstate()
        policy = RetryPolicy(1_000, max_retries=3)
        assert list(policy.timeouts()) == [1_000, 2_000, 4_000, 8_000]
        assert stream.getstate() == before  # jitter=0 consumes no draws

    def test_jitter_stretches_within_bound_and_keeps_order_floor(self):
        from repro.sim.rng import RngFactory

        stream = RngFactory(3).stream("retry:probe")
        policy = RetryPolicy(1_000, max_retries=3, jitter=0.5, rng=stream)
        for base, drawn in zip([1_000, 2_000, 4_000, 8_000], policy.timeouts()):
            assert base <= drawn <= int(base * 1.5)
        # worst case: every attempt at maximum stretch
        assert policy.total_budget_ns() == 15_000 + 7_500

    def test_draws_come_from_the_owning_stream_namespace(self):
        from repro.sim.rng import RngFactory

        def schedule(stream_name: str, seed: int = 3):
            stream = RngFactory(seed).stream(stream_name)
            policy = RetryPolicy(
                1_000, max_retries=5, jitter=0.5, rng=stream
            )
            return list(policy.timeouts())

        # same factory seed + same stream name => identical schedule
        assert schedule("retry:kvm-run") == schedule("retry:kvm-run")
        # a different stream name in the same namespace => different
        # draws (streams are independent, not shared)
        assert schedule("retry:kvm-run") != schedule("retry:other")
        # a different root seed => different draws
        assert schedule("retry:kvm-run") != schedule("retry:kvm-run", seed=4)

    def test_jitter_draw_positions_are_stream_local(self):
        """Interleaving a foreign consumer's draws on its *own* stream
        does not perturb the policy's schedule -- ownership is the
        stream, not the factory."""
        from repro.sim.rng import RngFactory

        factory = RngFactory(3)
        policy = RetryPolicy(
            1_000, max_retries=5, jitter=0.5,
            rng=factory.stream("retry:kvm-run"),
        )
        factory.stream("arrivals:t0").random()  # foreign namespace draw
        interleaved = list(policy.timeouts())

        clean = RetryPolicy(
            1_000, max_retries=5, jitter=0.5,
            rng=RngFactory(3).stream("retry:kvm-run"),
        )
        assert interleaved == list(clean.timeouts())

    def test_jitter_validation(self):
        with pytest.raises(SimulationError, match="negative retry jitter"):
            RetryPolicy(1_000, max_retries=1, jitter=-0.1)
        with pytest.raises(SimulationError, match="needs an rng stream"):
            RetryPolicy(1_000, max_retries=1, jitter=0.2)
