"""Unit tests for sync primitives (Notify, Channel, Mutex, semaphore)."""

import pytest

from repro.sim import (
    Channel,
    CountingSemaphore,
    Delay,
    Mutex,
    Notify,
    SimulationError,
    Simulator,
)


class TestNotify:
    def test_signal_wakes_waiter(self):
        sim = Simulator()
        notify = Notify("n")
        log = []

        def waiter():
            yield notify.wait()
            log.append(sim.now)

        sim.spawn(waiter())
        sim.schedule(50, notify.signal)
        sim.run()
        assert log == [50]

    def test_signal_before_wait_is_remembered(self):
        sim = Simulator()
        notify = Notify()
        log = []

        def waiter():
            yield Delay(100)
            yield notify.wait()  # signal arrived at t=10, already pending
            log.append(sim.now)

        sim.spawn(waiter())
        sim.schedule(10, notify.signal)
        sim.run()
        assert log == [100]

    def test_each_wait_consumes_one_signal(self):
        sim = Simulator()
        notify = Notify()
        notify.signal()
        notify.signal()
        log = []

        def waiter():
            yield notify.wait()
            log.append("first")
            yield notify.wait()
            log.append("second")
            yield notify.wait()  # third blocks until t=99
            log.append(sim.now)

        sim.spawn(waiter())
        sim.schedule(99, notify.signal)
        sim.run()
        assert log == ["first", "second", 99]

    def test_clear_drops_pending(self):
        notify = Notify()
        notify.signal()
        assert notify.pending
        notify.clear()
        assert not notify.pending

    def test_signal_count(self):
        notify = Notify()
        for _ in range(3):
            notify.signal()
        assert notify.signal_count == 3


class TestChannel:
    def test_put_then_get(self):
        sim = Simulator()
        chan = Channel("c")
        log = []

        def producer():
            yield Delay(10)
            yield from chan.put("msg")

        def consumer():
            item = yield from chan.get()
            log.append((sim.now, item))

        sim.spawn(consumer())
        sim.spawn(producer())
        sim.run()
        assert log == [(10, "msg")]

    def test_get_blocks_until_put(self):
        sim = Simulator()
        chan = Channel()
        log = []

        def consumer():
            item = yield from chan.get()
            log.append((sim.now, item))

        sim.spawn(consumer())
        sim.schedule(500, lambda: chan.try_put("late"))
        sim.run()
        assert log == [(500, "late")]

    def test_fifo_ordering(self):
        sim = Simulator()
        chan = Channel()
        got = []

        def consumer():
            for _ in range(3):
                item = yield from chan.get()
                got.append(item)

        sim.spawn(consumer())
        for i in range(3):
            chan.try_put(i)
        sim.run()
        assert got == [0, 1, 2]

    def test_capacity_try_put_fails_when_full(self):
        chan = Channel(capacity=2)
        assert chan.try_put(1)
        assert chan.try_put(2)
        assert not chan.try_put(3)
        assert chan.full

    def test_blocking_put_waits_for_space(self):
        sim = Simulator()
        chan = Channel(capacity=1)
        chan.try_put("occupying")
        log = []

        def producer():
            yield from chan.put("second")
            log.append(sim.now)

        def consumer():
            yield Delay(77)
            ok, item = chan.try_get()
            assert ok and item == "occupying"

        sim.spawn(producer())
        sim.spawn(consumer())
        sim.run()
        assert log == [77]

    def test_try_get_empty(self):
        ok, item = Channel().try_get()
        assert not ok and item is None

    def test_peek(self):
        chan = Channel()
        chan.try_put("x")
        assert chan.peek() == "x"
        assert len(chan) == 1

    def test_peek_empty_raises(self):
        with pytest.raises(SimulationError):
            Channel().peek()

    def test_counters(self):
        sim = Simulator()
        chan = Channel()
        chan.try_put(1)
        chan.try_put(2)

        def consumer():
            yield from chan.get()
            yield from chan.get()

        sim.spawn(consumer())
        sim.run()
        assert chan.put_count == 2
        assert chan.get_count == 2


class TestMutex:
    def test_mutual_exclusion(self):
        sim = Simulator()
        mutex = Mutex()
        log = []

        def critical(name, hold):
            yield from mutex.acquire()
            log.append((name, "in", sim.now))
            yield Delay(hold)
            log.append((name, "out", sim.now))
            mutex.release()

        sim.spawn(critical("a", 100))
        sim.spawn(critical("b", 50))
        sim.run()
        assert log == [
            ("a", "in", 0),
            ("a", "out", 100),
            ("b", "in", 100),
            ("b", "out", 150),
        ]

    def test_release_unlocked_raises(self):
        with pytest.raises(SimulationError):
            Mutex().release()

    def test_fifo_handoff(self):
        sim = Simulator()
        mutex = Mutex()
        order = []

        def worker(i):
            yield from mutex.acquire()
            order.append(i)
            yield Delay(1)
            mutex.release()

        for i in range(4):
            sim.spawn(worker(i))
        sim.run()
        assert order == [0, 1, 2, 3]


class TestSemaphore:
    def test_limits_concurrency(self):
        sim = Simulator()
        sem = CountingSemaphore(2)
        active = []
        max_active = []

        def worker(i):
            yield from sem.acquire()
            active.append(i)
            max_active.append(len(active))
            yield Delay(10)
            active.remove(i)
            sem.release()

        for i in range(6):
            sim.spawn(worker(i))
        sim.run()
        assert max(max_active) == 2

    def test_negative_initial_rejected(self):
        with pytest.raises(SimulationError):
            CountingSemaphore(-1)

    def test_release_wakes_waiter_directly(self):
        sim = Simulator()
        sem = CountingSemaphore(0)
        log = []

        def waiter():
            yield from sem.acquire()
            log.append(sim.now)

        sim.spawn(waiter())
        sim.schedule(42, sem.release)
        sim.run()
        assert log == [42]
        assert sem.count == 0
