"""Edge-case tests for the engine: AnyOf over processes, cancellation,
re-entrancy, and the no-synchronous-recursion guarantee."""

import pytest

from repro.sim import (
    AnyOf,
    Delay,
    Event,
    Notify,
    SimulationError,
    Simulator,
)


class TestAnyOfProcesses:
    def test_anyof_with_child_process(self):
        sim = Simulator()
        log = []

        def child():
            yield Delay(30)
            return "child-val"

        def parent():
            proc = sim.spawn(child(), name="c")
            wakeup = yield AnyOf([Delay(100), proc])
            log.append((sim.now, wakeup.index, wakeup.value))

        sim.spawn(parent())
        sim.run()
        assert log == [(30, 1, "child-val")]

    def test_anyof_delay_beats_slow_child(self):
        sim = Simulator()
        log = []

        def child():
            yield Delay(500)

        def parent():
            proc = sim.spawn(child(), name="c")
            wakeup = yield AnyOf([Delay(100), proc])
            log.append((sim.now, wakeup.index))

        sim.spawn(parent())
        sim.run()
        assert log == [(100, 0)]


class TestNoSynchronousRecursion:
    def test_loop_on_prefired_sources_does_not_blow_the_stack(self):
        """A process repeatedly waiting on already-fired conditions must
        be resumed through the event loop, not by recursion (this was a
        real crash under Redis-scale interrupt storms)."""
        sim = Simulator()
        iterations = []

        def spinner():
            for i in range(5000):  # far beyond the recursion limit
                event = Event()
                event.fire(i)
                wakeup = yield AnyOf([event, Delay(10)])
                iterations.append(wakeup.value)

        sim.spawn(spinner())
        sim.run()
        assert len(iterations) == 5000

    def test_zero_time_progress_is_still_ordered(self):
        sim = Simulator()
        order = []

        def a():
            event = Event()
            event.fire("x")
            yield AnyOf([event])
            order.append("a")

        def b():
            yield Delay(0)
            order.append("b")

        sim.spawn(a())
        sim.spawn(b())
        sim.run()
        assert sim.now == 0
        assert set(order) == {"a", "b"}


class TestNotifyCancellation:
    def test_cancel_unfired_wait_removes_waiter(self):
        notify = Notify()
        event = notify.wait()
        notify.cancel_wait(event)
        notify.signal()
        assert not event.fired
        assert notify.pending  # the signal went to the pool instead

    def test_cancel_fired_wait_returns_signal(self):
        notify = Notify()
        notify.signal()
        event = notify.wait()
        assert event.fired
        notify.cancel_wait(event)  # we never consumed it
        assert notify.pending
        # a later waiter gets it back
        assert notify.wait().fired

    def test_cancel_twice_harmless(self):
        notify = Notify()
        event = notify.wait()
        notify.cancel_wait(event)
        notify.cancel_wait(event)
        assert not notify.pending


class TestRunControl:
    def test_run_until_does_not_execute_future_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(100, lambda: fired.append(100))
        sim.schedule(200, lambda: fired.append(200))
        sim.run(until=150)
        assert fired == [100]
        assert sim.now == 150
        sim.run()
        assert fired == [100, 200]

    def test_cancelled_timers_skipped(self):
        sim = Simulator()
        fired = []
        timer = sim.schedule(50, lambda: fired.append("no"))
        sim.schedule(60, lambda: fired.append("yes"))
        timer.cancelled = True
        sim.run()
        assert fired == ["yes"]

    def test_spawned_during_run(self):
        sim = Simulator()
        log = []

        def child():
            yield Delay(10)
            log.append(("child", sim.now))

        def parent():
            yield Delay(5)
            sim.spawn(child())
            log.append(("parent", sim.now))

        sim.spawn(parent())
        sim.run()
        assert log == [("parent", 5), ("child", 15)]
