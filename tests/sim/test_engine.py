"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim import AnyOf, Delay, Event, SimulationError, Simulator, Wakeup


def test_delay_advances_clock():
    sim = Simulator()
    log = []

    def proc():
        yield Delay(100)
        log.append(sim.now)
        yield Delay(250)
        log.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert log == [100, 350]


def test_zero_delay_runs_at_current_time():
    sim = Simulator()
    log = []

    def proc():
        yield Delay(0)
        log.append(sim.now)

    sim.spawn(proc())
    sim.run()
    assert log == [0]


def test_negative_delay_rejected():
    with pytest.raises(SimulationError):
        Delay(-1)


def test_event_wait_and_fire():
    sim = Simulator()
    event = Event("go")
    log = []

    def waiter():
        value = yield event
        log.append((sim.now, value))

    def firer():
        yield Delay(500)
        event.fire("payload")

    sim.spawn(waiter())
    sim.spawn(firer())
    sim.run()
    assert log == [(500, "payload")]


def test_wait_on_already_fired_event_resumes_immediately():
    sim = Simulator()
    event = Event()
    event.fire(42)
    log = []

    def waiter():
        yield Delay(10)
        value = yield event
        log.append((sim.now, value))

    sim.spawn(waiter())
    sim.run()
    assert log == [(10, 42)]


def test_event_cannot_fire_twice():
    event = Event()
    event.fire()
    with pytest.raises(SimulationError):
        event.fire()


def test_multiple_waiters_all_wake():
    sim = Simulator()
    event = Event()
    woken = []

    def waiter(i):
        yield event
        woken.append(i)

    for i in range(5):
        sim.spawn(waiter(i))
    sim.schedule(10, lambda: event.fire())
    sim.run()
    assert sorted(woken) == [0, 1, 2, 3, 4]


def test_anyof_delay_wins():
    sim = Simulator()
    event = Event()
    log = []

    def proc():
        wakeup = yield AnyOf([Delay(100), event])
        log.append((sim.now, wakeup.index))

    sim.spawn(proc())
    sim.schedule(200, lambda: event.fire())
    sim.run()
    assert log == [(100, 0)]


def test_anyof_event_wins_and_cancels_delay():
    sim = Simulator()
    event = Event()
    log = []

    def proc():
        wakeup = yield AnyOf([Delay(1000), event])
        log.append((sim.now, wakeup.index, wakeup.value))

    sim.spawn(proc())
    sim.schedule(30, lambda: event.fire("irq"))
    end = None

    sim.run()
    end = sim.now
    assert log == [(30, 1, "irq")]
    # the losing 1000ns delay must not hold the clock open
    assert end == 30


def test_anyof_returns_wakeup_with_source():
    sim = Simulator()
    event = Event("e")
    results = []

    def proc():
        wakeup = yield AnyOf([event, Delay(5)])
        results.append(wakeup)

    sim.spawn(proc())
    sim.run()
    assert isinstance(results[0], Wakeup)
    assert results[0].index == 1


def test_anyof_empty_rejected():
    with pytest.raises(SimulationError):
        AnyOf([])


def test_anyof_bad_source_rejected():
    with pytest.raises(SimulationError):
        AnyOf([42])


def test_process_return_value_propagates_to_parent():
    sim = Simulator()
    results = []

    def child():
        yield Delay(10)
        return "child-result"

    def parent():
        proc = sim.spawn(child(), name="child")
        value = yield proc
        results.append((sim.now, value))

    sim.spawn(parent())
    sim.run()
    assert results == [(10, "child-result")]


def test_yield_from_composition():
    sim = Simulator()
    log = []

    def inner(n):
        yield Delay(n)
        return n * 2

    def outer():
        a = yield from inner(10)
        b = yield from inner(20)
        log.append((sim.now, a + b))

    sim.spawn(outer())
    sim.run()
    assert log == [(30, 60)]


def test_child_exception_propagates_to_waiting_parent():
    sim = Simulator()
    caught = []

    def child():
        yield Delay(1)
        raise ValueError("boom")

    def parent():
        proc = sim.spawn(child(), name="child")
        try:
            yield proc
        except ValueError as exc:
            caught.append(str(exc))

    sim.spawn(parent())
    sim.run()
    assert caught == ["boom"]


def test_unobserved_process_exception_raises_from_run():
    sim = Simulator()

    def bad():
        yield Delay(1)
        raise RuntimeError("unhandled")

    sim.spawn(bad())
    with pytest.raises(RuntimeError, match="unhandled"):
        sim.run()


def test_run_until_bounded_time():
    sim = Simulator()
    log = []

    def ticker():
        while True:
            yield Delay(100)
            log.append(sim.now)

    sim.spawn(ticker())
    sim.run(until=450)
    assert log == [100, 200, 300, 400]
    assert sim.now == 450


def test_run_until_done_returns_result():
    sim = Simulator()

    def proc():
        yield Delay(7)
        return "ok"

    p = sim.spawn(proc())
    assert sim.run_until_done(p) == "ok"


def test_run_until_done_detects_deadlock():
    sim = Simulator()
    event = Event()  # never fired

    def proc():
        yield event

    p = sim.spawn(proc())
    with pytest.raises(SimulationError, match="deadlock"):
        sim.run_until_done(p)


def test_simultaneous_events_fifo_order():
    sim = Simulator()
    order = []

    def proc(i):
        yield Delay(100)
        order.append(i)

    for i in range(10):
        sim.spawn(proc(i))
    sim.run()
    assert order == list(range(10))


def test_determinism_same_structure_same_trace():
    def build_and_run():
        sim = Simulator()
        log = []

        def a():
            for _ in range(3):
                yield Delay(7)
                log.append(("a", sim.now))

        def b():
            for _ in range(2):
                yield Delay(11)
                log.append(("b", sim.now))

        sim.spawn(a())
        sim.spawn(b())
        sim.run()
        return log

    assert build_and_run() == build_and_run()


def test_pending_events_counts_live_timers():
    sim = Simulator()
    sim.schedule(10, lambda: None)
    timer = sim.schedule(20, lambda: None)
    assert sim.pending_events == 2
    timer.cancelled = True
    assert sim.pending_events == 1
