"""Restore is bit-identical: the ISSUE's two acceptance digests.

Two end-to-end equivalences, both pinned through the sanitizer digest
machinery (trace records + spans + counters, the exact fields the
sanitizer hashes):

* a **fig6 cell** (CoreMark on a gapped system): checkpoint mid-run,
  restore, continue -- the final trace digest equals the uninterrupted
  run's;
* a **multi-tenant fleet scenario**: a supervised (checkpointing)
  fault-free serving run equals the plain ``run_server`` path.
"""

import pytest

from repro.experiments.config import SystemConfig
from repro.experiments.system import System
from repro.fleet import (
    RecoveryPolicy,
    ScenarioSpec,
    boot_server,
    place,
    redis_tenant,
    run_server,
    run_server_with_recovery,
    uniform_rack,
)
from repro.guest.vm import GuestVm
from repro.guest.workloads import CoremarkStats, coremark_workload_factory
from repro.lint.sanitizer import RunDigest
from repro.sim.clock import ms
from repro.snap import Recipe, SnapshotDriftError, restore, snapshot


def trace_digest(system: System) -> RunDigest:
    tracer = system.tracer
    return RunDigest(
        records=[
            f"{r.time}|{r.kind}|{r.core}|{r.domain}|{r.detail}"
            for r in tracer.records
        ],
        spans=[
            f"{s.core}|{s.domain}|{s.start}|{s.end}" for s in tracer.spans
        ],
        counters={k: int(v) for k, v in sorted(tracer.counters.items())},
        metrics={"end_ns": system.sim.now},
    )


def build_fig6_cell() -> System:
    """One small fig6 cell: gapped CoreMark, deterministic in the seed."""
    config = SystemConfig(
        mode="gapped", n_cores=4, seed=7, trace_schedules=True
    )
    system = System(config)
    stats = CoremarkStats()
    vm = GuestVm("coremark0", 2, coremark_workload_factory(stats))
    kvm = system.launch(vm)
    system.start(kvm)
    return system


FIG6_RECIPE = Recipe(build=build_fig6_cell)


class TestFig6CellRestore:
    def test_restore_then_continue_matches_uninterrupted(self):
        # uninterrupted reference
        reference = build_fig6_cell()
        reference.run_for(ms(5))
        reference.finish()

        # checkpointed run: snapshot at 3 ms, restore, continue to 5 ms
        live = build_fig6_cell()
        live.run_for(ms(3))
        checkpoint = snapshot(live, recipe=FIG6_RECIPE)
        restored = restore(checkpoint)  # verified bit-identical
        assert restored is not live
        assert restored.sim.now == checkpoint.taken_at_ns
        restored.run_for(ms(2))
        restored.finish()

        assert trace_digest(restored) == trace_digest(reference)
        assert restored.state_digest() == reference.state_digest()

    def test_checkpointing_run_is_digest_transparent(self):
        """Snapshots along the way never move the final digest."""
        plain = build_fig6_cell()
        plain.run_for(ms(4))
        plain.finish()

        watched = build_fig6_cell()
        for _ in range(4):
            watched.run_for(ms(1))
            snapshot(watched, recipe=FIG6_RECIPE)
        watched.finish()
        assert trace_digest(watched) == trace_digest(plain)

    def test_drift_is_detected_not_silent(self):
        """A recipe that rebuilds a *different* system must fail the
        restore verification, naming the diverging fields."""
        live = build_fig6_cell()
        live.run_for(ms(2))

        def wrong_build():
            config = SystemConfig(
                mode="gapped", n_cores=4, seed=8, trace_schedules=True
            )
            system = System(config)
            stats = CoremarkStats()
            vm = GuestVm("coremark0", 2, coremark_workload_factory(stats))
            system.start(system.launch(vm))
            return system

        snap = snapshot(live, recipe=Recipe(build=wrong_build))
        with pytest.raises(SnapshotDriftError) as err:
            restore(snap)
        assert err.value.divergences


def fleet_spec() -> ScenarioSpec:
    template = SystemConfig(
        mode="gapped", n_cores=6, n_host_cores=2, seed=0, trace_schedules=True
    )
    return ScenarioSpec(
        servers=uniform_rack(1, template),
        tenants=(
            redis_tenant("t0", 2, rate_rps=20000.0),
            redis_tenant("t1", 2, rate_rps=12000.0),
        ),
        duration_ns=ms(10),
        drain_ns=ms(4),
    )


class TestFleetScenarioRestore:
    def test_supervised_run_matches_plain_run(self):
        """Multi-tenant scenario: checkpoint-period chunking + snapshots
        (the supervisor with no fault plan) is digest-identical to the
        one-shot serving path, tenant results included."""
        spec = fleet_spec()
        placement = place(spec)

        server = boot_server(spec, placement, 0)
        plain_results = run_server(server, spec)
        plain_digest = trace_digest(server.system)

        report = run_server_with_recovery(
            spec, placement, 0, RecoveryPolicy(checkpoint_period_ns=ms(3))
        )
        assert report.checkpoints >= 3
        assert report.restores == []
        assert report.tenants == plain_results
        assert trace_digest(report.server.system) == plain_digest
