"""Canonical capture: deterministic, read-only, drift-detecting.

The capture layer is the witness half of the snapshot design -- these
tests pin its canonicalization rules (the JSON tree two equal states
produce must be byte-equal), that capturing never perturbs the run,
and that the format round-trips through JSON with version checking.
"""

import random

import pytest

from repro.experiments.config import SystemConfig
from repro.experiments.system import System
from repro.guest.vm import GuestVm
from repro.guest.workloads import CoremarkStats, coremark_workload_factory
from repro.sim.clock import ms
from repro.snap import (
    SNAP_FIELDS,
    Snapshot,
    SnapshotError,
    canon,
    capture_digest,
    capture_system,
    diff_captures,
    registry_digest,
    snapshot,
)


def small_system(seed: int = 7) -> System:
    config = SystemConfig(
        mode="gapped", n_cores=4, seed=seed, trace_schedules=True
    )
    system = System(config)
    stats = CoremarkStats()
    vm = GuestVm("coremark0", 2, coremark_workload_factory(stats))
    kvm = system.launch(vm)
    system.start(kvm)
    return system


class TestCanon:
    def test_scalars_pass_through(self):
        assert canon(None) is None
        assert canon(True) is True
        assert canon(42) == 42
        assert canon("x") == "x"

    def test_floats_via_repr(self):
        assert canon(0.1) == f"f:{0.1!r}"

    def test_dicts_sorted_sets_canonical(self):
        assert canon({"b": 1, "a": 2}) == {"a": 2, "b": 1}
        assert canon({3, 1, 2}) == [1, 2, 3]

    def test_rng_state_position_sensitive(self):
        a, b = random.Random(1), random.Random(1)
        assert canon(a) == canon(b)
        b.random()
        assert canon(a) != canon(b)

    def test_generator_descriptor_tracks_suspension(self):
        def gen():
            yield 1
            yield 2

        g = gen()
        before = canon(g)
        next(g)
        after = canon(g)
        assert before.startswith("gen:") and before != after

    def test_cycles_become_refs(self):
        # System.machine.cores[i].machine is a cycle; capture must be a tree
        system = small_system()
        capture = capture_system(system)
        assert capture["system"]["__class__"] == "System"


class TestCaptureDeterminism:
    def test_same_seed_same_digest(self):
        a, b = small_system(), small_system()
        a.run_for(ms(2))
        b.run_for(ms(2))
        assert a.state_digest() == b.state_digest()

    def test_different_seed_different_digest(self):
        a, b = small_system(seed=7), small_system(seed=8)
        a.run_for(ms(2))
        b.run_for(ms(2))
        assert a.state_digest() != b.state_digest()

    def test_capture_is_read_only(self):
        """A run that captures at every step stays digest-identical to
        one that never captures."""
        a, b = small_system(), small_system()
        for _ in range(4):
            a.run_for(ms(1))
            capture_system(a)  # witness only; must not perturb
        b.run_for(ms(4))
        assert a.state_digest() == b.state_digest()

    def test_state_digest_moves_with_time(self):
        system = small_system()
        before = system.state_digest()
        system.run_for(ms(1))
        assert system.state_digest() != before


class TestDiffAndDrift:
    def test_diff_names_diverging_fields(self):
        a, b = small_system(), small_system()
        a.run_for(ms(1))
        b.run_for(ms(2))
        diffs = diff_captures(capture_system(a), capture_system(b))
        assert diffs
        assert any("now" in d for d in diffs)

    def test_diff_empty_for_equal_states(self):
        a, b = small_system(), small_system()
        a.run_for(ms(1))
        b.run_for(ms(1))
        assert diff_captures(capture_system(a), capture_system(b)) == []


class TestSnapshotFormat:
    def test_json_roundtrip(self):
        system = small_system()
        system.run_for(ms(1))
        snap = snapshot(system, label="t1")
        back = Snapshot.from_json(snap.to_json())
        assert back.digest == snap.digest
        assert back.taken_at_ns == snap.taken_at_ns
        assert back.capture == snap.capture
        assert back.recipe is None

    def test_version_mismatch_refused(self):
        payload = '{"version": 999, "label": "x", "taken_at_ns": 0, "digest": "d", "capture": {}}'
        with pytest.raises(SnapshotError):
            Snapshot.from_json(payload)

    def test_garbage_payload_refused(self):
        with pytest.raises(SnapshotError):
            Snapshot.from_json("{not json")

    def test_restore_without_recipe_refused(self):
        from repro.snap import restore

        system = small_system()
        snap = snapshot(system)
        with pytest.raises(SnapshotError):
            restore(snap)


class TestRegistry:
    def test_registry_digest_stable_and_sensitive(self):
        assert registry_digest() == registry_digest()
        assert len(registry_digest()) == 16

    def test_core_classes_registered(self):
        for key in (
            "repro.sim.engine:Simulator",
            "repro.hw.machine:Machine",
            "repro.rmm.monitor:Rmm",
            "repro.host.kernel:HostKernel",
            "repro.rmm.core_gap:CoreGapEngine",
            "repro.experiments.system:System",
            "repro.fleet.traffic:OpenLoopClient",
            "repro.faults.injector:FaultInjector",
        ):
            assert key in SNAP_FIELDS, key

    def test_digest_covers_capture_content(self):
        system = small_system()
        capture = capture_system(system)
        digest = capture_digest(capture)
        capture["system"]["_next_spi"] = -1
        assert capture_digest(capture) != digest
