"""``fork_map``: one booted system, many scenario variants, O(1) each.

The fork path exists because re-executing a boot per variant is the
expensive part of a sweep; ``os.fork`` clones the booted state for
free and each child diverges independently.  Digest equivalence
against a from-scratch run is the correctness bar.
"""

import pytest

from repro.experiments.config import SystemConfig
from repro.experiments.system import System
from repro.guest.vm import GuestVm
from repro.guest.workloads import CoremarkStats, coremark_workload_factory
from repro.sim.clock import ms
from repro.snap import ForkError, can_fork, fork_map

pytestmark = pytest.mark.skipif(
    not can_fork(), reason="os.fork unavailable on this platform"
)


def booted_system() -> System:
    config = SystemConfig(
        mode="gapped", n_cores=4, seed=7, trace_schedules=True
    )
    system = System(config)
    stats = CoremarkStats()
    vm = GuestVm("coremark0", 2, coremark_workload_factory(stats))
    system.start(system.launch(vm))
    return system


class TestForkMap:
    def test_forked_variants_match_from_scratch_runs(self):
        system = booted_system()

        def run_variant(duration_ns: int) -> str:
            system.run_for(duration_ns)
            return system.state_digest()

        digests = fork_map([ms(2), ms(3)], run_variant)

        for duration, forked in zip([ms(2), ms(3)], digests):
            scratch = booted_system()
            scratch.run_for(duration)
            assert forked == scratch.state_digest()

    def test_parent_state_untouched_by_children(self):
        system = booted_system()
        before = system.state_digest()
        fork_map([ms(1), ms(2)], lambda d: (system.run_for(d), None)[1])
        assert system.state_digest() == before

    def test_child_exception_surfaces_as_fork_error(self):
        def explode(variant):
            raise ValueError(f"variant {variant} is broken")

        with pytest.raises(ForkError, match="is broken"):
            fork_map([1], explode)

    def test_results_ship_back_pickled(self):
        assert fork_map([1, 2, 3], lambda v: v * 10) == [10, 20, 30]
