"""Tests for worlds, domains, SMC costs, and Table 1 terminology."""

import pytest

from repro.isa import (
    HOST_DOMAIN,
    IDLE_DOMAIN,
    MONITOR_DOMAIN,
    ROOT_DOMAIN,
    SmcCall,
    SmcFunction,
    World,
    WorldSwitchCosts,
    crossing_needs_flush,
    realm_domain,
    render_table1,
)
from repro.isa.terminology import TERMINOLOGY, lookup, unified_concepts


class TestDomains:
    def test_host_distrusts_realm(self):
        realm = realm_domain(1)
        assert HOST_DOMAIN.distrusts(realm)
        assert realm.distrusts(HOST_DOMAIN)

    def test_realms_distrust_each_other(self):
        assert realm_domain(1).distrusts(realm_domain(2))

    def test_domain_trusts_itself(self):
        assert not HOST_DOMAIN.distrusts(HOST_DOMAIN)
        assert not realm_domain(3).distrusts(realm_domain(3))

    def test_monitor_trusted_by_all(self):
        assert not MONITOR_DOMAIN.distrusts(HOST_DOMAIN)
        assert not HOST_DOMAIN.distrusts(MONITOR_DOMAIN)
        assert not realm_domain(1).distrusts(MONITOR_DOMAIN)
        assert not ROOT_DOMAIN.distrusts(realm_domain(1))

    def test_idle_is_benign(self):
        assert not IDLE_DOMAIN.distrusts(realm_domain(1))
        assert not realm_domain(1).distrusts(IDLE_DOMAIN)

    def test_realm_domain_identity(self):
        assert realm_domain(5) == realm_domain(5)
        assert realm_domain(5) != realm_domain(6)
        assert realm_domain(5).is_realm
        assert not MONITOR_DOMAIN.is_realm
        assert not HOST_DOMAIN.is_realm


class TestSmcCosts:
    def test_round_trip_is_double_one_way(self):
        costs = WorldSwitchCosts()
        assert costs.round_trip() == 2 * costs.one_way()

    def test_mitigation_flush_dominates(self):
        costs = WorldSwitchCosts()
        assert costs.mitigation_flush_ns > costs.one_way(flush=False)

    def test_unflushed_switch_is_cheaper(self):
        costs = WorldSwitchCosts()
        assert costs.one_way(flush=False) < costs.one_way(flush=True)

    def test_null_el3_call_exceeds_paper_floor(self):
        # Table 2: a same-core null call takes >12.8 us; the EL3 round
        # trip is only *part* of that path, so the full monitor call
        # (two boundary crossings) must exceed it.
        costs = WorldSwitchCosts()
        assert costs.round_trip() >= 12_800 * 0.9

    def test_smc_call_repr(self):
        call = SmcCall(SmcFunction.RMI, 0x150, (1, 2))
        assert "rmi" in str(call)


class TestTrustBoundary:
    @pytest.mark.parametrize(
        "src,dst,expected",
        [
            (World.NORMAL, World.REALM, True),
            (World.REALM, World.NORMAL, True),
            (World.REALM, World.ROOT, False),
            (World.ROOT, World.REALM, False),
            (World.NORMAL, World.ROOT, True),
        ],
    )
    def test_flush_required(self, src, dst, expected):
        assert crossing_needs_flush(src, dst) is expected


class TestTerminology:
    def test_all_three_isas_present(self):
        assert set(TERMINOLOGY) == {"Arm CCA", "Intel TDX", "CoVE"}

    def test_table1_values(self):
        assert lookup("Arm CCA", "Confidential VM") == "realm VM"
        assert lookup("Intel TDX", "Security monitor") == "TDX module"
        assert lookup("CoVE", "Privileged mode") == "confidential"
        assert lookup("Arm CCA", "Security monitor") == "RMM"
        assert lookup("Intel TDX", "Privileged mode") == "SEAM"
        assert lookup("CoVE", "Confidential VM") == "TVM"

    def test_render_contains_all_cells(self):
        table = render_table1()
        for terms in TERMINOLOGY.values():
            assert terms.confidential_vm in table
            assert terms.security_monitor in table
            assert terms.privileged_mode in table

    def test_three_concepts(self):
        assert len(unified_concepts()) == 3
