"""Additional ISA-level tests: flush asymmetry and cost composition."""

import pytest

from repro.isa import World, WorldSwitchCosts, crossing_needs_flush
from repro.isa.smc import TRUST_BOUNDARY


class TestTrustBoundaryTable:
    def test_every_normal_world_edge_flushes(self):
        """Any transition touching the untrusted normal world crosses
        the trust boundary and must flush (the S2.1 cost the core-gapped
        design avoids entirely)."""
        for (src, dst), flush in TRUST_BOUNDARY.items():
            touches_normal = World.NORMAL in (src, dst)
            assert flush == touches_normal, (src, dst)

    def test_realm_root_edges_do_not_flush(self):
        assert not crossing_needs_flush(World.REALM, World.ROOT)
        assert not crossing_needs_flush(World.ROOT, World.REALM)

    def test_unlisted_edges_default_safe(self):
        # secure world is unused by CVMs; unknown edges don't flush in
        # the model (they never occur on the simulated paths)
        assert not crossing_needs_flush(World.SECURE, World.SECURE)


class TestWorldSwitchComposition:
    def test_flushless_round_trip_is_cheap(self):
        costs = WorldSwitchCosts()
        # within the guest TCB (realm <-> root) no mitigation flushing:
        # an order of magnitude cheaper than a trust-boundary crossing
        assert costs.round_trip(flush=False) * 4 < costs.round_trip(flush=True)

    def test_component_sum(self):
        costs = WorldSwitchCosts(
            context_save_ns=1,
            context_restore_ns=2,
            el3_dispatch_ns=3,
            mitigation_flush_ns=100,
            world_reconfig_ns=4,
        )
        assert costs.one_way(flush=False) == 10
        assert costs.one_way(flush=True) == 110
        assert costs.round_trip() == 220
