"""Determinism under fault injection (invariant #6, hardened paths).

Two chaos runs with the same (scenario, plan, seed) must be
bit-identical -- traces, spans, counters, injections, metrics -- because
every fault decision draws from seeded rng streams and every hardening
path (watchdog, retries, timeouts) is driven by the simulated clock.
Reuses the canonical digest machinery from ``repro.lint.sanitizer``.
"""

import pytest

from repro.experiments.chaos import default_fault_plans, run_chaos_case
from repro.lint.sanitizer import RunDigest, diff_digests

PLANS = {plan.name: plan for plan in default_fault_plans()}


def _digest(outcome) -> RunDigest:
    tracer = outcome.system.tracer
    records = [
        f"{r.time}|{r.kind}|{r.core}|{r.domain}|{r.detail}"
        for r in tracer.records
    ]
    spans = [
        f"{s.core}|{s.domain}|{s.start}|{s.end}" for s in tracer.spans
    ]
    counters = {k: int(v) for k, v in sorted(tracer.counters.items())}
    metrics = {
        "status": outcome.status,
        "detail": outcome.detail,
        "host_errors": outcome.host_errors,
        "injections": dict(sorted(outcome.injections.items())),
        "recoveries": dict(sorted(outcome.recoveries.items())),
        "duration_ns": outcome.duration_ns,
        "end_ns": outcome.system.sim.now,
    }
    return RunDigest(records, spans, counters, metrics)


@pytest.mark.parametrize(
    ("scenario", "plan_name"),
    [
        ("coremark", "drop-exit-ipi"),
        ("coremark", "dead-core"),
        ("netpipe", "jitter-ipi"),
    ],
)
def test_same_seed_chaos_runs_are_bit_identical(scenario, plan_name):
    first = _digest(run_chaos_case(scenario, PLANS[plan_name], seed=11))
    second = _digest(run_chaos_case(scenario, PLANS[plan_name], seed=11))
    assert diff_digests(first, second) == []


def test_different_seeds_diverge():
    # the fault plan is probabilistic: a different seed must actually
    # change the injected sequence (guards against an accidentally
    # constant rng wiring that would make the identity test vacuous)
    plan = PLANS["drop-exit-ipi"]
    a = _digest(run_chaos_case("netpipe", plan, seed=1))
    b = _digest(run_chaos_case("netpipe", plan, seed=2))
    assert diff_digests(a, b) != []
