"""Determinism under fault injection (invariant #6, hardened paths).

Two chaos runs with the same (scenario, plan, seed) must be
bit-identical -- traces, spans, counters, injections, metrics -- because
every fault decision draws from seeded rng streams and every hardening
path (watchdog, retries, timeouts) is driven by the simulated clock.
Reuses the canonical digest machinery from ``repro.lint.sanitizer``.
"""

import pytest

from repro.experiments.chaos import (
    default_fault_plans,
    digest_chaos_outcome as _digest,
    run_chaos_case,
)
from repro.lint.sanitizer import diff_digests

PLANS = {plan.name: plan for plan in default_fault_plans()}


@pytest.mark.parametrize(
    ("scenario", "plan_name"),
    [
        ("coremark", "drop-exit-ipi"),
        ("coremark", "dead-core"),
        ("netpipe", "jitter-ipi"),
    ],
)
def test_same_seed_chaos_runs_are_bit_identical(scenario, plan_name):
    first = _digest(run_chaos_case(scenario, PLANS[plan_name], seed=11))
    second = _digest(run_chaos_case(scenario, PLANS[plan_name], seed=11))
    assert diff_digests(first, second) == []


def test_different_seeds_diverge():
    # the fault plan is probabilistic: a different seed must actually
    # change the injected sequence (guards against an accidentally
    # constant rng wiring that would make the identity test vacuous)
    plan = PLANS["drop-exit-ipi"]
    a = _digest(run_chaos_case("netpipe", plan, seed=1))
    b = _digest(run_chaos_case("netpipe", plan, seed=2))
    assert diff_digests(a, b) != []
