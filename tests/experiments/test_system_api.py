"""System API contract: kvm-only device calls, drive-loop limits."""

import warnings

import pytest

from repro.experiments import System, SystemConfig
from repro.guest.actions import Compute
from repro.guest.vm import GuestVm
from repro.sim.engine import SimulationError


def forever(vm, index):
    def body():
        while True:
            yield Compute(100_000)

    return body()


def launch(system):
    vm = GuestVm("t", 2, forever)
    return vm, system.launch(vm)


class TestDeviceApi:
    def test_new_path_takes_kvm_only_without_warning(self):
        system = System(SystemConfig(mode="shared", n_cores=4))
        _, kvm = launch(system)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            net = system.add_virtio_net(kvm, "net0")
            blk = system.add_virtio_blk(kvm, "blk0")
            nic = system.add_sriov_nic(kvm, "vf0")
        assert (net.name, blk.name, nic.name) == ("net0", "blk0", "vf0")

    @pytest.mark.parametrize(
        "method, default",
        [
            ("add_virtio_net", "virtio-net0"),
            ("add_virtio_blk", "virtio-blk0"),
            ("add_sriov_nic", "sriov-net0"),
        ],
    )
    def test_omitted_name_uses_per_kind_default(self, method, default):
        system = System(SystemConfig(mode="shared", n_cores=4))
        _, kvm = launch(system)
        device = getattr(system, method)(kvm)
        assert device.name == default

    def test_legacy_vm_kvm_pair_now_a_type_error(self):
        system = System(SystemConfig(mode="shared", n_cores=4))
        vm, kvm = launch(system)
        with pytest.raises(TypeError, match="must be a KvmVm"):
            system.add_virtio_net(vm, kvm)

    def test_wrong_first_argument_type_rejected(self):
        system = System(SystemConfig(mode="shared", n_cores=4))
        with pytest.raises(TypeError, match="must be a KvmVm"):
            system.add_virtio_net("not-a-kvm")


class TestDefaultConfig:
    def test_omitting_config_builds_a_default_system(self):
        system = System()
        assert system.config.mode == SystemConfig().mode

    def test_default_configs_not_shared_between_instances(self):
        assert System().config is not System().config


class TestDriveLimits:
    def test_zero_limit_times_out_immediately(self):
        system = System(SystemConfig(mode="shared", n_cores=4))
        _, kvm = launch(system)
        system.start(kvm)
        with pytest.raises(SimulationError, match="timeout waiting for"):
            system.run_until(lambda: False, limit_ns=0)

    def test_deadline_is_inclusive(self):
        from repro.sim.engine import Event

        system = System(SystemConfig(mode="shared", n_cores=4))
        _, kvm = launch(system)
        system.start(kvm)
        event = Event("never")
        with pytest.raises(SimulationError, match="timeout waiting for event"):
            system.run_until_event(event, limit_ns=50_000)

    def test_deadlock_message_unified(self):
        system = System(
            SystemConfig(mode="shared", n_cores=2, housekeeping=None)
        )
        system.sim.run()  # drain boot-time events
        with pytest.raises(SimulationError, match="deadlock waiting for"):
            system.run_until(lambda: False, limit_ns=1_000_000)
