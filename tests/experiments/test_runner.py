"""The sweep runner's contract: parallel == serial, bit for bit.

Three claims from DESIGN.md §5.3 are enforced here:

* fanning a sweep over worker processes changes wall-clock only — the
  sanitizer digests (and hence every merged result) are identical to
  the serial run, for both a fig-6 subsweep and chaos cells;
* a crashing cell surfaces as a :class:`CellError` naming the cell —
  the pool shuts down, nothing hangs;
* results merge in cell order even when completion order is shuffled.
"""

import time

import pytest

from repro.experiments.chaos import default_fault_plans, run_chaos_matrix
from repro.experiments.fig6 import fig6_cells
from repro.experiments.runner import (
    Cell,
    CellError,
    canonical_digest,
    cell,
    resolve_jobs,
    run_cells,
    verify_serial_parallel,
)
from repro.lint.sanitizer import RunDigest, diff_digests
from repro.sim.clock import ms


# ----------------------------------------------------------------------
# worker cell functions (module-level: workers import this test module)
# ----------------------------------------------------------------------


def _ok_cell(value):
    return value * 2


def _boom_cell(value):
    raise RuntimeError(f"boom {value}")


def _sleepy_cell(value, sleep_s):
    # later-submitted cells sleep less, so completion order inverts
    # submission order; merge order must not care
    time.sleep(sleep_s)
    return value


# ----------------------------------------------------------------------
# digest equality: the tentpole's correctness proof
# ----------------------------------------------------------------------


def _sweep_digest(cells, outputs) -> RunDigest:
    """Sweep results as a sanitizer digest (one metric per cell)."""
    metrics = {c.cell_id: canonical_digest(out) for c, out in zip(cells, outputs)}
    return RunDigest(records=[], spans=[], counters={}, metrics=metrics)


def test_fig6_parallel_digest_equals_serial():
    cells = fig6_cells(
        core_counts=[2, 4], duration_ns=int(ms(40)), include_busywait=False
    )
    serial = run_cells(cells, jobs=1)
    parallel = run_cells(cells, jobs=2)
    assert (
        diff_digests(_sweep_digest(cells, serial), _sweep_digest(cells, parallel))
        == []
    )


def test_chaos_parallel_digest_equals_serial():
    plans = [p for p in default_fault_plans() if p.name in ("control", "dead-core")]
    serial = run_chaos_matrix(seed=11, plans=plans, scenarios=("coremark",))
    parallel = run_chaos_matrix(seed=11, plans=plans, scenarios=("coremark",), jobs=2)
    assert [o.plan for o in serial] == [o.plan for o in parallel]
    for a, b in zip(serial, parallel):
        # full sanitizer trace digests, computed where each run happened
        assert diff_digests(a.digest, b.digest) == [], (a.plan, a.scenario)
        assert a.survived == b.survived


def test_verify_helper_reports_no_divergence():
    cells = [cell(f"v/{i}", _ok_cell, value=i) for i in range(4)]
    assert verify_serial_parallel(cells, jobs=2) == []


# ----------------------------------------------------------------------
# failure surfacing
# ----------------------------------------------------------------------


def test_failing_cell_raises_named_error_serial():
    cells = [cell("good", _ok_cell, value=1), cell("bad", _boom_cell, value=7)]
    with pytest.raises(CellError) as exc_info:
        run_cells(cells, jobs=1)
    assert exc_info.value.cell_id == "bad"
    assert "boom 7" in str(exc_info.value)


def test_failing_cell_raises_named_error_parallel():
    # a worker raising must neither hang the pool nor lose the cell id
    cells = [
        cell("ok/0", _ok_cell, value=0),
        cell("crash/1", _boom_cell, value=1),
        cell("ok/2", _ok_cell, value=2),
    ]
    with pytest.raises(CellError) as exc_info:
        run_cells(cells, jobs=2)
    assert exc_info.value.cell_id == "crash/1"
    assert "boom 1" in str(exc_info.value)


def test_unimportable_cell_fn_rejected_eagerly():
    with pytest.raises(ValueError):
        cell("lambda", lambda: None)

    def nested():
        return None

    with pytest.raises(ValueError):
        cell("nested", nested)


def test_duplicate_cell_ids_rejected():
    cells = [cell("same", _ok_cell, value=1), cell("same", _ok_cell, value=2)]
    with pytest.raises(ValueError):
        run_cells(cells)


# ----------------------------------------------------------------------
# merge-order determinism
# ----------------------------------------------------------------------


def test_merge_order_survives_shuffled_completion():
    # four cells whose completion order is the reverse of submission
    # order (earlier cells sleep longer); two workers guarantee real
    # overlap, results must still come back in cell order
    cells = [
        cell(f"sleep/{i}", _sleepy_cell, value=i, sleep_s=(3 - i) * 0.05)
        for i in range(4)
    ]
    assert run_cells(cells, jobs=2) == [0, 1, 2, 3]


# ----------------------------------------------------------------------
# jobs resolution
# ----------------------------------------------------------------------


def test_resolve_jobs_defaults_and_env(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs() == 1
    assert resolve_jobs(4) == 4
    monkeypatch.setenv("REPRO_JOBS", "3")
    assert resolve_jobs() == 3
    assert resolve_jobs(2) == 2  # explicit beats env
    monkeypatch.setenv("REPRO_JOBS", "zero")
    with pytest.raises(ValueError):
        resolve_jobs()
    with pytest.raises(ValueError):
        resolve_jobs(0)


def test_resolve_jobs_auto(monkeypatch):
    import repro.experiments.runner as runner_mod

    monkeypatch.delenv("REPRO_JOBS", raising=False)
    monkeypatch.setattr(runner_mod.os, "cpu_count", lambda: 8)
    assert resolve_jobs("auto") == 8
    assert resolve_jobs("auto", n_cells=3) == 3  # no idle workers
    assert resolve_jobs("auto", n_cells=20) == 8
    monkeypatch.setenv("REPRO_JOBS", "auto")
    assert resolve_jobs(n_cells=5) == 5
    # a single-CPU host gets the serial path: a spawn pool there only
    # adds interpreter start-up on top of the same core
    monkeypatch.setattr(runner_mod.os, "cpu_count", lambda: 1)
    assert resolve_jobs("auto") == 1
    assert resolve_jobs("auto", n_cells=16) == 1
    monkeypatch.setattr(runner_mod.os, "cpu_count", lambda: None)
    assert resolve_jobs("auto") == 1
    monkeypatch.delenv("REPRO_JOBS")
    assert resolve_jobs("4") == 4  # CLI strings still resolve
    with pytest.raises(ValueError):
        resolve_jobs("automatic")


def test_cell_spec_validation():
    with pytest.raises(ValueError):
        cell("bad-spec", "no-colon-here")
    with pytest.raises(ValueError):
        cell("main-spec", "__main__:foo")
    c = cell("str-spec", "tests_do_not_exist:fn")  # shape-valid, unresolved
    assert isinstance(c, Cell)
