"""Compute-span coalescing: digest-identical, and de-coalesces on demand.

``SystemConfig.coalesce_compute`` lets the engine run a long uniform
compute phase as one interruptible wait instead of per-chunk delays.
The contract has two halves:

* **identity** — a coalesced run digests bit-identically to the
  per-chunk expansion: same spans, counters, metrics, same mid-span
  interrupt handling, same state at a run cutoff;
* **transparency** — anything needing per-chunk visibility (schedule
  tracing, an attached engine profiler, an armed fault injector)
  forces per-chunk execution from that point on, with no opt-out.

The identity tests also assert the coalesced run dispatched *fewer*
engine events — otherwise a silently-refusing fast path would pass
every equality check while testing nothing.
"""

from repro.costs import DEFAULT_COSTS
from repro.experiments.config import SystemConfig
from repro.experiments.workbench import build_system, vcpus_for
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan
from repro.guest.vm import GuestVm
from repro.guest.workloads import CoremarkStats, coremark_workload_factory
from repro.lint.sanitizer import diff_digests, run_probe
from repro.obs.profile import EngineProfiler
from repro.sim.clock import ms


def _coremark_system(coalesce: bool, trace: bool = False, n_cores: int = 4):
    config = SystemConfig(
        mode="gapped",
        n_cores=n_cores,
        seed=7,
        trace_schedules=trace,
        coalesce_compute=coalesce,
    )
    system = build_system(config, DEFAULT_COSTS)
    stats = CoremarkStats()
    vm = GuestVm(
        "cm",
        vcpus_for(config, n_cores),
        coremark_workload_factory(stats),
        costs=DEFAULT_COSTS,
    )
    kvm = system.launch(vm)
    system.start(kvm)
    return system, vm, stats


def _run(system, duration_ns):
    system.run_for(duration_ns)
    system.finish()


class TestDigestIdentity:
    def test_probe_digests_bit_identical(self):
        expanded = run_probe(
            seed=0, n_cores=3, duration_ms=15, trace_schedules=False
        )
        coalesced = run_probe(
            seed=0,
            n_cores=3,
            duration_ms=15,
            trace_schedules=False,
            coalesce_compute=True,
        )
        assert diff_digests(expanded, coalesced) == []

    def test_coalescing_actually_engages(self):
        # the identity above is vacuous if coalescing silently refused:
        # the whole point is doing the same work with fewer events
        expanded, _, _ = _coremark_system(coalesce=False)
        coalesced, _, _ = _coremark_system(coalesce=True)
        _run(expanded, ms(100))
        _run(coalesced, ms(100))
        assert coalesced.sim.pending_events <= expanded.sim.pending_events
        assert coalesced.sim._seq < expanded.sim._seq

    def test_cutoff_mid_span_settles_identically(self):
        # cut at a time that is aligned to no chunk boundary, so the
        # coalesced run must synthesize completed chunks and re-open
        # the partial one exactly where the expansion was suspended
        duration = ms(50) + 12_345
        systems = {}
        for coalesce in (False, True):
            system, vm, stats = _coremark_system(coalesce)
            _run(system, duration)
            systems[coalesce] = (system, vm, stats)
        exp_sys, exp_vm, exp_stats = systems[False]
        coa_sys, coa_vm, coa_stats = systems[True]
        assert coa_sys.sim.now == exp_sys.sim.now
        assert coa_stats.chunks_completed == exp_stats.chunks_completed
        assert coa_sys.tracer.spans == exp_sys.tracer.spans
        assert coa_sys.tracer.counters == exp_sys.tracer.counters
        for coa_core, exp_core in zip(
            coa_sys.machine.cores, exp_sys.machine.cores
        ):
            assert coa_core.busy_ns == exp_core.busy_ns
        for coa_vcpu, exp_vcpu in zip(coa_vm.vcpus, exp_vm.vcpus):
            assert coa_vcpu.compute_ns_done == exp_vcpu.compute_ns_done
            assert coa_vcpu.ticks_handled == exp_vcpu.ticks_handled


class TestTransparentDecoalescing:
    def test_schedule_tracing_forces_expansion(self):
        system, _, _ = _coremark_system(coalesce=True, trace=True)
        assert not system.machine.coalesce_allowed()
        traced_coalesced, _, _ = _coremark_system(coalesce=True, trace=True)
        traced_expanded, _, _ = _coremark_system(coalesce=False, trace=True)
        _run(traced_coalesced, ms(30))
        _run(traced_expanded, ms(30))
        # with tracing on the knob must be inert: identical full trace,
        # and the *same number of engine events* (nothing was coalesced)
        assert traced_coalesced.tracer.records == traced_expanded.tracer.records
        assert traced_coalesced.tracer.spans == traced_expanded.tracer.spans
        assert traced_coalesced.sim._seq == traced_expanded.sim._seq

    def test_attached_profiler_forces_expansion(self):
        system, _, _ = _coremark_system(coalesce=True)
        assert system.machine.coalesce_allowed()
        system.sim.attach_profiler(EngineProfiler())
        assert system.sim.profiling
        assert not system.machine.coalesce_allowed()
        system.sim.detach_profiler()
        assert system.machine.coalesce_allowed()

    def test_armed_fault_injector_forces_expansion(self):
        system, _, _ = _coremark_system(coalesce=True)
        machine = system.machine
        assert machine.coalesce_allowed()
        injector = FaultInjector(
            FaultPlan("noop"),
            machine.rng.fork("faults"),
            system.sim,
            system.tracer,
        )
        injector.attach_machine(machine)
        assert machine.coalesce_inhibit == 1
        assert not machine.coalesce_allowed()
        # "the faulty machine was replaced": detaching lifts the inhibit
        injector.detach_all()
        assert machine.coalesce_inhibit == 0
        assert machine.coalesce_allowed()

    def test_armed_injector_run_matches_expanded_run(self):
        # with an injector armed, the coalesce knob must be fully
        # inert: the run dispatches exactly the expanded event count
        # and lands in exactly the expanded state
        inhibited, inh_vm, inh_stats = _coremark_system(coalesce=True)
        injector = FaultInjector(
            FaultPlan("noop"),
            inhibited.machine.rng.fork("faults"),
            inhibited.sim,
            inhibited.tracer,
        )
        injector.attach_machine(inhibited.machine)
        expanded, exp_vm, exp_stats = _coremark_system(coalesce=False)
        _run(inhibited, ms(60))
        _run(expanded, ms(60))
        assert inhibited.sim._seq == expanded.sim._seq
        assert inhibited.tracer.spans == expanded.tracer.spans
        assert inh_stats.chunks_completed == exp_stats.chunks_completed
