"""Invariant #6 end-to-end: same seed => bit-identical traces & metrics.

Runs the fig. 6 harness twice (small parameterisation) and asserts the
results are *exactly* equal — not approximately: determinism means the
float bit patterns match.  Trace-level identity is checked through the
sanitizer's digest/diff helpers, reused here as a test library.
"""

from repro.experiments.fig6 import run_fig6
from repro.lint.sanitizer import diff_digests, run_probe
from repro.sim.clock import ms


def small_fig6():
    return run_fig6(
        core_counts=[2, 4],
        duration_ns=ms(30),
        busywait_duration_ns=ms(10),
        include_busywait=True,
    )


class TestFig6Determinism:
    def test_fig6_twice_bit_identical(self):
        first = small_fig6()
        second = small_fig6()
        assert first.series == second.series
        assert first.run_to_run_us == second.run_to_run_us
        # exact float equality on every score, spelled out for clarity
        for label, points in first.series.items():
            for (n_a, score_a), (n_b, score_b) in zip(
                points, second.series[label]
            ):
                assert n_a == n_b
                assert score_a == score_b, (
                    f"{label} @ {n_a} cores: {score_a!r} != {score_b!r}"
                )

    def test_traces_bit_identical_across_replays(self):
        first = run_probe(seed=42, n_cores=3, duration_ms=10)
        second = run_probe(seed=42, n_cores=3, duration_ms=10)
        assert diff_digests(first, second) == []

    def test_fig6_shape_sane(self):
        result = small_fig6()
        assert set(result.series) >= {"shared", "gapped", "gapped-nodeleg"}
        for label, points in result.series.items():
            assert all(score > 0 for _, score in points), label
