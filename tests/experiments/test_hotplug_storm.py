"""Hotplug storms: random offline/online churn under open-loop serving.

The avocado-style exercise: every epoch a seeded stream picks a
lifecycle operation (resize through the planner's park/grow path,
bounce a free core host-side, evict + re-admit a tenant) and after
every transition the elastic controller re-runs the core-gap audit.
The storm is clean only if every audit pass returned nothing, request
conservation held exactly, and the same seed digests identically
whether the matrix runs serially or across worker processes.
"""

from repro.experiments.chaos import (
    run_hotplug_storm,
    run_storm_matrix,
    storm_cells,
)


class TestHotplugStorm:
    def test_storm_is_clean_and_actually_stormed(self):
        outcome = run_hotplug_storm(seed=0, rounds=8)
        assert outcome.clean, (
            outcome.audit_problems + outcome.conservation
        )
        assert outcome.rounds == 8
        assert sum(outcome.ops.values()) == 8
        # the op mix comes from the seeded stream; at least one
        # transition-bearing op must have run for the audit to mean much
        assert outcome.ops.keys() & {"resize", "bounce", "evict"}

    def test_distinct_seeds_draw_distinct_storms(self):
        a = run_hotplug_storm(seed=1, rounds=8)
        b = run_hotplug_storm(seed=2, rounds=8)
        assert a.clean and b.clean
        assert (a.ops, a.counters) != (b.ops, b.counters)

    def test_matrix_runs_every_seed(self):
        outcomes = run_storm_matrix(seeds=(0, 1), jobs=1)
        assert [o.seed for o in outcomes] == [0, 1]
        assert all(o.clean for o in outcomes)

    def test_same_seed_digest_identical_across_jobs(self):
        from repro.experiments.runner import verify_serial_parallel

        assert verify_serial_parallel(storm_cells(seeds=(0,)), jobs=2) == []
