"""Scheduler-swap digest equality: calendar queue == binary heap.

The calendar-queue scheduler is a pure performance substitution — by
contract (``SystemConfig.scheduler``) it must dispatch the exact event
sequence the legacy heap produces, including same-timestamp tie-break
order.  These tests replay the repo's digest workloads once per
implementation and diff the canonical digests: the fig6-style sanitizer
probe (exit-heavy gapped + shared KVM paths), a chaos run (fault
injection + hardening timers), and a fleet serving scenario — plus the
probe under permuted tie-break keys, where bucket-internal ordering is
most likely to betray a sort-stability bug.
"""

import pytest

from repro.experiments.chaos import (
    default_fault_plans,
    digest_chaos_outcome,
    run_chaos_case,
)
from repro.experiments.config import SystemConfig
from repro.experiments.runner import canonical_digest
from repro.fleet import boot_scenario
from repro.fleet.spec import ScenarioSpec, redis_tenant, uniform_rack
from repro.lint.sanitizer import diff_digests, run_probe
from repro.sim.clock import ms


class TestProbeEquivalence:
    def test_calendar_matches_heap(self):
        calendar = run_probe(seed=3, n_cores=3, duration_ms=15)
        heap = run_probe(seed=3, n_cores=3, duration_ms=15, scheduler="heap")
        assert diff_digests(calendar, heap) == []

    @pytest.mark.parametrize("tie_break", ["lifo", "seeded:7"])
    def test_equivalence_holds_under_permuted_tie_break(self, tie_break):
        # non-fifo keys route the calendar engine through its heap
        # fallback, but the contract is scheduler-blindness for every
        # key: both engines must realize the same permuted schedule
        calendar = run_probe(
            seed=3, n_cores=3, duration_ms=15, tie_break=tie_break
        )
        heap = run_probe(
            seed=3,
            n_cores=3,
            duration_ms=15,
            tie_break=tie_break,
            scheduler="heap",
        )
        assert diff_digests(calendar, heap) == []


class TestChaosEquivalence:
    @pytest.mark.parametrize("plan_name", ["drop-exit-ipi", "dead-core"])
    def test_chaos_case_scheduler_blind(self, plan_name):
        plans = {plan.name: plan for plan in default_fault_plans()}
        calendar = digest_chaos_outcome(
            run_chaos_case("coremark", plans[plan_name], seed=11)
        )
        heap = digest_chaos_outcome(
            run_chaos_case(
                "coremark", plans[plan_name], seed=11, scheduler="heap"
            )
        )
        assert diff_digests(calendar, heap) == []


def _serving_digest(scheduler: str):
    template = SystemConfig(mode="gapped", n_cores=8, scheduler=scheduler)
    spec = ScenarioSpec(
        servers=uniform_rack(2, template, seed=5),
        tenants=(
            redis_tenant("alpha", n_vcpus=2, rate_rps=4000.0),
            redis_tenant("beta", n_vcpus=2, rate_rps=4000.0),
        ),
        duration_ns=ms(40),
        seed=5,
        placement="spread",
    )
    fleet = boot_scenario(spec)
    result = fleet.run()
    spans = [
        f"{srv.index}|{s.core}|{s.domain}|{s.start}|{s.end}"
        for srv in fleet.servers
        for s in srv.system.tracer.spans
    ]
    return canonical_digest((result.tenants, spans))


class TestFleetEquivalence:
    def test_serving_scenario_scheduler_blind(self):
        assert _serving_digest("calendar") == _serving_digest("heap")
