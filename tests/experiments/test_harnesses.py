"""Fast end-to-end checks of the experiment harnesses.

These run each table/figure harness at reduced scale and assert the
paper's *qualitative* claims hold.  The full-scale numbers are produced
by the benchmark suite (``benchmarks/``) and recorded in EXPERIMENTS.md.
"""

import pytest

from repro.experiments import PAPER_TARGETS, System, SystemConfig
from repro.experiments.fig6 import run_fig6
from repro.experiments.fig7 import run_fig7
from repro.experiments.table2 import run_table2
from repro.experiments.table3 import run_table3
from repro.experiments.table4 import INTERRUPT_EXITS, run_table4
from repro.experiments.workbench import run_coremark, vcpus_for
from repro.sim.clock import ms, sec


class TestWorkbench:
    def test_fair_core_accounting(self):
        gapped = SystemConfig(mode="gapped", n_cores=16)
        shared = SystemConfig(mode="shared", n_cores=16)
        assert vcpus_for(gapped, 16) == 15
        assert vcpus_for(shared, 16) == 16

    def test_coremark_run_returns_score(self):
        run = run_coremark(
            SystemConfig(mode="gapped", n_cores=4, housekeeping=None),
            duration_ns=ms(100),
        )
        assert run.score > 0
        assert run.n_vcpus == 3


class TestTable2:
    def test_latency_ordering_and_magnitudes(self):
        result = run_table2(iterations=50)
        sync = result.sync_ns.mean
        asynchronous = result.async_ns.mean
        samecore = result.samecore_ns.mean
        # the paper's ordering: sync << async << same-core
        assert sync < asynchronous < samecore
        # within 25% of the paper's absolute numbers
        assert sync == pytest.approx(
            PAPER_TARGETS["table2_sync_ns"], rel=0.25
        )
        assert asynchronous == pytest.approx(
            PAPER_TARGETS["table2_async_ns"], rel=0.25
        )
        assert samecore > PAPER_TARGETS["table2_samecore_ns"]


class TestTable3:
    def test_delegation_slashes_vipi_latency(self):
        result = run_table3(count=40)
        nodeleg = result.latency_us["gapped-nodeleg"].mean
        deleg = result.latency_us["gapped-deleg"].mean
        shared = result.latency_us["shared"].mean
        # ordering from the paper: deleg < shared < nodeleg
        assert deleg < shared < nodeleg
        # delegation buys an order of magnitude
        assert nodeleg / deleg > 10


class TestTable4:
    def test_delegation_cuts_exits(self):
        result = run_table4(duration_ns=sec(1))
        assert result.interrupt_exits[False] > 5_000
        assert result.interrupt_exits[True] < 500
        assert result.reduction_factor() > 10


class TestFig6:
    def test_scaling_shapes(self):
        result = run_fig6(
            core_counts=[4, 8],
            duration_ns=ms(300),
            busywait_duration_ns=ms(200),
        )
        for label in ("shared", "gapped", "gapped-nodeleg"):
            points = dict(result.series[label])
            # near-linear scaling 4 -> 8 cores
            assert points[8] > 1.7 * points[4]
        # busy-waiting already lags at 8 cores
        busy = dict(result.series["gapped-busywait"])
        gapped = dict(result.series["gapped"])
        assert busy[8] < 0.5 * gapped[8]

    def test_run_to_run_latency_in_paper_range(self):
        result = run_fig6(
            core_counts=[8],
            duration_ns=ms(400),
            include_busywait=False,
        )
        r2r = result.run_to_run_us[8]
        # paper: 26.18 +- 0.96 us; accept a generous band
        assert 10 < r2r < 45


class TestFig7:
    def test_multi_vm_aggregate_scales(self):
        result = run_fig7(vm_counts=[1, 2], duration_ns=ms(300))
        for label in ("shared", "gapped"):
            points = dict(result.series[label])
            assert points[2] > 1.8 * points[1]


class TestDeterminism:
    def test_same_seed_same_results(self):
        config = SystemConfig(mode="gapped", n_cores=4, housekeeping=None)
        a = run_coremark(config, duration_ns=ms(100))
        b = run_coremark(config, duration_ns=ms(100))
        assert a.score == b.score
        assert a.exit_counts == b.exit_counts
