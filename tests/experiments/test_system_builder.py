"""Tests for the System builder and SystemConfig semantics."""

import pytest

from repro.experiments import System, SystemConfig
from repro.guest.actions import Compute
from repro.guest.vm import GuestVm
from repro.isa import World
from repro.sim.clock import ms


def forever(vm, index):
    def body():
        while True:
            yield Compute(100_000)

    return body()


class TestSystemConfig:
    def test_labels(self):
        assert SystemConfig(mode="shared").label() == "shared"
        assert SystemConfig(mode="gapped").label() == "gapped"
        assert (
            SystemConfig(mode="gapped", busywait=True).label()
            == "gapped+busywait"
        )
        assert (
            SystemConfig(mode="gapped", delegation=False).label()
            == "gapped+nodeleg"
        )

    def test_is_gapped(self):
        assert SystemConfig(mode="gapped").is_gapped
        assert not SystemConfig(mode="shared").is_gapped
        assert not SystemConfig(mode="shared-cvm").is_gapped


class TestSystemBuilder:
    def test_gapped_reserves_host_cores(self):
        system = System(
            SystemConfig(mode="gapped", n_cores=8, n_host_cores=2)
        )
        assert system.host_cores == {0, 1}

    def test_shared_uses_all_cores(self):
        system = System(SystemConfig(mode="shared", n_cores=8))
        assert system.host_cores == set(range(8))

    def test_housekeeping_threads_created(self):
        system = System(
            SystemConfig(mode="shared", n_cores=4, housekeeping=(1_000_000, 1_000))
        )
        kworkers = [
            t for t in system.kernel.threads if t.name.startswith("kworker")
        ]
        assert len(kworkers) == 4

    def test_no_housekeeping_when_disabled(self):
        system = System(
            SystemConfig(mode="shared", n_cores=4, housekeeping=None)
        )
        assert not any(
            t.name.startswith("kworker") for t in system.kernel.threads
        )

    def test_delegation_flag_reaches_rmm(self):
        on = System(SystemConfig(mode="gapped", n_cores=4))
        off = System(
            SystemConfig(mode="gapped", n_cores=4, delegation=False)
        )
        assert on.rmm.delegation_enabled
        assert not off.rmm.delegation_enabled

    def test_device_intids_unique(self):
        system = System(SystemConfig(mode="shared", n_cores=4))
        vm = GuestVm("t", 2, forever)
        kvm = system.launch(vm)
        a = system.add_virtio_net(kvm, "net0")
        b = system.add_virtio_blk(kvm, "blk0")
        c = system.add_sriov_nic(kvm, "vf0")
        assert len({a.intid, b.intid, c.intid}) == 3

    def test_multiple_launches_use_distinct_cores(self):
        system = System(
            SystemConfig(mode="gapped", n_cores=8, housekeeping=None)
        )
        kvm1 = system.launch(GuestVm("a", 3, forever))
        kvm2 = system.launch(GuestVm("b", 3, forever))
        cores1 = set(kvm1.planned_cores.values())
        cores2 = set(kvm2.planned_cores.values())
        assert not cores1 & cores2
        assert 0 not in cores1 | cores2

    def test_run_until_raises_on_deadlock(self):
        from repro.sim import SimulationError

        system = System(
            SystemConfig(mode="shared", n_cores=2, housekeeping=None)
        )
        # drain all events, then wait for something impossible
        system.sim.run()
        with pytest.raises(SimulationError, match="deadlock"):
            system.run_until(lambda: False)

    def test_realm_cores_in_realm_world_while_running(self):
        system = System(
            SystemConfig(mode="gapped", n_cores=4, housekeeping=None)
        )
        vm = GuestVm("t", 2, forever)
        kvm = system.launch(vm)
        system.start(kvm)
        system.run_for(ms(5))
        for core_index in kvm.planned_cores.values():
            assert system.machine.core(core_index).world is World.REALM
