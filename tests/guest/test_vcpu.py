"""Tests for the guest vCPU runtime (kernel model around workloads)."""

import pytest

from repro.costs import DEFAULT_COSTS
from repro.guest.actions import (
    Compute,
    PowerOff,
    SendIpi,
    SetTimer,
    Wfi,
    WaitIo,
)
from repro.guest.vcpu import GuestVcpu, VIPI_VIRQ, VTIMER_VIRQ
from repro.guest.vm import GuestVm


class FakeVm:
    name = "fake"

    def device(self, name):
        raise KeyError(name)


def drive(vcpu, responses=None, max_steps=500):
    """Drive a runtime generator, answering Compute with 0 (done)."""
    gen = vcpu.run()
    actions = []
    to_send = None
    for _ in range(max_steps):
        try:
            action = gen.send(to_send)
        except StopIteration:
            break
        actions.append(action)
        if isinstance(action, Compute):
            to_send = 0
        elif isinstance(action, PowerOff):
            break
        else:
            to_send = None
    return actions


def make_vcpu(workload=None, enable_tick=True):
    return GuestVcpu(FakeVm(), 0, workload, enable_tick=enable_tick)


class TestBoot:
    def test_boot_arms_tick_timer(self):
        vcpu = make_vcpu()
        actions = drive(vcpu)
        assert isinstance(actions[0], SetTimer)
        assert actions[0].delta_ns == DEFAULT_COSTS.guest_tick_period_ns

    def test_no_tick_when_disabled(self):
        vcpu = make_vcpu(enable_tick=False)
        actions = drive(vcpu)
        assert not any(isinstance(a, SetTimer) for a in actions)

    def test_empty_workload_powers_off(self):
        vcpu = make_vcpu(enable_tick=False)
        actions = drive(vcpu)
        assert isinstance(actions[-1], PowerOff)
        assert vcpu.finished


class TestVirqDelivery:
    def test_timer_virq_runs_handler_and_rearms(self):
        def workload():
            yield Compute(1000)
            yield Compute(1000)

        vcpu = make_vcpu(workload())
        gen = vcpu.run()
        action = gen.send(None)  # SetTimer (boot)
        action = gen.send(None)  # first Compute
        assert isinstance(action, Compute)
        vcpu.inject_virq(VTIMER_VIRQ)
        # answer the compute; handler should run next
        action = gen.send(0)
        assert isinstance(action, Compute)  # tick handler work
        action = gen.send(0)
        assert isinstance(action, SetTimer)  # re-arm
        assert vcpu.ticks_handled == 1

    def test_compute_interruption_delivers_virq(self):
        def workload():
            yield Compute(10_000)

        vcpu = make_vcpu(workload(), enable_tick=False)
        gen = vcpu.run()
        action = gen.send(None)
        assert isinstance(action, Compute) and action.work_ns == 10_000
        vcpu.inject_virq(VTIMER_VIRQ)
        action = gen.send(4_000)  # interrupted with 4000 remaining
        # handler (masked compute) comes first...
        assert isinstance(action, Compute)
        action = gen.send(0)
        # ...then the remaining workload compute resumes
        assert isinstance(action, Compute) and action.work_ns == 4_000
        assert vcpu.compute_ns_done == 6_000

    def test_ipi_ack_callback_invoked(self):
        acked = []

        def workload():
            yield Compute(1000)
            yield Compute(1000)

        vcpu = make_vcpu(workload(), enable_tick=False)
        gen = vcpu.run()
        gen.send(None)
        payload = {"acked": lambda p: acked.append(p), "sent_at": 5}
        vcpu.inject_virq(VIPI_VIRQ, payload)
        gen.send(0)  # finish compute -> ack write compute
        gen.send(0)  # handler compute
        assert acked and acked[0]["sent_at"] == 5
        assert vcpu.ipis_handled == 1

    def test_handlers_masked_no_nested_delivery(self):
        def workload():
            yield Compute(1000)
            yield Compute(1000)

        vcpu = make_vcpu(workload(), enable_tick=False)
        gen = vcpu.run()
        gen.send(None)
        vcpu.inject_virq(VIPI_VIRQ)
        action = gen.send(0)  # ack compute of first IPI handler
        # inject another while the handler runs: must stay pending
        vcpu.inject_virq(VIPI_VIRQ)
        action = gen.send(500)  # handler compute got interrupted
        # handler continues (masked) rather than starting a new one
        assert isinstance(action, Compute)
        assert vcpu.ipis_handled == 1


class TestWaitIo:
    def test_waitio_returns_immediately_when_event_arrived(self):
        def workload():
            yield WaitIo("disk", "complete", 1)
            yield Compute(1000)

        vcpu = make_vcpu(workload(), enable_tick=False)
        vcpu.note_io_event("disk", "complete")  # arrived before wait
        gen = vcpu.run()
        action = gen.send(None)
        assert isinstance(action, Compute)  # no Wfi needed

    def test_waitio_blocks_until_event(self):
        def workload():
            yield WaitIo("disk", "complete", 1)
            yield Compute(1234)

        vcpu = make_vcpu(workload(), enable_tick=False)
        gen = vcpu.run()
        action = gen.send(None)
        assert isinstance(action, Wfi)
        vcpu.note_io_event("disk", "complete")
        vcpu.inject_virq(40)  # device wake interrupt
        action = gen.send(None)
        assert isinstance(action, Compute)  # device-irq handler
        action = gen.send(0)
        assert isinstance(action, Compute) and action.work_ns == 1234

    def test_waitio_events_are_cumulative(self):
        def workload():
            yield WaitIo("disk", "complete", 1)
            yield WaitIo("disk", "complete", 1)
            yield Compute(99)

        vcpu = make_vcpu(workload(), enable_tick=False)
        vcpu.note_io_event("disk", "complete")
        vcpu.note_io_event("disk", "complete")
        gen = vcpu.run()
        action = gen.send(None)
        assert isinstance(action, Compute) and action.work_ns == 99


class TestStats:
    def test_compute_accounting(self):
        def workload():
            yield Compute(5000)
            yield Compute(3000)

        vcpu = make_vcpu(workload(), enable_tick=False)
        drive(vcpu)
        assert vcpu.compute_ns_done == 8000

    def test_virqs_counted(self):
        def workload():
            yield Compute(1000)
            yield Compute(1000)

        vcpu = make_vcpu(workload(), enable_tick=False)
        gen = vcpu.run()
        gen.send(None)
        vcpu.inject_virq(VTIMER_VIRQ)
        vcpu.inject_virq(40)
        gen.send(0)
        assert vcpu.has_pending_virq() is False or True  # drained below
        drive_rest = []
        try:
            while True:
                drive_rest.append(gen.send(0))
        except StopIteration:
            pass
        assert vcpu.virqs_delivered >= 2
