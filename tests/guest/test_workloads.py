"""Unit tests for the workload generators and their statistics."""

import pytest

from repro.guest.actions import (
    Compute,
    DeviceDoorbell,
    MmioWrite,
    SendIpi,
    WaitIo,
)
from repro.guest.vm import GuestVm
from repro.guest.workloads import (
    CoremarkStats,
    IozoneStats,
    KbuildConfig,
    KbuildStats,
    NetpipeStats,
    OP_GET,
    OP_LRANGE_100,
    OP_SET,
    RedisStats,
    coremark_score,
    coremark_workload_factory,
    iozone_workload_factory,
    kbuild_workload_factory,
    netpipe_workload_factory,
)
from repro.guest.actions import ComputeSpan
from repro.guest.workloads.coremark import DEFAULT_CHUNK_NS, SPAN_CHUNKS


def collect(gen, n, answer=None):
    """Pull n actions out of a workload generator."""
    actions = []
    to_send = None
    for _ in range(n):
        try:
            action = gen.send(to_send)
        except StopIteration:
            break
        actions.append(action)
        to_send = answer(action) if answer else None
    return actions


class TestCoremark:
    def test_pure_compute(self):
        stats = CoremarkStats()
        factory = coremark_workload_factory(stats)
        vm = GuestVm("t", 1, lambda v, i: None)
        actions = collect(factory(vm, 0), 10)
        assert all(isinstance(a, ComputeSpan) for a in actions)
        assert all(a.chunk_ns == DEFAULT_CHUNK_NS for a in actions)
        assert all(a.n_chunks == SPAN_CHUNKS for a in actions)
        # progress is credited chunk-by-chunk through the callback
        # (by the vCPU runtime or the coalescing driver)
        actions[0].on_chunk()
        actions[0].on_chunk()
        assert stats.chunks_completed == 2

    def test_score_scaling(self):
        stats = CoremarkStats()
        for _ in range(1000):
            stats.note_chunk(0)
        one_second = 1_000_000_000
        score = coremark_score(stats, one_second)
        core_seconds = 1000 * DEFAULT_CHUNK_NS / 1e9
        assert score == pytest.approx(15_000 * core_seconds)

    def test_score_zero_duration(self):
        assert coremark_score(CoremarkStats(), 0) == 0.0

    def test_per_vcpu_accounting(self):
        stats = CoremarkStats()
        stats.note_chunk(0)
        stats.note_chunk(0)
        stats.note_chunk(3)
        assert stats.per_vcpu_chunks == {0: 2, 3: 1}


class TestNetpipeStats:
    def test_latency_is_half_rtt(self):
        stats = NetpipeStats()
        stats.note(1024, 20_000)
        stats.note(1024, 40_000)
        assert stats.mean_rtt_us(1024) == pytest.approx(30.0)
        assert stats.latency_us(1024) == pytest.approx(15.0)

    def test_throughput(self):
        stats = NetpipeStats()
        stats.note(1_048_576, 2_000_000)  # 1 MiB in 2 ms rtt
        # bits / (rtt/2) = 8*2^20 bits / 1 ms = ~8.39 Gb/s
        assert stats.throughput_gbps(1_048_576) == pytest.approx(8.39, rel=0.01)

    def test_empty_size(self):
        stats = NetpipeStats()
        assert stats.latency_us(64) == 0.0
        assert stats.throughput_gbps(64) == 0.0


class TestIozoneStats:
    def test_throughput_math(self):
        stats = IozoneStats()
        mib = 1024 * 1024
        stats.note(mib, "blk_read", 1_000_000)  # 1 MiB in 1 ms
        stats.note(mib, "blk_read", 1_000_000)
        assert stats.throughput_mib_s(mib, "blk_read") == pytest.approx(1000.0)

    def test_missing_sample(self):
        assert IozoneStats().throughput_mib_s(4096, "blk_read") == 0.0


class TestRedisStats:
    def test_throughput_and_percentiles(self):
        stats = RedisStats()
        stats.started_at = 0
        for i in range(100):
            stats.note("SET", (i + 1) * 1_000_000, now=(i + 1) * 100_000)
        assert stats.completed["SET"] == 100
        assert stats.throughput_krps("SET") == pytest.approx(10.0)
        assert stats.percentile_ms("SET", 50) == pytest.approx(50.0)
        assert stats.percentile_ms("SET", 99) == pytest.approx(99.0)
        assert stats.mean_ms("SET") == pytest.approx(50.5)

    def test_op_costs_ordered(self):
        # LRANGE-100 is the long memory-heavy query of Table 5
        assert OP_LRANGE_100.server_ns > OP_GET.server_ns
        assert OP_LRANGE_100.server_ns > OP_SET.server_ns
        assert OP_LRANGE_100.mem_fraction > OP_SET.mem_fraction
        assert OP_LRANGE_100.reply_bytes > 100 * 512  # 100 x 512B objects


class TestKbuild:
    def test_work_queue_splits_files(self):
        config = KbuildConfig(total_files=6)
        stats = KbuildStats()
        vm = GuestVm("t", 1, lambda v, i: None)
        factory = kbuild_workload_factory(
            config, stats, "virtio-blk0", clock=lambda: 0
        )
        gens = [factory(vm, i) for i in range(3)]

        def answer(action):
            return None

        # drive each job one step; together they must take all 6 files
        # plus the link phase on vCPU 0
        mmio = 0
        for gen in gens:
            for action in collect(gen, 200, answer):
                if isinstance(action, MmioWrite):
                    mmio += 1
        # 6 files x (1 read + 1 write) = 12 ... but WaitIo never
        # completes without a device, so jobs stall at the first wait
        assert mmio >= 3  # one read submitted per job

    def test_config_defaults_sane(self):
        config = KbuildConfig()
        assert config.total_files > 0
        assert config.compile_ns > config.source_bytes  # CPU-dominated
