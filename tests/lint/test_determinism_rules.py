"""Fixture snippets for the determinism pass (DET001–DET005)."""

import textwrap

import pytest

from repro.lint.contract import LintContract
from repro.lint.determinism import check_determinism
from repro.lint.findings import load_source


def lint_snippet(tmp_path, code, module_path="snippet.py", contract=None):
    path = tmp_path / module_path
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(textwrap.dedent(code))
    return check_determinism(load_source(path), contract or LintContract())


def rules_of(findings):
    return sorted(f.rule for f in findings)


class TestWallClock:
    @pytest.mark.parametrize(
        "call",
        [
            "import time\ntime.time()",
            "import time\ntime.monotonic_ns()",
            "import time as t\nt.perf_counter()",
            "from time import time\ntime()",
            "import datetime\ndatetime.datetime.now()",
            "from datetime import datetime\ndatetime.now()",
            "from datetime import date\ndate.today()",
        ],
    )
    def test_triggers(self, tmp_path, call):
        assert "DET001" in rules_of(lint_snippet(tmp_path, call))

    def test_clean_simulated_clock(self, tmp_path):
        code = """
        def run(sim):
            return sim.now
        """
        assert lint_snippet(tmp_path, code) == []

    def test_unrelated_attribute_named_time(self, tmp_path):
        code = """
        class Record:
            time = 0
        def f(record):
            return record.time
        """
        assert lint_snippet(tmp_path, code) == []


class TestEntropy:
    @pytest.mark.parametrize(
        "call",
        [
            "import os\nos.urandom(8)",
            "import uuid\nuuid.uuid4()",
            "import uuid\nuuid.uuid1()",
            "import random\nrandom.SystemRandom()",
        ],
    )
    def test_triggers(self, tmp_path, call):
        assert "DET002" in rules_of(lint_snippet(tmp_path, call))


class TestGlobalRandom:
    def test_module_level_call(self, tmp_path):
        findings = lint_snippet(tmp_path, "import random\nx = random.randint(0, 9)")
        assert rules_of(findings) == ["DET003"]

    def test_from_import(self, tmp_path):
        findings = lint_snippet(tmp_path, "from random import shuffle")
        assert rules_of(findings) == ["DET003"]

    def test_from_import_random_class_ok(self, tmp_path):
        # importing the class is fine; constructing it is DET004
        findings = lint_snippet(tmp_path, "from random import Random")
        assert findings == []

    def test_substream_draw_clean(self, tmp_path):
        code = """
        def f(rng_factory):
            rng = rng_factory.stream("noise")
            return rng.random()
        """
        assert lint_snippet(tmp_path, code) == []


class TestRawRandomConstruction:
    def test_triggers(self, tmp_path):
        findings = lint_snippet(tmp_path, "import random\nr = random.Random(42)")
        assert rules_of(findings) == ["DET004"]

    def test_from_import_construction(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "from random import Random\nr = Random(42)"
        )
        assert rules_of(findings) == ["DET004"]

    def test_rng_module_exempt(self, tmp_path):
        # the sanctioned module may construct Random freely
        (tmp_path / "repro" / "sim").mkdir(parents=True)
        (tmp_path / "repro" / "__init__.py").write_text("")
        (tmp_path / "repro" / "sim" / "__init__.py").write_text("")
        findings = lint_snippet(
            tmp_path,
            "import random\nr = random.Random(1)\n",
            module_path="repro/sim/rng.py",
        )
        assert findings == []


class TestSetIteration:
    @pytest.mark.parametrize(
        "code",
        [
            "for x in {1, 2, 3}:\n    pass",
            "for x in set([1, 2]):\n    pass",
            "for x in frozenset([1]):\n    pass",
            "s = set()\nfor x in s:\n    pass",
            "s = {1, 2}\nout = [x for x in s]",
            "def f(cores: set):\n    return [c for c in cores]",
        ],
    )
    def test_triggers(self, tmp_path, code):
        assert "DET005" in rules_of(lint_snippet(tmp_path, code))

    def test_annotated_param(self, tmp_path):
        code = """
        from typing import Set
        def f(cores: Set[int]):
            for c in cores:
                pass
        """
        assert "DET005" in rules_of(lint_snippet(tmp_path, code))

    @pytest.mark.parametrize(
        "code",
        [
            "s = {1, 2}\nfor x in sorted(s):\n    pass",
            "s = set()\nn = len(s)",
            "s = {3, 1}\nm = min(s)",
            "s = {3, 1}\nif 3 in s:\n    pass",
            "d = {}\nfor k in d:\n    pass",  # dicts are insertion-ordered
        ],
    )
    def test_clean(self, tmp_path, code):
        assert lint_snippet(tmp_path, code) == []


class TestPragma:
    def test_allow_suppresses(self, tmp_path):
        code = "import time\nnow = time.time()  # lint: allow(DET001)\n"
        assert lint_snippet(tmp_path, code) == []

    def test_allow_is_rule_specific(self, tmp_path):
        code = "import time\nnow = time.time()  # lint: allow(DET002)\n"
        assert "DET001" in rules_of(lint_snippet(tmp_path, code))
