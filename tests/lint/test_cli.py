"""CLI surface: exit codes, formats, pass/rule selection."""

import json

from repro.lint.cli import collect_files, main
from repro.lint.findings import RULES
from repro.lint.reporter import render_json, render_text
from repro.lint.findings import Finding


def write(tmp_path, name, code):
    path = tmp_path / name
    path.write_text(code)
    return path


class TestExitCodes:
    def test_clean_file_exits_zero(self, tmp_path, capsys):
        path = write(tmp_path, "ok.py", "x = 1\n")
        assert main([str(path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_finding_exits_one(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", "import time\nt = time.time()\n")
        assert main([str(path)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out
        assert "bad.py:2" in out

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "absent")]) == 2

    def test_unknown_pass_exits_two(self, tmp_path, capsys):
        path = write(tmp_path, "ok.py", "x = 1\n")
        assert main(["--passes", "nope", str(path)]) == 2

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out


class TestSelection:
    def test_rule_filter(self, tmp_path, capsys):
        code = "import time\nt = time.time()\nr = __import__('os').urandom(4)\n"
        path = write(tmp_path, "bad.py", code)
        assert main(["--rules", "DET001", str(path)]) == 1
        out = capsys.readouterr().out
        assert "DET001" in out

    def test_pass_subset(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", "import time\nt = time.time()\n")
        # units pass alone does not see the wall clock
        assert main(["--passes", "units", str(path)]) == 0

    def test_json_format(self, tmp_path, capsys):
        path = write(tmp_path, "bad.py", "import time\nt = time.time()\n")
        assert main(["--format", "json", str(path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["rule"] == "DET001"
        assert payload[0]["line"] == 2


class TestSanitizerExitCode:
    """SAN* findings exit 3 — distinct from static findings (1)."""

    def test_sanitizer_divergence_exits_three(self, tmp_path, monkeypatch):
        import repro.lint.sanitizer as sanitizer

        monkeypatch.setattr(
            sanitizer,
            "run_sanitizer",
            lambda: [Finding("<sanitizer>", 0, "SAN001", "diverged")],
        )
        path = write(tmp_path, "ok.py", "x = 1\n")
        assert main(["--sanitize", str(path)]) == 3

    def test_sanitizer_beats_static_findings(self, tmp_path, monkeypatch):
        import repro.lint.sanitizer as sanitizer

        monkeypatch.setattr(
            sanitizer,
            "run_sanitizer",
            lambda: [Finding("<sanitizer>", 0, "SAN002", "diverged")],
        )
        path = write(tmp_path, "bad.py", "import time\nt = time.time()\n")
        assert main(["--sanitize", str(path)]) == 3

    def test_clean_sanitizer_keeps_static_exit(self, tmp_path, monkeypatch):
        import repro.lint.sanitizer as sanitizer

        monkeypatch.setattr(sanitizer, "run_sanitizer", lambda: [])
        path = write(tmp_path, "ok.py", "x = 1\n")
        assert main(["--sanitize", str(path)]) == 0


class TestCacheFlags:
    def test_cache_file_round_trip(self, tmp_path, capsys):
        path = write(tmp_path, "ok.py", "x = 1\n")
        cache_file = tmp_path / "cache.json"
        assert main([str(path), "--cache-file", str(cache_file)]) == 0
        assert cache_file.exists()
        capsys.readouterr()
        assert main([str(path), "--cache-file", str(cache_file)]) == 0
        err = capsys.readouterr().err
        assert "cache 1/1 hits (100%)" in err

    def test_no_cache_suppresses_stats(self, tmp_path, capsys):
        path = write(tmp_path, "ok.py", "x = 1\n")
        assert main([str(path), "--no-cache"]) == 0
        assert "cache" not in capsys.readouterr().err

    def test_bad_jobs_exits_two(self, tmp_path):
        path = write(tmp_path, "ok.py", "x = 1\n")
        assert main([str(path), "--jobs", "0"]) == 2


class TestExplainBaseline:
    def test_prints_fingerprints(self, tmp_path, capsys):
        from repro.lint.findings import fingerprint

        path = write(tmp_path, "bad.py", "import time\nt = time.time()\n")
        assert main([str(path), "--no-cache", "--explain-baseline"]) == 0
        out = capsys.readouterr().out
        assert "DET001" in out
        # first token of each line is the 16-hex fingerprint
        token = out.split()[0]
        assert len(token) == 16 and int(token, 16) >= 0


class TestCollect:
    def test_skips_pycache(self, tmp_path):
        (tmp_path / "__pycache__").mkdir()
        write(tmp_path, "__pycache__/junk.py", "x = 1\n")
        keep = write(tmp_path, "keep.py", "x = 1\n")
        assert collect_files([tmp_path]) == [keep]

    def test_deduplicates(self, tmp_path):
        path = write(tmp_path, "one.py", "x = 1\n")
        assert collect_files([tmp_path, path]) == [path]


class TestReporter:
    def test_text_sorted_and_counted(self):
        findings = [
            Finding("b.py", 9, "DET001", "late"),
            Finding("a.py", 1, "UNIT001", "early"),
        ]
        text = render_text(findings)
        assert text.index("a.py:1") < text.index("b.py:9")
        assert "2 finding(s)" in text
        assert "DET001×1" in text and "UNIT001×1" in text

    def test_json_includes_rule_summary(self):
        payload = json.loads(render_json([Finding("a.py", 1, "DET005", "m")]))
        assert payload[0]["summary"] == RULES["DET005"].summary
