"""SARIF 2.1.0 output: rendering and the structural validator."""

import json
from pathlib import Path

from repro.lint.findings import Finding, RULES
from repro.lint.sarif import SARIF_VERSION, render_sarif, validate_sarif

SAMPLE = [
    Finding("src/repro/hw/x.py", 12, "SEC001", "cross-domain touch"),
    Finding("src/repro/hw/y.py", 3, "DET001", "wall clock"),
    Finding("lint-baseline.toml", 0, "BASE002", "stale entry"),
]


def render(tmp_path, findings=SAMPLE):
    return json.loads(render_sarif(findings, tmp_path))


class TestRender:
    def test_validates_against_schema_subset(self, tmp_path):
        assert validate_sarif(render(tmp_path)) == []

    def test_one_result_per_finding(self, tmp_path):
        doc = render(tmp_path)
        assert len(doc["runs"][0]["results"]) == len(SAMPLE)

    def test_every_registered_rule_is_declared(self, tmp_path):
        doc = render(tmp_path)
        declared = {r["id"] for r in doc["runs"][0]["tool"]["driver"]["rules"]}
        assert declared == set(RULES)

    def test_rule_index_cross_references(self, tmp_path):
        doc = render(tmp_path)
        rules = doc["runs"][0]["tool"]["driver"]["rules"]
        for result in doc["runs"][0]["results"]:
            assert rules[result["ruleIndex"]]["id"] == result["ruleId"]

    def test_line_zero_clamped_to_one(self, tmp_path):
        doc = render(tmp_path)
        starts = [
            r["locations"][0]["physicalLocation"]["region"]["startLine"]
            for r in doc["runs"][0]["results"]
        ]
        assert all(s >= 1 for s in starts)

    def test_results_sorted_and_fingerprinted(self, tmp_path):
        doc = render(tmp_path)
        results = doc["runs"][0]["results"]
        uris = [
            r["locations"][0]["physicalLocation"]["artifactLocation"]["uri"]
            for r in results
        ]
        assert uris == sorted(uris)
        assert all(r["partialFingerprints"]["reproLint/v1"] for r in results)

    def test_version_and_schema_stamp(self, tmp_path):
        doc = render(tmp_path)
        assert doc["version"] == SARIF_VERSION
        assert "sarif-schema-2.1.0" in doc["$schema"]

    def test_empty_findings_still_valid(self, tmp_path):
        doc = render(tmp_path, findings=[])
        assert validate_sarif(doc) == []
        assert doc["runs"][0]["results"] == []


class TestValidator:
    def test_wrong_version_rejected(self, tmp_path):
        doc = render(tmp_path)
        doc["version"] = "2.0.0"
        assert any("version" in p for p in validate_sarif(doc))

    def test_missing_message_text_rejected(self, tmp_path):
        doc = render(tmp_path)
        del doc["runs"][0]["results"][0]["message"]["text"]
        assert any("message" in p for p in validate_sarif(doc))

    def test_unknown_rule_id_rejected(self, tmp_path):
        doc = render(tmp_path)
        doc["runs"][0]["results"][0]["ruleId"] = "NOPE999"
        assert any("NOPE999" in p for p in validate_sarif(doc))

    def test_rule_index_disagreement_rejected(self, tmp_path):
        doc = render(tmp_path)
        doc["runs"][0]["results"][0]["ruleIndex"] += 1
        assert any("ruleIndex" in p for p in validate_sarif(doc))

    def test_zero_start_line_rejected(self, tmp_path):
        doc = render(tmp_path)
        loc = doc["runs"][0]["results"][0]["locations"][0]
        loc["physicalLocation"]["region"]["startLine"] = 0
        assert any("startLine" in p for p in validate_sarif(doc))

    def test_missing_driver_rejected(self, tmp_path):
        doc = render(tmp_path)
        del doc["runs"][0]["tool"]["driver"]
        assert any("driver" in p for p in validate_sarif(doc))

    def test_invalid_level_rejected(self, tmp_path):
        doc = render(tmp_path)
        doc["runs"][0]["results"][0]["level"] = "fatal"
        assert any("level" in p for p in validate_sarif(doc))


class TestCliIntegration:
    def test_format_sarif_end_to_end(self, tmp_path, capsys, monkeypatch):
        from repro.lint.cli import main

        bad = tmp_path / "planted.py"
        bad.write_text("import time\nSTART = time.time()\n")
        monkeypatch.chdir(tmp_path)
        code = main(
            [str(bad), "--format", "sarif", "--no-cache", "--no-baseline"]
        )
        doc = json.loads(capsys.readouterr().out)
        assert code == 1
        assert validate_sarif(doc) == []
        assert doc["runs"][0]["results"][0]["ruleId"] == "DET001"
