"""SNAP001/SNAP002: the snapshot-coverage pass.

Planted modules shadow real registered classes
(``repro.rmm.attestation:PlatformRootOfTrust`` is the smallest), so
the pass's verdicts are exercised against the *real* SNAP_FIELDS
registry -- exactly how drift would appear in the tree.
"""

from pathlib import Path

from repro.lint import lint_paths, load_contract
from repro.snap import SNAP_FIELDS

REPO_ROOT = Path(__file__).resolve().parents[2]

#: the registered coverage for the class the fixtures shadow
ROT_KEY = "repro.rmm.attestation:PlatformRootOfTrust"

COVERED = (
    "class PlatformRootOfTrust:\n"
    "    def __init__(self, platform_id, key):\n"
    "        self.platform_id = platform_id\n"
    "        self._key = key\n"
)


def plant(tmp_path, relpath, code):
    parts = Path(relpath).parts
    directory = tmp_path
    for part in parts[:-1]:
        directory = directory / part
        directory.mkdir(exist_ok=True)
        init = directory / "__init__.py"
        if not init.exists():
            init.touch()
    (directory / parts[-1]).write_text(code)


def lint_tree(tmp_path, rules=None):
    return lint_paths(
        [tmp_path],
        contract=load_contract(REPO_ROOT),
        passes=["snapcov"],
        rules=rules,
    )


class TestSnap001NewAttributes:
    def test_fully_covered_class_is_clean(self, tmp_path):
        assert ROT_KEY in SNAP_FIELDS
        plant(tmp_path, "repro/rmm/attestation.py", COVERED)
        assert lint_tree(tmp_path) == []

    def test_new_self_attribute_without_verdict_caught(self, tmp_path):
        plant(
            tmp_path,
            "repro/rmm/attestation.py",
            COVERED + "        self.retry_budget = 3\n",
        )
        findings = lint_tree(tmp_path, rules=["SNAP001"])
        assert [f.line for f in findings] == [5]
        assert "retry_budget" in findings[0].message

    def test_attribute_assigned_in_any_method_caught(self, tmp_path):
        plant(
            tmp_path,
            "repro/rmm/attestation.py",
            COVERED
            + "\n"
            + "    def rotate(self):\n"
            + "        self.rotations = 1\n",
        )
        findings = lint_tree(tmp_path, rules=["SNAP001"])
        assert len(findings) == 1
        assert "rotations" in findings[0].message

    def test_dataclass_field_declaration_caught(self, tmp_path):
        plant(
            tmp_path,
            "repro/rmm/attestation.py",
            "from dataclasses import dataclass\n"
            "\n"
            "@dataclass\n"
            "class PlatformRootOfTrust:\n"
            "    platform_id: int\n"
            "    _key: int\n"
            "    epoch: int = 0\n",
        )
        findings = lint_tree(tmp_path, rules=["SNAP001"])
        assert len(findings) == 1
        assert "epoch" in findings[0].message

    def test_classvar_and_nested_class_state_exempt(self, tmp_path):
        plant(
            tmp_path,
            "repro/rmm/attestation.py",
            "from typing import ClassVar\n"
            "\n"
            "class PlatformRootOfTrust:\n"
            "    SCHEME: ClassVar[str] = 'ecdsa'\n"
            "\n"
            "    def __init__(self, platform_id, key):\n"
            "        self.platform_id = platform_id\n"
            "        self._key = key\n"
            "\n"
            "    def helper(self):\n"
            "        class Inner:\n"
            "            def __init__(self):\n"
            "                self.not_ours = 1\n"
            "        return Inner()\n",
        )
        assert lint_tree(tmp_path, rules=["SNAP001"]) == []

    def test_suppression_pragma_respected(self, tmp_path):
        plant(
            tmp_path,
            "repro/rmm/attestation.py",
            COVERED
            + "        self.scratch = 0"
            + "  # lint: ignore[SNAP001] reason=transient scratch\n",
        )
        assert lint_tree(tmp_path, rules=["SNAP001"]) == []


class TestSnap002StaleEntries:
    def test_registered_attr_no_longer_assigned_caught(self, tmp_path):
        plant(
            tmp_path,
            "repro/rmm/attestation.py",
            "class PlatformRootOfTrust:\n"
            "    def __init__(self, platform_id):\n"
            "        self.platform_id = platform_id\n",
        )
        findings = lint_tree(tmp_path, rules=["SNAP002"])
        assert len(findings) == 1
        assert "_key" in findings[0].message

    def test_registered_class_gone_from_module_caught(self, tmp_path):
        plant(
            tmp_path,
            "repro/rmm/attestation.py",
            "class SomethingElse:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n",
        )
        findings = lint_tree(tmp_path, rules=["SNAP002"])
        assert [f.line for f in findings] == [1]
        assert "PlatformRootOfTrust" in findings[0].message


class TestScope:
    def test_unregistered_modules_ignored(self, tmp_path):
        plant(
            tmp_path,
            "repro/analysis/planted.py",
            "class Unregistered:\n"
            "    def __init__(self):\n"
            "        self.anything = 1\n",
        )
        assert lint_tree(tmp_path) == []

    def test_non_repro_files_ignored(self, tmp_path):
        plant(
            tmp_path,
            "scripts/tool.py",
            "class PlatformRootOfTrust:\n"
            "    def __init__(self):\n"
            "        self.x = 1\n",
        )
        assert lint_tree(tmp_path) == []

    def test_real_tree_is_snapcov_clean(self):
        findings = lint_paths(
            [REPO_ROOT / "src"],
            contract=load_contract(REPO_ROOT),
            passes=["snapcov"],
            rules=["SNAP001", "SNAP002"],
        )
        assert findings == []
