"""Fixture snippets for the observability pass (OBS001–OBS002)."""

import textwrap

from repro.lint.contract import LintContract
from repro.lint.findings import load_source
from repro.lint.obs import check_obs


def lint_snippet(tmp_path, code):
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(code))
    return check_obs(load_source(path), LintContract())


def rules_of(findings):
    return sorted(f.rule for f in findings)


class TestObs001:
    def test_undeclared_counter_name(self, tmp_path):
        findings = lint_snippet(
            tmp_path, "def f(tracer):\n    tracer.count('typo_total')\n"
        )
        assert rules_of(findings) == ["OBS001"]
        assert "typo_total" in findings[0].message

    def test_undeclared_fstring_prefix(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def f(tracer, x):\n    tracer.count(f'nope:{x}')\n",
        )
        assert rules_of(findings) == ["OBS001"]

    def test_declared_family_prefix_is_clean(self, tmp_path):
        assert (
            lint_snippet(
                tmp_path,
                "def f(tracer, r):\n    tracer.count(f'exit:{r}')\n",
            )
            == []
        )

    def test_declared_names_are_clean(self, tmp_path):
        code = """
        def f(tracer, metrics):
            tracer.count('exits_total')
            tracer.sample('run_to_run_ns', 1)
            tracer.set_gauge('sim_end_ns', 2)
            metrics.gauge('gic_sgi_sent_count')
            metrics.histogram('vipi_latency_ns')
        """
        assert lint_snippet(tmp_path, code) == []

    def test_fully_dynamic_names_are_skipped(self, tmp_path):
        assert (
            lint_snippet(
                tmp_path, "def f(tracer, n):\n    tracer.count(n)\n"
            )
            == []
        )

    def test_non_tracer_receivers_are_ignored(self, tmp_path):
        assert (
            lint_snippet(
                tmp_path,
                "def f(widget):\n    widget.count('typo_total')\n",
            )
            == []
        )

    def test_pragma_suppression(self, tmp_path):
        code = (
            "def f(tracer):\n"
            "    tracer.count('typo_total')  # lint: allow(OBS001)\n"
        )
        assert lint_snippet(tmp_path, code) == []


class TestObs002:
    def test_histogram_published_as_counter(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def f(tracer):\n    tracer.count('run_to_run_ns')\n",
        )
        assert rules_of(findings) == ["OBS002"]
        assert "histogram" in findings[0].message

    def test_gauge_accessed_as_counter(self, tmp_path):
        findings = lint_snippet(
            tmp_path,
            "def f(metrics):\n    metrics.counter('sim_end_ns')\n",
        )
        assert rules_of(findings) == ["OBS002"]

    def test_matching_kinds_are_clean(self, tmp_path):
        assert (
            lint_snippet(
                tmp_path,
                "def f(tracer):\n    tracer.sample('vipi_latency_ns', 9)\n",
            )
            == []
        )
