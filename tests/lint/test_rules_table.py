"""--list-rules and the generated DESIGN.md §5.1 table stay in sync."""

import json
from pathlib import Path

from repro.lint.cli import main, rules_markdown
from repro.lint.findings import RULES

REPO_ROOT = Path(__file__).resolve().parents[2]

BEGIN = "<!-- rules-table:begin (generated; do not edit by hand) -->"
END = "<!-- rules-table:end -->"


class TestRegistry:
    def test_every_rule_fully_described(self):
        for rule_id, rule in RULES.items():
            assert rule.rule_id == rule_id
            assert rule.summary.strip()
            assert rule.guards.strip()
            assert rule.contract.strip()

    def test_new_rule_families_registered(self):
        for rule_id in [
            "SEC001",
            "SEC002",
            "SEC003",
            "SEC004",
            "SEED001",
            "SEED002",
            "SEED003",
            "SUP001",
            "BASE001",
            "BASE002",
        ]:
            assert rule_id in RULES

    def test_contract_keys_name_their_tables(self):
        assert "domains" in RULES["SEC001"].contract
        assert "structures" in RULES["SEC002"].contract
        assert "seed-roots" in RULES["SEED001"].contract
        assert "streams" in RULES["SEED002"].contract
        assert RULES["BASE001"].contract == "lint-baseline.toml"


class TestDesignSync:
    def test_design_table_matches_generator(self):
        design = (REPO_ROOT / "DESIGN.md").read_text()
        start = design.index(BEGIN) + len(BEGIN)
        end = design.index(END)
        embedded = design[start:end].strip()
        assert embedded == rules_markdown().strip(), (
            "DESIGN.md §5.1 rule table is stale; regenerate with "
            "`python -m repro.lint --list-rules --format markdown`"
        )

    def test_markdown_covers_every_rule(self):
        table = rules_markdown()
        for rule_id in RULES:
            assert f"| {rule_id} |" in table


class TestListRulesCli:
    def test_text_format_lists_contract_keys(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in RULES:
            assert rule_id in out
        assert "contract:" in out

    def test_json_format_round_trips(self, capsys):
        assert main(["--list-rules", "--format", "json"]) == 0
        rows = json.loads(capsys.readouterr().out)
        assert {row["rule"] for row in rows} == set(RULES)
        assert all(
            row["summary"] and row["guards"] and row["contract"]
            for row in rows
        )

    def test_markdown_format_emits_table(self, capsys):
        assert main(["--list-rules", "--format", "markdown"]) == 0
        assert capsys.readouterr().out.strip() == rules_markdown().strip()

    def test_markdown_without_list_rules_is_usage_error(self, tmp_path):
        assert main([str(tmp_path), "--format", "markdown"]) == 2
