"""SEC001–SEC004: the core-gap contract's static twin.

Fixture trees recreate the ``repro`` package chain under ``tmp_path``
so module resolution matches the real tree, then plant one violation
per test.  The mutation test copies the *real* ``repro.hw.uarch``
source, injects a single cross-domain read, and demands exactly one
SEC001 — the acceptance criterion that the pass catches a realistic
edit, not just toy fixtures.
"""

from pathlib import Path

from repro.lint import lint_paths, load_contract

REPO_ROOT = Path(__file__).resolve().parents[2]


def repo_contract():
    contract = load_contract(REPO_ROOT)
    assert "repro.host" in contract.domains.modules
    return contract


def plant(tmp_path, relpath, code):
    parts = Path(relpath).parts
    directory = tmp_path
    for part in parts[:-1]:
        directory = directory / part
        directory.mkdir(exist_ok=True)
        init = directory / "__init__.py"
        if not init.exists():
            init.touch()
    path = directory / parts[-1]
    path.write_text(code)
    return path


def lint_tree(tmp_path, rules=None):
    return lint_paths(
        [tmp_path], contract=repo_contract(), rules=rules
    )


class TestSec001CrossDomainAccess:
    def test_annotated_parameter_access_caught(self, tmp_path):
        plant(
            tmp_path,
            "repro/guest/planted.py",
            "from repro.host.kernel import HostKernel\n"
            "\n"
            "def peek(kernel: HostKernel) -> int:\n"
            "    return kernel.run_queue\n",
        )
        findings = lint_tree(tmp_path, rules=["SEC001"])
        assert len(findings) == 1
        assert findings[0].line == 4
        assert "'host'-domain" in findings[0].message

    def test_constructor_assignment_tracked(self, tmp_path):
        plant(
            tmp_path,
            "repro/rmm/planted.py",
            "from repro.host.kernel import HostKernel\n"
            "\n"
            "def build():\n"
            "    k = HostKernel()\n"
            "    return k.scheduler\n",
        )
        findings = lint_tree(tmp_path, rules=["SEC001"])
        assert [f.line for f in findings] == [5]

    def test_crossing_surface_symbols_exempt(self, tmp_path):
        plant(
            tmp_path,
            "repro/host/planted.py",
            "from repro.rmm.rmi import RmiInterface\n"
            "\n"
            "def call(rmi: RmiInterface):\n"
            "    return rmi.data_create(0)\n",
        )
        assert lint_tree(tmp_path, rules=["SEC001"]) == []

    def test_same_domain_access_exempt(self, tmp_path):
        plant(
            tmp_path,
            "repro/host/planted.py",
            "from repro.host.kernel import HostKernel\n"
            "\n"
            "def ok(kernel: HostKernel):\n"
            "    return kernel.run_queue\n",
        )
        assert lint_tree(tmp_path, rules=["SEC001"]) == []

    def test_crossing_root_module_exempt(self, tmp_path):
        plant(
            tmp_path,
            "repro/experiments/planted.py",
            "from repro.host.kernel import HostKernel\n"
            "\n"
            "def harness(kernel: HostKernel):\n"
            "    return kernel.run_queue\n",
        )
        assert lint_tree(tmp_path, rules=["SEC001"]) == []

    def test_optional_annotation_unwrapped(self, tmp_path):
        plant(
            tmp_path,
            "repro/guest/planted.py",
            "from typing import Optional\n"
            "from repro.rmm.monitor import Monitor\n"
            "\n"
            "def touch(m: Optional[Monitor]):\n"
            "    return m.realms\n",
        )
        findings = lint_tree(tmp_path, rules=["SEC001"])
        assert [f.line for f in findings] == [5]

    def test_pragma_suppresses(self, tmp_path):
        plant(
            tmp_path,
            "repro/guest/planted.py",
            "from repro.host.kernel import HostKernel\n"
            "\n"
            "def peek(kernel: HostKernel) -> int:\n"
            "    return kernel.run_queue"
            "  # lint: ignore[SEC001] reason=test fixture\n",
        )
        assert lint_tree(tmp_path, rules=["SEC001"]) == []


class TestSec001Mutation:
    """Acceptance criterion: one injected cross-domain read in a copy
    of the real repro.hw.uarch yields exactly one SEC001."""

    def test_injected_read_yields_exactly_one_sec001(self, tmp_path):
        original = (REPO_ROOT / "src/repro/hw/uarch.py").read_text()
        mutated = original + (
            "\n\nfrom repro.host.kernel import HostKernel\n"
            "\n\ndef _leak(kernel: HostKernel) -> int:\n"
            "    return kernel.run_queue\n"
        )
        plant(tmp_path, "repro/hw/uarch.py", mutated)
        findings = lint_tree(tmp_path, rules=["SEC001"])
        assert len(findings) == 1
        assert findings[0].rule == "SEC001"
        assert findings[0].path.endswith("uarch.py")

    def test_unmutated_copy_is_sec_clean(self, tmp_path):
        plant(
            tmp_path,
            "repro/hw/uarch.py",
            (REPO_ROOT / "src/repro/hw/uarch.py").read_text(),
        )
        findings = lint_tree(
            tmp_path, rules=["SEC001", "SEC002", "SEC003", "SEC004"]
        )
        assert findings == []


class TestSec002StructureDeclarations:
    def test_undeclared_uarch_structure_caught(self, tmp_path):
        plant(
            tmp_path,
            "repro/hw/planted.py",
            "class PrefetchBuffer:\n"
            "    def domains_present(self):\n"
            "        return set()\n",
        )
        findings = lint_tree(tmp_path, rules=["SEC002"])
        assert len(findings) == 1
        assert "PrefetchBuffer" in findings[0].message

    def test_declared_structure_passes(self, tmp_path):
        plant(
            tmp_path,
            "repro/hw/tlb.py",
            "class Tlb:\n"
            "    def domains_present(self):\n"
            "        return set()\n",
        )
        assert lint_tree(tmp_path, rules=["SEC002"]) == []

    def test_non_hw_class_ignored(self, tmp_path):
        plant(
            tmp_path,
            "repro/guest/planted.py",
            "class Whatever:\n"
            "    def domains_present(self):\n"
            "        return set()\n",
        )
        assert lint_tree(tmp_path, rules=["SEC002"]) == []


class TestSec003CallbackCapture:
    def test_nested_function_capture_caught(self, tmp_path):
        plant(
            tmp_path,
            "repro/host/planted.py",
            "from repro.guest.vcpu import GuestVcpu\n"
            "\n"
            "def arm(sim, vcpu: GuestVcpu):\n"
            "    def fire():\n"
            "        vcpu.kick()\n"
            "    sim.schedule(10, fire)\n",
        )
        findings = lint_tree(tmp_path, rules=["SEC003"])
        assert [f.line for f in findings] == [6]
        assert "'guest'-domain" in findings[0].message

    def test_lambda_capture_caught(self, tmp_path):
        plant(
            tmp_path,
            "repro/host/planted.py",
            "from repro.guest.vcpu import GuestVcpu\n"
            "\n"
            "def arm(sim, vcpu: GuestVcpu):\n"
            "    sim.call_soon(lambda: vcpu.kick())\n",
        )
        findings = lint_tree(tmp_path, rules=["SEC003"])
        assert [f.line for f in findings] == [4]

    def test_constant_case_import_exempt(self, tmp_path):
        # VTIMER_VIRQ-style ABI constants are immutable shared values,
        # not live domain state (the real host/kvm.py relies on this)
        plant(
            tmp_path,
            "repro/host/planted.py",
            "from repro.guest.vcpu import VTIMER_VIRQ\n"
            "\n"
            "def arm(sim, inject):\n"
            "    def fire():\n"
            "        inject(VTIMER_VIRQ)\n"
            "    sim.schedule(10, fire)\n",
        )
        assert lint_tree(tmp_path, rules=["SEC003"]) == []

    def test_shared_domain_capture_exempt(self, tmp_path):
        plant(
            tmp_path,
            "repro/host/planted.py",
            "from repro.hw.cache import SetAssociativeCache\n"
            "\n"
            "def arm(sim, cache: SetAssociativeCache):\n"
            "    sim.schedule(10, lambda: cache.flush())\n",
        )
        assert lint_tree(tmp_path, rules=["SEC003"]) == []


class TestSec004ReexportLaundering:
    def test_direct_reexport_caught(self, tmp_path):
        plant(
            tmp_path,
            "repro/guest/secrets.py",
            "class GuestKey:\n    pass\n",
        )
        plant(
            tmp_path,
            "repro/host/__init__.py",
            "from ..guest.secrets import GuestKey\n"
            '__all__ = ["GuestKey"]\n',
        )
        findings = lint_tree(tmp_path, rules=["SEC004"])
        assert len(findings) == 1
        assert findings[0].line == 1
        assert "'guest'-domain" in findings[0].message

    def test_chain_chased_through_shim(self, tmp_path):
        plant(
            tmp_path,
            "repro/guest/secrets.py",
            "class GuestKey:\n    pass\n",
        )
        plant(
            tmp_path,
            "repro/hw/shim.py",
            "from repro.guest.secrets import GuestKey\n",
        )
        plant(
            tmp_path,
            "repro/host/__init__.py",
            "from ..hw.shim import GuestKey\n"
            '__all__ = ["GuestKey"]\n',
        )
        findings = lint_tree(tmp_path, rules=["SEC004"])
        assert len(findings) == 1
        assert "repro.guest.secrets" in findings[0].message

    def test_same_domain_reexport_fine(self, tmp_path):
        plant(
            tmp_path,
            "repro/host/kernel2.py",
            "class HostThing:\n    pass\n",
        )
        plant(
            tmp_path,
            "repro/host/__init__.py",
            "from .kernel2 import HostThing\n"
            '__all__ = ["HostThing"]\n',
        )
        assert lint_tree(tmp_path, rules=["SEC004"]) == []

    def test_pragma_on_import_line_suppresses(self, tmp_path):
        plant(
            tmp_path,
            "repro/guest/secrets.py",
            "class GuestKey:\n    pass\n",
        )
        plant(
            tmp_path,
            "repro/host/__init__.py",
            "from ..guest.secrets import GuestKey"
            "  # lint: ignore[SEC004] reason=test fixture\n"
            '__all__ = ["GuestKey"]\n',
        )
        assert lint_tree(tmp_path, rules=["SEC004"]) == []
