"""Fixture snippets for the integer-ns units pass (UNIT001–UNIT002)."""

import textwrap

import pytest

from repro.lint.contract import LintContract
from repro.lint.findings import load_source
from repro.lint.units import check_units


def lint_snippet(tmp_path, code):
    path = tmp_path / "snippet.py"
    path.write_text(textwrap.dedent(code))
    return check_units(load_source(path), LintContract())


def rules_of(findings):
    return sorted(f.rule for f in findings)


class TestFloatLiteral:
    @pytest.mark.parametrize(
        "code",
        [
            "def f(sim):\n    yield Delay(1.5)",
            "def f(sim):\n    sim.schedule(0.5, cb)",
            "def f(sim):\n    yield Delay(ns=2.0)",
            "def f(vm):\n    yield SetTimer(1e6)",
            "def f(vm):\n    yield Compute(0.5)",
            "def f(system):\n    system.run_for(1.0)",
        ],
    )
    def test_triggers(self, tmp_path, code):
        assert "UNIT001" in rules_of(lint_snippet(tmp_path, code))

    def test_int_literal_clean(self, tmp_path):
        assert lint_snippet(tmp_path, "def f():\n    yield Delay(1500)") == []


class TestFloatExpression:
    @pytest.mark.parametrize(
        "code",
        [
            "def f(n):\n    yield Delay(n / 2)",
            "def f(sim, n):\n    sim.schedule(n / 4, cb)",
            "def f(n):\n    yield Delay(float(n))",
            "def f(n):\n    yield Delay(n * 1.5)",
            "def f(ns):\n    yield Delay(to_us(ns))",
        ],
    )
    def test_triggers(self, tmp_path, code):
        assert "UNIT002" in rules_of(lint_snippet(tmp_path, code))

    def test_local_variable_taint(self, tmp_path):
        code = """
        def f(n):
            half = n / 2
            yield Delay(half)
        """
        findings = lint_snippet(tmp_path, code)
        assert rules_of(findings) == ["UNIT002"]
        assert "half" in findings[0].message

    def test_reassignment_clears_taint(self, tmp_path):
        code = """
        def f(n):
            half = n / 2
            half = n // 2
            yield Delay(half)
        """
        assert lint_snippet(tmp_path, code) == []

    @pytest.mark.parametrize(
        "code",
        [
            "def f(n):\n    yield Delay(n // 2)",
            "def f(n):\n    yield Delay(int(n / 2))",
            "def f(n):\n    yield Delay(round(n / 2))",
            "def f(n):\n    yield Delay(ms(1.5))",  # unit helpers round
            "def f(n):\n    yield Delay(us(0.5))",
            "def f(n):\n    yield Delay(max(0, n))",
            "def f(costs):\n    yield Delay(costs.sync_rpc_ns)",
        ],
    )
    def test_sanctioned_clean(self, tmp_path, code):
        assert lint_snippet(tmp_path, code) == []

    def test_float_outside_sink_clean(self, tmp_path):
        # floats are fine anywhere that is not a clock sink
        code = """
        def f(score, n):
            ratio = score / n
            return ratio * 1.5
        """
        assert lint_snippet(tmp_path, code) == []

    def test_nested_function_not_double_reported(self, tmp_path):
        code = """
        def outer(n):
            def inner():
                yield Delay(n / 2)
            return inner
        """
        findings = lint_snippet(tmp_path, code)
        assert len(findings) == 1

    def test_pragma(self, tmp_path):
        code = """
        def f(n):
            yield Delay(n / 2)  # lint: allow(UNIT002)
        """
        assert lint_snippet(tmp_path, code) == []
