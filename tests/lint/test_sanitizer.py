"""Schedule-race sanitizer: probe digests, diffing, and the checks."""

import copy

import pytest

from repro.lint.sanitizer import (
    RunDigest,
    SANITIZER_ORIGIN,
    diff_digests,
    run_probe,
    run_sanitizer,
)

#: small probe so the suite stays fast; the CLI uses the full size
PROBE = dict(n_cores=3, duration_ms=10)


@pytest.fixture(scope="module")
def baseline():
    return run_probe(seed=0, **PROBE)


class TestProbe:
    def test_probe_exercises_the_stack(self, baseline):
        assert len(baseline.spans) > 100
        exits = baseline.metrics["gapped-nodeleg:exit_counts"]
        assert exits.get("exits_total", 0) > 0, (
            "probe produced no VM exits; it no longer stresses the "
            "exit/RPC paths the sanitizer is meant to race"
        )
        assert any(k.startswith("shared:") for k in baseline.counters)

    def test_replay_is_bit_identical(self, baseline):
        replay = run_probe(seed=0, **PROBE)
        assert diff_digests(baseline, replay) == []

    def test_json_round_trip(self, baseline):
        clone = RunDigest.from_json(baseline.to_json())
        assert diff_digests(baseline, clone) == []

    def test_tie_break_permutation_keeps_metrics(self, baseline):
        permuted = run_probe(seed=0, tie_break="lifo", **PROBE)
        assert diff_digests(baseline, permuted, metrics_only=True) == []

    def test_seeded_tie_break_keeps_metrics(self, baseline):
        permuted = run_probe(seed=0, tie_break="seeded:99", **PROBE)
        assert diff_digests(baseline, permuted, metrics_only=True) == []


class TestDiff:
    def test_metric_divergence_reported(self, baseline):
        mutated = copy.deepcopy(baseline)
        mutated.metrics["shared:score"] = "0.0"
        lines = diff_digests(baseline, mutated)
        assert any("shared:score" in line for line in lines)

    def test_trace_divergence_reported(self, baseline):
        mutated = copy.deepcopy(baseline)
        mutated.spans[0] = "tampered|0|host|0|1"
        lines = diff_digests(baseline, mutated)
        assert any("spans[0]" in line for line in lines)

    def test_metrics_only_ignores_trace_noise(self, baseline):
        mutated = copy.deepcopy(baseline)
        mutated.spans[0] = "tampered|0|host|0|1"
        assert diff_digests(baseline, mutated, metrics_only=True) == []

    def test_length_mismatch_reported(self, baseline):
        mutated = copy.deepcopy(baseline)
        mutated.spans.append("extra|0|host|0|1")
        lines = diff_digests(baseline, mutated)
        assert any("entries" in line for line in lines)


class TestSanitizer:
    def test_in_process_checks_clean(self):
        findings = run_sanitizer(seed=0, subprocess_checks=False)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_subprocess_hashseed_checks_clean(self):
        findings = run_sanitizer(
            seed=0, subprocess_checks=True, tie_breaks=[]
        )
        san002 = [f for f in findings if f.rule == "SAN002"]
        assert san002 == [], "\n".join(f.render() for f in san002)

    def test_findings_carry_origin(self, baseline):
        # force a divergence through the public API by diffing digests
        # from different seeds-level knobs: n_cores changes everything
        other = run_probe(seed=0, n_cores=4, duration_ms=10)
        lines = diff_digests(baseline, other)
        assert lines, "different machine sizes must produce different traces"
        assert SANITIZER_ORIGIN.startswith("<")
