"""Incremental cache: correctness first (warm == cold, byte for byte),
then effectiveness (unchanged tree == all hits) and parallel equivalence."""

import json
from pathlib import Path

from repro.lint import LintCache, cache_salt, lint_paths, load_contract
from repro.lint.analyze import analyze_files
from repro.lint.findings import Finding

REPO_ROOT = Path(__file__).resolve().parents[2]


def repo_contract():
    return load_contract(REPO_ROOT)


def plant_tree(tmp_path):
    pkg = tmp_path / "repro" / "hw"
    pkg.mkdir(parents=True)
    (tmp_path / "repro" / "__init__.py").touch()
    (pkg / "__init__.py").touch()
    (pkg / "clean.py").write_text("x = 1\n")
    (pkg / "dirty.py").write_text("import time\nSTART = time.time()\n")
    return tmp_path


def make_cache(tmp_path, contract, passes=("determinism",)):
    return LintCache(
        tmp_path / "cache.json", cache_salt(contract, list(passes))
    )


class TestCacheStore:
    def test_roundtrip(self, tmp_path):
        contract = repo_contract()
        cache = make_cache(tmp_path, contract)
        finding = Finding("a.py", 1, "DET001", "m")
        cache.put(Path("a.py"), "hash1", [finding], {"module": None})
        cache.save()
        reloaded = make_cache(tmp_path, contract)
        got = reloaded.get(Path("a.py"), "hash1")
        assert got is not None
        assert got[0] == [finding]
        assert got[1] == {"module": None}

    def test_content_change_misses(self, tmp_path):
        contract = repo_contract()
        cache = make_cache(tmp_path, contract)
        cache.put(Path("a.py"), "hash1", [], None)
        assert cache.get(Path("a.py"), "hash2") is None

    def test_salt_change_empties_store(self, tmp_path):
        contract = repo_contract()
        cache = make_cache(tmp_path, contract, passes=("determinism",))
        cache.put(Path("a.py"), "hash1", [], None)
        cache.save()
        other = make_cache(tmp_path, contract, passes=("layering",))
        assert other.get(Path("a.py"), "hash1") is None

    def test_corrupt_file_tolerated(self, tmp_path):
        (tmp_path / "cache.json").write_text("{nope")
        cache = make_cache(tmp_path, repo_contract())
        assert cache.get(Path("a.py"), "h") is None

    def test_prune_drops_dead_entries(self, tmp_path):
        contract = repo_contract()
        cache = make_cache(tmp_path, contract)
        cache.put(Path("a.py"), "h", [], None)
        cache.put(Path("b.py"), "h", [], None)
        cache.prune([Path("a.py")])
        cache.save()
        data = json.loads((tmp_path / "cache.json").read_text())
        assert sorted(data["files"]) == ["a.py"]


class TestCacheEffectiveness:
    def test_second_run_all_hits_and_identical(self, tmp_path):
        tree = plant_tree(tmp_path)
        contract = repo_contract()
        cache = make_cache(tmp_path, contract)
        cold = lint_paths([tree], contract=contract, cache=cache)
        cache.save()
        assert cache.hits == 0 and cache.misses > 0

        warm_cache = LintCache(cache.path, cache.salt)
        warm = lint_paths([tree], contract=contract, cache=warm_cache)
        assert warm_cache.misses == 0
        assert warm_cache.hits == cache.misses
        assert warm == cold

    def test_edited_file_misses_alone(self, tmp_path):
        tree = plant_tree(tmp_path)
        contract = repo_contract()
        cache = make_cache(tmp_path, contract)
        lint_paths([tree], contract=contract, cache=cache)
        cache.save()

        (tree / "repro" / "hw" / "clean.py").write_text("y = 2\n")
        warm_cache = LintCache(cache.path, cache.salt)
        lint_paths([tree], contract=contract, cache=warm_cache)
        assert warm_cache.misses == 1
        assert warm_cache.hits == cache.misses - 1

    def test_warm_tree_passes_still_run(self, tmp_path):
        # SEC004 is tree-level and computed from cached facts: a warm
        # run must still report it
        pkg = tmp_path / "repro"
        (pkg / "guest").mkdir(parents=True)
        (pkg / "host").mkdir()
        (pkg / "__init__.py").touch()
        (pkg / "guest" / "__init__.py").touch()
        (pkg / "guest" / "secrets.py").write_text("class GuestKey:\n    pass\n")
        (pkg / "host" / "__init__.py").write_text(
            'from ..guest.secrets import GuestKey\n__all__ = ["GuestKey"]\n'
        )
        contract = repo_contract()
        cache = make_cache(tmp_path, contract, passes=("secflow",))
        cold = lint_paths(
            [tmp_path], contract=contract, passes=["secflow"], cache=cache
        )
        cache.save()
        warm_cache = LintCache(cache.path, cache.salt)
        warm = lint_paths(
            [tmp_path],
            contract=contract,
            passes=["secflow"],
            cache=warm_cache,
        )
        assert warm_cache.misses == 0
        assert any(f.rule == "SEC004" for f in warm)
        assert warm == cold


class TestParallelEquivalence:
    def test_jobs_two_matches_serial(self, tmp_path):
        tree = plant_tree(tmp_path)
        contract = repo_contract()
        serial = lint_paths([tree], contract=contract, jobs=1)
        parallel = lint_paths([tree], contract=contract, jobs=2)
        assert parallel == serial
        assert any(f.rule == "DET001" for f in serial)

    def test_pool_results_in_file_order(self, tmp_path):
        tree = plant_tree(tmp_path)
        contract = repo_contract()
        files = sorted(tree.rglob("*.py"))
        results = analyze_files(
            files, contract, ["determinism"], jobs=2
        )
        assert [r.path for r in results] == [str(f) for f in files]
