"""End-to-end gate: the whole tree must lint clean, and deliberately
planted violations must be caught (the acceptance criteria, as a test)."""

from pathlib import Path

from repro.lint import apply_baseline, lint_paths, load_baseline, load_contract

REPO_ROOT = Path(__file__).resolve().parents[2]


def repo_contract():
    contract = load_contract(REPO_ROOT)
    # the real pyproject must be the source of the table — guard against
    # silently falling back to the built-in defaults
    assert "repro.hw" in contract.layers
    return contract


class TestTreeClean:
    def test_src_and_benchmarks_lint_clean(self):
        findings = lint_paths(
            [REPO_ROOT / "src", REPO_ROOT / "benchmarks"],
            contract=repo_contract(),
        )
        # grandfathered findings are carried (with reason + expiry) in
        # lint-baseline.toml; expired or stale entries fail here too
        baseline = load_baseline(REPO_ROOT / "lint-baseline.toml")
        findings, _ = apply_baseline(findings, baseline)
        assert findings == [], "\n".join(f.render() for f in findings)

    def test_contract_covers_every_src_subsystem(self):
        contract = repo_contract()
        src = REPO_ROOT / "src" / "repro"
        for entry in src.iterdir():
            if entry.name.startswith("_") or entry.suffix == ".py":
                continue
            dotted = f"repro.{entry.name}"
            assert contract.subsystem_of(dotted) is not None, (
                f"subsystem {dotted} missing from [tool.repro.lint.layering]"
            )


class TestPlantedViolations:
    """DESIGN acceptance: each planted defect must produce a file:line
    finding naming the rule."""

    def plant_and_lint(self, tmp_path, relpath, code):
        # recreate the package chain so module resolution works
        parts = Path(relpath).parts
        directory = tmp_path
        for part in parts[:-1]:
            directory = directory / part
            directory.mkdir(exist_ok=True)
            (directory / "__init__.py").touch()
        path = directory / parts[-1]
        path.write_text(code)
        return lint_paths([tmp_path], contract=repo_contract())

    def test_wall_clock_caught(self, tmp_path):
        findings = self.plant_and_lint(
            tmp_path,
            "repro/hw/planted.py",
            "import time\n\nSTART = time.time()\n",
        )
        assert any(
            f.rule == "DET001" and f.line == 3 and "planted.py" in f.path
            for f in findings
        )

    def test_upward_import_caught(self, tmp_path):
        findings = self.plant_and_lint(
            tmp_path,
            "repro/hw/planted.py",
            "from repro.host.kernel import HostKernel\n",
        )
        assert any(
            f.rule == "LAY001" and f.line == 1 and "planted.py" in f.path
            for f in findings
        )

    def test_float_delay_caught(self, tmp_path):
        findings = self.plant_and_lint(
            tmp_path,
            "repro/hw/planted.py",
            "def proc():\n    yield Delay(0.5)\n",
        )
        assert any(
            f.rule == "UNIT001" and f.line == 2 and "planted.py" in f.path
            for f in findings
        )
