"""Fixture package trees for the layering pass (LAY001–LAY003)."""

import textwrap

from repro.lint.contract import ForbiddenCombo, LintContract
from repro.lint.findings import load_source
from repro.lint.layering import check_layering, resolve_imports


def write_module(root, dotted, code=""):
    """Create ``root/a/b/c.py`` (with __init__.py chain) for ``a.b.c``."""
    parts = dotted.split(".")
    directory = root
    for part in parts[:-1]:
        directory = directory / part
        directory.mkdir(exist_ok=True)
        init = directory / "__init__.py"
        if not init.exists():
            init.write_text("")
    path = directory / f"{parts[-1]}.py"
    path.write_text(textwrap.dedent(code))
    return path


def lint_module(path, contract):
    return check_layering(load_source(path), contract)


def rules_of(findings):
    return sorted(f.rule for f in findings)


class TestLay001:
    def test_upward_import_flagged(self, tmp_path):
        path = write_module(
            tmp_path, "repro.hw.core", "from repro.host import kernel\n"
        )
        findings = lint_module(path, LintContract())
        assert rules_of(findings) == ["LAY001"]
        assert "repro.hw may not import repro.host" in findings[0].message

    def test_relative_upward_import_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro.guest.workloads.fake",
            "def lazy():\n    from ...host.virtio import IoRequest\n",
        )
        findings = lint_module(path, LintContract())
        assert rules_of(findings) == ["LAY001"]

    def test_downward_import_clean(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro.host.kernel",
            "from repro.hw.machine import Machine\n"
            "from ..guest.vm import GuestVm\n",
        )
        assert lint_module(path, LintContract()) == []

    def test_intra_subsystem_import_clean(self, tmp_path):
        path = write_module(
            tmp_path, "repro.hw.machine", "from .core import PhysicalCore\n"
        )
        assert lint_module(path, LintContract()) == []

    def test_wildcard_layer(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro.experiments.fig99",
            "from repro.hw import machine\nfrom repro.host import kvm\n"
            "from repro.rmm import monitor\n",
        )
        assert lint_module(path, LintContract()) == []

    def test_one_finding_per_target_subsystem(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro.hw.core",
            "from repro.host import kernel\nfrom repro.host import kvm\n",
        )
        findings = lint_module(path, LintContract())
        assert rules_of(findings) == ["LAY001"]  # deduplicated

    def test_pragma_suppression(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro.hw.core",
            "from repro.host import kernel  # lint: allow(LAY001)\n",
        )
        assert lint_module(path, LintContract()) == []


class TestLay002:
    def contract(self):
        contract = LintContract()
        contract.forbidden_combos = [
            ForbiddenCombo(
                ["repro.guest.workloads", "repro.host", "repro.rmm"],
                ["repro.experiments"],
            )
        ]
        # give the fixture module a subsystem with permissive layering so
        # only the combination rule fires
        contract.layers["repro.experiments"] = ["*"]
        contract.layers["repro.host"] = ["*"]
        return contract

    def test_combo_flagged_outside_experiments(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro.host.glue",
            "from repro.guest.workloads import coremark\n"
            "from repro.host import kvm\n"
            "from repro.rmm import monitor\n",
        )
        findings = lint_module(path, self.contract())
        assert "LAY002" in rules_of(findings)

    def test_combo_allowed_in_experiments(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro.experiments.fig99",
            "from repro.guest.workloads import coremark\n"
            "from repro.host import kvm\n"
            "from repro.rmm import monitor\n",
        )
        assert lint_module(path, self.contract()) == []

    def test_partial_combo_clean(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro.host.glue",
            "from repro.host import kvm\nfrom repro.rmm import monitor\n",
        )
        assert lint_module(path, self.contract()) == []


class TestLay003:
    def test_unknown_subsystem_flagged(self, tmp_path):
        path = write_module(tmp_path, "repro.newthing.engine", "x = 1\n")
        findings = lint_module(path, LintContract())
        assert rules_of(findings) == ["LAY003"]

    def test_import_of_unknown_subsystem_flagged(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro.experiments.fig99",
            "from repro.newthing import engine\n",
        )
        findings = lint_module(path, LintContract())
        assert rules_of(findings) == ["LAY003"]

    def test_out_of_tree_script_skipped(self, tmp_path):
        path = tmp_path / "bench_script.py"
        path.write_text(
            "from repro.hw import machine\nfrom repro.host import kvm\n"
        )
        assert lint_module(path, LintContract()) == []


class TestResolveImports:
    def test_relative_resolution(self, tmp_path):
        path = write_module(
            tmp_path,
            "repro.guest.workloads.fake",
            "from ...sim.clock import ms\nfrom ..vm import GuestVm\n",
        )
        targets = {t for _, t in resolve_imports(load_source(path))}
        assert "repro.sim.clock" in targets
        assert "repro.guest.vm" in targets

    def test_package_init_relative(self, tmp_path):
        write_module(tmp_path, "repro.hw.core", "")
        init = tmp_path / "repro" / "hw" / "__init__.py"
        init.write_text("from .core import x\n")
        targets = {t for _, t in resolve_imports(load_source(init))}
        assert "repro.hw.core" in targets
