"""SEED001–SEED003: seed-discipline pass."""

from pathlib import Path

from repro.lint import DomainContract, LintContract, lint_paths, load_contract

REPO_ROOT = Path(__file__).resolve().parents[2]


def repo_contract():
    contract = load_contract(REPO_ROOT)
    assert "repro.sim.rng" in contract.domains.seed_roots
    return contract


def plant(tmp_path, relpath, code):
    parts = Path(relpath).parts
    directory = tmp_path
    for part in parts[:-1]:
        directory = directory / part
        directory.mkdir(exist_ok=True)
        init = directory / "__init__.py"
        if not init.exists():
            init.touch()
    (directory / parts[-1]).write_text(code)


def lint_tree(tmp_path, contract=None, rules=None):
    return lint_paths(
        [tmp_path],
        contract=contract or repo_contract(),
        passes=["seeds"],
        rules=rules,
    )


class TestSeed001RootFactories:
    def test_factory_outside_seed_roots_caught(self, tmp_path):
        plant(
            tmp_path,
            "repro/guest/planted.py",
            "from repro.sim.rng import RngFactory\n"
            "\n"
            "rng = RngFactory(7)\n",
        )
        findings = lint_tree(tmp_path, rules=["SEED001"])
        assert [f.line for f in findings] == [3]

    def test_factory_inside_seed_root_fine(self, tmp_path):
        plant(
            tmp_path,
            "repro/experiments/system.py",
            "from repro.sim.rng import RngFactory\n"
            "\n"
            "def build(seed):\n"
            "    return RngFactory(seed)\n",
        )
        assert lint_tree(tmp_path, rules=["SEED001"]) == []

    def test_non_repro_scripts_exempt(self, tmp_path):
        plant(
            tmp_path,
            "scratch.py",
            "from repro.sim.rng import RngFactory\n"
            "rng = RngFactory(0)\n",
        )
        assert lint_tree(tmp_path, rules=["SEED001"]) == []


class TestSeed002ForeignStreams:
    def contract(self):
        return LintContract(
            domains=DomainContract(
                streams={"hostsched": "host", "arrivals": "shared"},
            )
        )

    def test_foreign_namespace_caught(self, tmp_path):
        plant(
            tmp_path,
            "repro/guest/planted.py",
            "def draw(machine):\n"
            '    return machine.rng.stream("hostsched:ticks")\n',
        )
        findings = lint_tree(
            tmp_path, contract=self.contract(), rules=["SEED002"]
        )
        assert [f.line for f in findings] == [2]
        assert "'host'" in findings[0].message

    def test_own_namespace_fine(self, tmp_path):
        plant(
            tmp_path,
            "repro/host/planted.py",
            "def draw(machine):\n"
            '    return machine.rng.stream("hostsched:ticks")\n',
        )
        assert (
            lint_tree(tmp_path, contract=self.contract(), rules=["SEED002"])
            == []
        )

    def test_shared_namespace_fine(self, tmp_path):
        plant(
            tmp_path,
            "repro/guest/planted.py",
            "def draw(machine):\n"
            '    return machine.rng.stream(f"arrivals:{0}")\n',
        )
        assert (
            lint_tree(tmp_path, contract=self.contract(), rules=["SEED002"])
            == []
        )


class TestSeed003LiteralPrefixes:
    def test_bare_variable_name_caught(self, tmp_path):
        plant(
            tmp_path,
            "repro/guest/planted.py",
            "def draw(machine, name):\n"
            "    return machine.rng.stream(name)\n",
        )
        findings = lint_tree(tmp_path, rules=["SEED003"])
        assert [f.line for f in findings] == [2]

    def test_fstring_leading_placeholder_caught(self, tmp_path):
        plant(
            tmp_path,
            "repro/guest/planted.py",
            "def draw(machine, tenant):\n"
            '    return machine.rng.stream(f"{tenant}:arrivals")\n',
        )
        findings = lint_tree(tmp_path, rules=["SEED003"])
        assert [f.line for f in findings] == [2]

    def test_fstring_open_namespace_token_caught(self, tmp_path):
        # f"fault{i}:x" — the namespace token itself is partly dynamic
        plant(
            tmp_path,
            "repro/guest/planted.py",
            "def draw(machine, i):\n"
            '    return machine.rng.stream(f"fault{i}:x")\n',
        )
        findings = lint_tree(tmp_path, rules=["SEED003"])
        assert [f.line for f in findings] == [2]

    def test_fstring_closed_namespace_fine(self, tmp_path):
        plant(
            tmp_path,
            "repro/guest/planted.py",
            "def draw(machine, tenant):\n"
            '    return machine.rng.stream(f"arrivals:{tenant}")\n',
        )
        assert lint_tree(tmp_path, rules=["SEED003"]) == []

    def test_plain_literal_fine(self, tmp_path):
        plant(
            tmp_path,
            "repro/guest/planted.py",
            "def draw(machine):\n"
            '    return machine.rng.fork("fault")\n',
        )
        assert lint_tree(tmp_path, rules=["SEED003"]) == []

    def test_forked_local_is_tracked_as_rng(self, tmp_path):
        plant(
            tmp_path,
            "repro/guest/planted.py",
            "def draw(machine, name):\n"
            '    child = machine.rng.fork("fault")\n'
            "    return child.stream(name)\n",
        )
        findings = lint_tree(tmp_path, rules=["SEED003"])
        assert [f.line for f in findings] == [3]

    def test_derive_seed_dynamic_kind_caught(self, tmp_path):
        plant(
            tmp_path,
            "repro/guest/planted.py",
            "from repro.sim.rng import derive_seed\n"
            "\n"
            "def child(seed, kind):\n"
            "    return derive_seed(seed, kind)\n",
        )
        findings = lint_tree(tmp_path, rules=["SEED003"])
        assert [f.line for f in findings] == [4]

    def test_derive_seed_literal_kind_fine(self, tmp_path):
        plant(
            tmp_path,
            "repro/guest/planted.py",
            "from repro.sim.rng import derive_seed\n"
            "\n"
            "def child(seed):\n"
            '    return derive_seed(seed, "arrivals")\n',
        )
        assert lint_tree(tmp_path, rules=["SEED003"]) == []
