"""Suppression policy: pragmas, fingerprints, and the expiring baseline."""

import datetime
from pathlib import Path

import pytest

from repro.lint import lint_paths
from repro.lint.findings import Finding, fingerprint
from repro.lint.suppress import (
    Baseline,
    BaselineEntry,
    apply_baseline,
    load_baseline,
)

TODAY = datetime.date(2026, 6, 1)


def write(tmp_path, name, code):
    path = tmp_path / name
    path.write_text(code)
    return path


def entry_for(finding, expires, rule=None):
    return BaselineEntry(
        rule=rule or finding.rule,
        path=finding.path,
        fingerprint=fingerprint(finding),
        reason="test",
        expires=expires,
    )


class TestFingerprint:
    def test_line_number_free(self):
        a = Finding("src/repro/hw/x.py", 10, "DET001", "msg")
        b = Finding("src/repro/hw/x.py", 99, "DET001", "msg")
        assert fingerprint(a) == fingerprint(b)

    def test_absolute_and_relative_paths_agree(self):
        a = Finding("/root/repo/src/repro/hw/x.py", 1, "DET001", "msg")
        b = Finding("src/repro/hw/x.py", 1, "DET001", "msg")
        assert fingerprint(a) == fingerprint(b)

    def test_rule_and_message_distinguish(self):
        base = Finding("src/x.py", 1, "DET001", "msg")
        assert fingerprint(base) != fingerprint(
            Finding("src/x.py", 1, "DET002", "msg")
        )
        assert fingerprint(base) != fingerprint(
            Finding("src/x.py", 1, "DET001", "other")
        )


class TestPragmas:
    def test_ignore_with_reason_suppresses(self, tmp_path):
        path = write(
            tmp_path,
            "planted.py",
            "import time\n"
            "START = time.time()  # lint: ignore[DET001] reason=calibration\n",
        )
        assert lint_paths([path]) == []

    def test_ignore_without_rule_id_is_sup001(self, tmp_path):
        path = write(tmp_path, "planted.py", "x = 1  # lint: ignore\n")
        findings = lint_paths([path])
        assert [f.rule for f in findings] == ["SUP001"]
        assert findings[0].line == 1

    def test_ignore_with_invalid_rule_id_is_sup001(self, tmp_path):
        path = write(
            tmp_path, "planted.py", "x = 1  # lint: ignore[BOGUS]\n"
        )
        findings = lint_paths([path])
        assert [f.rule for f in findings] == ["SUP001"]

    def test_legacy_allow_still_works(self, tmp_path):
        path = write(
            tmp_path,
            "planted.py",
            "import time\nSTART = time.time()  # lint: allow(DET001)\n",
        )
        assert lint_paths([path]) == []


class TestBaseline:
    def finding(self):
        return Finding("src/repro/hw/machine.py", 41, "SEED001", "planted")

    def test_active_entry_suppresses(self):
        f = self.finding()
        baseline = Baseline(
            path=None, entries=[entry_for(f, datetime.date(2027, 1, 1))]
        )
        remaining, suppressed = apply_baseline([f], baseline, today=TODAY)
        assert remaining == []
        assert suppressed == 1

    def test_expired_entry_becomes_base001(self):
        f = self.finding()
        baseline = Baseline(
            path=None, entries=[entry_for(f, datetime.date(2026, 1, 1))]
        )
        remaining, suppressed = apply_baseline([f], baseline, today=TODAY)
        assert suppressed == 0
        assert [r.rule for r in remaining] == ["BASE001"]
        assert remaining[0].line == f.line

    def test_stale_entry_becomes_base002(self):
        f = self.finding()
        baseline = Baseline(
            path=Path("lint-baseline.toml"),
            entries=[entry_for(f, datetime.date(2027, 1, 1))],
        )
        remaining, suppressed = apply_baseline([], baseline, today=TODAY)
        assert suppressed == 0
        assert [r.rule for r in remaining] == ["BASE002"]
        assert f.path in remaining[0].message

    def test_rule_mismatch_does_not_suppress(self):
        f = self.finding()
        wrong = BaselineEntry(
            rule="DET001",
            path=f.path,
            fingerprint=fingerprint(f),
            reason="test",
            expires=datetime.date(2027, 1, 1),
        )
        baseline = Baseline(path=None, entries=[wrong])
        remaining, suppressed = apply_baseline([f], baseline, today=TODAY)
        assert suppressed == 0
        # the finding survives AND the entry is stale
        assert sorted(r.rule for r in remaining) == ["BASE002", "SEED001"]


class TestBaselineFile:
    def test_missing_file_is_empty(self, tmp_path):
        baseline = load_baseline(tmp_path / "lint-baseline.toml")
        assert baseline.entries == []

    def write_baseline(self, tmp_path, body):
        path = tmp_path / "lint-baseline.toml"
        path.write_text(body)
        return path

    def test_well_formed_entry_parses(self, tmp_path):
        path = self.write_baseline(
            tmp_path,
            '[[entry]]\nrule = "SEED001"\npath = "src/x.py"\n'
            'fingerprint = "abcd"\nreason = "legacy"\n'
            "expires = 2027-01-01\n",
        )
        baseline = load_baseline(path)
        assert len(baseline.entries) == 1
        assert baseline.entries[0].expires == datetime.date(2027, 1, 1)

    def test_missing_reason_rejected(self, tmp_path):
        path = self.write_baseline(
            tmp_path,
            '[[entry]]\nrule = "SEED001"\npath = "src/x.py"\n'
            'fingerprint = "abcd"\nexpires = 2027-01-01\n',
        )
        with pytest.raises(ValueError, match="missing required key"):
            load_baseline(path)

    def test_empty_reason_rejected(self, tmp_path):
        path = self.write_baseline(
            tmp_path,
            '[[entry]]\nrule = "SEED001"\npath = "src/x.py"\n'
            'fingerprint = "abcd"\nreason = "  "\n'
            "expires = 2027-01-01\n",
        )
        with pytest.raises(ValueError, match="empty reason"):
            load_baseline(path)

    def test_string_expiry_rejected(self, tmp_path):
        path = self.write_baseline(
            tmp_path,
            '[[entry]]\nrule = "SEED001"\npath = "src/x.py"\n'
            'fingerprint = "abcd"\nreason = "legacy"\n'
            'expires = "2027-01-01"\n',
        )
        with pytest.raises(ValueError, match="TOML date"):
            load_baseline(path)


class TestRepoBaseline:
    """The checked-in baseline itself obeys the policy."""

    REPO_ROOT = Path(__file__).resolve().parents[2]

    def test_repo_baseline_parses_and_is_unexpired(self):
        # the baseline is currently *empty* (the last grandfathered
        # SEED001 was fixed via rng.bare_factory) -- parsing must still
        # work, and any future entry must carry an unexpired loan
        baseline = load_baseline(self.REPO_ROOT / "lint-baseline.toml")
        for entry in baseline.entries:
            assert entry.expires >= datetime.date(2026, 8, 7), (
                f"baseline entry {entry.fingerprint} expired "
                f"{entry.expires}: fix the finding or renew deliberately"
            )
