"""Tests for the shared-memory RPC transports."""

import pytest

from repro.rpc import AsyncRpcPort, CompletionSlot, SyncRpcPort
from repro.sim import SimulationError, Simulator


class TestSyncPort:
    def test_post_and_respond(self):
        sim = Simulator()
        port = SyncRpcPort(sim, "p")
        request = port.post(("cmd", (1, 2)))
        assert request.payload == ("cmd", (1, 2))
        assert not request.done.fired
        SyncRpcPort.respond(request, "result")
        assert request.done.fired
        assert request.response == "result"

    def test_call_count(self):
        sim = Simulator()
        port = SyncRpcPort(sim, "p")
        for _ in range(3):
            port.post(None)
        assert port.call_count == 3


class TestAsyncPort:
    def make_port(self, notifications):
        sim = Simulator()
        return sim, AsyncRpcPort(sim, "vcpu0", notifications.append)

    def test_submit_complete_collect(self):
        notifications = []
        sim, port = self.make_port(notifications)
        slot = port.submit("run-args")
        assert slot.state == "submitted"
        assert slot.payload == "run-args"
        port.complete("exit-record")
        assert slot.completed
        assert notifications == [port]
        assert port.collect() == "exit-record"
        assert slot.state == "idle"

    def test_double_submit_rejected(self):
        notifications = []
        sim, port = self.make_port(notifications)
        port.submit("a")
        with pytest.raises(SimulationError, match="outstanding"):
            port.submit("b")

    def test_slot_timestamps(self):
        notifications = []
        sim, port = self.make_port(notifications)
        sim.schedule(100, lambda: None)
        sim.run()
        port.submit("a")
        assert port.slot.submitted_at == 100
        sim.schedule(50, lambda: port.complete("r"))
        sim.run()
        assert port.slot.completed_at == 150

    def test_counts(self):
        notifications = []
        sim, port = self.make_port(notifications)
        for i in range(3):
            port.submit(i)
            port.complete(i)
            port.collect()
        assert port.submit_count == 3
        assert port.complete_count == 3

    def test_collect_before_completion_rejected(self):
        notifications = []
        sim, port = self.make_port(notifications)
        with pytest.raises(SimulationError, match="'idle' slot"):
            port.collect()
        port.submit("a")
        with pytest.raises(SimulationError, match="'submitted' slot"):
            port.collect()
        port.complete("r")
        assert port.collect() == "r"
        # idle again after a successful collect: a second read is a bug
        with pytest.raises(SimulationError, match="'idle' slot"):
            port.collect()

    def test_double_completion_rejected(self):
        notifications = []
        sim, port = self.make_port(notifications)
        port.submit("a")
        port.complete("r")
        with pytest.raises(SimulationError, match="double completion"):
            port.complete("r2")
        # and completing with no submitted call at all is also rejected
        port.collect()
        with pytest.raises(SimulationError, match="double completion"):
            port.complete("r3")

    def test_faulted_completion_stalls_publication(self):
        notifications = []
        sim, port = self.make_port(notifications)
        port.completion_fault = lambda p, result: (500, result)
        port.submit("a")
        port.complete("r")
        # the exit record is not visible until the stalled write lands
        assert port.slot.state == "submitted"
        assert notifications == []
        sim.run()
        assert port.slot.completed
        assert notifications == [port]
        assert port.collect() == "r"

    def test_faulted_completion_substitutes_result(self):
        notifications = []
        sim, port = self.make_port(notifications)
        port.completion_fault = lambda p, result: (0, "garbage")
        port.submit("a")
        port.complete("r")
        assert port.collect() == "garbage"

    def test_claimed_event_fresh_per_submit(self):
        notifications = []
        sim, port = self.make_port(notifications)
        slot = port.submit("a")
        first_claimed = slot.claimed
        port.complete("r")
        slot.claimed.fire("r")
        port.collect()
        slot = port.submit("b")
        assert slot.claimed is not first_claimed
        assert not slot.claimed.fired
