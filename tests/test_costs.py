"""Tests for the calibrated cost model."""

import pytest

from repro.costs import CostModel, DEFAULT_COSTS
from repro.experiments.config import PAPER_TARGETS


class TestCostModel:
    def test_sync_round_trip_matches_paper(self):
        measured = DEFAULT_COSTS.sync_rpc_round_trip()
        assert measured == pytest.approx(
            PAPER_TARGETS["table2_sync_ns"], rel=0.1
        )

    def test_same_core_call_exceeds_table2_floor(self):
        round_trip = DEFAULT_COSTS.world_switch.round_trip()
        assert round_trip > PAPER_TARGETS["table2_samecore_ns"] * 0.95

    def test_mitigation_flush_dominates_world_switch(self):
        ws = DEFAULT_COSTS.world_switch
        assert ws.mitigation_flush_ns > ws.one_way(flush=False)

    def test_with_overrides_is_a_copy(self):
        custom = DEFAULT_COSTS.with_overrides(rpc_write_ns=999)
        assert custom.rpc_write_ns == 999
        assert DEFAULT_COSTS.rpc_write_ns != 999
        assert custom.rpc_read_ns == DEFAULT_COSTS.rpc_read_ns

    def test_frozen(self):
        with pytest.raises(Exception):
            DEFAULT_COSTS.rpc_write_ns = 1

    def test_tick_period_is_250hz(self):
        # the paper's >90%-timer-exit observation assumes a periodic
        # tick; CONFIG_HZ=250 makes Table 4's counts come out right
        assert DEFAULT_COSTS.guest_tick_period_ns == 4_000_000

    def test_exit_cost_structure(self):
        costs = DEFAULT_COSTS
        # the realm-exit host path must dominate the transport, as the
        # run-to-run measurements (26 us vs 2.8 us transport) require
        assert costs.kvm_realm_exit_loop_ns > 3 * 2_758
        # delegation must be much cheaper than one exit round trip
        assert costs.rmm_vtimer_emul_ns + costs.rmm_intercept_ns < 1_000
