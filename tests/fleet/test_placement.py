"""Core-gap-aware placement: capacity, packing, admission control."""

import pytest

from repro.experiments.config import SystemConfig
from repro.fleet import (
    FleetAdmissionError,
    ScenarioSpec,
    TenantSpec,
    VmSpec,
    place,
    server_capacity,
)


def idle(vm, index):
    return None


def tenant(name, n_vcpus):
    return TenantSpec(vm=VmSpec(name, n_vcpus, idle))


def scenario(servers, tenants, placement="pack"):
    return ScenarioSpec(
        servers=tuple(servers), tenants=tuple(tenants), placement=placement
    )


GAPPED_8 = SystemConfig(mode="gapped", n_cores=8)  # 7 free (1 host core)
SHARED_8 = SystemConfig(mode="shared", n_cores=8)  # all 8 usable


class TestServerCapacity:
    def test_gapped_loses_the_host_cores(self):
        assert server_capacity(GAPPED_8) == 7
        assert (
            server_capacity(
                SystemConfig(mode="gapped", n_cores=8, n_host_cores=2)
            )
            == 6
        )

    def test_shared_offers_every_core(self):
        assert server_capacity(SHARED_8) == 8


class TestPack:
    def test_best_fit_consolidates(self):
        # both tenants fit on one server; the second goes to the fuller one
        spec = scenario([GAPPED_8, GAPPED_8], [tenant("a", 3), tenant("b", 3)])
        placement = place(spec)
        assert placement.assignments == (("a", 0), ("b", 0))
        assert placement.free == (1, 7)

    def test_overflow_spills_to_next_server(self):
        spec = scenario(
            [GAPPED_8, GAPPED_8],
            [tenant("a", 4), tenant("b", 4), tenant("c", 4)],
        )
        placement = place(spec)
        assert placement.server_of("a") == 0
        assert placement.server_of("b") == 1
        # c fits neither remainder (3, 3): best-fit leaves it out
        assert placement.server_of("c") is None
        assert placement.rejected[0][0] == "c"

    def test_rejection_reason_names_the_shortfall(self):
        spec = scenario([GAPPED_8], [tenant("big", 12)])
        placement = place(spec)
        (name, reason), = placement.rejected
        assert name == "big"
        assert "12 core(s)" in reason


class TestSpread:
    def test_emptiest_first_balances(self):
        spec = scenario(
            [GAPPED_8, GAPPED_8],
            [tenant("a", 3), tenant("b", 3)],
            placement="spread",
        )
        placement = place(spec)
        assert placement.assignments == (("a", 0), ("b", 1))
        assert placement.free == (4, 4)

    def test_ties_break_to_lowest_index(self):
        spec = scenario(
            [SHARED_8, SHARED_8], [tenant("a", 2)], placement="spread"
        )
        assert place(spec).server_of("a") == 0


class TestDeterminism:
    def test_same_spec_same_placement(self):
        spec = scenario(
            [GAPPED_8, SHARED_8, GAPPED_8],
            [tenant(f"t{i}", 1 + i % 3) for i in range(6)],
        )
        assert place(spec) == place(spec)


class TestAdmissionControl:
    def test_strict_boot_refuses_oversized_scenarios(self):
        spec = scenario([GAPPED_8], [tenant("big", 12)])
        with pytest.raises(FleetAdmissionError, match="big"):
            spec.boot()

    def test_lenient_boot_serves_the_placeable_subset(self):
        from repro.sim.clock import ms

        spec = ScenarioSpec(
            servers=(GAPPED_8,),
            tenants=(tenant("ok", 2), tenant("big", 12)),
            duration_ns=ms(5),
        )
        fleet = spec.boot(admission="best_effort")
        result = fleet.run()
        assert result.rejected == ["big"]
        names = [vm.spec.name for server in fleet.servers for vm in server.vms]
        assert names == ["ok"]
