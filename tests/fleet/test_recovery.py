"""The recovery supervisor keeps the books straight across a restore.

A mid-traffic failure triggers restore-from-checkpoint: the failed
timeline is discarded and replayed, so every conserved quantity must
read as if the failure window simply took longer -- offered ==
completed + dropped per tenant, the published ``fleet_*`` counters
agree with per-tenant stats, the core-gap audit stays clean, and
recovery downtime is charged against SLOs.
"""

import pytest

from repro.experiments.config import SystemConfig
from repro.faults import FaultKind, FaultPlan, FaultSpec
from repro.fleet import (
    RecoveryError,
    RecoveryPolicy,
    ScenarioSpec,
    place,
    redis_tenant,
    run_server_with_recovery,
    uniform_rack,
)
from repro.sim.clock import ms
from repro.sim.engine import SimulationError


def fleet_spec(duration_ns=ms(12)) -> ScenarioSpec:
    template = SystemConfig(
        mode="gapped", n_cores=6, n_host_cores=2, seed=0, trace_schedules=True
    )
    return ScenarioSpec(
        servers=uniform_rack(1, template),
        tenants=(
            redis_tenant("t0", 2, rate_rps=20000.0),
            redis_tenant("t1", 2, rate_rps=12000.0),
        ),
        duration_ns=duration_ns,
        drain_ns=ms(4),
    )


def dead_core_plan(after_runs=50) -> FaultPlan:
    return FaultPlan.of(
        "dead-core", FaultSpec(FaultKind.CORE_STALL, after_runs=after_runs)
    )


def supervised(spec, plan=None, **policy_kwargs):
    policy_kwargs.setdefault("checkpoint_period_ns", ms(2))
    placement = place(spec)
    return run_server_with_recovery(
        spec, placement, 0, RecoveryPolicy(**policy_kwargs), plan=plan
    )


class TestRestoreConservation:
    def test_mid_traffic_restore_conserves_request_accounting(self):
        spec = fleet_spec()
        report = supervised(
            spec, plan=dead_core_plan(), restore_penalty_ns=ms(1)
        )
        # the fault actually fired and forced at least one restore
        assert report.restores, "dead-core plan produced no restore"
        assert report.recovered

        # per-tenant conservation: offered == completed + dropped
        for tenant in report.tenants:
            assert tenant.issued == tenant.completed + tenant.dropped

        # published metrics agree with per-tenant stats across the
        # restore boundary (no request double-counted from the replay,
        # none lost in the rollback)
        tracer = report.server.system.tracer
        total_completed = sum(t.completed for t in report.tenants)
        total_issued = sum(t.issued for t in report.tenants)
        total_dropped = sum(t.dropped for t in report.tenants)
        assert tracer.counters.get("fleet_request_count", 0) == total_completed
        assert tracer.gauges["fleet_offered_count"] == total_issued
        assert tracer.gauges["fleet_dropped_count"] == total_dropped
        assert total_issued == total_completed + total_dropped

    def test_recovery_metrics_published(self):
        spec = fleet_spec()
        report = supervised(
            spec, plan=dead_core_plan(), restore_penalty_ns=ms(1)
        )
        gauges = report.server.system.tracer.gauges
        assert gauges["snap_checkpoint_count"] == report.checkpoints
        assert gauges["fleet_restore_count"] == len(report.restores)
        assert gauges["fleet_recovery_downtime_ns"] == report.downtime_ns
        assert (
            gauges["fleet_recovery_slo_violation_count"]
            == report.recovery_slo_violations
        )
        for event in report.restores:
            assert event.lost_ns == event.failed_at_ns - event.checkpoint_ns
            assert event.downtime_ns == event.lost_ns + ms(1)

    def test_recovery_downtime_charged_against_slos(self):
        spec = fleet_spec()
        report = supervised(
            spec, plan=dead_core_plan(), restore_penalty_ns=ms(1)
        )
        # the serving rate is tens of krps; a multi-ms outage window
        # necessarily contains completions, and each one is charged
        assert report.recovery_slo_violations > 0

    def test_core_gap_audit_clean_across_restore(self):
        spec = fleet_spec()
        report = supervised(spec, plan=dead_core_plan())
        assert report.audit_problems == []


class TestSupervisorBehaviour:
    def test_fault_free_supervision_takes_no_restores(self):
        report = supervised(fleet_spec(duration_ns=ms(8)))
        assert report.restores == []
        assert report.checkpoints >= 4  # boot + one per period
        assert report.recovery_slo_violations == 0
        assert report.recovered

    def test_restore_resumes_from_last_checkpoint(self):
        spec = fleet_spec()
        report = supervised(spec, plan=dead_core_plan())
        for event in report.restores:
            assert event.checkpoint_ns < event.failed_at_ns
            assert "dead dedicated core" in event.reason or "run error" in event.reason

    def test_max_restores_exhaustion_raises(self):
        # a fault plan the supervisor cannot outrun: with zero allowed
        # restores the first failure is terminal
        spec = fleet_spec()
        with pytest.raises(RecoveryError, match="giving up"):
            supervised(spec, plan=dead_core_plan(), max_restores=0)

    def test_policy_validation(self):
        with pytest.raises(SimulationError):
            RecoveryPolicy(checkpoint_period_ns=0)
        with pytest.raises(SimulationError):
            RecoveryPolicy(checkpoint_period_ns=1, restore_penalty_ns=-1)
        with pytest.raises(SimulationError):
            RecoveryPolicy(checkpoint_period_ns=1, max_restores=-1)


class TestChaosWithRecoverySmoke:
    """The CI smoke: one fault plan, supervisor enabled, clean audits,
    bounded time (the supervisor never hangs -- failures either restore
    or raise)."""

    def test_dead_core_chaos_recovers_cleanly(self):
        spec = fleet_spec(duration_ns=ms(10))
        report = supervised(
            spec,
            plan=dead_core_plan(after_runs=30),
            checkpoint_period_ns=ms(2),
            restore_penalty_ns=ms(1),
            max_restores=3,
        )
        assert report.recovered
        assert report.audit_problems == []
        assert report.restores
        assert all(t.issued > 0 for t in report.tenants)
