"""Spec validation and the convenience constructors."""

import pytest

from repro.experiments.config import SystemConfig
from repro.fleet import (
    DeviceSpec,
    ScenarioSpec,
    TenantSpec,
    TrafficSpec,
    VmSpec,
    redis_tenant,
    uniform_rack,
)
from repro.guest.workloads.redis import OP_SET


def idle(vm, index):
    return None


class TestDeviceSpec:
    def test_known_kinds(self):
        for kind in ("virtio-net", "virtio-blk", "sriov-nic"):
            assert DeviceSpec(kind).kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown device kind"):
            DeviceSpec("pcie-doorbell")


class TestVmSpec:
    def test_requires_at_least_one_vcpu(self):
        with pytest.raises(ValueError, match="n_vcpus"):
            VmSpec("t", 0, idle)


class TestTrafficSpec:
    def test_rate_must_be_positive(self):
        with pytest.raises(ValueError, match="rate_rps"):
            TrafficSpec(rate_rps=0.0)

    def test_only_poisson_arrivals(self):
        with pytest.raises(ValueError, match="arrival process"):
            TrafficSpec(rate_rps=1000.0, process="bursty")


class TestScenarioSpec:
    def test_needs_servers(self):
        with pytest.raises(ValueError, match="at least one server"):
            ScenarioSpec(servers=(), tenants=())

    def test_rejects_duplicate_tenant_names(self):
        servers = (SystemConfig(mode="shared", n_cores=4),)
        twin = TenantSpec(vm=VmSpec("t", 1, idle))
        with pytest.raises(ValueError, match="duplicate tenant names"):
            ScenarioSpec(servers=servers, tenants=(twin, twin))

    def test_rejects_unknown_placement(self):
        servers = (SystemConfig(mode="shared", n_cores=4),)
        with pytest.raises(ValueError, match="placement strategy"):
            ScenarioSpec(servers=servers, tenants=(), placement="random")


class TestRedisTenant:
    def test_shape(self):
        tenant = redis_tenant("acme", n_vcpus=4, rate_rps=5000.0, op=OP_SET)
        assert tenant.name == "acme"
        assert tenant.vm.n_vcpus == 4
        assert tenant.vm.slo_ms == 2.0
        assert tenant.vm.devices[0].kind == "sriov-nic"
        assert tenant.traffic.device == tenant.vm.devices[0].name
        assert tenant.traffic.op is OP_SET


class TestUniformRack:
    def test_per_server_seeds_distinct_and_stable(self):
        template = SystemConfig(mode="gapped", n_cores=8)
        rack = uniform_rack(3, template, seed=5)
        again = uniform_rack(3, template, seed=5)
        seeds = [config.seed for config in rack]
        assert len(set(seeds)) == 3
        assert seeds == [config.seed for config in again]

    def test_scenario_seed_changes_every_server(self):
        template = SystemConfig(mode="gapped", n_cores=8)
        a = {config.seed for config in uniform_rack(2, template, seed=0)}
        b = {config.seed for config in uniform_rack(2, template, seed=1)}
        assert a.isdisjoint(b)

    def test_needs_a_server(self):
        with pytest.raises(ValueError, match="n_servers"):
            uniform_rack(0, SystemConfig(mode="shared", n_cores=4))
