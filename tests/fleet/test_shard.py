"""Per-server sharding: sharded == serial, and merges are order-blind.

A scenario's servers are independent simulations, so running each as
its own shard must reproduce ``Fleet.run``'s results bit-identically,
and the merged rack timeline must be a pure function of the shard
outcomes — never of which worker finished first.
"""

import pytest

from repro.experiments.runner import canonical_digest, run_cells
from repro.fleet import boot_scenario, run_scenario_sharded
from repro.fleet.shard import (
    ShardOutcome,
    build_scenario,
    merge_shards,
    merge_timelines,
    shard_cells,
)
from repro.fleet.sweep import consolidation_scenario
from repro.sim.clock import ms

BUILDER = "repro.fleet.sweep:consolidation_scenario"
KWARGS = dict(level=1, mode="gapped", n_servers=2, duration_ns=ms(40))


class TestShardedEqualsSerial:
    def test_tenant_rows_bit_identical(self):
        sharded = run_scenario_sharded(BUILDER, KWARGS, jobs=1)
        serial = boot_scenario(consolidation_scenario(**KWARGS)).run()
        assert canonical_digest(sharded.result.tenants) == canonical_digest(
            serial.tenants
        )
        assert sharded.result.rejected == serial.rejected

    def test_pool_matches_inline(self):
        cells = shard_cells(BUILDER, KWARGS, n_servers=2)
        inline = run_cells(cells, jobs=1)
        pooled = run_cells(cells, jobs=2)
        assert canonical_digest(inline) == canonical_digest(pooled)


class TestMerge:
    def _outcomes(self):
        cells = shard_cells(BUILDER, KWARGS, n_servers=2)
        return run_cells(cells, jobs=1)

    def test_merge_is_blind_to_completion_order(self):
        outcomes = self._outcomes()
        forward = merge_shards(outcomes, rejected=[])
        backward = merge_shards(list(reversed(outcomes)), rejected=[])
        assert canonical_digest(forward) == canonical_digest(backward)
        # tenant rows come out in server order, Fleet.run's order
        assert [t.server for t in forward.result.tenants] == sorted(
            t.server for t in forward.result.tenants
        )

    def test_timeline_is_timestamp_ordered(self):
        outcomes = self._outcomes()
        timeline = merge_timelines(outcomes)
        assert timeline
        stamps = [int(line.split("|", 1)[0]) for line in timeline]
        assert stamps == sorted(stamps)
        # both servers contribute
        servers = {line.split("|")[1] for line in timeline}
        assert servers == {"s0", "s1"}

    def test_counters_are_per_server(self):
        merged = merge_shards(self._outcomes(), rejected=[])
        assert any(k.startswith("server0:") for k in merged.counters)
        assert any(k.startswith("server1:") for k in merged.counters)
        assert merged.end_ns > 0

    def test_synthetic_tie_uses_server_then_arrival(self):
        a = ShardOutcome(
            server=1,
            tenants=[],
            timeline=[(5, "x"), (5, "y")],
            counters={},
            end_ns=5,
        )
        b = ShardOutcome(
            server=0, tenants=[], timeline=[(5, "z")], counters={}, end_ns=5
        )
        assert merge_timelines([a, b]) == ["5|s0|z", "5|s1|x", "5|s1|y"]


class TestBuilderContract:
    def test_non_scenario_builder_rejected(self):
        with pytest.raises(TypeError, match="expected ScenarioSpec"):
            build_scenario("repro.sim.clock:ms", {"value": 1})
