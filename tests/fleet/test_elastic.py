"""Elastic fleet lifecycle: verbs, churn, conservation, determinism."""

import warnings

import pytest

from repro.experiments.config import SystemConfig
from repro.fleet.elastic import (
    AutoscalePolicy,
    ChurnSpec,
    FleetController,
    RebalancePolicy,
    churn_schedule,
    default_churn_tenant,
    elastic_cells,
    run_elastic,
)
from repro.fleet.spec import (
    ScenarioSpec,
    redis_tenant,
    resolve_admission,
    uniform_rack,
)
from repro.sim.clock import ms
from repro.sim.engine import SimulationError


def rack(
    tenants,
    n_servers=2,
    n_cores=8,
    seed=3,
    placement="spread",
    duration_ns=ms(15),
):
    return ScenarioSpec(
        servers=uniform_rack(
            n_servers, SystemConfig(mode="gapped", n_cores=n_cores), seed=seed
        ),
        tenants=tuple(tenants),
        duration_ns=duration_ns,
        seed=seed,
        placement=placement,
    )


class TestStaticBoot:
    def test_boot_populates_timeline_and_counts(self):
        spec = rack([redis_tenant("a", 2, 2000.0), redis_tenant("b", 2, 2000.0)])
        controller = FleetController(spec)
        admits = [e for e in controller.timeline if e.verb == "admit"]
        assert [e.tenant for e in admits] == ["a", "b"]
        assert all(e.detail == "boot" for e in admits)
        assert controller.counts["admit"] == 2
        assert controller.fleet.controller is controller

    def test_scenario_boot_carries_its_controller(self):
        spec = rack([redis_tenant("a", 2, 2000.0)])
        fleet = spec.boot()
        assert isinstance(fleet.controller, FleetController)

    def test_strict_construction_refuses_oversized(self):
        from repro.fleet.placement import FleetAdmissionError

        spec = rack([redis_tenant("big", 12, 2000.0)], n_servers=1)
        with pytest.raises(FleetAdmissionError, match="big"):
            FleetController(spec)


class TestLifecycleVerbs:
    def test_admit_mid_run_serves_and_conserves(self):
        spec = rack([redis_tenant("a", 2, 2000.0)])
        controller = FleetController(spec)
        controller.start_serving(spec.duration_ns)
        controller.advance_to(ms(5))
        index = controller.admit(redis_tenant("late", 2, 2000.0), ms(8))
        assert index is not None
        assert controller.where["late"] == index
        controller.advance_to(spec.duration_ns)
        controller.finish()
        outcome = controller.outcome()
        assert outcome.conservation_ok
        assert outcome.audit_problems == []
        late = next(r for r in outcome.rows if r.tenant == "late")
        assert late.issued > 0
        assert late.admitted_ns == ms(5)

    def test_admit_rejects_when_rack_is_full(self):
        spec = rack([redis_tenant("a", 6, 2000.0)], n_servers=1)
        controller = FleetController(spec)
        controller.start_serving(spec.duration_ns)
        assert controller.admit(redis_tenant("b", 3, 2000.0), ms(5)) is None
        assert controller.counts["reject"] == 1
        rejects = [e for e in controller.timeline if e.verb == "reject"]
        assert rejects and rejects[0].server == -1

    def test_evict_frees_capacity_and_records_departure(self):
        spec = rack([redis_tenant("a", 2, 2000.0), redis_tenant("b", 2, 2000.0)])
        controller = FleetController(spec)
        controller.start_serving(spec.duration_ns)
        controller.advance_to(ms(5))
        free_before = list(controller.free)
        server = controller.where["b"]
        controller.evict("b", drain_ns=ms(2), reason="test")
        assert "b" not in controller.where
        assert controller.free[server] == free_before[server] + 2
        controller.advance_to(spec.duration_ns)
        controller.finish()
        outcome = controller.outcome()
        assert outcome.conservation_ok
        assert outcome.audit_problems == []
        row = next(r for r in outcome.rows if r.tenant == "b")
        assert row.departed_ns == ms(5)

    def test_resize_shrinks_then_grows_through_hotplug(self):
        spec = rack([redis_tenant("a", 3, 2000.0)], n_servers=1)
        controller = FleetController(spec)
        controller.start_serving(spec.duration_ns)
        controller.advance_to(ms(3))
        assert controller.resize("a", 1) == 1
        assert controller.counts["resize_down"] == 2
        assert controller.active_vcpus["a"] == 1
        controller.advance_to(ms(6))
        assert controller.resize("a", 3) == 3
        assert controller.counts["resize_up"] == 2
        controller.advance_to(spec.duration_ns)
        controller.finish()
        outcome = controller.outcome()
        assert outcome.audit_problems == []
        assert outcome.conservation_ok
        row = next(r for r in outcome.rows if r.tenant == "a")
        assert row.resizes == 4

    def test_resize_never_parks_serving_vcpu0(self):
        spec = rack([redis_tenant("a", 2, 2000.0)], n_servers=1)
        controller = FleetController(spec)
        controller.start_serving(spec.duration_ns)
        controller.advance_to(ms(3))
        # target below 1 clamps: vCPU 0 keeps serving
        assert controller.resize("a", 0) == 1
        assert controller.active_vcpus["a"] == 1

    def test_grow_refused_when_cores_taken_meanwhile(self):
        # shrink frees a core, a newcomer takes every free core, growing
        # back is refused cleanly (typed refusal, not a sim abort)
        spec = rack([redis_tenant("a", 2, 2000.0)], n_servers=1, n_cores=4)
        controller = FleetController(spec)
        controller.start_serving(spec.duration_ns)
        controller.advance_to(ms(3))
        controller.resize("a", 1)
        free = controller.free[0]
        newcomer = redis_tenant("b", free, 1000.0)
        assert controller.admit(newcomer, ms(8)) is not None
        assert controller.resize("a", 2) == 1
        assert controller.counts["resize_refused"] == 1
        refusals = [
            e
            for e in controller.timeline
            if e.verb == "resize" and "refused" in e.detail
        ]
        assert len(refusals) == 1

    def test_migrate_moves_tenant_and_charges_blackout(self):
        spec = rack(
            [redis_tenant("big", 4, 4000.0), redis_tenant("small", 2, 2000.0)],
            n_cores=16,
            placement="pack",
        )
        controller = FleetController(spec)
        controller.start_serving(spec.duration_ns)
        controller.advance_to(ms(5))
        policy = RebalancePolicy(downtime_ns=ms(2), drain_ns=ms(2))
        assert controller.migrate("small", 1, ms(8), policy)
        assert controller.where["small"] == 1
        controller.advance_to(spec.duration_ns)
        controller.finish()
        outcome = controller.outcome()
        assert outcome.conservation_ok
        assert outcome.audit_problems == []
        row = next(r for r in outcome.rows if r.tenant == "small")
        assert row.migrations == 1
        assert row.servers == (0, 1)
        assert row.migration_slo_charge > 0
        migrates = [e for e in controller.timeline if e.verb == "migrate"]
        assert len(migrates) == 1 and "image" in migrates[0].detail

    def test_verbs_require_core_gapped_servers(self):
        spec = ScenarioSpec(
            servers=uniform_rack(
                1, SystemConfig(mode="shared", n_cores=8), seed=3
            ),
            tenants=(redis_tenant("a", 2, 2000.0),),
            duration_ns=ms(10),
            seed=3,
        )
        controller = FleetController(spec)
        controller.start_serving(spec.duration_ns)
        with pytest.raises(SimulationError, match="core-gapped"):
            controller.resize("a", 1)
        with pytest.raises(SimulationError, match="core-gapped"):
            controller.evict("a", drain_ns=0)


class TestChurnSchedule:
    CHURN = ChurnSpec(
        arrival_rate_per_s=200.0,
        mean_lifetime_ns=ms(20),
        tenant_factory=default_churn_tenant,
    )

    def test_same_seed_same_schedule(self):
        a = churn_schedule(self.CHURN, seed=5, horizon_ns=ms(100))
        b = churn_schedule(self.CHURN, seed=5, horizon_ns=ms(100))
        assert a == b

    def test_different_seeds_diverge(self):
        a = churn_schedule(self.CHURN, seed=5, horizon_ns=ms(100))
        b = churn_schedule(self.CHURN, seed=6, horizon_ns=ms(100))
        assert a != b

    def test_lifetimes_floored_and_arrivals_inside_horizon(self):
        schedule = churn_schedule(self.CHURN, seed=1, horizon_ns=ms(200))
        assert schedule, "expected arrivals in a 200 ms horizon at 200/s"
        assert all(a.t_ns < ms(200) for a in schedule)
        assert all(a.lifetime_ns >= self.CHURN.min_lifetime_ns for a in schedule)
        assert [a.index for a in schedule] == list(range(len(schedule)))


class TestRunElastic:
    def test_churn_run_conserves_and_audits_clean(self):
        spec = rack([redis_tenant("static-a", 2, 2000.0)], duration_ns=ms(30))
        churn = ChurnSpec(
            arrival_rate_per_s=150.0,
            mean_lifetime_ns=ms(15),
            tenant_factory=default_churn_tenant,
            max_concurrent=2,
        )
        outcome = run_elastic(spec, churn=churn, epoch_ns=ms(10))
        assert outcome.conservation_ok
        assert outcome.audit_problems == []
        assert outcome.counts["admit"] > 1  # churned admissions happened
        verbs = {e.verb for e in outcome.timeline}
        assert "admit" in verbs

    def test_autoscaler_sheds_idle_vcpus(self):
        # 1000 rps against 4000 rps/vCPU provisioning: the autoscaler
        # shrinks toward one active vCPU through the hotplug path
        spec = rack(
            [redis_tenant("a", 3, 1000.0)], n_servers=1, duration_ns=ms(40)
        )
        outcome = run_elastic(
            spec,
            autoscale=AutoscalePolicy(rps_per_vcpu=4000.0),
            epoch_ns=ms(10),
        )
        assert outcome.counts["resize_down"] >= 1
        assert outcome.audit_problems == []
        assert outcome.conservation_ok


class TestAdmissionEnum:
    def test_default_is_strict(self):
        assert resolve_admission(None) == "strict"

    def test_enum_values_pass_through(self):
        assert resolve_admission("strict") == "strict"
        assert resolve_admission("best_effort") == "best_effort"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="unknown admission mode"):
            resolve_admission("lenient")

    def test_deprecated_strict_keyword_warns_and_maps(self):
        with pytest.warns(DeprecationWarning, match="admission="):
            assert resolve_admission(None, strict=True) == "strict"
        with pytest.warns(DeprecationWarning):
            assert resolve_admission(None, strict=False) == "best_effort"

    def test_both_spellings_rejected(self):
        with pytest.raises(TypeError, match="not both"):
            resolve_admission("strict", strict=True)

    def test_boot_accepts_admission_keyword(self):
        spec = rack([redis_tenant("ok", 2, 2000.0), redis_tenant("big", 12, 1.0)])
        fleet = spec.boot(admission="best_effort")
        names = [vm.spec.name for server in fleet.servers for vm in server.vms]
        assert names == ["ok"]
        with warnings.catch_warnings():
            warnings.simplefilter("error")  # the enum path must not warn
            with pytest.raises(Exception):
                spec.boot(admission="strict")


class TestSweepDeterminism:
    def test_elastic_cells_digest_stable_across_jobs(self):
        from repro.experiments.runner import verify_serial_parallel

        cells = elastic_cells(
            variants=("churn", "rebalance"), duration_ns=ms(30)
        )
        assert verify_serial_parallel(cells, jobs=2) == []
