"""The static ``ScenarioSpec.boot()`` path is pinned bit-for-bit.

The elastic redesign routes every boot — static or churned — through
the :class:`~repro.fleet.elastic.FleetController` lifecycle API.  The
refactor is only legal if the static special case stays *bit-identical*
to the pre-redesign code: same counters, same completion totals, same
simulated end time on every server.  This golden was generated from the
pre-redesign tree (``REPRO_REGEN_GOLDEN=1`` rewrites it; the diff is
then a reviewable artifact, exactly like the policy-probe golden).
"""

import hashlib
import json
import os
from pathlib import Path

from repro.fleet.sweep import consolidation_scenario
from repro.sim.clock import ms

GOLDEN = Path(__file__).parent / "golden" / "static_boot.json"


def _scenario():
    return consolidation_scenario(
        level=2,
        mode="gapped",
        n_servers=2,
        duration_ns=ms(30),
        seed=7,
    )


def _sha256(lines) -> str:
    return hashlib.sha256("\n".join(lines).encode()).hexdigest()


def _server_digest(server, tenants) -> dict:
    tracer = server.system.tracer
    records = [
        f"{r.time}|{r.kind}|{r.core}|{r.domain}|{r.detail}"
        for r in tracer.records
    ]
    spans = [f"{s.core}|{s.domain}|{s.start}|{s.end}" for s in tracer.spans]
    rows = [
        [
            t.tenant,
            t.issued,
            t.completed,
            t.dropped,
            t.slo_violations,
            round(t.p99_ms, 9),
        ]
        for t in tenants
        if t.server == server.index
    ]
    return {
        # the record/span streams are pinned by hash (they are ~750 KB
        # in the clear); counters and per-tenant outcomes stay readable
        # so a regression diff names what moved
        "records_sha256": _sha256(records),
        "spans_sha256": _sha256(spans),
        "counters": {k: int(v) for k, v in sorted(tracer.counters.items())},
        "end_ns": server.system.sim.now,
        "tenants": rows,
    }


def _run() -> dict:
    spec = _scenario()
    fleet = spec.boot()
    result = fleet.run()
    return {
        f"server{server.index}": _server_digest(server, result.tenants)
        for server in fleet.servers
    }


class TestStaticBootGolden:
    def test_static_boot_matches_pre_redesign_golden(self):
        digests = _run()
        if os.environ.get("REPRO_REGEN_GOLDEN"):
            GOLDEN.parent.mkdir(parents=True, exist_ok=True)
            GOLDEN.write_text(
                json.dumps(digests, indent=2, sort_keys=True) + "\n"
            )
        golden = json.loads(GOLDEN.read_text())
        assert sorted(golden) == sorted(digests)
        for key in sorted(digests):
            assert golden[key] == digests[key], (
                f"{key}: static boot digest moved vs the pre-redesign "
                f"golden — the FleetController static path is not "
                f"bit-identical"
            )
