"""The declarative API is the imperative incantation, bit for bit.

``ScenarioSpec.boot()`` exists to *replace* the hand-written
``System(SystemConfig(...))`` + ``launch`` + ``add_*`` + ``start`` +
``run_for`` sequence, so a one-server fig6-sized scenario must produce
the exact same trace digest as the imperative spelling — same records,
same spans, same counters.  Reuses the sanitizer's digest/diff helpers
as a test library, like the fig6 determinism test does.
"""

from repro.costs import DEFAULT_COSTS
from repro.experiments.config import SystemConfig
from repro.experiments.system import System
from repro.fleet import ScenarioSpec, TenantSpec, VmSpec
from repro.guest.vm import GuestVm
from repro.guest.workloads import CoremarkStats, coremark_workload_factory
from repro.lint.sanitizer import RunDigest, diff_digests
from repro.sim.clock import ms

CONFIG = SystemConfig(mode="gapped", n_cores=6, seed=11)
N_VCPUS = 4
DURATION_NS = ms(20)


def digest_of(system: System) -> RunDigest:
    tracer = system.tracer
    records = [
        f"{r.time}|{r.kind}|{r.core}|{r.domain}|{r.detail}"
        for r in tracer.records
    ]
    spans = [
        f"{s.core}|{s.domain}|{s.start}|{s.end}" for s in tracer.spans
    ]
    counters = {k: int(v) for k, v in sorted(tracer.counters.items())}
    return RunDigest(records, spans, counters, {"end_ns": system.sim.now})


def imperative_run() -> RunDigest:
    stats = CoremarkStats()
    system = System(CONFIG, DEFAULT_COSTS)
    vm = GuestVm(
        "bench", N_VCPUS, coremark_workload_factory(stats), costs=DEFAULT_COSTS
    )
    kvm = system.launch(vm)
    system.start(kvm)
    system.run_for(DURATION_NS)
    system.finish()
    return digest_of(system)


def declarative_run() -> RunDigest:
    stats = CoremarkStats()
    spec = ScenarioSpec(
        servers=(CONFIG,),
        tenants=(
            TenantSpec(
                vm=VmSpec("bench", N_VCPUS, coremark_workload_factory(stats))
            ),
        ),
        duration_ns=DURATION_NS,
    )
    fleet = spec.boot(costs=DEFAULT_COSTS)
    fleet.run()
    return digest_of(fleet.servers[0].system)


class TestBootRoundTrip:
    def test_declarative_equals_imperative_bit_for_bit(self):
        assert diff_digests(imperative_run(), declarative_run()) == []

    def test_declarative_replays_bit_identical(self):
        assert diff_digests(declarative_run(), declarative_run()) == []
