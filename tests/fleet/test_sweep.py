"""The fleet sweep: cell layout, --jobs determinism, admission gate."""

from dataclasses import asdict

import pytest

from repro.costs import DEFAULT_COSTS
from repro.experiments.runner import canonical_digest
from repro.fleet.sweep import (
    _run_server_cell,
    consolidation_scenario,
    fleet_cells,
    run_fleet,
)
from repro.sim.clock import ms

TINY = dict(levels=(1, 2), n_servers=2, rate_rps=8000.0, duration_ns=ms(25))


def sweep_digest(result):
    return canonical_digest(
        {
            f"{level}/{mode}": [asdict(row) for row in tenants]
            for (level, mode), tenants in sorted(result.rows.items())
        }
    )


class TestCells:
    def test_cell_ids_enumerate_the_grid(self):
        cells = fleet_cells(**TINY)
        assert [c.cell_id for c in cells] == [
            "fleet/1/shared/server0",
            "fleet/1/shared/server1",
            "fleet/1/gapped/server0",
            "fleet/1/gapped/server1",
            "fleet/2/shared/server0",
            "fleet/2/shared/server1",
            "fleet/2/gapped/server0",
            "fleet/2/gapped/server1",
        ]

    def test_over_capacity_level_refused_with_names(self):
        # 4 tenants x 4 vCPUs = 16 > the 15 free cores of a gapped server
        with pytest.raises(ValueError, match="admission refused"):
            _run_server_cell(
                4, "gapped", 0, 2, 8000.0, ms(10), 0, DEFAULT_COSTS
            )


class TestJobsDeterminism:
    def test_parallel_equals_serial_byte_for_byte(self):
        serial = run_fleet(jobs=1, **TINY)
        parallel = run_fleet(jobs=2, **TINY)
        assert sweep_digest(serial) == sweep_digest(parallel)

    def test_summary_aggregates_every_server(self):
        result = run_fleet(jobs=1, **TINY)
        summary = result.summary(2, "gapped")
        assert summary["tenants"] == 4  # level 2 x 2 servers
        assert summary["issued"] > 0
        assert summary["dropped"] == 0


class TestScenarioShape:
    def test_spread_placement_levels_the_rack(self):
        from repro.fleet import place

        spec = consolidation_scenario(2, "gapped", n_servers=2)
        placement = place(spec)
        assert not placement.rejected
        assert len(placement.tenants_on(0)) == 2
        assert len(placement.tenants_on(1)) == 2

    def test_rack_seeds_differ_between_modes(self):
        shared = consolidation_scenario(1, "shared")
        gapped = consolidation_scenario(1, "gapped")
        assert {c.seed for c in shared.servers}.isdisjoint(
            {c.seed for c in gapped.servers}
        )
