"""Open-loop serving: accounting, SLO bookkeeping, declared metrics."""

from dataclasses import replace

from repro.experiments.config import SystemConfig
from repro.fleet import ScenarioSpec, redis_tenant
from repro.sim.clock import ms


def serving_spec(rate_rps=8000.0, slo_ms=2.0, duration_ns=ms(40), seed=3):
    return ScenarioSpec(
        servers=(SystemConfig(mode="gapped", n_cores=8, seed=seed),),
        tenants=(
            redis_tenant("t0", n_vcpus=4, rate_rps=rate_rps, slo_ms=slo_ms),
        ),
        duration_ns=duration_ns,
        seed=seed,
    )


class TestOpenLoopAccounting:
    def test_requests_flow_and_complete(self):
        fleet = serving_spec().boot()
        result = fleet.run()
        row = result.tenant("t0")
        # ~8 krps over 40 ms => a few hundred arrivals, Poisson-jittered
        assert 200 < row.issued < 450
        assert row.completed == row.issued  # drain window empties the pipe
        assert row.dropped == 0
        assert 0 < row.p50_ms <= row.p95_ms <= row.p99_ms
        assert row.throughput_krps > 0

    def test_metrics_published_through_the_catalog(self):
        fleet = serving_spec().boot()
        fleet.run()
        metrics = fleet.servers[0].system.metrics
        completed = metrics.counter("fleet_request_count").value
        assert completed > 0
        assert metrics.histogram("fleet_request_latency_ns").count == completed
        assert metrics.gauge("fleet_offered_count").value == completed
        assert metrics.gauge("fleet_dropped_count").value == 0

    def test_impossible_slo_counts_every_completion(self):
        fleet = serving_spec(slo_ms=0.000001).boot()
        result = fleet.run()
        row = result.tenant("t0")
        assert row.slo_violations == row.completed
        metrics = fleet.servers[0].system.metrics
        assert (
            metrics.counter("fleet_slo_violation_count").value
            == row.completed
        )

    def test_arrivals_stop_at_the_duration_mark(self):
        fleet = serving_spec().boot()
        fleet.run()
        client = fleet.servers[0].clients[0]
        assert client.drained
        assert client.stats.finished_at <= (
            client.stats.stopped_at + fleet.spec.drain_ns
        )


class TestDeterminism:
    def test_same_spec_same_results(self):
        a = serving_spec().boot().run()
        b = serving_spec().boot().run()
        assert a.tenants == b.tenants

    def test_seed_changes_the_arrivals(self):
        base = serving_spec()
        reseeded = replace(
            base,
            servers=(replace(base.servers[0], seed=99),),
        )
        a = base.boot().run().tenant("t0")
        b = reseeded.boot().run().tenant("t0")
        assert (a.issued, a.p99_ms) != (b.issued, b.p99_ms)
