"""Unit tests for the fault plan/injector machinery."""

from types import SimpleNamespace

import pytest

from repro.faults import FaultInjector, FaultKind, FaultPlan, FaultSpec
from repro.rmm.rmi import RmiResult
from repro.sim import SimulationError, Simulator
from repro.sim.rng import RngFactory
from repro.sim.trace import Tracer


def make_injector(*specs, seed=0):
    sim = Simulator()
    plan = FaultPlan.of("t", *specs)
    injector = FaultInjector(plan, RngFactory(seed), sim, tracer=Tracer())
    return sim, injector


def fake_gic(wire=400):
    return SimpleNamespace(wire_delay_ns=wire, sgi_fault_hook=None)


class TestFaultSpec:
    def test_unknown_kind_rejected(self):
        with pytest.raises(SimulationError, match="unknown fault kind"):
            FaultSpec("spontaneous_combustion")

    def test_invalid_rate_rejected(self):
        with pytest.raises(SimulationError, match="not in"):
            FaultSpec(FaultKind.IPI_DROP, rate=1.5)

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError, match="negative"):
            FaultSpec(FaultKind.IPI_DELAY, delay_ns=-1)

    def test_active_window(self):
        spec = FaultSpec(FaultKind.IPI_DROP, start_ns=100, end_ns=200)
        assert not spec.active_at(99)
        assert spec.active_at(100)
        assert spec.active_at(199)
        assert not spec.active_at(200)

    def test_plan_of_kind_indices_are_stable(self):
        plan = FaultPlan.of(
            "p",
            FaultSpec(FaultKind.IPI_DROP),
            FaultSpec(FaultKind.WAKEUP_STALL, delay_ns=5),
            FaultSpec(FaultKind.IPI_DELAY, delay_ns=10),
        )
        assert [i for i, _ in plan.of_kind(FaultKind.IPI_DROP)] == [0]
        assert [i for i, _ in plan.of_kind(FaultKind.IPI_DELAY)] == [2]
        assert plan.kinds == ("ipi_delay", "ipi_drop", "wakeup_stall")


class TestSgiHook:
    def test_drop_delay_duplicate_shapes(self):
        gic = fake_gic()
        _, inj = make_injector(FaultSpec(FaultKind.IPI_DROP))
        inj.attach_gic(gic)
        assert gic.sgi_fault_hook(1, 8) == []

        _, inj = make_injector(FaultSpec(FaultKind.IPI_DELAY, delay_ns=100))
        inj.attach_gic(gic)
        assert gic.sgi_fault_hook(1, 8) == [500]

        _, inj = make_injector(
            FaultSpec(FaultKind.IPI_DUPLICATE, delay_ns=50)
        )
        inj.attach_gic(gic)
        assert gic.sgi_fault_hook(1, 8) == [400, 450]

    def test_intid_and_target_filters(self):
        gic = fake_gic()
        _, inj = make_injector(
            FaultSpec(FaultKind.IPI_DROP, intids=(8,), target=2)
        )
        inj.attach_gic(gic)
        assert gic.sgi_fault_hook(2, 9) is None  # wrong intid
        assert gic.sgi_fault_hook(1, 8) is None  # wrong target core
        assert gic.sgi_fault_hook(2, 8) == []
        assert inj.injected == {FaultKind.IPI_DROP: 1}

    def test_count_cap(self):
        gic = fake_gic()
        _, inj = make_injector(FaultSpec(FaultKind.IPI_DROP, count=2))
        inj.attach_gic(gic)
        results = [gic.sgi_fault_hook(0, 8) for _ in range(5)]
        assert results == [[], [], None, None, None]
        assert inj.total_injected == 2

    def test_rate_draws_are_seed_deterministic(self):
        def pattern(seed):
            gic = fake_gic()
            _, inj = make_injector(
                FaultSpec(FaultKind.IPI_DROP, rate=0.5), seed=seed
            )
            inj.attach_gic(gic)
            return [gic.sgi_fault_hook(0, 8) == [] for _ in range(64)]

        assert pattern(1) == pattern(1)
        assert pattern(1) != pattern(2)
        assert 10 < sum(pattern(1)) < 54  # actually probabilistic


class TestOtherHooks:
    def test_completion_stall_and_corrupt(self):
        port = SimpleNamespace(name="vm.vcpu0", completion_fault=None)
        _, inj = make_injector(
            FaultSpec(FaultKind.RPC_COMPLETION_STALL, delay_ns=300)
        )
        inj.attach_port(port)
        assert port.completion_fault(port, "exit") == (300, "exit")

        _, inj = make_injector(FaultSpec(FaultKind.RPC_COMPLETION_CORRUPT))
        inj.attach_port(port)
        delay, result = port.completion_fault(port, "exit")
        assert delay == 0
        assert isinstance(result, RmiResult)
        assert not result.ok

    def test_completion_port_filter(self):
        port = SimpleNamespace(name="vm.vcpu1", completion_fault=None)
        _, inj = make_injector(
            FaultSpec(FaultKind.RPC_COMPLETION_STALL, delay_ns=9,
                      port_substr="vcpu0")
        )
        inj.attach_port(port)
        assert port.completion_fault(port, "x") == (0, "x")

    def test_wakeup_stall_sums_specs(self):
        notifier = SimpleNamespace(stall_hook=None)
        _, inj = make_injector(
            FaultSpec(FaultKind.WAKEUP_STALL, delay_ns=100),
            FaultSpec(FaultKind.WAKEUP_STALL, delay_ns=50),
        )
        inj.attach_notifier(notifier)
        assert notifier.stall_hook() == 150

    def test_hotplug_hook_target_filter(self):
        kernel = SimpleNamespace(fault_hooks={})
        _, inj = make_injector(
            FaultSpec(FaultKind.HOTPLUG_ABORT, target=3)
        )
        inj.attach_kernel(kernel)
        hook = kernel.fault_hooks["hotplug"]
        assert hook("offline", 2) is False
        assert hook("offline", 3) is True

    def test_virtio_hook_vcpu_filter(self):
        backend = SimpleNamespace(completion_fault_hook=None)
        _, inj = make_injector(
            FaultSpec(FaultKind.VIRTIO_COMPLETION_DELAY, delay_ns=70,
                      target=1)
        )
        inj.attach_device(backend)
        assert backend.completion_fault_hook("net", 0, None) == 0
        assert backend.completion_fault_hook("net", 1, None) == 70

    def test_engine_arming_picks_target_core(self):
        cores = {2: SimpleNamespace(fail_after_runs=None),
                 4: SimpleNamespace(fail_after_runs=None)}
        engine = SimpleNamespace(dedicated=cores)
        _, inj = make_injector(
            FaultSpec(FaultKind.CORE_STALL, target=4, after_runs=3)
        )
        inj.attach_engine(engine)
        assert cores[2].fail_after_runs is None
        assert cores[4].fail_after_runs == 3

    def test_engine_arming_defaults_to_lowest_core(self):
        cores = {5: SimpleNamespace(fail_after_runs=None),
                 3: SimpleNamespace(fail_after_runs=None)}
        engine = SimpleNamespace(dedicated=cores)
        _, inj = make_injector(FaultSpec(FaultKind.CORE_STALL))
        inj.attach_engine(engine)
        assert cores[3].fail_after_runs == 0
        assert cores[5].fail_after_runs is None

    def test_window_gates_injection(self):
        sim, inj = make_injector(
            FaultSpec(FaultKind.WAKEUP_STALL, delay_ns=10, start_ns=1_000)
        )
        notifier = SimpleNamespace(stall_hook=None)
        inj.attach_notifier(notifier)
        assert notifier.stall_hook() == 0  # now=0 < start
        sim.schedule(2_000, lambda: None)
        sim.run()
        assert notifier.stall_hook() == 10

    def test_injections_counted_in_tracer(self):
        gic = fake_gic()
        _, inj = make_injector(FaultSpec(FaultKind.IPI_DROP, count=3))
        inj.attach_gic(gic)
        for _ in range(5):
            gic.sgi_fault_hook(0, 8)
        assert inj.tracer.counters["fault:ipi_drop"] == 3
