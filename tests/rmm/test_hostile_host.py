"""Adversarial tests: a hostile host fuzzing the RMI interface.

The monitor's contract is that *no* sequence of host calls -- malformed,
out-of-order, replayed, or malicious -- crashes it, corrupts another
realm, or desynchronises the hardware GPT from the granule ledger.
Errors must come back as statuses (the host is allowed to be wrong; it
is not allowed to win).
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import Machine, SocTopology
from repro.isa import World
from repro.rmm.granule import GRANULE_SIZE, GranuleState
from repro.rmm.monitor import Rmm
from repro.rmm.rmi import RmiCommand, RmiResult, RmiStatus


def make_rmm():
    machine = Machine(SocTopology(name="fuzz", n_cores=2, memory_gib=1))
    return Rmm(machine)


GRANULES = [i * GRANULE_SIZE for i in range(16)]

command_strategy = st.sampled_from(list(RmiCommand))
args_strategy = st.lists(
    st.one_of(
        st.sampled_from(GRANULES),
        st.integers(min_value=-5, max_value=5),
        st.none(),
    ),
    max_size=4,
).map(tuple)


class TestRmiFuzz:
    @given(st.lists(st.tuples(command_strategy, args_strategy), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_no_sequence_crashes_the_monitor(self, calls):
        rmm = make_rmm()
        for cmd, args in calls:
            result = rmm.handle_rmi(cmd, args)
            assert isinstance(result, RmiResult)

    @given(st.lists(st.tuples(command_strategy, args_strategy), max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_gpt_ledger_consistency_survives_fuzzing(self, calls):
        rmm = make_rmm()
        for cmd, args in calls:
            rmm.handle_rmi(cmd, args)
        for addr in GRANULES:
            state = rmm.granules.state_of(addr)
            pas = rmm.machine.memory.pas_of(addr)
            if state is GranuleState.UNDELEGATED:
                assert pas is World.NORMAL
            else:
                assert pas is World.REALM

    @given(st.lists(st.tuples(command_strategy, args_strategy), max_size=60))
    @settings(max_examples=40, deadline=None)
    def test_realm_ledger_never_leaks_across_realms(self, calls):
        """Granules consumed by one realm are never reachable from
        another realm's RTT, whatever the host tries."""
        rmm = make_rmm()
        for cmd, args in calls:
            rmm.handle_rmi(cmd, args)
        for realm_id, realm in rmm.realms.items():
            for entry in realm.rtt.mapped_pages():
                owner = rmm.granules.get(entry.pa).owner_realm
                assert owner == realm_id


class TestTargetedHostility:
    def test_undelegate_while_mapped_fails(self):
        rmm = make_rmm()
        g = GRANULES
        assert rmm.handle_rmi(RmiCommand.GRANULE_DELEGATE, (g[0],)).ok
        realm_id = rmm.handle_rmi(RmiCommand.REALM_CREATE, (g[0],)).value
        for level, gran in ((1, g[1]), (2, g[2]), (3, g[3])):
            assert rmm.handle_rmi(RmiCommand.GRANULE_DELEGATE, (gran,)).ok
            assert rmm.handle_rmi(
                RmiCommand.RTT_CREATE, (realm_id, 0, level, gran)
            ).ok
        assert rmm.handle_rmi(RmiCommand.GRANULE_DELEGATE, (g[4],)).ok
        assert rmm.handle_rmi(
            RmiCommand.DATA_CREATE, (realm_id, 0, g[4], 0)
        ).ok
        # now the attack: reclaim the mapped data granule
        result = rmm.handle_rmi(RmiCommand.GRANULE_UNDELEGATE, (g[4],))
        assert not result.ok
        # and the RTT table granule
        result = rmm.handle_rmi(RmiCommand.GRANULE_UNDELEGATE, (g[3],))
        assert not result.ok

    def test_double_realm_on_same_rd_granule_fails(self):
        rmm = make_rmm()
        assert rmm.handle_rmi(RmiCommand.GRANULE_DELEGATE, (GRANULES[0],)).ok
        assert rmm.handle_rmi(RmiCommand.REALM_CREATE, (GRANULES[0],)).ok
        result = rmm.handle_rmi(RmiCommand.REALM_CREATE, (GRANULES[0],))
        assert result.status is RmiStatus.ERROR_IN_USE

    def test_mapping_foreign_data_fails(self):
        rmm = make_rmm()
        g = GRANULES
        ids = []
        for rd in (g[0], g[8]):
            assert rmm.handle_rmi(RmiCommand.GRANULE_DELEGATE, (rd,)).ok
            ids.append(rmm.handle_rmi(RmiCommand.REALM_CREATE, (rd,)).value)
        # build realm 1's walk and a data page
        for level, gran in ((1, g[1]), (2, g[2]), (3, g[3])):
            rmm.handle_rmi(RmiCommand.GRANULE_DELEGATE, (gran,))
            rmm.handle_rmi(RmiCommand.RTT_CREATE, (ids[0], 0, level, gran))
        rmm.handle_rmi(RmiCommand.GRANULE_DELEGATE, (g[4],))
        rmm.handle_rmi(RmiCommand.DATA_CREATE, (ids[0], 0, g[4], 0))
        # realm 2 tries to map realm 1's data page into itself
        for level, gran in ((1, g[9]), (2, g[10]), (3, g[11])):
            rmm.handle_rmi(RmiCommand.GRANULE_DELEGATE, (gran,))
            rmm.handle_rmi(RmiCommand.RTT_CREATE, (ids[1], 0, level, gran))
        result = rmm.handle_rmi(RmiCommand.DATA_CREATE, (ids[1], 0, g[4], 0))
        assert not result.ok

    def test_destroy_realm_with_garbage_id(self):
        rmm = make_rmm()
        assert not rmm.handle_rmi(RmiCommand.REALM_DESTROY, (42,)).ok
        assert not rmm.handle_rmi(RmiCommand.REALM_DESTROY, (None,)).ok

    def test_unknown_command_args_types(self):
        rmm = make_rmm()
        result = rmm.handle_rmi(RmiCommand.GRANULE_DELEGATE, ("junk",))
        assert not result.ok
