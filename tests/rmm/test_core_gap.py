"""Tests for core-gapping enforcement: binding, never-return, audits.

These exercise the paper's central security mechanisms end-to-end on the
booted system: a hostile hypervisor attempting to co-schedule realms or
migrate vCPUs gets errors, and clean runs keep every distrusting pair of
domains on disjoint cores.
"""

import pytest

from repro.experiments import System, SystemConfig
from repro.guest.actions import Compute
from repro.guest.vm import GuestVm
from repro.isa import MONITOR_DOMAIN, World
from repro.rmm.core_gap import RunCall
from repro.rmm.rmi import RecRunPage, RmiStatus
from repro.security import CoreGapAuditor
from repro.sim.clock import ms


def compute_factory(vm, index):
    def body():
        while True:
            yield Compute(200_000)

    return body()


def launch(system, name="vm0", n_vcpus=2):
    vm = GuestVm(name, n_vcpus, compute_factory)
    kvm = system.launch(vm)
    system.start(kvm)
    return vm, kvm


@pytest.fixture
def system():
    return System(SystemConfig(mode="gapped", n_cores=6, housekeeping=None))


class TestBinding:
    def test_rec_binds_to_planned_core_on_first_entry(self, system):
        vm, kvm = launch(system)
        system.run_for(ms(10))
        for idx in range(vm.n_vcpus):
            rec = system.rmm.find_rec(kvm.realm_id, idx)
            assert rec.bound_core == kvm.planned_cores[idx]

    def test_wrong_core_dispatch_rejected(self, system):
        vm, kvm = launch(system)
        system.run_for(ms(10))
        # malicious host: push vcpu0's run call into vcpu1's core inbox
        rec0 = system.rmm.find_rec(kvm.realm_id, 0)
        rec1 = system.rmm.find_rec(kvm.realm_id, 1)
        wrong = system.engine.dedicated[rec1.bound_core]
        port = kvm.ports[0]
        # wait until vcpu0 is between run calls
        system.run_until(lambda: port.slot.state == "submitted", ms(100))
        results = []
        wrong_call = RunCall(
            _FakePort(results), kvm.realm_id, 0, RecRunPage()
        )
        wrong.inbox.try_put(wrong_call)
        # the dedicated core only polls its inbox between runs: kick the
        # running REC out so the hostile call gets looked at
        from repro.rmm.core_gap import HOST_KICK_SGI

        system.machine.gic.send_sgi(rec1.bound_core, HOST_KICK_SGI)
        system.run_until(lambda: results, ms(100))
        assert results[0].status in (
            RmiStatus.ERROR_CORE_BINDING,
            RmiStatus.ERROR_REC,  # if it happened to be mid-run
        )

    def test_second_realm_cannot_use_bound_core(self, system):
        vm, kvm = launch(system)
        system.run_for(ms(10))
        rec0 = system.rmm.find_rec(kvm.realm_id, 0)
        dedicated = system.engine.dedicated[rec0.bound_core]
        assert dedicated.bound_rec is rec0
        # a run call for a *different* REC on this core must fail
        results = []
        call = RunCall(_FakePort(results), kvm.realm_id, 1, RecRunPage())
        dedicated.inbox.try_put(call)
        from repro.rmm.core_gap import HOST_KICK_SGI

        system.machine.gic.send_sgi(rec0.bound_core, HOST_KICK_SGI)
        system.run_until(lambda: results, ms(100))
        assert results[0].status in (
            RmiStatus.ERROR_CORE_BINDING,
            RmiStatus.ERROR_REC,
        )

    def test_bound_core_left_realm_world(self, system):
        vm, kvm = launch(system)
        system.run_for(ms(10))
        for idx in range(vm.n_vcpus):
            rec = system.rmm.find_rec(kvm.realm_id, idx)
            core = system.machine.core(rec.bound_core)
            assert core.world is World.REALM
            assert not core.online  # invisible to the host scheduler


class _FakePort:
    """Captures error completions for hostile-dispatch tests."""

    def __init__(self, sink):
        self._sink = sink

    def complete(self, result):
        self._sink.append(result)


class TestNeverReturn:
    def test_only_monitor_and_guest_on_dedicated_cores(self, system):
        vm, kvm = launch(system)
        system.run_for(ms(50))
        system.finish()
        tracer = system.tracer
        for idx in range(vm.n_vcpus):
            rec = system.rmm.find_rec(kvm.realm_id, idx)
            domains = set(tracer.domains_on_core(rec.bound_core))
            # host ran here only *before* dedication (hotplug path)
            allowed = {MONITOR_DOMAIN.name, vm.domain.name, "host", "idle"}
            assert domains <= allowed
            # after the first guest span, no host span ever again
            spans = sorted(
                tracer.spans_on_core(rec.bound_core), key=lambda s: s.start
            )
            first_guest = next(
                s.start for s in spans if s.domain == vm.domain.name
            )
            for span in spans:
                if span.start >= first_guest:
                    assert span.domain in (
                        MONITOR_DOMAIN.name,
                        vm.domain.name,
                    ), f"{span.domain} ran on a dedicated core at {span.start}"

    def test_audit_clean_for_gapped_run(self, system):
        vm, kvm = launch(system)
        system.run_for(ms(50))
        report = CoreGapAuditor().audit(system.machine, system.tracer)
        assert report.clean, report.summary()

    def test_two_gapped_vms_audit_clean(self):
        system = System(
            SystemConfig(mode="gapped", n_cores=8, housekeeping=None)
        )
        launch(system, "vm0", 2)
        launch(system, "vm1", 2)
        system.run_for(ms(50))
        report = CoreGapAuditor().audit(system.machine, system.tracer)
        assert report.clean, report.summary()

    def test_shared_mode_audit_flags_sharing(self):
        system = System(
            SystemConfig(mode="shared", n_cores=2, housekeeping=None)
        )
        launch(system, "vm0", 2)
        system.run_for(ms(50))
        system.finish()
        report = CoreGapAuditor().audit(system.machine, system.tracer)
        # guest and host share cores: the auditor must see it
        assert not report.clean
        assert any(
            {v.domain_a, v.domain_b} == {"host", "vm:vm0"}
            for v in report.sharing
        )


class TestTeardown:
    def test_terminate_reclaims_cores(self):
        system = System(
            SystemConfig(mode="gapped", n_cores=6, housekeeping=None)
        )

        def finite_factory(vm, index):
            def body():
                for _ in range(3):
                    yield Compute(100_000)

            return body()

        vm = GuestVm("vm0", 2, finite_factory)
        kvm = system.launch(vm)
        dedicated_cores = list(kvm.planned_cores.values())
        system.start(kvm)
        system.run_until_vm_done(kvm, limit_ns=ms(100))
        system.terminate(kvm)
        for index in dedicated_cores:
            core = system.machine.core(index)
            assert core.online
            assert core.world is World.NORMAL
            assert index not in system.engine.dedicated
        assert kvm.realm_id not in system.rmm.realms

    def test_cores_reusable_after_reclaim(self):
        system = System(
            SystemConfig(mode="gapped", n_cores=4, housekeeping=None)
        )

        def finite_factory(vm, index):
            def body():
                yield Compute(100_000)

            return body()

        vm1 = GuestVm("vm1", 2, finite_factory)
        kvm1 = system.launch(vm1)
        system.start(kvm1)
        system.run_until_vm_done(kvm1, limit_ns=ms(100))
        system.terminate(kvm1)
        # the same cores now host a second CVM
        vm2 = GuestVm("vm2", 2, finite_factory)
        kvm2 = system.launch(vm2)
        system.start(kvm2)
        system.run_until_vm_done(kvm2, limit_ns=ms(100))
        assert kvm2.finished_vcpus == 2


class TestAdmission:
    def test_admission_refused_when_cores_exhausted(self):
        from repro.host.planner import AdmissionError

        system = System(
            SystemConfig(mode="gapped", n_cores=4, housekeeping=None)
        )
        launch(system, "vm0", 3)  # 3 guest cores + 1 host core = full
        with pytest.raises(AdmissionError):
            system.planner.admit(1)
