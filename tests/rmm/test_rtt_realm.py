"""Tests for realm translation tables and realm/REC lifecycle."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import PhysicalMemory
from repro.rmm.granule import GRANULE_SIZE, GranuleState, GranuleTracker
from repro.rmm.realm import Realm, RealmError, RealmState, RecState
from repro.rmm.rtt import PAGE_SIZE, RealmTranslationTable, RttError


def make_tracker(n=4096):
    return GranuleTracker(PhysicalMemory(n * GRANULE_SIZE))


def delegated(tracker, index):
    addr = index * GRANULE_SIZE
    tracker.delegate(addr)
    return addr


def build_walk(rtt, tracker, ipa, start_granule=100):
    """Install L1..L3 tables covering ``ipa``."""
    for level in range(1, 4):
        if not rtt.has_table(ipa, level):
            rtt.create_table(ipa, level, delegated(tracker, start_granule))
            start_granule += 1
    return start_granule


class TestRtt:
    def test_map_requires_walk(self):
        tracker = make_tracker()
        rtt = RealmTranslationTable(1, tracker)
        data = delegated(tracker, 50)
        tracker.consume(data, GranuleState.DATA, 1)
        with pytest.raises(RttError, match="walk fault"):
            rtt.map_page(0x0, data)

    def test_map_and_walk(self):
        tracker = make_tracker()
        rtt = RealmTranslationTable(1, tracker)
        build_walk(rtt, tracker, 0x0)
        data = delegated(tracker, 50)
        tracker.consume(data, GranuleState.DATA, 1)
        rtt.map_page(0x0, data)
        entry = rtt.walk(0x123)  # same page
        assert entry is not None and entry.pa == data

    def test_walk_fault_returns_none(self):
        rtt = RealmTranslationTable(1, make_tracker())
        assert rtt.walk(0x5000) is None

    def test_double_map_rejected(self):
        tracker = make_tracker()
        rtt = RealmTranslationTable(1, tracker)
        build_walk(rtt, tracker, 0x0)
        for i in (50, 51):
            addr = delegated(tracker, i)
            tracker.consume(addr, GranuleState.DATA, 1)
        rtt.map_page(0x0, 50 * GRANULE_SIZE)
        with pytest.raises(RttError, match="already mapped"):
            rtt.map_page(0x0, 51 * GRANULE_SIZE)

    def test_cannot_map_foreign_realms_granule(self):
        tracker = make_tracker()
        rtt = RealmTranslationTable(1, tracker)
        build_walk(rtt, tracker, 0x0)
        foreign = delegated(tracker, 60)
        tracker.consume(foreign, GranuleState.DATA, realm_id=2)
        with pytest.raises(RttError, match="belongs to realm 2"):
            rtt.map_page(0x0, foreign)

    def test_cannot_map_non_data_granule(self):
        tracker = make_tracker()
        rtt = RealmTranslationTable(1, tracker)
        build_walk(rtt, tracker, 0x0)
        raw = delegated(tracker, 61)
        with pytest.raises(RttError, match="expected a DATA granule"):
            rtt.map_page(0x0, raw)

    def test_unmap_then_walk_faults(self):
        tracker = make_tracker()
        rtt = RealmTranslationTable(1, tracker)
        build_walk(rtt, tracker, 0x0)
        data = delegated(tracker, 50)
        tracker.consume(data, GranuleState.DATA, 1)
        rtt.map_page(0x0, data)
        assert rtt.unmap_page(0x0) == data
        assert rtt.walk(0x0) is None

    def test_unmap_unmapped_rejected(self):
        rtt = RealmTranslationTable(1, make_tracker())
        with pytest.raises(RttError):
            rtt.unmap_page(0x0)

    def test_table_create_requires_parent(self):
        tracker = make_tracker()
        rtt = RealmTranslationTable(1, tracker)
        with pytest.raises(RttError, match="parent"):
            rtt.create_table(0x0, 2, delegated(tracker, 70))

    def test_duplicate_table_rejected(self):
        tracker = make_tracker()
        rtt = RealmTranslationTable(1, tracker)
        rtt.create_table(0x0, 1, delegated(tracker, 70))
        with pytest.raises(RttError, match="already exists"):
            rtt.create_table(0x100, 1, delegated(tracker, 71))

    def test_destroy_table_with_live_mappings_rejected(self):
        tracker = make_tracker()
        rtt = RealmTranslationTable(1, tracker)
        build_walk(rtt, tracker, 0x0)
        data = delegated(tracker, 50)
        tracker.consume(data, GranuleState.DATA, 1)
        rtt.map_page(0x0, data)
        with pytest.raises(RttError, match="live mappings"):
            rtt.destroy_table(0x0, 3)

    def test_destroy_table_releases_granule(self):
        tracker = make_tracker()
        rtt = RealmTranslationTable(1, tracker)
        granule = delegated(tracker, 70)
        rtt.create_table(0x0, 1, granule)
        rtt.destroy_table(0x0, 1)
        assert tracker.state_of(granule) is GranuleState.DELEGATED

    def test_destroy_all_releases_everything(self):
        tracker = make_tracker()
        rtt = RealmTranslationTable(1, tracker)
        build_walk(rtt, tracker, 0x0)
        data = delegated(tracker, 50)
        tracker.consume(data, GranuleState.DATA, 1)
        rtt.map_page(0x0, data)
        rtt.destroy_all()
        assert rtt.n_mapped == 0
        assert tracker.count_in_state(GranuleState.RTT) == 0
        assert tracker.count_in_state(GranuleState.DATA) == 0

    @given(st.sets(st.integers(min_value=0, max_value=127), max_size=40))
    @settings(max_examples=40, deadline=None)
    def test_mapped_ipas_resolve_uniquely(self, pages):
        """Every mapped IPA translates to the PA it was mapped to."""
        tracker = make_tracker(8192)
        rtt = RealmTranslationTable(1, tracker)
        next_granule = 200
        mapping = {}
        for i, page in enumerate(sorted(pages)):
            ipa = page * PAGE_SIZE
            next_granule = build_walk(rtt, tracker, ipa, next_granule)
            pa = delegated(tracker, 1000 + i)
            tracker.consume(pa, GranuleState.DATA, 1)
            rtt.map_page(ipa, pa)
            mapping[ipa] = pa
        for ipa, pa in mapping.items():
            assert rtt.walk(ipa).pa == pa
        assert rtt.n_mapped == len(mapping)


class TestRealmLifecycle:
    def _realm(self, tracker):
        rd = delegated(tracker, 10)
        tracker.consume(rd, GranuleState.RD, 1)
        return Realm(1, rd, tracker, vmid=7)

    def test_new_realm_not_active(self):
        tracker = make_tracker()
        realm = self._realm(tracker)
        assert realm.state is RealmState.NEW
        with pytest.raises(RealmError):
            realm.require_state(RealmState.ACTIVE)

    def test_activate(self):
        tracker = make_tracker()
        realm = self._realm(tracker)
        realm.activate()
        assert realm.state is RealmState.ACTIVE
        with pytest.raises(RealmError):
            realm.activate()

    def test_rec_create_only_while_new(self):
        tracker = make_tracker()
        realm = self._realm(tracker)
        realm.activate()
        with pytest.raises(RealmError):
            realm.create_rec(delegated(tracker, 11))

    def test_measurement_changes_with_recs(self):
        tracker = make_tracker()
        realm_a = self._realm(tracker)
        m0 = realm_a.measurement
        realm_a.create_rec(delegated(tracker, 11))
        assert realm_a.measurement != m0

    def test_measurement_sealed_after_activate(self):
        tracker = make_tracker()
        realm = self._realm(tracker)
        realm.activate()
        with pytest.raises(RealmError):
            realm.extend_measurement(1)

    def test_rec_binding_starts_unbound(self):
        tracker = make_tracker()
        realm = self._realm(tracker)
        rec = realm.create_rec(delegated(tracker, 11))
        assert rec.bound_core is None
        assert rec.state is RecState.READY

    def test_destroy_running_rec_rejected(self):
        tracker = make_tracker()
        realm = self._realm(tracker)
        rec = realm.create_rec(delegated(tracker, 11))
        rec.state = RecState.RUNNING
        with pytest.raises(RealmError):
            realm.destroy_rec(0)

    def test_destroy_realm_releases_granules(self):
        tracker = make_tracker()
        realm = self._realm(tracker)
        realm.create_rec(delegated(tracker, 11))
        realm.activate()
        realm.destroy()
        assert tracker.count_in_state(GranuleState.REC) == 0
        assert tracker.count_in_state(GranuleState.RD) == 0

    def test_rec_index_lookup(self):
        tracker = make_tracker()
        realm = self._realm(tracker)
        rec = realm.create_rec(delegated(tracker, 11))
        assert realm.rec(0) is rec
        with pytest.raises(RealmError):
            realm.rec(1)
