"""Integration tests for guest action paths through the RMM/KVM stack:
WFI handled locally on dedicated cores, MMIO reads, memory-encryption
accounting, and the shared-CVM flush behaviour."""

import pytest

from repro.experiments import System, SystemConfig
from repro.guest.actions import Compute, MmioRead, SendIpi, Wfi, WaitIo
from repro.guest.vm import GuestVm
from repro.sim.clock import ms, us


def run_vm(mode, factory, n_vcpus=2, duration=ms(50), n_cores=4,
           delegation=True):
    system = System(
        SystemConfig(
            mode=mode, n_cores=n_cores, housekeeping=None,
            delegation=delegation,
        )
    )
    vm = GuestVm("t", n_vcpus, factory)
    kvm = system.launch(vm)
    system.add_virtio_net(kvm, "virtio-net0")
    system.start(kvm)
    system.run_for(duration)
    return system, vm, kvm


class TestWfi:
    def test_gapped_wfi_handled_locally_without_exits(self):
        """On a dedicated core, WFI waits locally: the next timer tick
        (delegated) wakes the guest with no host involvement."""

        def factory(vm, index):
            def body():
                for _ in range(5):
                    yield Wfi()  # each tick (4 ms) wakes it
                    yield Compute(us(50))
                while True:
                    yield Compute(ms(1))

            return body()

        system, vm, kvm = run_vm("gapped", factory, n_vcpus=1, duration=ms(40))
        counts = system.exit_counts()
        assert counts.get("exit:wfi", 0) == 0
        assert counts.get("exits_total", 0) == 0
        assert vm.vcpu(0).ticks_handled >= 5

    def test_shared_wfi_exits_and_wakes_on_tick(self):
        def factory(vm, index):
            def body():
                for _ in range(3):
                    yield Wfi()
                    yield Compute(us(50))
                while True:
                    yield Compute(ms(1))

            return body()

        system, vm, kvm = run_vm("shared", factory, n_vcpus=1, duration=ms(40))
        assert system.exit_counts().get("exit:wfi", 0) >= 3
        assert vm.vcpu(0).ticks_handled >= 3


class TestMmioRead:
    @pytest.mark.parametrize("mode", ["shared", "gapped"])
    def test_mmio_read_returns_device_register(self, mode):
        values = []

        def factory(vm, index):
            def body():
                value = yield MmioRead(0x1000, "virtio-net0")
                values.append(value)
                while True:
                    yield Compute(ms(1))

            return body()

        system, vm, kvm = run_vm(mode, factory, n_vcpus=1, duration=ms(20))
        assert values == [0]  # the emulated config register
        assert system.exit_counts().get("exit:mmio_read", 0) == 1


class TestSharedCvm:
    def test_exits_flush_microarchitectural_state(self):
        def factory(vm, index):
            def body():
                while True:
                    yield Compute(us(300))

            return body()

        system, vm, kvm = run_vm("shared-cvm", factory, duration=ms(30))
        flushed_cores = [
            core.index
            for core in system.machine.cores
            if core.uarch.flush_count > 0
        ]
        assert flushed_cores  # every trust-boundary exit flushed

    def test_shared_cvm_slower_than_shared(self):
        from repro.guest.workloads import (
            CoremarkStats,
            coremark_score,
            coremark_workload_factory,
        )

        scores = {}
        for mode in ("shared", "shared-cvm"):
            system = System(SystemConfig(mode=mode, n_cores=4))
            stats = CoremarkStats()
            vm = GuestVm("cm", 4, coremark_workload_factory(stats))
            kvm = system.launch(vm)
            system.start(kvm)
            start = system.sim.now
            system.run_for(ms(400))
            scores[mode] = coremark_score(stats, system.sim.now - start)
        assert scores["shared-cvm"] < scores["shared"]


class TestDelegationMatrix:
    def test_undelegated_gapped_still_delivers_everything(self):
        """With delegation off, ticks and IPIs flow through the host
        (TIMER / IPI_REQUEST / HOST_KICK exits) but the guest sees the
        same virtual interrupts."""

        def factory(vm, index):
            def body():
                if index == 0:
                    for _ in range(4):
                        yield SendIpi(1)
                        yield Compute(us(500))
                while True:
                    yield Compute(us(500))

            return body()

        system, vm, kvm = run_vm(
            "gapped", factory, duration=ms(40), delegation=False
        )
        counts = system.exit_counts()
        assert counts.get("exit:timer", 0) > 0
        assert counts.get("exit:ipi", 0) == 4
        assert vm.vcpu(1).ipis_handled == 4
        expected_ticks = 40 // 4
        for vcpu in vm.vcpus:
            assert vcpu.ticks_handled >= expected_ticks - 3
