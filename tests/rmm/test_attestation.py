"""Tests for attestation: RMM measurement, token signing, guest policy."""

from repro.rmm.attestation import (
    BASELINE_RMM,
    CORE_GAPPED_RMM,
    PlatformRootOfTrust,
    RmmImage,
    verify_token,
)


def test_rmm_measurement_distinguishes_builds():
    assert BASELINE_RMM.measurement != CORE_GAPPED_RMM.measurement


def test_measurement_stable():
    again = RmmImage("tf-rmm", "0.3.0", core_gapped=False)
    assert again.measurement == BASELINE_RMM.measurement


def test_token_verifies():
    rot = PlatformRootOfTrust()
    token = rot.sign_token(CORE_GAPPED_RMM, realm_measurement=0xABC, challenge=7)
    assert verify_token(token, rot.public_verifier())


def test_tampered_token_rejected():
    rot = PlatformRootOfTrust()
    token = rot.sign_token(CORE_GAPPED_RMM, 0xABC, 7)
    forged = type(token)(
        platform_id=token.platform_id,
        rmm_measurement=token.rmm_measurement,
        rmm_core_gapped=token.rmm_core_gapped,
        realm_measurement=0xEE11,
        challenge=token.challenge,
        signature=token.signature,
    )
    assert not verify_token(forged, rot.public_verifier())


def test_wrong_platform_key_rejected():
    token = PlatformRootOfTrust(1).sign_token(CORE_GAPPED_RMM, 0xABC, 7)
    other_verifier = PlatformRootOfTrust(2).public_verifier()
    assert not verify_token(token, other_verifier)


def test_guest_can_require_core_gapped_monitor():
    """The key policy from S6.1: a guest refuses to run under a monitor
    that does not implement core gapping, because the build is measured."""
    rot = PlatformRootOfTrust()
    baseline = rot.sign_token(BASELINE_RMM, 0xABC, 7)
    gapped = rot.sign_token(CORE_GAPPED_RMM, 0xABC, 7)
    assert not verify_token(
        baseline, rot.public_verifier(), require_core_gapped=True
    )
    assert verify_token(
        gapped, rot.public_verifier(), require_core_gapped=True
    )


def test_realm_measurement_policy():
    rot = PlatformRootOfTrust()
    token = rot.sign_token(CORE_GAPPED_RMM, 0x123, 7)
    assert verify_token(
        token, rot.public_verifier(), expected_realm_measurement=0x123
    )
    assert not verify_token(
        token, rot.public_verifier(), expected_realm_measurement=0x999
    )
