"""Tests for RMM-side interrupt virtualization (fig. 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.guest.vcpu import VIPI_VIRQ, VTIMER_VIRQ
from repro.hw.gic import ListRegister, LrState, N_LIST_REGISTERS
from repro.rmm.interrupts import DELEGATED_DEFAULT, VirtualGic


class TestInjection:
    def test_rmm_injects_delegated(self):
        vgic = VirtualGic(DELEGATED_DEFAULT)
        assert vgic.inject(VTIMER_VIRQ, from_host=False)
        assert VTIMER_VIRQ in vgic.pending_intids()
        assert vgic.injected_by_rmm == 1

    def test_host_injects_nondelegated(self):
        vgic = VirtualGic(DELEGATED_DEFAULT)
        assert vgic.inject(33, from_host=True)
        assert 33 in vgic.pending_intids()
        assert vgic.injected_by_host == 1

    def test_host_cannot_inject_delegated_intid(self):
        """A confused or malicious host writing a delegated intid into
        the run page must be ignored, not trusted (fig. 5)."""
        vgic = VirtualGic(DELEGATED_DEFAULT)
        assert not vgic.inject(VTIMER_VIRQ, from_host=True)
        assert not vgic.inject(VIPI_VIRQ, from_host=True)
        assert vgic.pending_intids() == []

    def test_pending_interrupts_coalesce(self):
        vgic = VirtualGic(DELEGATED_DEFAULT)
        vgic.inject(VTIMER_VIRQ, from_host=False)
        vgic.inject(VTIMER_VIRQ, from_host=False)
        assert vgic.pending_intids().count(VTIMER_VIRQ) == 1

    def test_overflow_drops_when_no_free_slot(self):
        vgic = VirtualGic(set())
        for intid in range(32, 32 + N_LIST_REGISTERS):
            assert vgic.inject(intid, from_host=True)
        assert not vgic.inject(99, from_host=True)
        assert vgic.overflow_drops == 1

    def test_deliver_retires_slot(self):
        vgic = VirtualGic(DELEGATED_DEFAULT)
        vgic.inject(VTIMER_VIRQ, from_host=False)
        vgic.deliver(VTIMER_VIRQ)
        assert vgic.pending_intids() == []
        # slot is free again
        assert vgic.inject(VTIMER_VIRQ, from_host=False)


class TestFiltering:
    def test_filtered_view_hides_delegated(self):
        vgic = VirtualGic(DELEGATED_DEFAULT)
        vgic.inject(VTIMER_VIRQ, from_host=False)
        vgic.inject(VIPI_VIRQ, from_host=False)
        vgic.inject(40, from_host=True)
        visible = [
            lr.vintid for lr in vgic.filtered_view() if not lr.free
        ]
        assert VTIMER_VIRQ not in visible
        assert VIPI_VIRQ not in visible
        assert 40 in visible

    def test_sync_from_host_installs_pending(self):
        vgic = VirtualGic(DELEGATED_DEFAULT)
        host_list = [ListRegister(40, LrState.PENDING)]
        assert vgic.sync_from_host(host_list) == 1
        assert 40 in vgic.pending_intids()

    def test_sync_from_host_rejects_delegated(self):
        vgic = VirtualGic(DELEGATED_DEFAULT)
        host_list = [ListRegister(VTIMER_VIRQ, LrState.PENDING)]
        assert vgic.sync_from_host(host_list) == 0

    def test_sync_skips_invalid_slots(self):
        vgic = VirtualGic(DELEGATED_DEFAULT)
        host_list = [ListRegister(), ListRegister(40, LrState.ACTIVE)]
        assert vgic.sync_from_host(host_list) == 0

    @given(
        st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=64),
                st.booleans(),
            ),
            max_size=40,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_filtered_view_invariant(self, operations):
        """Whatever mix of host and RMM injections and deliveries
        happens, the host's view never contains a delegated intid and
        is always a subset of the true list (key fig. 5 property)."""
        vgic = VirtualGic(DELEGATED_DEFAULT)
        for intid, from_host in operations:
            vgic.inject(intid, from_host=from_host)
            if intid % 3 == 0:
                vgic.deliver(intid)
            assert vgic.invariant_filtered_is_subset()

    def test_no_delegation_shows_everything(self):
        vgic = VirtualGic(set())
        vgic.inject(VTIMER_VIRQ, from_host=True)
        visible = [lr.vintid for lr in vgic.filtered_view() if not lr.free]
        assert VTIMER_VIRQ in visible
