"""Tests for the rebinding extension (the paper's S3 future work).

Coarse-grained, monitor-mediated changes of the vCPU-to-core binding:
legal only between run calls, always scrubbing the old core, never
weakening the core-gap invariant.
"""

import pytest

from repro.experiments import System, SystemConfig
from repro.guest.actions import Compute
from repro.guest.vm import GuestVm
from repro.host.threads import HostThread, SchedClass
from repro.isa import World
from repro.rmm.core_gap import RebindCall
from repro.rmm.rmi import RmiStatus
from repro.security import CoreGapAuditor
from repro.sim import Event, SimulationError
from repro.sim.clock import ms


def bursty_factory(vm, index):
    """Computes in bursts with idle gaps, so RECs are regularly READY."""

    def body():
        while True:
            yield Compute(100_000)

    return body()


def run_planner_op(system, body_gen, expect_error=False):
    thread = HostThread(
        "op", body_gen, SchedClass.FAIR, affinity=system.host_cores
    )
    system.kernel.add_thread(thread)
    if expect_error:
        with pytest.raises(SimulationError):
            system.run_until_event(thread.done_event, limit_ns=ms(200))
        return None
    system.run_until_event(thread.done_event, limit_ns=ms(200))
    return thread.result


@pytest.fixture
def system():
    return System(SystemConfig(mode="gapped", n_cores=6, housekeeping=None))


class TestRebind:
    def _launch(self, system, n_vcpus=2):
        vm = GuestVm("vm0", n_vcpus, bursty_factory)
        kvm = system.launch(vm)
        system.start(kvm)
        system.run_for(ms(5))
        return vm, kvm

    def _quiesce(self, system, kvm, idx):
        """Wait until the REC is between run calls (kick it out)."""
        from repro.rmm.core_gap import HOST_KICK_SGI
        from repro.rmm.realm import RecState

        rec = system.rmm.find_rec(kvm.realm_id, idx)

        def ready():
            if rec.state is not RecState.READY:
                system.machine.gic.send_sgi(rec.bound_core, HOST_KICK_SGI)
                return False
            return True

        return rec

    def test_successful_rebind_moves_binding(self, system):
        vm, kvm = self._launch(system)
        old_core = kvm.planned_cores[0]
        new_core = 5  # free: vcpus took 1,2; host has 0
        result = run_planner_op(
            system, system.planner.rebind_vcpu(kvm, 0, new_core)
        )
        assert result == new_core
        rec = system.rmm.find_rec(kvm.realm_id, 0)
        assert rec.bound_core == new_core
        assert kvm.planned_cores[0] == new_core
        # old core returned to the host, new core in realm world
        assert system.machine.core(old_core).online
        assert system.machine.core(old_core).world is World.NORMAL
        assert system.machine.core(new_core).world is World.REALM
        assert system.tracer.counters["rec_rebind"] == 1

    def test_guest_keeps_running_after_rebind(self, system):
        vm, kvm = self._launch(system)
        before = vm.vcpu(0).compute_ns_done
        run_planner_op(system, system.planner.rebind_vcpu(kvm, 0, 5))
        system.run_for(ms(20))
        assert vm.vcpu(0).compute_ns_done > before

    def test_audit_clean_across_rebind(self, system):
        vm, kvm = self._launch(system)
        run_planner_op(system, system.planner.rebind_vcpu(kvm, 0, 5))
        system.run_for(ms(20))
        report = CoreGapAuditor().audit(system.machine, system.tracer)
        assert report.clean, report.summary()

    def test_rebind_onto_bound_core_refused(self, system):
        vm, kvm = self._launch(system)
        # vcpu1's core is already bound: engine must refuse
        rec1 = system.rmm.find_rec(kvm.realm_id, 1)
        rebind = RebindCall(
            kvm.realm_id, 0, rec1.bound_core, Event("rebind")
        )
        rec0 = system.rmm.find_rec(kvm.realm_id, 0)
        from repro.rmm.core_gap import HOST_KICK_SGI

        system.engine.dedicated[rec0.bound_core].inbox.try_put(rebind)
        system.machine.gic.send_sgi(rec0.bound_core, HOST_KICK_SGI)
        system.run_until(lambda: rebind.done.fired, limit_ns=ms(100))
        assert rebind.done.value.status in (
            RmiStatus.ERROR_IN_USE,
            RmiStatus.ERROR_REC,  # when caught mid-run
        )

    def test_rebind_wrong_rec_refused(self, system):
        vm, kvm = self._launch(system)
        rec1 = system.rmm.find_rec(kvm.realm_id, 1)
        # ask vcpu1's core to rebind vcpu0 (not bound there)
        rebind = RebindCall(kvm.realm_id, 0, 5, Event("rebind"))
        from repro.rmm.core_gap import HOST_KICK_SGI

        system.engine.dedicated[rec1.bound_core].inbox.try_put(rebind)
        system.machine.gic.send_sgi(rec1.bound_core, HOST_KICK_SGI)
        system.run_until(lambda: rebind.done.fired, limit_ns=ms(100))
        assert rebind.done.value.status in (
            RmiStatus.ERROR_CORE_BINDING,
            RmiStatus.ERROR_IN_USE,
        )

    def test_rebind_onto_host_core_rejected(self, system):
        vm, kvm = self._launch(system)
        with pytest.raises(SimulationError):
            # consumed eagerly: generator construction + first step
            gen = system.planner.rebind_vcpu(kvm, 0, 0)
            run_planner_op(system, gen, expect_error=True)
            raise SimulationError("unreachable")

    def test_old_core_scrubbed_after_rebind(self, system):
        vm, kvm = self._launch(system)
        old_core = kvm.planned_cores[0]
        # make sure the guest left residue (simulated accesses)
        system.machine.core(old_core).access_memory(0x1234, vm.domain)
        run_planner_op(system, system.planner.rebind_vcpu(kvm, 0, 5))
        present = system.machine.core(old_core).uarch.domains_present()
        assert vm.domain not in present
