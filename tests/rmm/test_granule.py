"""Tests for the granule delegation state machine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import GptFault, PhysicalMemory
from repro.isa import World
from repro.rmm.granule import (
    GRANULE_SIZE,
    GranuleError,
    GranuleState,
    GranuleTracker,
)


@pytest.fixture
def tracker():
    return GranuleTracker(PhysicalMemory(256 * GRANULE_SIZE))


G0 = 0 * GRANULE_SIZE
G1 = 1 * GRANULE_SIZE
G2 = 2 * GRANULE_SIZE


class TestDelegation:
    def test_delegate_changes_pas(self, tracker):
        tracker.delegate(G0)
        assert tracker.state_of(G0) is GranuleState.DELEGATED
        assert tracker.memory.pas_of(G0) is World.REALM

    def test_host_loses_access_on_delegate(self, tracker):
        tracker.memory.write(G0 + 8, 7, World.NORMAL)
        tracker.delegate(G0)
        with pytest.raises(GptFault):
            tracker.memory.read(G0 + 8, World.NORMAL)

    def test_double_delegate_rejected(self, tracker):
        tracker.delegate(G0)
        with pytest.raises(GranuleError):
            tracker.delegate(G0)

    def test_unaligned_rejected(self, tracker):
        with pytest.raises(GranuleError):
            tracker.delegate(123)

    def test_undelegate_restores_host_access(self, tracker):
        tracker.delegate(G0)
        tracker.undelegate(G0)
        assert tracker.memory.pas_of(G0) is World.NORMAL
        tracker.memory.read(G0, World.NORMAL)

    def test_undelegate_scrubs_contents(self, tracker):
        tracker.delegate(G0)
        tracker.memory.write(G0 + 16, 0x5EC2E7, World.REALM)
        tracker.undelegate(G0)
        assert tracker.memory.read(G0 + 16, World.NORMAL) == 0

    def test_undelegate_undelegated_rejected(self, tracker):
        with pytest.raises(GranuleError):
            tracker.undelegate(G0)


class TestConsume:
    def test_consume_requires_delegated(self, tracker):
        with pytest.raises(GranuleError):
            tracker.consume(G0, GranuleState.DATA, realm_id=1)

    def test_consume_assigns_owner(self, tracker):
        tracker.delegate(G0)
        tracker.consume(G0, GranuleState.REC, realm_id=3)
        assert tracker.get(G0).owner_realm == 3
        assert tracker.state_of(G0) is GranuleState.REC

    def test_consumed_granule_cannot_be_undelegated(self, tracker):
        tracker.delegate(G0)
        tracker.consume(G0, GranuleState.DATA, realm_id=1)
        with pytest.raises(GranuleError):
            tracker.undelegate(G0)

    def test_consume_into_undelegated_rejected(self, tracker):
        tracker.delegate(G0)
        with pytest.raises(GranuleError):
            tracker.consume(G0, GranuleState.UNDELEGATED, realm_id=1)

    def test_release_then_undelegate(self, tracker):
        tracker.delegate(G0)
        tracker.consume(G0, GranuleState.DATA, realm_id=1)
        tracker.release(G0)
        tracker.undelegate(G0)
        assert tracker.state_of(G0) is GranuleState.UNDELEGATED

    def test_release_scrubs(self, tracker):
        tracker.delegate(G0)
        tracker.consume(G0, GranuleState.DATA, realm_id=1)
        tracker.memory.write(G0, 42, World.REALM)
        tracker.release(G0)
        assert tracker.memory.read(G0, World.REALM) == 0

    def test_release_unconsumed_rejected(self, tracker):
        tracker.delegate(G0)
        with pytest.raises(GranuleError):
            tracker.release(G0)


class TestQueries:
    def test_owned_by(self, tracker):
        for addr, realm in [(G0, 1), (G1, 1), (G2, 2)]:
            tracker.delegate(addr)
            tracker.consume(addr, GranuleState.DATA, realm_id=realm)
        assert len(tracker.owned_by(1)) == 2
        assert len(tracker.owned_by(2)) == 1

    def test_counts(self, tracker):
        tracker.delegate(G0)
        tracker.delegate(G1)
        tracker.consume(G1, GranuleState.RTT, realm_id=1)
        assert tracker.count_in_state(GranuleState.DELEGATED) == 1
        assert tracker.count_in_state(GranuleState.RTT) == 1
        assert tracker.delegate_count == 2


class TestStateMachineProperties:
    @given(
        st.lists(
            st.sampled_from(["delegate", "undelegate", "consume", "release"]),
            max_size=30,
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_gpt_always_consistent_with_ledger(self, ops):
        """Whatever sequence of (possibly illegal) ops the host attempts,
        the hardware PAS always agrees with the RMM ledger."""
        tracker = GranuleTracker(PhysicalMemory(16 * GRANULE_SIZE))
        for op in ops:
            try:
                if op == "delegate":
                    tracker.delegate(G0)
                elif op == "undelegate":
                    tracker.undelegate(G0)
                elif op == "consume":
                    tracker.consume(G0, GranuleState.DATA, realm_id=1)
                else:
                    tracker.release(G0)
            except GranuleError:
                pass
            state = tracker.state_of(G0)
            pas = tracker.memory.pas_of(G0)
            if state is GranuleState.UNDELEGATED:
                assert pas is World.NORMAL
            else:
                assert pas is World.REALM
