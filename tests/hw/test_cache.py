"""Tests for the set-associative cache model."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw import CacheGeometry, SetAssociativeCache
from repro.isa import HOST_DOMAIN, realm_domain

REALM = realm_domain(1)


def small_cache(ways=2, sets=4, line=64):
    return SetAssociativeCache(
        CacheGeometry("test", line * ways * sets, line, ways)
    )


class TestGeometry:
    def test_n_sets(self):
        geo = CacheGeometry("g", 64 * 1024, 64, 8)
        assert geo.n_sets == 128

    def test_indexing_wraps(self):
        geo = CacheGeometry("g", 64 * 1024, 64, 8)
        assert geo.set_index(0) == geo.set_index(128 * 64)

    def test_tag_differs_for_aliasing_addresses(self):
        geo = CacheGeometry("g", 64 * 1024, 64, 8)
        assert geo.tag(0) != geo.tag(128 * 64)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            CacheGeometry("bad", 1000, 64, 8)


class TestAccess:
    def test_miss_then_hit(self):
        cache = small_cache()
        assert not cache.access(0x1000, HOST_DOMAIN).hit
        assert cache.access(0x1000, HOST_DOMAIN).hit
        assert cache.hits == 1 and cache.misses == 1

    def test_same_line_different_offset_hits(self):
        cache = small_cache()
        cache.access(0x1000, HOST_DOMAIN)
        assert cache.access(0x1030, HOST_DOMAIN).hit  # same 64B line

    def test_lru_eviction_within_set(self):
        cache = small_cache(ways=2, sets=1)
        cache.access(0 * 64, HOST_DOMAIN)
        cache.access(1 * 64, HOST_DOMAIN)
        cache.access(0 * 64, HOST_DOMAIN)  # refresh line 0
        result = cache.access(2 * 64, HOST_DOMAIN)  # evicts line 1 (LRU)
        assert result.evicted is not None
        assert not cache.probe(1 * 64)
        assert cache.probe(0 * 64)

    def test_probe_does_not_fill(self):
        cache = small_cache()
        assert not cache.probe(0x2000)
        assert cache.filled_lines == 0

    def test_eviction_carries_victim_domain(self):
        cache = small_cache(ways=1, sets=1)
        cache.access(0, REALM)
        result = cache.access(64, HOST_DOMAIN)
        assert result.evicted.domain == REALM


class TestDomainTagging:
    def test_domains_present(self):
        cache = small_cache()
        cache.access(0x0, HOST_DOMAIN)
        cache.access(0x40, REALM)
        assert cache.domains_present() == {HOST_DOMAIN, REALM}

    def test_access_retags_line(self):
        cache = small_cache()
        cache.access(0x0, REALM)
        cache.access(0x0, HOST_DOMAIN)
        assert cache.domains_present() == {HOST_DOMAIN}

    def test_flush_domain_selective(self):
        cache = small_cache()
        cache.access(0x0, HOST_DOMAIN)
        cache.access(0x40, REALM)
        dropped = cache.flush_domain(REALM)
        assert dropped == 1
        assert cache.domains_present() == {HOST_DOMAIN}

    def test_full_flush(self):
        cache = small_cache()
        for i in range(8):
            cache.access(i * 64, HOST_DOMAIN)
        dropped = cache.flush()
        assert dropped == 8
        assert cache.filled_lines == 0

    def test_occupancy_by_domain(self):
        cache = small_cache()
        cache.access(0x0, HOST_DOMAIN)
        cache.access(0x40, HOST_DOMAIN)
        cache.access(0x80, REALM)
        occ = cache.occupancy_by_domain()
        assert occ[HOST_DOMAIN] == 2
        assert occ[REALM] == 1


class TestProperties:
    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_occupancy_never_exceeds_capacity(self, addrs):
        cache = small_cache(ways=2, sets=4)
        for addr in addrs:
            cache.access(addr, HOST_DOMAIN)
        assert cache.filled_lines <= 8
        for idx in range(4):
            assert len(cache.set_occupancy(idx)) <= 2

    @given(st.lists(st.integers(min_value=0, max_value=1 << 20), max_size=200))
    @settings(max_examples=50, deadline=None)
    def test_hits_plus_misses_equals_accesses(self, addrs):
        cache = small_cache()
        for addr in addrs:
            cache.access(addr, HOST_DOMAIN)
        assert cache.hits + cache.misses == len(addrs)

    @given(
        st.lists(
            st.integers(min_value=0, max_value=1 << 16), min_size=1, max_size=50
        )
    )
    @settings(max_examples=50, deadline=None)
    def test_accessed_line_is_always_present_after(self, addrs):
        cache = small_cache()
        for addr in addrs:
            cache.access(addr, HOST_DOMAIN)
            assert cache.probe(addr)
