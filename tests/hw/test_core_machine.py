"""Tests for PhysicalCore execution, GIC, timers, memory/GPT, Machine."""

import pytest

from repro.hw import (
    ExecStatus,
    GptFault,
    Machine,
    SocTopology,
    VTIMER_PPI,
)
from repro.hw.gic import SPI_BASE
from repro.isa import HOST_DOMAIN, World, realm_domain
from repro.sim import Delay, SimulationError

REALM = realm_domain(1)


def make_machine(n_cores=4):
    return Machine(SocTopology(name="test", n_cores=n_cores, memory_gib=1))


class TestExecute:
    def test_uninterrupted_work_completes_exactly(self):
        m = make_machine()
        results = []

        def proc():
            result = yield from m.core(0).execute(HOST_DOMAIN, 10_000)
            results.append((m.now, result))

        m.sim.spawn(proc())
        m.sim.run()
        assert results[0][0] == 10_000
        assert results[0][1].done

    def test_interrupt_preempts_work(self):
        m = make_machine()
        results = []

        def proc():
            result = yield from m.core(0).execute(HOST_DOMAIN, 100_000)
            results.append((m.now, result))

        m.sim.spawn(proc())
        m.sim.schedule(30_000, lambda: m.gic.cores[0].pend(VTIMER_PPI))
        m.sim.run()
        when, result = results[0]
        assert result.status == ExecStatus.INTERRUPTED
        assert when == 30_000
        assert result.remaining_ns == 70_000

    def test_pending_interrupt_returns_immediately(self):
        m = make_machine()
        m.gic.cores[0].pend(VTIMER_PPI)
        results = []

        def proc():
            result = yield from m.core(0).execute(HOST_DOMAIN, 50_000)
            results.append((m.now, result))

        m.sim.spawn(proc())
        m.sim.run()
        assert results[0][0] == 0
        assert results[0][1].status == ExecStatus.INTERRUPTED
        assert results[0][1].remaining_ns == 50_000

    def test_uninterruptible_ignores_irq(self):
        m = make_machine()
        results = []

        def proc():
            result = yield from m.core(0).execute(
                HOST_DOMAIN, 100_000, interruptible=False
            )
            results.append((m.now, result))

        m.sim.spawn(proc())
        m.sim.schedule(10_000, lambda: m.gic.cores[0].pend(VTIMER_PPI))
        m.sim.run()
        assert results[0][0] == 100_000
        assert results[0][1].done
        # irq still pending for later
        assert m.gic.cores[0].has_pending()

    def test_pollution_penalty_slows_resumption(self):
        m = make_machine()
        times = []

        def proc():
            yield from m.core(0).execute(REALM, 10_000, interruptible=False)
            yield from m.core(0).execute(
                HOST_DOMAIN, 10_000, interruptible=False
            )
            start = m.now
            yield from m.core(0).execute(REALM, 10_000, interruptible=False)
            times.append(m.now - start)

        m.sim.spawn(proc())
        m.sim.run()
        assert times[0] > 10_000  # paid a refill penalty

    def test_spans_recorded(self):
        m = make_machine()

        def proc():
            yield from m.core(0).execute(REALM, 5_000, interruptible=False)
            yield from m.core(1).execute(
                HOST_DOMAIN, 3_000, interruptible=False
            )

        m.sim.spawn(proc())
        m.sim.run()
        m.finish_tracing()
        assert m.tracer.busy_time(core=0, domain=REALM.name) == 5_000
        assert m.tracer.busy_time(core=1, domain=HOST_DOMAIN.name) == 3_000

    def test_offline_core_rejects_host_work(self):
        m = make_machine()
        m.core(0).set_online(False)

        def proc():
            yield from m.core(0).execute(HOST_DOMAIN, 1_000)

        p = m.sim.spawn(proc())
        with pytest.raises(SimulationError, match="offline"):
            m.sim.run()

    def test_offline_core_accepts_realm_work(self):
        m = make_machine()
        m.core(0).set_online(False)
        m.core(0).set_world(World.REALM)
        done = []

        def proc():
            result = yield from m.core(0).execute(REALM, 1_000)
            done.append(result.done)

        m.sim.spawn(proc())
        m.sim.run()
        assert done == [True]


class TestGic:
    def test_sgi_delivered_after_wire_delay(self):
        m = make_machine()
        log = []

        def receiver():
            yield m.gic.cores[1].doorbell.wait()
            log.append(m.now)

        m.sim.spawn(receiver())
        m.gic.send_sgi(1, 8)
        m.sim.run()
        assert log == [m.topology.ipi_wire_delay_ns]
        assert m.gic.cores[1].peek_pending() == 8

    def test_ack_priority_lowest_intid_first(self):
        m = make_machine()
        iface = m.gic.cores[0]
        iface.pend(30)
        iface.pend(8)
        assert iface.acknowledge() == 8
        assert iface.acknowledge() == 30
        assert iface.acknowledge() is None

    def test_sgi_range_checked(self):
        m = make_machine()
        with pytest.raises(SimulationError):
            m.gic.send_sgi(0, 16)

    def test_spi_routing(self):
        m = make_machine()
        m.gic.route_spi(SPI_BASE + 1, 2)
        m.gic.raise_spi(SPI_BASE + 1)
        m.sim.run()
        assert m.gic.cores[2].peek_pending() == SPI_BASE + 1

    def test_spi_retarget_for_hotplug(self):
        m = make_machine()
        m.gic.route_spi(SPI_BASE + 1, 3)
        m.gic.route_spi(SPI_BASE + 2, 3)
        m.gic.route_spi(SPI_BASE + 3, 1)
        moved = m.gic.retarget_spis_away_from(3, fallback=0)
        assert moved == 2
        assert m.gic.spi_route(SPI_BASE + 3) == 1
        assert m.gic.spi_route(SPI_BASE + 1) == 0

    def test_received_counts(self):
        m = make_machine()
        m.gic.cores[0].pend(8)
        m.gic.cores[0].pend(8)
        assert m.gic.cores[0].received_count[8] == 2


class TestTimer:
    def test_timer_fires_vtimer_ppi(self):
        m = make_machine()
        m.timers[0].program(5_000)
        m.sim.run()
        assert m.gic.cores[0].peek_pending() == VTIMER_PPI
        assert m.timers[0].fire_count == 1

    def test_reprogram_cancels_previous(self):
        m = make_machine()
        m.timers[0].program(5_000)
        m.timers[0].program(9_000)
        m.sim.run()
        assert m.timers[0].fire_count == 1
        assert m.sim.now == 9_000

    def test_cancel(self):
        m = make_machine()
        m.timers[0].program(5_000)
        m.timers[0].cancel()
        m.sim.run()
        assert m.timers[0].fire_count == 0

    def test_program_after(self):
        m = make_machine()

        def proc():
            yield Delay(1_000)
            m.timers[0].program_after(2_000)

        m.sim.spawn(proc())
        m.sim.run()
        assert m.sim.now == 3_000
        assert m.timers[0].fire_count == 1


class TestMemoryGpt:
    def test_default_pas_is_normal(self):
        m = make_machine()
        assert m.memory.pas_of(0x5000) is World.NORMAL
        m.memory.check_access(0x5000, World.NORMAL)  # no fault

    def test_realm_granule_blocks_host(self):
        m = make_machine()
        m.memory.set_pas(0x5000, World.REALM)
        with pytest.raises(GptFault):
            m.memory.check_access(0x5000, World.NORMAL)
        m.memory.check_access(0x5000, World.REALM)

    def test_root_sees_everything(self):
        m = make_machine()
        m.memory.set_pas(0x5000, World.REALM)
        m.memory.check_access(0x5000, World.ROOT)

    def test_realm_world_reads_normal_memory(self):
        # shared (non-confidential) buffers are how RPC rings work
        m = make_machine()
        m.memory.write(0x100, 42, World.NORMAL)
        assert m.memory.read(0x100, World.REALM) == 42

    def test_scrub_on_undelegate(self):
        m = make_machine()
        m.memory.set_pas(0x2000, World.REALM)
        m.memory.write(0x2008, 0x5EC, World.REALM)
        m.memory.scrub_granule(0x2008)
        m.memory.set_pas(0x2000, World.NORMAL)
        assert m.memory.read(0x2008, World.NORMAL) == 0

    def test_fault_counted(self):
        m = make_machine()
        m.memory.set_pas(0x0, World.ROOT)
        with pytest.raises(GptFault):
            m.memory.read(0x0, World.NORMAL)
        assert m.memory.gpt_faults == 1

    def test_out_of_range_rejected(self):
        m = make_machine()
        with pytest.raises(ValueError):
            m.memory.pas_of(1 << 62)


class TestMemoryHierarchyAccess:
    def test_latency_improves_with_locality(self):
        m = make_machine()
        core = m.core(0)
        first = core.access_memory(0x1234, REALM)
        second = core.access_memory(0x1234, REALM)
        assert second < first

    def test_llc_shared_across_cores(self):
        m = make_machine()
        m.core(0).access_memory(0x9999, REALM)
        # other core misses L1/L2 but hits shared LLC
        latency = m.core(1).access_memory(0x9999, REALM)
        assert latency == pytest.approx(30.0)


class TestMachine:
    def test_topology_validation(self):
        with pytest.raises(ValueError):
            SocTopology(name="bad", n_cores=0)
        with pytest.raises(ValueError):
            SocTopology(name="smt", n_cores=4, threads_per_core=2)

    def test_with_cores(self):
        topo = SocTopology(name="t", n_cores=8).with_cores(16)
        assert topo.n_cores == 16 and topo.name == "t"

    def test_online_cores(self):
        m = make_machine()
        m.core(2).set_online(False)
        assert len(m.online_cores()) == 3
