"""Tests for TLB, branch predictor, store buffer, pollution model."""

from repro.hw import BranchPredictor, StoreBuffer, Tlb
from repro.hw.uarch import CoreUarchState, PollutionCosts, PollutionModel
from repro.isa import HOST_DOMAIN, MONITOR_DOMAIN, realm_domain

REALM = realm_domain(1)
REALM2 = realm_domain(2)


class TestTlb:
    def test_miss_then_fill_then_hit(self):
        tlb = Tlb(entries=4)
        assert tlb.lookup(0x1000, vmid=1) is None
        tlb.fill(0x1000, 0x9000, vmid=1, domain=REALM)
        assert tlb.lookup(0x1000, vmid=1) == 0x9

    def test_vmid_isolation(self):
        tlb = Tlb(entries=4)
        tlb.fill(0x1000, 0x9000, vmid=1, domain=REALM)
        assert tlb.lookup(0x1000, vmid=2) is None

    def test_lru_eviction(self):
        tlb = Tlb(entries=2)
        tlb.fill(0x1000, 0xA000, 1, REALM)
        tlb.fill(0x2000, 0xB000, 1, REALM)
        tlb.lookup(0x1000, 1)  # refresh
        evicted = tlb.fill(0x3000, 0xC000, 1, REALM)
        assert evicted.vpn == 0x2
        assert tlb.lookup(0x2000, 1) is None

    def test_invalidate_vmid(self):
        tlb = Tlb()
        tlb.fill(0x1000, 0xA000, 1, REALM)
        tlb.fill(0x2000, 0xB000, 2, REALM2)
        assert tlb.invalidate_vmid(1) == 1
        assert tlb.lookup(0x1000, 1) is None
        assert tlb.lookup(0x2000, 2) is not None

    def test_invalidate_page(self):
        tlb = Tlb()
        tlb.fill(0x1000, 0xA000, 1, REALM)
        assert tlb.invalidate_page(0x1000, 1)
        assert not tlb.invalidate_page(0x1000, 1)

    def test_domains_present(self):
        tlb = Tlb()
        tlb.fill(0x1000, 0xA000, 1, REALM)
        tlb.fill(0x2000, 0xB000, 0, HOST_DOMAIN)
        assert tlb.domains_present() == {REALM, HOST_DOMAIN}
        tlb.invalidate_all()
        assert tlb.domains_present() == set()


class TestBranchPredictor:
    def test_train_then_predict(self):
        bp = BranchPredictor()
        bp.train(0x4000, 0x5000, HOST_DOMAIN)
        # history changed after training, so compute index via same state:
        entry = bp.predict(0x4000 ^ 0)  # direct query may alias; use internals
        # at minimum the trained entry is somewhere in the BTB
        assert bp.occupancy == 1

    def test_cross_domain_injection_possible_same_core(self):
        # Spectre-v2 shape: attacker trains a branch that aliases with the
        # victim's; the victim's prediction comes from attacker state.
        bp = BranchPredictor(btb_entries=16, history_bits=0)
        attacker_pc = 0x100
        victim_pc = 0x100 + 16  # aliases in a 16-entry direct-mapped BTB
        bp.train(attacker_pc, 0xDEAD, REALM2)
        entry = bp.predict(victim_pc)
        assert entry is not None
        assert entry.domain == REALM2  # foreign state steers prediction

    def test_flush_removes_all(self):
        bp = BranchPredictor()
        bp.train(0x1, 0x2, HOST_DOMAIN)
        assert bp.flush() == 1
        assert bp.occupancy == 0
        assert bp.domains_present() == set()

    def test_history_tracks_last_domain(self):
        bp = BranchPredictor()
        bp.train(0x1, 0x3, REALM)
        assert REALM in bp.domains_present()


class TestStoreBuffer:
    def test_forwarding_youngest_wins(self):
        sb = StoreBuffer()
        sb.push(0x10, 1, HOST_DOMAIN)
        sb.push(0x10, 2, HOST_DOMAIN)
        assert sb.forward(0x10).value == 2

    def test_cross_domain_forwarding_is_the_leak(self):
        sb = StoreBuffer()
        sb.push(0x10, 0x5EC2E7, REALM)
        leaked = sb.forward(0x10)
        assert leaked is not None and leaked.domain == REALM

    def test_capacity_drains_oldest(self):
        sb = StoreBuffer(entries=2)
        sb.push(0x1, 1, HOST_DOMAIN)
        sb.push(0x2, 2, HOST_DOMAIN)
        sb.push(0x3, 3, HOST_DOMAIN)
        assert sb.forward(0x1) is None
        assert sb.occupancy == 2

    def test_drain(self):
        sb = StoreBuffer()
        sb.push(0x1, 1, HOST_DOMAIN)
        assert sb.drain() == 1
        assert sb.forward(0x1) is None


class TestCoreUarchState:
    def test_flush_all_clears_every_structure(self):
        state = CoreUarchState(0)
        state.l1d.access(0x100, REALM)
        state.l1i.access(0x200, REALM)
        state.tlb.fill(0x1000, 0x2000, 1, REALM)
        state.branch.train(0x1, 0x2, REALM)
        state.store_buffer.push(0x1, 1, REALM)
        state.flush_all()
        # L2 is not flushed by the mitigation path, everything else is
        assert state.l1d.filled_lines == 0
        assert state.tlb.occupancy == 0
        assert state.branch.occupancy == 0
        assert state.store_buffer.occupancy == 0
        assert state.flush_count == 1

    def test_domains_present_aggregates(self):
        state = CoreUarchState(0)
        state.l1d.access(0x100, REALM)
        state.branch.train(0x1, 0x2, HOST_DOMAIN)
        present = state.domains_present()
        assert REALM in present and HOST_DOMAIN in present

    def test_structures_enumeration(self):
        state = CoreUarchState(0)
        names = [name for name, _ in state.structures()]
        assert names == ["l1d", "l1i", "l2", "tlb", "branch", "store_buffer"]


class TestPollutionModel:
    def test_first_run_pays_nothing(self):
        pm = PollutionModel()
        assert pm.consume_penalty(REALM) == 0

    def test_foreign_run_charges_victim(self):
        pm = PollutionModel()
        pm.note_run(REALM)
        pm.note_run(HOST_DOMAIN)
        pm.note_run_duration(HOST_DOMAIN, 100_000)
        assert pm.pending_penalty(REALM) > 0

    def test_penalty_consumed_once(self):
        pm = PollutionModel()
        pm.note_run(REALM)
        pm.note_run_duration(HOST_DOMAIN, 100_000)
        pm.consume_penalty(REALM)
        assert pm.consume_penalty(REALM) == 0

    def test_charge_proportional_to_duration(self):
        costs = PollutionCosts()
        pm = PollutionModel(costs)
        pm.note_run(REALM)
        pm.note_run_duration(HOST_DOMAIN, 1_000)  # brief irq handler
        brief = pm.consume_penalty(REALM)
        pm.note_run_duration(HOST_DOMAIN, 4_000_000)  # full quantum
        long = pm.consume_penalty(REALM)
        assert brief == int(1_000 * costs.pollution_rate)
        assert long == costs.foreign_run_penalty_ns  # capped
        assert brief < long

    def test_monitor_run_is_cheap(self):
        costs = PollutionCosts()
        pm_foreign = PollutionModel(costs)
        pm_foreign.note_run(REALM)
        pm_foreign.note_run_duration(HOST_DOMAIN, 1_000_000)
        pm_monitor = PollutionModel(costs)
        pm_monitor.note_run(REALM)
        pm_monitor.note_run_duration(MONITOR_DOMAIN, 1_000_000)
        # compare the pending penalties right before the victim resumes
        assert (
            pm_monitor.pending_penalty(REALM)
            < pm_foreign.pending_penalty(REALM)
        )
        assert pm_monitor.pending_penalty(REALM) == costs.monitor_penalty_ns

    def test_flush_charges_everyone(self):
        pm = PollutionModel()
        pm.note_run(REALM)
        pm.consume_penalty(REALM)
        pm.note_flush()
        assert pm.pending_penalty(REALM) > 0

    def test_penalty_capped(self):
        costs = PollutionCosts()
        pm = PollutionModel(costs)
        pm.note_run(REALM)
        for _ in range(100):
            pm.note_run_duration(HOST_DOMAIN, 4_000_000)
            pm.note_flush()
        assert pm.pending_penalty(REALM) <= costs.max_pending_penalty_ns

    def test_own_run_charges_nothing_to_self(self):
        pm = PollutionModel()
        pm.note_run(REALM)
        pm.note_run_duration(REALM, 10_000_000)
        assert pm.consume_penalty(REALM) == 0
