"""Tests for the host kernel: scheduler classes, IRQs, migration."""

import pytest

from repro.costs import DEFAULT_COSTS
from repro.hw import Machine, SocTopology
from repro.host.kernel import HostKernel, RESCHED_SGI, WAKEUP_GRANULARITY_NS
from repro.host.threads import (
    HostThread,
    SchedClass,
    TBlock,
    TCompute,
    TSleep,
    TSpin,
    TYield,
    ThreadState,
)
from repro.sim import Event, us, ms


def make_kernel(n_cores=2):
    machine = Machine(SocTopology(name="t", n_cores=n_cores, memory_gib=1))
    kernel = HostKernel(machine, DEFAULT_COSTS)
    kernel.start()
    return machine, kernel


class TestBasicScheduling:
    def test_thread_runs_and_finishes(self):
        machine, kernel = make_kernel(1)
        log = []

        def body():
            yield TCompute(10_000)
            log.append(machine.sim.now)
            return "result"

        thread = kernel.add_thread(HostThread("t", body()))
        machine.sim.run(until=ms(1))
        assert thread.state == ThreadState.DONE
        assert thread.result == "result"
        assert log and log[0] >= 10_000

    def test_threads_spread_across_cores(self):
        machine, kernel = make_kernel(4)

        def body():
            yield TCompute(ms(1))

        threads = [
            kernel.add_thread(HostThread(f"t{i}", body())) for i in range(4)
        ]
        machine.sim.run(until=ms(2))
        cores = {t.last_core for t in threads}
        assert len(cores) == 4  # one per core, not stacked

    def test_block_and_wake(self):
        machine, kernel = make_kernel(1)
        event = Event("go")
        log = []

        def body():
            value = yield TBlock(event)
            log.append((machine.sim.now, value))

        kernel.add_thread(HostThread("t", body()))
        machine.sim.schedule(us(500), lambda: event.fire("hello"))
        machine.sim.run(until=ms(1))
        assert log[0][1] == "hello"
        assert log[0][0] >= us(500)

    def test_sleep(self):
        machine, kernel = make_kernel(1)
        log = []

        def body():
            yield TSleep(us(100))
            log.append(machine.sim.now)

        kernel.add_thread(HostThread("t", body()))
        machine.sim.run(until=ms(1))
        assert log[0] >= us(100)

    def test_yield_round_robins(self):
        machine, kernel = make_kernel(1)
        order = []

        def body(name):
            for _ in range(2):
                yield TCompute(1_000)
                order.append(name)
                yield TYield()

        kernel.add_thread(HostThread("a", body("a")))
        kernel.add_thread(HostThread("b", body("b")))
        machine.sim.run(until=ms(1))
        assert order[:4] == ["a", "b", "a", "b"]


class TestPriorities:
    def test_fifo_runs_before_fair(self):
        machine, kernel = make_kernel(1)
        order = []

        def body(name):
            yield TCompute(1_000)
            order.append(name)

        # queue both before the core picks either
        kernel.add_thread(
            HostThread("fair", body("fair"), SchedClass.FAIR)
        )
        kernel.add_thread(
            HostThread("fifo", body("fifo"), SchedClass.FIFO)
        )
        machine.sim.run(until=ms(1))
        assert order[0] == "fifo"

    def test_fifo_preempts_running_fair(self):
        machine, kernel = make_kernel(1)
        log = []

        def fair_body():
            yield TCompute(ms(10))
            log.append(("fair-done", machine.sim.now))

        def fifo_body():
            yield TCompute(1_000)
            log.append(("fifo-done", machine.sim.now))

        kernel.add_thread(HostThread("fair", fair_body(), SchedClass.FAIR))

        def spawn_fifo():
            kernel.add_thread(
                HostThread("fifo", fifo_body(), SchedClass.FIFO)
            )

        machine.sim.schedule(ms(1), spawn_fifo)
        machine.sim.run(until=ms(20))
        names = [n for n, _ in log]
        assert names[0] == "fifo-done"
        # and the fair thread still completes afterwards
        assert "fair-done" in names

    def test_fifo_not_preempted_by_fifo(self):
        machine, kernel = make_kernel(1)
        order = []

        def body(name, work):
            yield TCompute(work)
            order.append(name)

        kernel.add_thread(HostThread("a", body("a", ms(2)), SchedClass.FIFO))
        kernel.add_thread(HostThread("b", body("b", 1_000), SchedClass.FIFO))
        machine.sim.run(until=ms(5))
        assert order == ["a", "b"]  # FIFO order, no preemption


class TestQuantum:
    def test_fair_threads_share_core(self):
        machine, kernel = make_kernel(1)
        quantum = DEFAULT_COSTS.sched_quantum_ns
        done = []

        def body(name):
            yield TCompute(3 * quantum)
            done.append((name, machine.sim.now))

        kernel.add_thread(HostThread("a", body("a")))
        kernel.add_thread(HostThread("b", body("b")))
        machine.sim.run(until=ms(40))
        assert len(done) == 2
        # interleaved: both finish within ~a quantum of each other
        assert abs(done[0][1] - done[1][1]) <= 2 * quantum

    def test_wakeup_preemption_of_long_runner(self):
        machine, kernel = make_kernel(1)
        log = []

        def hog():
            yield TCompute(ms(100))
            log.append(("hog", machine.sim.now))

        def sleeper():
            yield TSleep(ms(2))
            yield TCompute(10_000)
            log.append(("sleeper", machine.sim.now))

        kernel.add_thread(HostThread("hog", hog()))
        kernel.add_thread(HostThread("sleeper", sleeper()))
        machine.sim.run(until=ms(200))
        sleeper_done = dict(log)["sleeper"]
        # woken thread ran long before the hog finished its 100ms
        assert sleeper_done < ms(10)


class TestSpin:
    def test_spin_occupies_core_until_event(self):
        machine, kernel = make_kernel(1)
        event = Event()
        log = []

        def spinner():
            value = yield TSpin(event)
            log.append((machine.sim.now, value))

        thread = kernel.add_thread(
            HostThread("spin", spinner(), SchedClass.FIFO)
        )
        machine.sim.schedule(us(300), lambda: event.fire("done"))
        machine.sim.run(until=ms(1))
        assert log[0][1] == "done"
        assert log[0][0] >= us(300)
        # the spinner burned CPU the whole time
        assert thread.cpu_ns >= us(250)


class TestIrq:
    def test_registered_handler_called(self):
        machine, kernel = make_kernel(1)
        calls = []

        def handler(core, intid):
            calls.append((core, intid))
            return 500

        kernel.register_irq_handler(14, handler)
        machine.gic.send_sgi(0, 14)
        machine.sim.run(until=ms(1))
        assert calls == [(0, 14)]

    def test_irq_interrupts_running_thread(self):
        machine, kernel = make_kernel(1)
        log = []

        def body():
            yield TCompute(ms(5))
            log.append(machine.sim.now)

        kernel.add_thread(HostThread("t", body()))
        calls = []
        kernel.register_irq_handler(14, lambda c, i: calls.append(c) or 500)
        machine.sim.schedule(ms(1), lambda: machine.gic.send_sgi(0, 14))
        machine.sim.run(until=ms(10))
        assert calls == [0]
        assert log  # thread still completed


class TestMigration:
    def test_migrate_all_from_core(self):
        machine, kernel = make_kernel(2)

        def body():
            yield TSleep(ms(50))

        # force both onto core 1
        t1 = HostThread("a", body(), affinity={0, 1})
        t2 = HostThread("b", body(), affinity={0, 1})
        kernel.add_thread(t1, core_hint=1)
        kernel.add_thread(t2, core_hint=1)
        machine.sim.run(until=us(10))
        # queue more work on core 1 then migrate
        t3 = HostThread("c", (TCompute(1_000) for _ in range(1)))
        kernel._fair[1].append(t3)
        moved = kernel.migrate_all_from(1)
        assert moved >= 1

    def test_per_cpu_thread_parks_when_core_offline(self):
        machine, kernel = make_kernel(2)

        def body():
            while True:
                yield TSleep(ms(5))
                yield TCompute(1_000)

        thread = HostThread("kworker/1", body(), affinity={1})
        thread.per_cpu = True
        kernel.add_thread(thread, core_hint=1)
        machine.sim.run(until=ms(1))
        machine.core(1).set_online(False)
        kernel.migrate_all_from(1)
        # re-enqueue attempt parks it
        kernel._enqueue(thread)
        assert thread in kernel._parked
        machine.core(1).set_online(True)
        kernel.unpark_for_core(1)
        assert thread not in kernel._parked
