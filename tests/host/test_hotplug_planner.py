"""Tests for CPU hotplug and the core planner."""

import pytest

from repro.experiments import System, SystemConfig
from repro.guest.actions import Compute
from repro.guest.vm import GuestVm
from repro.host.hotplug import HotplugError, offline_core, online_core
from repro.host.threads import HostThread, SchedClass
from repro.hw.gic import SPI_BASE
from repro.isa import World
from repro.rmm.granule import GranuleState
from repro.sim.clock import ms


def run_thread_body(system, body_gen, name="op"):
    thread = HostThread(name, body_gen, SchedClass.FAIR,
                        affinity=system.host_cores)
    system.kernel.add_thread(thread)
    system.run_until_event(thread.done_event, limit_ns=ms(100))
    return thread.result


@pytest.fixture
def system():
    return System(SystemConfig(mode="gapped", n_cores=4, housekeeping=None))


class TestHotplug:
    def test_offline_marks_core_unusable(self, system):
        run_thread_body(
            system, offline_core(system.kernel, 2, fallback_core=0)
        )
        assert not system.machine.core(2).online
        assert system.tracer.counters["hotplug_offline"] == 1

    def test_offline_retargets_device_irqs(self, system):
        system.machine.gic.route_spi(SPI_BASE + 5, 2)
        run_thread_body(
            system, offline_core(system.kernel, 2, fallback_core=0)
        )
        assert system.machine.gic.spi_route(SPI_BASE + 5) == 0

    def test_online_restores_core(self, system):
        run_thread_body(
            system, offline_core(system.kernel, 2, fallback_core=0)
        )
        run_thread_body(system, online_core(system.kernel, 2))
        assert system.machine.core(2).online
        # the host scheduler uses it again
        done = []

        def body():
            yield from ()
            done.append(True)

        thread = HostThread("t", body(), affinity={2})
        system.kernel.add_thread(thread)
        system.run_for(ms(1))
        assert done

    def test_double_offline_rejected(self, system):
        run_thread_body(
            system, offline_core(system.kernel, 2, fallback_core=0)
        )
        with pytest.raises(HotplugError, match="already offline"):
            run_thread_body(
                system, offline_core(system.kernel, 2, fallback_core=0)
            )
        # the failed transition mutated nothing
        assert not system.machine.core(2).online
        assert system.tracer.counters["hotplug_offline"] == 1

    def test_double_online_rejected(self, system):
        with pytest.raises(HotplugError, match="already online"):
            run_thread_body(system, online_core(system.kernel, 2))
        assert system.machine.core(2).online
        assert "hotplug_online" not in system.tracer.counters

    def test_offline_abort_leaves_core_untouched(self, system):
        system.kernel.fault_hooks["hotplug"] = lambda direction, idx: True
        with pytest.raises(HotplugError, match="aborted"):
            run_thread_body(
                system, offline_core(system.kernel, 2, fallback_core=0)
            )
        # abort fires before any mutation: the core is still fully online
        assert system.machine.core(2).online
        assert system.tracer.counters["hotplug_abort"] == 1
        assert "hotplug_offline" not in system.tracer.counters

    def test_online_abort_leaves_core_offline(self, system):
        run_thread_body(
            system, offline_core(system.kernel, 2, fallback_core=0)
        )
        system.kernel.fault_hooks["hotplug"] = lambda direction, idx: True
        with pytest.raises(HotplugError, match="aborted"):
            run_thread_body(system, online_core(system.kernel, 2))
        assert not system.machine.core(2).online
        assert "hotplug_online" not in system.tracer.counters

    def test_offline_online_symmetric_roundtrip(self, system):
        for _ in range(2):
            run_thread_body(
                system, offline_core(system.kernel, 2, fallback_core=0)
            )
            assert not system.machine.core(2).online
            run_thread_body(system, online_core(system.kernel, 2))
            assert system.machine.core(2).online
        assert system.tracer.counters["hotplug_offline"] == 2
        assert system.tracer.counters["hotplug_online"] == 2


class TestHotplugController:
    """The typed log + audit on the planner's controller."""

    def test_transitions_are_logged_with_typed_results(self, system):
        hotplug = system.planner.hotplug
        run_thread_body(system, hotplug.offline(2, fallback_core=0))
        run_thread_body(system, hotplug.online(2))
        directions = [(r.direction, r.core, r.ok) for r in hotplug.log]
        assert directions == [("offline", 2, True), ("online", 2, True)]
        assert all(r.duration_ns > 0 for r in hotplug.log)
        assert all(r.error == "" for r in hotplug.log)

    def test_aborted_transition_logged_as_failure(self, system):
        hotplug = system.planner.hotplug
        system.kernel.fault_hooks["hotplug"] = lambda direction, idx: True
        with pytest.raises(HotplugError, match="aborted"):
            run_thread_body(system, hotplug.offline(2, fallback_core=0))
        (result,) = hotplug.log
        assert not result.ok
        assert "aborted" in result.error
        # the failed transition stays out of the counter cross-check
        assert hotplug.audit() == []

    def test_transitions_view_filters_by_direction(self, system):
        hotplug = system.planner.hotplug
        run_thread_body(system, hotplug.offline(2, fallback_core=0))
        run_thread_body(system, hotplug.online(2))
        run_thread_body(system, hotplug.offline(3, fallback_core=0))
        assert [r.core for r in hotplug.transitions("offline")] == [2, 3]
        assert [r.core for r in hotplug.transitions("online")] == [2]
        assert len(hotplug.transitions()) == 3

    def test_audit_flags_counter_log_divergence(self, system):
        hotplug = system.planner.hotplug
        run_thread_body(system, hotplug.offline(2, fallback_core=0))
        system.tracer.count("hotplug_offline")  # behind the log's back
        problems = hotplug.audit()
        assert any("hotplug_offline counter" in p for p in problems)

    def test_audit_flags_core_state_divergence(self, system):
        hotplug = system.planner.hotplug
        run_thread_body(system, hotplug.offline(2, fallback_core=0))
        system.machine.core(2).set_online(True)  # behind the log's back
        problems = hotplug.audit()
        assert any("core 2" in p for p in problems)

    def test_wrappers_route_through_a_throwaway_controller(self, system):
        # the deprecated one-shot shape still transitions correctly but
        # keeps no history on the planner's controller
        run_thread_body(
            system, offline_core(system.kernel, 2, fallback_core=0)
        )
        assert not system.machine.core(2).online
        assert system.planner.hotplug.log == []


def forever(vm, index):
    def body():
        while True:
            yield Compute(100_000)

    return body()


class TestPlanner:
    def test_launch_builds_measured_realm(self, system):
        vm = GuestVm("t", 2, forever)
        kvm = system.launch(vm)
        realm = system.rmm.realms[kvm.realm_id]
        assert realm.measurement != 0
        assert len(realm.recs) == 2
        assert realm.rtt.n_mapped == system.planner.IMAGE_PAGES

    def test_launch_delegates_granules(self, system):
        vm = GuestVm("t", 2, forever)
        system.launch(vm)
        tracker = system.rmm.granules
        assert tracker.count_in_state(GranuleState.RD) == 1
        assert tracker.count_in_state(GranuleState.REC) == 2
        assert tracker.count_in_state(GranuleState.RTT) == 3
        assert (
            tracker.count_in_state(GranuleState.DATA)
            == system.planner.IMAGE_PAGES
        )

    def test_host_core_never_dedicated(self, system):
        vm = GuestVm("t", 3, forever)
        kvm = system.launch(vm)
        assert 0 not in kvm.planned_cores.values()
        assert system.machine.core(0).online

    def test_free_cores_shrink_and_recover(self, system):
        assert sorted(system.planner.free_cores()) == [1, 2, 3]
        vm = GuestVm("t", 2, forever)
        kvm = system.launch(vm)
        assert sorted(system.planner.free_cores()) == [3]

    def test_terminate_releases_granules(self):
        system = System(
            SystemConfig(mode="gapped", n_cores=4, housekeeping=None)
        )

        def finite(vm, index):
            def body():
                yield Compute(50_000)

            return body()

        vm = GuestVm("t", 2, finite)
        kvm = system.launch(vm)
        system.start(kvm)
        system.run_until_vm_done(kvm, limit_ns=ms(100))
        system.terminate(kvm)
        tracker = system.rmm.granules
        for state in (
            GranuleState.RD,
            GranuleState.REC,
            GranuleState.RTT,
            GranuleState.DATA,
        ):
            assert tracker.count_in_state(state) == 0

    def test_acquire_skips_flaky_core(self, system):
        # exactly one abort, on core 1's offline transition: the planner
        # retries with the next free core instead of failing the launch
        aborted = []

        def hook(direction, index):
            if direction == "offline" and index == 1 and not aborted:
                aborted.append(index)
                return True
            return False

        system.kernel.fault_hooks["hotplug"] = hook
        vm = GuestVm("t", 2, forever)
        kvm = system.launch(vm)
        assert sorted(kvm.planned_cores.values()) == [2, 3]
        assert system.tracer.counters["planner_hotplug_retry"] == 1

    def test_acquire_exhaustion_refused_cleanly(self, system):
        from repro.host.planner import AdmissionError

        system.kernel.fault_hooks["hotplug"] = lambda d, i: d == "offline"
        vm = GuestVm("t", 2, forever)
        with pytest.raises(AdmissionError, match="aborted hotplug"):
            system.launch(vm)
        # every core is exactly as it was: online and free
        assert sorted(system.planner.free_cores()) == [1, 2, 3]
        assert "t" not in system.planner.allocations

    def test_rmi_sync_timeout_surfaces_host_side(self, system):
        from repro.rpc.ports import RpcTimeoutError
        from repro.rmm.rmi import RmiCommand

        system.planner.sync_timeout_ns = ms(1)

        def body():
            yield from offline_core(system.kernel, 2, fallback_core=0)
            dead = system.engine.dedicate(2)
            dead.failed = True  # answers nothing, like a hung core
            yield from system.planner.rmi(
                dead.inbox, RmiCommand.GRANULE_DELEGATE, (1 << 30,)
            )

        with pytest.raises(RpcTimeoutError, match="unanswered"):
            run_thread_body(system, body())
        assert system.tracer.counters["rmi_sync_timeout"] == 1

    def test_attestation_token_for_launched_realm(self, system):
        from repro.rmm import verify_token

        vm = GuestVm("t", 1, forever)
        kvm = system.launch(vm)
        token = system.rmm.attestation_token(kvm.realm_id, challenge=99)
        verifier = system.rmm.root_of_trust.public_verifier()
        realm = system.rmm.realms[kvm.realm_id]
        assert verify_token(
            token,
            verifier,
            expected_realm_measurement=realm.measurement,
            require_core_gapped=True,
        )


class TestPlannerDegradation:
    """Graceful degradation on dedicated-core failure reports."""

    def _launch(self, n_cores, n_vcpus):
        system = System(
            SystemConfig(mode="gapped", n_cores=n_cores, housekeeping=None)
        )
        vm = GuestVm("vm0", n_vcpus, forever)
        kvm = system.launch(vm)
        system.start(kvm)
        system.run_for(ms(5))
        return system, kvm

    def test_core_failure_evacuates_to_spare(self):
        system, kvm = self._launch(n_cores=6, n_vcpus=2)
        old_core = kvm.planned_cores[0]
        ok, new_core = run_thread_body(
            system, system.planner.handle_core_failure(kvm, 0)
        )
        assert ok
        assert new_core != old_core
        assert kvm.planned_cores[0] == new_core
        assert system.tracer.counters["planner_evacuate"] == 1
        system.run_for(ms(2))  # the guest keeps running on the new core

    def test_core_failure_refused_without_spare(self):
        system, kvm = self._launch(n_cores=4, n_vcpus=3)
        ok, reason = run_thread_body(
            system, system.planner.handle_core_failure(kvm, 0)
        )
        assert not ok
        assert "no spare" in reason
        assert system.tracer.counters["planner_failure_refused"] == 1
