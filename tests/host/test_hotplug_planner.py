"""Tests for CPU hotplug and the core planner."""

import pytest

from repro.experiments import System, SystemConfig
from repro.guest.actions import Compute
from repro.guest.vm import GuestVm
from repro.host.hotplug import offline_core, online_core
from repro.host.threads import HostThread, SchedClass
from repro.hw.gic import SPI_BASE
from repro.isa import World
from repro.rmm.granule import GranuleState
from repro.sim.clock import ms


def run_thread_body(system, body_gen, name="op"):
    thread = HostThread(name, body_gen, SchedClass.FAIR,
                        affinity=system.host_cores)
    system.kernel.add_thread(thread)
    system.run_until_event(thread.done_event, limit_ns=ms(100))
    return thread.result


@pytest.fixture
def system():
    return System(SystemConfig(mode="gapped", n_cores=4, housekeeping=None))


class TestHotplug:
    def test_offline_marks_core_unusable(self, system):
        run_thread_body(
            system, offline_core(system.kernel, 2, fallback_core=0)
        )
        assert not system.machine.core(2).online
        assert system.tracer.counters["hotplug_offline"] == 1

    def test_offline_retargets_device_irqs(self, system):
        system.machine.gic.route_spi(SPI_BASE + 5, 2)
        run_thread_body(
            system, offline_core(system.kernel, 2, fallback_core=0)
        )
        assert system.machine.gic.spi_route(SPI_BASE + 5) == 0

    def test_online_restores_core(self, system):
        run_thread_body(
            system, offline_core(system.kernel, 2, fallback_core=0)
        )
        run_thread_body(system, online_core(system.kernel, 2))
        assert system.machine.core(2).online
        # the host scheduler uses it again
        done = []

        def body():
            yield from ()
            done.append(True)

        thread = HostThread("t", body(), affinity={2})
        system.kernel.add_thread(thread)
        system.run_for(ms(1))
        assert done

    def test_double_offline_rejected(self, system):
        run_thread_body(
            system, offline_core(system.kernel, 2, fallback_core=0)
        )
        with pytest.raises(ValueError):
            run_thread_body(
                system, offline_core(system.kernel, 2, fallback_core=0)
            )


def forever(vm, index):
    def body():
        while True:
            yield Compute(100_000)

    return body()


class TestPlanner:
    def test_launch_builds_measured_realm(self, system):
        vm = GuestVm("t", 2, forever)
        kvm = system.launch(vm)
        realm = system.rmm.realms[kvm.realm_id]
        assert realm.measurement != 0
        assert len(realm.recs) == 2
        assert realm.rtt.n_mapped == system.planner.IMAGE_PAGES

    def test_launch_delegates_granules(self, system):
        vm = GuestVm("t", 2, forever)
        system.launch(vm)
        tracker = system.rmm.granules
        assert tracker.count_in_state(GranuleState.RD) == 1
        assert tracker.count_in_state(GranuleState.REC) == 2
        assert tracker.count_in_state(GranuleState.RTT) == 3
        assert (
            tracker.count_in_state(GranuleState.DATA)
            == system.planner.IMAGE_PAGES
        )

    def test_host_core_never_dedicated(self, system):
        vm = GuestVm("t", 3, forever)
        kvm = system.launch(vm)
        assert 0 not in kvm.planned_cores.values()
        assert system.machine.core(0).online

    def test_free_cores_shrink_and_recover(self, system):
        assert sorted(system.planner.free_cores()) == [1, 2, 3]
        vm = GuestVm("t", 2, forever)
        kvm = system.launch(vm)
        assert sorted(system.planner.free_cores()) == [3]

    def test_terminate_releases_granules(self):
        system = System(
            SystemConfig(mode="gapped", n_cores=4, housekeeping=None)
        )

        def finite(vm, index):
            def body():
                yield Compute(50_000)

            return body()

        vm = GuestVm("t", 2, finite)
        kvm = system.launch(vm)
        system.start(kvm)
        system.run_until_vm_done(kvm, limit_ns=ms(100))
        system.terminate(kvm)
        tracker = system.rmm.granules
        for state in (
            GranuleState.RD,
            GranuleState.REC,
            GranuleState.RTT,
            GranuleState.DATA,
        ):
            assert tracker.count_in_state(state) == 0

    def test_attestation_token_for_launched_realm(self, system):
        from repro.rmm import verify_token

        vm = GuestVm("t", 1, forever)
        kvm = system.launch(vm)
        token = system.rmm.attestation_token(kvm.realm_id, challenge=99)
        verifier = system.rmm.root_of_trust.public_verifier()
        realm = system.rmm.realms[kvm.realm_id]
        assert verify_token(
            token,
            verifier,
            expected_realm_measurement=realm.measurement,
            require_core_gapped=True,
        )
