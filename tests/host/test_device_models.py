"""Unit tests for the device models (virtio backend, SR-IOV NIC)."""

import pytest

from repro.costs import DEFAULT_COSTS
from repro.guest.vm import GuestVm
from repro.host.kernel import HostKernel
from repro.host.sriov import SriovNic
from repro.host.virtio import IoRequest, VirtioBackend
from repro.hw import Machine, SocTopology
from repro.sim.clock import ms, us


class FakeInjector:
    def __init__(self):
        self.calls = []

    def __call__(self, vcpu, intid, payload):
        self.calls.append((vcpu, intid, payload))


def make_host():
    machine = Machine(SocTopology(name="d", n_cores=2, memory_gib=1))
    kernel = HostKernel(machine, DEFAULT_COSTS)
    kernel.start()
    vm = GuestVm("t", 2, lambda v, i: None)
    return machine, kernel, vm


class TestVirtioBackend:
    def make(self, kind, **kw):
        machine, kernel, vm = make_host()
        injector = FakeInjector()
        device = VirtioBackend(
            "dev0", kind, kernel, injector, intid=40,
            host_cores={0, 1}, n_vcpus=2, vm=vm, **kw,
        )
        return machine, vm, injector, device

    def test_block_read_completes_with_interrupt(self):
        machine, vm, injector, device = self.make("blk")
        device.submit_from_host(0, IoRequest("blk_read", 4096))
        machine.sim.run(until=ms(1))
        assert injector.calls == [(0, 40, None)]
        assert vm.vcpu(0).io_events[("dev0", "complete")] == 1
        assert device.requests_served == 1

    def test_block_latency_scales_with_size(self):
        machine, vm, injector, device = self.make("blk")
        device.submit_from_host(0, IoRequest("blk_read", 4096))
        machine.sim.run(until=ms(20))
        small_done = injector.calls[-1]
        t_small = machine.sim.now  # upper bound; measure via counters

        machine2, vm2, injector2, device2 = self.make("blk")
        device2.submit_from_host(0, IoRequest("blk_read", 16 * 1024 * 1024))
        # the 16 MiB request takes > 16 MiB/3.5GBps ~ 4.5ms; at 1 ms
        # nothing has completed yet
        machine2.sim.run(until=ms(1))
        assert injector2.calls == []
        machine2.sim.run(until=ms(20))
        assert injector2.calls

    def test_net_echo_roundtrip(self):
        machine, vm, injector, device = self.make("net", echo_peer=True)
        device.submit_from_host(
            1, IoRequest("net_tx", 1024, {"payload": b"ping"})
        )
        machine.sim.run(until=ms(1))
        assert (1, 40, None) in injector.calls
        assert device.rx_pop(1) == b"ping"
        assert vm.vcpu(1).io_events[("dev0", "rx")] == 1

    def test_rx_interrupt_suppressed_while_ring_nonempty(self):
        machine, vm, injector, device = self.make("net")
        device.deliver_rx(0, "a", 64)
        device.deliver_rx(0, "b", 64)
        machine.sim.run(until=ms(1))
        # two events accounted, but only one (0->1) interrupt raised
        assert vm.vcpu(0).io_events[("dev0", "rx")] == 2
        assert len(injector.calls) == 1
        # after the guest drains the ring, the next packet interrupts
        device.rx_pop(0)
        device.rx_pop(0)
        device.deliver_rx(0, "c", 64)
        machine.sim.run(until=ms(2))
        assert len(injector.calls) == 2

    def test_deliver_fn_routed_to_external_peer(self):
        machine, vm, injector, device = self.make("net")
        received = []
        device.submit_from_host(
            0,
            IoRequest(
                "net_tx", 128,
                {"deliver_fn": received.append, "payload": "reply"},
            ),
        )
        machine.sim.run(until=ms(1))
        assert received == ["reply"]

    def test_guest_doorbell_rejected(self):
        machine, vm, injector, device = self.make("net")
        with pytest.raises(TypeError, match="emulated"):
            device.guest_doorbell(vm.vcpu(0), IoRequest("net_tx", 64))

    def test_unknown_kind_rejected(self):
        machine, vm, injector, device = self.make("net")
        device.submit_from_host(0, IoRequest("warp", 64))
        with pytest.raises(ValueError, match="unknown request kind"):
            machine.sim.run(until=ms(1))


class TestSriovNic:
    def make(self, **kw):
        machine, kernel, vm = make_host()
        injector = FakeInjector()
        device = SriovNic(
            "vf0", machine, kernel, injector, intid=41, irq_core=0,
            n_vcpus=2, vm=vm, **kw,
        )
        return machine, vm, injector, device

    def test_doorbell_needs_no_host_cpu(self):
        machine, vm, injector, device = self.make(echo_peer=True)
        device.guest_doorbell(
            vm.vcpu(0), IoRequest("net_tx", 1500, {"payload": b"x"})
        )
        assert device.doorbells == 1
        machine.sim.run(until=ms(1))
        # the echo came back; host only injected the interrupt
        assert vm.vcpu(0).io_events[("vf0", "rx")] == 1
        assert injector.calls and injector.calls[0][0] == 0

    def test_non_tx_doorbell_rejected(self):
        machine, vm, injector, device = self.make()
        with pytest.raises(ValueError):
            device.guest_doorbell(vm.vcpu(0), IoRequest("blk_read", 64))

    def test_submit_from_host_rejected(self):
        machine, vm, injector, device = self.make()
        with pytest.raises(TypeError, match="passthrough"):
            device.submit_from_host(0, IoRequest("net_tx", 64))

    def test_interrupt_coalescing(self):
        machine, vm, injector, device = self.make()
        for payload in ("a", "b", "c"):
            device.deliver_rx(1, payload, 64)
        machine.sim.run(until=ms(1))
        assert vm.vcpu(1).io_events[("vf0", "rx")] == 3
        assert device.interrupts_raised == 1
        assert [device.rx_pop(1) for _ in range(3)] == ["a", "b", "c"]
