"""Unit tests for the host thread model."""

import pytest

from repro.host.threads import (
    HostThread,
    SchedClass,
    TBlock,
    TCompute,
    ThreadState,
)
from repro.isa import realm_domain
from repro.sim import Event


class TestHostThread:
    def test_unique_tids(self):
        a = HostThread("a", iter(()))
        b = HostThread("b", iter(()))
        assert a.tid != b.tid

    def test_affinity_semantics(self):
        anywhere = HostThread("a", iter(()))
        pinned = HostThread("p", iter(()), affinity={1, 3})
        assert anywhere.allowed_on(0) and anywhere.allowed_on(99)
        assert pinned.allowed_on(1) and pinned.allowed_on(3)
        assert not pinned.allowed_on(0)

    def test_defaults(self):
        thread = HostThread("t", iter(()))
        assert thread.sched_class == SchedClass.FAIR
        assert thread.state == ThreadState.RUNNABLE
        assert thread.cpu_ns == 0
        assert not thread.per_cpu
        assert isinstance(thread.done_event, Event)

    def test_repr_mentions_state(self):
        thread = HostThread("worker", iter(()), SchedClass.FIFO)
        assert "worker" in repr(thread)
        assert "fifo" in repr(thread)


class TestActions:
    def test_tcompute_defaults(self):
        action = TCompute(1000)
        assert action.domain is None
        assert action.return_on_irq is False

    def test_tcompute_guest_segment(self):
        domain = realm_domain(1)
        action = TCompute(1000, domain=domain, return_on_irq=True)
        assert action.domain == domain
        assert action.return_on_irq

    def test_tblock_carries_event(self):
        event = Event("x")
        assert TBlock(event).event is event
