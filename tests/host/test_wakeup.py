"""Tests for the CVM-exit wake-up thread (fig. 4)."""

import pytest

from repro.costs import DEFAULT_COSTS
from repro.host.kernel import CVM_EXIT_SGI, HostKernel
from repro.host.threads import HostThread, SchedClass, TBlock, TCompute
from repro.host.wakeup import ExitNotifier
from repro.hw import Machine, SocTopology
from repro.rpc import AsyncRpcPort
from repro.sim.clock import ms, us


def make_stack(n_ports=3):
    machine = Machine(SocTopology(name="t", n_cores=2, memory_gib=1))
    kernel = HostKernel(machine, DEFAULT_COSTS)
    kernel.start()
    notifier = ExitNotifier(kernel, target_core=0, costs=DEFAULT_COSTS)
    ports = []
    for i in range(n_ports):
        port = AsyncRpcPort(machine.sim, f"p{i}", notifier.notify_exit)
        notifier.register_port(port)
        ports.append(port)
    return machine, kernel, notifier, ports


class TestExitNotifier:
    def test_completion_claims_slot_and_wakes_waiter(self):
        machine, kernel, notifier, ports = make_stack()
        port = ports[1]
        woken = []

        def vcpu_thread():
            slot = port.submit("run")
            value = yield TBlock(slot.claimed)
            woken.append((machine.sim.now, value))

        kernel.add_thread(
            HostThread("vcpu", vcpu_thread(), SchedClass.FIFO)
        )
        machine.sim.schedule(us(50), lambda: port.complete("exit-record"))
        machine.sim.run(until=ms(1))
        assert woken and woken[0][1] == "exit-record"
        assert notifier.ipis_received == 1
        assert notifier.wakeups_performed == 1

    def test_one_ipi_can_wake_multiple_completions(self):
        machine, kernel, notifier, ports = make_stack()
        woken = []

        def vcpu_thread(port, name):
            slot = port.submit("run")
            yield TBlock(slot.claimed)
            woken.append(name)

        for i, port in enumerate(ports):
            kernel.add_thread(
                HostThread(f"v{i}", vcpu_thread(port, i), SchedClass.FIFO)
            )

        def complete_all():
            for port in ports:
                port.complete("r")

        machine.sim.schedule(us(50), complete_all)
        machine.sim.run(until=ms(1))
        # the scan loop finds every completed slot regardless of how
        # many IPIs got coalesced
        assert sorted(woken) == [0, 1, 2]
        assert notifier.wakeups_performed == 3

    def test_ipi_without_completion_is_harmless(self):
        machine, kernel, notifier, ports = make_stack()
        machine.gic.send_sgi(0, CVM_EXIT_SGI)
        machine.sim.run(until=ms(1))
        assert notifier.ipis_received == 1
        assert notifier.wakeups_performed == 0

    def test_spurious_ipi_with_submitted_but_uncompleted_slots(self):
        # a spurious (duplicated / stale) exit IPI while every slot is
        # still in flight: the scan finds nothing and nobody is woken
        machine, kernel, notifier, ports = make_stack()
        woken = []

        def vcpu_thread(port):
            slot = port.submit("run")
            yield TBlock(slot.claimed)
            woken.append(port.name)

        for i, port in enumerate(ports):
            kernel.add_thread(
                HostThread(f"v{i}", vcpu_thread(port), SchedClass.FIFO)
            )
        machine.gic.send_sgi(0, CVM_EXIT_SGI)
        machine.sim.run(until=ms(1))
        assert notifier.ipis_received == 1
        assert notifier.wakeups_performed == 0
        assert woken == []
        for port in ports:
            assert port.slot.state == "submitted"

    def test_single_wake_drains_slot_completed_during_scan(self):
        # port_b's completion lands *between* port_a's IPI delivery and
        # the poll loop, and port_b's own IPI is lost: the single wake
        # triggered by port_a must drain both completions
        machine, kernel, notifier, ports = make_stack(0)
        sim = machine.sim
        port_a = AsyncRpcPort(sim, "a", notifier.notify_exit)
        port_b = AsyncRpcPort(sim, "b", lambda port: None)  # lost IPI
        notifier.register_port(port_a)
        notifier.register_port(port_b)
        woken = []

        def vcpu_thread(port):
            slot = port.submit("run")
            yield TBlock(slot.claimed)
            woken.append(port.name)

        kernel.add_thread(
            HostThread("va", vcpu_thread(port_a), SchedClass.FIFO)
        )
        kernel.add_thread(
            HostThread("vb", vcpu_thread(port_b), SchedClass.FIFO)
        )
        sim.schedule(us(50), lambda: port_a.complete("ra"))
        # port_a's exit IPI is on the wire for 400 ns; one tick after
        # delivery -- before the activated thread has scanned anything --
        # port_b completes silently
        sim.schedule(us(50) + 401, lambda: port_b.complete("rb"))
        sim.run(until=ms(1))
        assert sorted(woken) == ["a", "b"]
        assert notifier.ipis_received == 1
        assert notifier.wakeups_performed == 2

    def test_watchdog_recovers_lost_exit_ipi(self):
        machine, kernel, notifier, ports = make_stack(0)
        notifier.watchdog_ns = us(100)
        sim = machine.sim
        port = AsyncRpcPort(sim, "p", lambda port: None)  # IPI always lost
        notifier.register_port(port)
        woken = []

        def vcpu_thread():
            slot = port.submit("run")
            value = yield TBlock(slot.claimed)
            woken.append((sim.now, value))

        kernel.add_thread(HostThread("v", vcpu_thread(), SchedClass.FIFO))
        sim.schedule(us(50), lambda: port.complete("exit-record"))
        sim.run(until=ms(1))
        # no IPI ever arrived, yet the watchdog re-poll found the slot
        assert notifier.ipis_received == 0
        assert woken and woken[0][1] == "exit-record"
        assert notifier.watchdog_polls >= 1
        assert notifier.watchdog_recoveries == 1
        assert machine.tracer.counters["wakeup_watchdog_recovered"] == 1

    def test_watchdog_idle_polls_are_harmless(self):
        machine, kernel, notifier, ports = make_stack()
        notifier.watchdog_ns = us(100)
        machine.sim.run(until=ms(1))
        assert notifier.watchdog_polls >= 5
        assert notifier.watchdog_recoveries == 0
        assert notifier.wakeups_performed == 0

    def test_watchdog_does_not_disturb_ipi_path(self):
        machine, kernel, notifier, ports = make_stack()
        notifier.watchdog_ns = ms(10)  # far beyond the test horizon
        port = ports[0]
        woken = []

        def vcpu_thread():
            slot = port.submit("run")
            value = yield TBlock(slot.claimed)
            woken.append(value)

        kernel.add_thread(HostThread("v", vcpu_thread(), SchedClass.FIFO))
        machine.sim.schedule(us(50), lambda: port.complete("r"))
        machine.sim.run(until=ms(1))
        assert woken == ["r"]
        assert notifier.ipis_received == 1
        assert notifier.watchdog_recoveries == 0

    def test_stall_hook_delays_but_never_loses_wakeups(self):
        machine, kernel, notifier, ports = make_stack()
        notifier.stall_hook = lambda: us(200)
        port = ports[0]
        woken = []

        def vcpu_thread():
            slot = port.submit("run")
            yield TBlock(slot.claimed)
            woken.append(machine.sim.now)

        kernel.add_thread(HostThread("v", vcpu_thread(), SchedClass.FIFO))
        machine.sim.schedule(us(50), lambda: port.complete("r"))
        machine.sim.run(until=ms(1))
        assert woken, "stalled wake-up thread must still deliver"
        assert woken[0] >= us(250)  # completion + injected stall

    def test_repeated_cycles(self):
        machine, kernel, notifier, ports = make_stack(1)
        port = ports[0]
        rounds = []

        def vcpu_thread():
            for i in range(5):
                slot = port.submit(i)
                yield TBlock(slot.claimed)
                yield TCompute(1_000)
                port.collect()
                rounds.append(i)

        kernel.add_thread(HostThread("v", vcpu_thread(), SchedClass.FIFO))

        def auto_complete():
            # an RMM stand-in answering every run call after 20 us
            if port.slot.state == "submitted":
                port.complete("r")
            if len(rounds) < 5:
                machine.sim.schedule(us(20), auto_complete)

        machine.sim.schedule(us(20), auto_complete)
        machine.sim.run(until=ms(5))
        assert rounds == [0, 1, 2, 3, 4]
        assert notifier.wakeups_performed == 5
