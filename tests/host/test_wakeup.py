"""Tests for the CVM-exit wake-up thread (fig. 4)."""

import pytest

from repro.costs import DEFAULT_COSTS
from repro.host.kernel import CVM_EXIT_SGI, HostKernel
from repro.host.threads import HostThread, SchedClass, TBlock, TCompute
from repro.host.wakeup import ExitNotifier
from repro.hw import Machine, SocTopology
from repro.rpc import AsyncRpcPort
from repro.sim.clock import ms, us


def make_stack(n_ports=3):
    machine = Machine(SocTopology(name="t", n_cores=2, memory_gib=1))
    kernel = HostKernel(machine, DEFAULT_COSTS)
    kernel.start()
    notifier = ExitNotifier(kernel, target_core=0, costs=DEFAULT_COSTS)
    ports = []
    for i in range(n_ports):
        port = AsyncRpcPort(machine.sim, f"p{i}", notifier.notify_exit)
        notifier.register_port(port)
        ports.append(port)
    return machine, kernel, notifier, ports


class TestExitNotifier:
    def test_completion_claims_slot_and_wakes_waiter(self):
        machine, kernel, notifier, ports = make_stack()
        port = ports[1]
        woken = []

        def vcpu_thread():
            slot = port.submit("run")
            value = yield TBlock(slot.claimed)
            woken.append((machine.sim.now, value))

        kernel.add_thread(
            HostThread("vcpu", vcpu_thread(), SchedClass.FIFO)
        )
        machine.sim.schedule(us(50), lambda: port.complete("exit-record"))
        machine.sim.run(until=ms(1))
        assert woken and woken[0][1] == "exit-record"
        assert notifier.ipis_received == 1
        assert notifier.wakeups_performed == 1

    def test_one_ipi_can_wake_multiple_completions(self):
        machine, kernel, notifier, ports = make_stack()
        woken = []

        def vcpu_thread(port, name):
            slot = port.submit("run")
            yield TBlock(slot.claimed)
            woken.append(name)

        for i, port in enumerate(ports):
            kernel.add_thread(
                HostThread(f"v{i}", vcpu_thread(port, i), SchedClass.FIFO)
            )

        def complete_all():
            for port in ports:
                port.complete("r")

        machine.sim.schedule(us(50), complete_all)
        machine.sim.run(until=ms(1))
        # the scan loop finds every completed slot regardless of how
        # many IPIs got coalesced
        assert sorted(woken) == [0, 1, 2]
        assert notifier.wakeups_performed == 3

    def test_ipi_without_completion_is_harmless(self):
        machine, kernel, notifier, ports = make_stack()
        machine.gic.send_sgi(0, CVM_EXIT_SGI)
        machine.sim.run(until=ms(1))
        assert notifier.ipis_received == 1
        assert notifier.wakeups_performed == 0

    def test_repeated_cycles(self):
        machine, kernel, notifier, ports = make_stack(1)
        port = ports[0]
        rounds = []

        def vcpu_thread():
            for i in range(5):
                slot = port.submit(i)
                yield TBlock(slot.claimed)
                yield TCompute(1_000)
                port.collect()
                rounds.append(i)

        kernel.add_thread(HostThread("v", vcpu_thread(), SchedClass.FIFO))

        def auto_complete():
            # an RMM stand-in answering every run call after 20 us
            if port.slot.state == "submitted":
                port.complete("r")
            if len(rounds) < 5:
                machine.sim.schedule(us(20), auto_complete)

        machine.sim.schedule(us(20), auto_complete)
        machine.sim.run(until=ms(5))
        assert rounds == [0, 1, 2, 3, 4]
        assert notifier.wakeups_performed == 5
