"""Integration tests: KVM shared/gapped vCPU loops, devices, injection."""

import pytest

from repro.experiments import System, SystemConfig
from repro.guest.actions import (
    Compute,
    DeviceDoorbell,
    MmioWrite,
    SendIpi,
    WaitIo,
)
from repro.guest.vcpu import VTIMER_VIRQ
from repro.guest.vm import GuestVm
from repro.host.virtio import IoRequest
from repro.sim.clock import ms, us


def run_vm(mode, factory, n_vcpus=2, duration=ms(50), devices=(), n_cores=4):
    system = System(
        SystemConfig(mode=mode, n_cores=n_cores, housekeeping=None)
    )
    vm = GuestVm("t", n_vcpus, factory)
    kvm = system.launch(vm)
    for kind in devices:
        if kind == "virtio-blk":
            system.add_virtio_blk(kvm, "virtio-blk0")
        elif kind == "virtio-net":
            system.add_virtio_net(kvm, "virtio-net0", echo_peer=True)
        elif kind == "sriov":
            system.add_sriov_nic(kvm, "sriov-net0", echo_peer=True)
    system.start(kvm)
    system.run_for(duration)
    return system, vm, kvm


class TestTicks:
    @pytest.mark.parametrize("mode", ["shared", "gapped"])
    def test_guest_receives_timer_ticks(self, mode):
        def factory(vm, index):
            def body():
                while True:
                    yield Compute(us(300))

            return body()

        system, vm, kvm = run_vm(mode, factory, duration=ms(50))
        expected = 50 // 4  # 4 ms tick period
        for vcpu in vm.vcpus:
            assert vcpu.ticks_handled >= expected - 2

    def test_shared_cvm_mode_also_ticks(self):
        def factory(vm, index):
            def body():
                while True:
                    yield Compute(us(300))

            return body()

        system, vm, kvm = run_vm("shared-cvm", factory, duration=ms(50))
        assert vm.vcpus[0].ticks_handled >= 10
        # shared CVMs pay mitigation flushes on exits
        flushes = sum(
            1
            for c in system.machine.cores
            if c.pollution.total_penalty_paid > 0
        )
        assert flushes > 0


class TestGuestIpi:
    @pytest.mark.parametrize("mode", ["shared", "gapped"])
    def test_ipi_delivered_between_vcpus(self, mode):
        def factory(vm, index):
            def sender():
                for _ in range(5):
                    yield SendIpi(1)
                    yield Compute(us(200))
                while True:
                    yield Compute(ms(1))

            def receiver():
                while True:
                    yield Compute(us(200))

            return sender() if index == 0 else receiver()

        system, vm, kvm = run_vm(mode, factory, duration=ms(20))
        assert vm.vcpus[1].ipis_handled == 5
        samples = system.tracer.samples("vipi_latency_ns")
        assert len(samples) == 5
        assert all(s > 0 for s in samples)


class TestVirtioBlock:
    @pytest.mark.parametrize("mode", ["shared", "gapped"])
    def test_block_io_completes(self, mode):
        done = []

        def factory(vm, index):
            def body():
                if index == 0:
                    for _ in range(10):
                        yield MmioWrite(
                            0x2000,
                            "virtio-blk0",
                            request=IoRequest("blk_read", 4096),
                        )
                        yield WaitIo("virtio-blk0", "complete", 1)
                    done.append(True)
                while True:
                    yield Compute(ms(1))

            return body()

        system, vm, kvm = run_vm(
            mode, factory, duration=ms(80), devices=["virtio-blk"]
        )
        assert done
        device = vm.device("virtio-blk0")
        assert device.requests_served == 10
        assert system.exit_counts().get("exit:mmio_write", 0) == 10


class TestSriov:
    @pytest.mark.parametrize("mode", ["shared", "gapped"])
    def test_sriov_echo_roundtrip_no_mmio_exits(self, mode):
        done = []

        def factory(vm, index):
            def body():
                if index == 0:
                    for _ in range(5):
                        yield DeviceDoorbell(
                            "sriov-net0",
                            IoRequest("net_tx", 1024, {"echo": True}),
                        )
                        yield WaitIo("sriov-net0", "rx", 1)
                        vm.device("sriov-net0").rx_pop(0)
                    done.append(True)
                while True:
                    yield Compute(ms(1))

            return body()

        system, vm, kvm = run_vm(
            mode, factory, duration=ms(50), devices=["sriov"]
        )
        assert done
        counts = system.exit_counts()
        assert counts.get("exit:mmio_write", 0) == 0  # passthrough
        assert vm.device("sriov-net0").doorbells == 5


class TestFinish:
    @pytest.mark.parametrize("mode", ["shared", "gapped"])
    def test_vm_done_event_fires(self, mode):
        def factory(vm, index):
            def body():
                yield Compute(us(100))

            return body()

        system = System(
            SystemConfig(mode=mode, n_cores=4, housekeeping=None)
        )
        vm = GuestVm("t", 2, factory)
        kvm = system.launch(vm)
        system.start(kvm)
        system.run_until_vm_done(kvm, limit_ns=ms(100))
        assert kvm.finished_vcpus == 2
        assert all(v.finished for v in vm.vcpus)


class TestConservation:
    def test_exit_counts_sum_to_total(self):
        def factory(vm, index):
            def body():
                for _ in range(5):
                    yield MmioWrite(
                        0x2000,
                        "virtio-blk0",
                        request=IoRequest("blk_read", 4096),
                    )
                    yield WaitIo("virtio-blk0", "complete", 1)
                while True:
                    yield Compute(ms(1))

            return body()

        system, vm, kvm = run_vm(
            "gapped", factory, n_vcpus=2, duration=ms(60),
            devices=["virtio-blk"],
        )
        counts = system.exit_counts()
        total = counts.pop("exits_total", 0)
        assert total == sum(counts.values())

    def test_busy_time_not_exceeding_wall_time(self):
        def factory(vm, index):
            def body():
                while True:
                    yield Compute(us(500))

            return body()

        system, vm, kvm = run_vm("gapped", factory, duration=ms(30))
        system.finish()
        wall = system.sim.now
        for core in system.machine.cores:
            assert system.tracer.busy_time(core=core.index) <= wall
