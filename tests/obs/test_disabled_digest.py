"""Observability must be inert when off: bit-identical disabled digests.

The golden file was captured from the sanitizer probe *before* the
observability instrumentation landed (traces disabled).  If any
instrumentation — trace events, gauges, profiling hooks — perturbs a
``trace_schedules=False`` run's records, spans, counters or metrics,
this comparison breaks byte-for-byte.
"""

import json
from pathlib import Path

from repro.lint.sanitizer import run_probe

GOLDEN = Path(__file__).parent / "golden" / "disabled_probe_digest.json"


def canonical(digest) -> str:
    return (
        json.dumps(json.loads(digest.to_json()), sort_keys=True, indent=1)
        + "\n"
    )


class TestDisabledRunsAreUntouched:
    def test_disabled_probe_matches_pre_instrumentation_golden(self):
        digest = run_probe(trace_schedules=False)
        assert canonical(digest) == GOLDEN.read_text(encoding="utf-8")

    def test_disabled_probe_stores_no_records(self):
        digest = run_probe(trace_schedules=False)
        assert digest.records == []
        # counters (the digested accounting surface) are still kept
        assert any(":exits_total" in key for key in digest.counters)
