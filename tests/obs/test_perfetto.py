"""Perfetto exporter: golden output, validation, end-to-end structure."""

import json
from pathlib import Path

from repro.experiments.config import SystemConfig
from repro.experiments.workbench import build_system
from repro.guest.vm import GuestVm
from repro.guest.workloads import CoremarkStats, coremark_workload_factory
from repro.obs.perfetto import (
    PID_CORES,
    export_trace,
    trace_summary,
    validate_trace,
    write_trace,
)
from repro.sim.clock import ms
from repro.sim.trace import Tracer

GOLDEN = Path(__file__).parent / "golden" / "tiny_schedule.trace.json"


def tiny_tracer() -> Tracer:
    """A hand-built deterministic schedule exercising every track type."""
    tracer = Tracer(enabled=True)
    tracer.begin_span(0, 0, "host")
    tracer.begin_span(100, 1, "realm:cvm0")
    tracer.event(
        150,
        "sgi.send",
        core=1,
        detail={"target": 0, "intid": 8, "flow": 0},
    )
    tracer.event(550, "sgi.recv", core=0, detail={"intid": 8, "flow": 0})
    tracer.event(600, "rpc.submit", detail={"port": "cvm0.vcpu0", "seq": 1})
    tracer.event(900, "exit", core=1, domain="realm:cvm0", detail="timer")
    tracer.event(950, "rpc.complete", detail={"port": "cvm0.vcpu0", "seq": 1})
    tracer.event(990, "rpc.collect", detail={"port": "cvm0.vcpu0", "seq": 1})
    tracer.event(1000, "fault.inject", detail="sgi_drop")
    tracer.event(1100, "spi.raise", core=0, detail={"intid": 33})
    tracer.end_span(1200, 1)
    tracer.end_span(1500, 0)
    tracer.count("exits_total")
    tracer.set_gauge("sim_end_ns", 1500)
    return tracer


class TestGolden:
    def test_export_matches_golden_file(self):
        trace = export_trace(tiny_tracer(), label="tiny")
        expected = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert trace == expected

    def test_golden_file_validates(self):
        trace = json.loads(GOLDEN.read_text(encoding="utf-8"))
        assert validate_trace(trace) == []


class TestExportStructure:
    def test_flow_arrow_crosses_tracks(self):
        summary = trace_summary(export_trace(tiny_tracer()))
        assert summary["core_tracks"] == 2
        assert summary["flow_pairs"] == 1
        assert summary["cross_core_flows"] == 1

    def test_counters_and_gauges_ride_in_other_data(self):
        trace = export_trace(tiny_tracer(), label="tiny")
        assert trace["otherData"]["counters"] == {"exits_total": 1}
        assert trace["otherData"]["gauges"] == {"sim_end_ns": 1500}
        assert trace["otherData"]["label"] == "tiny"

    def test_write_trace_round_trips(self, tmp_path):
        path = tmp_path / "t.trace.json"
        written = write_trace(tiny_tracer(), str(path), label="tiny")
        assert json.loads(path.read_text(encoding="utf-8")) == written

    def test_validator_flags_malformed_events(self):
        bad = {
            "traceEvents": [
                {"ph": "Z", "pid": 0, "ts": 0},
                {"ph": "X", "pid": 0, "ts": 1, "name": "a"},
                {"ph": "f", "pid": 0, "ts": 2, "id": 9, "name": "sgi"},
            ]
        }
        errors = validate_trace(bad)
        assert any("unknown phase" in e for e in errors)
        assert any("dur" in e for e in errors)
        assert any("no matching start" in e for e in errors)


class TestEndToEnd:
    def test_gapped_run_exports_per_core_tracks_and_flows(self):
        config = SystemConfig(
            mode="gapped", n_cores=6, seed=1, trace_schedules=True
        )
        system = build_system(config)
        stats = CoremarkStats()
        vm = GuestVm("cvm0", 2, coremark_workload_factory(stats))
        kvm = system.launch(vm)
        system.start(kvm)
        system.run_for(ms(10))
        system.finish()

        trace = export_trace(system.tracer, label="e2e")
        assert validate_trace(trace) == []
        summary = trace_summary(trace)
        # one X-slice track per physical core that ever ran anything
        assert summary["core_tracks"] == 6
        # the exit-doorbell / vIPI SGIs become visible cross-track arrows
        assert summary["cross_core_flows"] >= 1
        # dedicated-core slices exist for the realm's domain
        realm_slices = [
            e
            for e in trace["traceEvents"]
            if e.get("ph") == "X"
            and e.get("pid") == PID_CORES
            and str(e.get("name")).startswith("realm:")
        ]
        assert realm_slices

    def test_disabled_tracer_exports_empty_timeline(self):
        tracer = Tracer(enabled=False)
        tracer.event(10, "sgi.send", detail={"flow": 1})
        trace = export_trace(tracer)
        phases = {e["ph"] for e in trace["traceEvents"]}
        assert phases <= {"M"}  # metadata only, no timeline events
