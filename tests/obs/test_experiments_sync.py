"""EXPERIMENTS.md freshness: committed sections must match regeneration.

The marked sections of EXPERIMENTS.md are artifacts of the run-report
generator over the checked-in measurements in ``benchmarks/results/``.
Hand-edits to a generated section, or committing new measurements
without re-syncing the document, both fail here (and in the CI ``obs``
job via ``python -m repro.obs.report all --check``).
"""

from pathlib import Path

import pytest

from repro.obs.report import (
    SWEEPS,
    build_report,
    build_section,
    extract_marked,
    load_measurements,
    replace_marked,
)

REPO_ROOT = Path(__file__).resolve().parents[2]
RESULTS_DIR = REPO_ROOT / "benchmarks" / "results"
EXPERIMENTS_MD = REPO_ROOT / "EXPERIMENTS.md"


@pytest.mark.parametrize("sweep", sorted(SWEEPS))
class TestCommittedSectionsAreFresh:
    def test_section_matches_regeneration(self, sweep):
        data = load_measurements(sweep, RESULTS_DIR)
        regenerated = build_section(sweep, data)
        committed = extract_marked(
            EXPERIMENTS_MD.read_text(encoding="utf-8"), sweep
        )
        assert committed is not None, f"no obs markers for {sweep}"
        assert committed == regenerated, (
            f"EXPERIMENTS.md {sweep} section is stale; run "
            f"`python -m repro.obs.report {sweep} --sync-experiments`"
        )

    def test_report_embeds_the_same_rows(self, sweep):
        """The standalone report and the document carry identical rows."""
        data = load_measurements(sweep, RESULTS_DIR)
        assert build_section(sweep, data) in build_report(sweep, data)


class TestMarkerSurgery:
    def test_replace_marked_swaps_only_the_block(self):
        text = "before\n<!-- obs:begin x -->\nold\n<!-- obs:end x -->\nafter"
        block = "<!-- obs:begin x -->\nnew\n<!-- obs:end x -->"
        out = replace_marked(text, "x", block)
        assert out == f"before\n{block}\nafter"

    def test_replace_marked_requires_markers(self):
        with pytest.raises(ValueError, match="no obs markers"):
            replace_marked("no markers here", "x", "block")

    def test_extract_missing_returns_none(self):
        assert extract_marked("nothing", "fig6") is None
