"""Metrics registry: declaration rules, histograms, catalog coverage."""

import pytest

from repro.obs.catalog import CATALOG, build_registry, catalog_names, lookup
from repro.obs.metrics import (
    DEFAULT_NS_BUCKETS,
    MetricError,
    MetricSpec,
    MetricsRegistry,
    Unit,
)
from repro.sim.trace import Tracer


def registry():
    return MetricsRegistry(Tracer(enabled=True))


class TestDeclaration:
    def test_double_declaration_rejected(self):
        reg = registry()
        spec = MetricSpec("widgets_count", "counter", Unit.COUNT, "x")
        reg.declare(spec)
        with pytest.raises(MetricError, match="declared twice"):
            reg.declare(spec)

    def test_unknown_kind_rejected(self):
        with pytest.raises(MetricError, match="unknown kind"):
            registry().declare(
                MetricSpec("widgets_count", "meter", Unit.COUNT, "x")
            )

    def test_unit_suffix_enforced_for_new_names(self):
        with pytest.raises(MetricError, match="_ns"):
            registry().declare(
                MetricSpec("latency", "histogram", Unit.NS, "x")
            )

    def test_legacy_names_skip_the_suffix_check(self):
        reg = registry()
        reg.declare(
            MetricSpec("exits_total", "counter", Unit.COUNT, "x", legacy=True)
        )
        assert reg.lookup("exits_total").legacy

    def test_families_must_be_counters(self):
        with pytest.raises(MetricError, match="families"):
            registry().declare(
                MetricSpec("lat:*", "histogram", Unit.NS, "x")
            )

    def test_undeclared_use_rejected(self):
        with pytest.raises(MetricError, match="not declared"):
            registry().counter("nope_count")

    def test_kind_mismatch_rejected(self):
        reg = registry()
        reg.declare(MetricSpec("widgets_count", "gauge", Unit.COUNT, "x"))
        with pytest.raises(MetricError, match="is a gauge"):
            reg.counter("widgets_count")


class TestCountersAndGauges:
    def test_counter_feeds_tracer_counters(self):
        tracer = Tracer(enabled=False)
        reg = build_registry(tracer)
        reg.counter("exits_total").inc(3)
        assert tracer.counters["exits_total"] == 3
        assert reg.counter("exits_total").value == 3

    def test_family_members_resolve(self):
        tracer = Tracer(enabled=False)
        reg = build_registry(tracer)
        reg.counter("exit:timer").inc()
        assert tracer.counters["exit:timer"] == 1
        assert lookup("exit:timer").is_family

    def test_negative_increment_rejected(self):
        with pytest.raises(MetricError, match="only go up"):
            build_registry(Tracer(enabled=False)).counter(
                "exits_total"
            ).inc(-1)

    def test_gauge_is_last_write_wins_and_undigested(self):
        tracer = Tracer(enabled=False)
        reg = build_registry(tracer)
        gauge = reg.gauge("sim_end_ns")
        gauge.set(10)
        gauge.set(20)
        assert gauge.value == 20
        assert tracer.gauges == {"sim_end_ns": 20}
        assert not tracer.counters  # gauges never leak into the digest


class TestHistogram:
    def test_bucket_counts_inclusive_edges(self):
        reg = build_registry(Tracer(enabled=False))
        hist = reg.histogram("run_to_run_ns")
        for value in (100, 101, 1_000, 5_000, 2_000_000_000):
            hist.observe(value)
        counts = dict(hist.bucket_counts())
        assert counts[100] == 1  # the edge itself lands in its bucket
        assert counts[1_000] == 2  # 101 and 1000
        assert counts[10_000] == 1  # 5000
        assert counts[None] == 1  # overflow
        assert hist.count == 5
        assert hist.sum == 2_000_006_201

    def test_quantiles_interpolate_and_handle_overflow(self):
        reg = build_registry(Tracer(enabled=False))
        hist = reg.histogram("vipi_latency_ns")
        for value in (500, 600, 700, 800):
            hist.observe(value)
        p50 = hist.quantile(0.5)
        assert 100 < p50 <= 1_000  # inside the (100, 1000] bucket
        hist.observe(5_000_000_000)  # beyond the last edge
        assert hist.quantile(1.0) == 5_000_000_000

    def test_empty_histogram_has_no_quantile(self):
        hist = build_registry(Tracer(enabled=False)).histogram(
            "planner_launch_ns"
        )
        assert hist.quantile(0.5) is None
        with pytest.raises(MetricError, match="outside"):
            hist.quantile(1.5)

    def test_histogram_shares_tracer_samples(self):
        tracer = Tracer(enabled=False)
        hist = build_registry(tracer).histogram("run_to_run_ns")
        tracer.sample("run_to_run_ns", 42)  # legacy producer path
        hist.observe(43)
        assert hist.observations == [42, 43]


class TestCatalog:
    def test_catalog_declares_cleanly_and_uniquely(self):
        reg = build_registry(Tracer(enabled=False))
        assert len(reg.specs()) == len(CATALOG)

    def test_every_spec_validates(self):
        for spec in CATALOG:
            spec.validate()

    def test_new_style_names_carry_unit_suffixes(self):
        for spec in CATALOG:
            if spec.legacy or spec.is_family:
                continue
            suffix = Unit.SUFFIX[spec.unit]
            if suffix:
                assert spec.name.endswith(suffix), spec.name

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_NS_BUCKETS) == sorted(DEFAULT_NS_BUCKETS)

    def test_lookup_misses_return_none(self):
        assert lookup("never_declared_total") is None
        assert "exits_total" in catalog_names()
