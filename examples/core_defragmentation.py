#!/usr/bin/env python3
"""Extension demo: monitor-mediated vCPU rebinding (defragmentation).

The paper (S3) fixes each vCPU to one core for the CVM's lifetime and
notes that long-term this fragments a node's free cores, deferring
coarse-grained rebinding to future work.  This reproduction implements
it: the planner parks a vCPU between run calls, the RMM validates the
handover, scrubs every core-private structure on the old core, and the
binding moves -- without the guest noticing and without ever letting a
distrusting domain touch a warm core.

Scenario: two CVMs end up scattered across the node after a third is
terminated; the planner compacts one of them onto the freed low-numbered
cores and the audit stays clean.

Run:  python examples/core_defragmentation.py
"""

from repro.experiments import System, SystemConfig
from repro.guest.actions import Compute
from repro.guest.vm import GuestVm
from repro.host.threads import HostThread, SchedClass
from repro.security import CoreGapAuditor
from repro.sim.clock import ms


def forever(vm, index):
    def body():
        while True:
            yield Compute(200_000)

    return body()


def finite(vm, index):
    def body():
        for _ in range(50):
            yield Compute(200_000)

    return body()


def run_planner(system, body, name):
    thread = HostThread(name, body, SchedClass.FAIR,
                        affinity=system.host_cores)
    system.kernel.add_thread(thread)
    system.run_until_event(thread.done_event, limit_ns=ms(500))
    return thread.result


def main() -> None:
    print("=== core defragmentation via monitor-mediated rebinding ===\n")
    system = System(SystemConfig(mode="gapped", n_cores=8))

    # short-lived CVM takes the low cores, long-lived one the high cores
    vm_short = GuestVm("short-lived", 3, finite)
    kvm_short = system.launch(vm_short)
    system.start(kvm_short)
    vm_long = GuestVm("long-lived", 3, forever)
    kvm_long = system.launch(vm_long)
    system.start(kvm_long)
    print(f"short-lived on cores {sorted(kvm_short.planned_cores.values())}")
    print(f"long-lived  on cores {sorted(kvm_long.planned_cores.values())}")

    # the short-lived CVM finishes; its low cores free up
    system.run_until_vm_done(kvm_short, limit_ns=ms(500))
    system.terminate(kvm_short)
    print(f"\nshort-lived done; free cores: {system.planner.free_cores()}")
    print("the node is fragmented: the long-lived CVM sits on high cores")

    # compact: rebind each long-lived vCPU onto the lowest free core
    compute_before = vm_long.total_compute_done()
    for idx in range(vm_long.n_vcpus):
        target = min(system.planner.free_cores())
        old = kvm_long.planned_cores[idx]
        run_planner(
            system,
            system.planner.rebind_vcpu(kvm_long, idx, target),
            f"rebind-{idx}",
        )
        print(f"  vcpu{idx}: core {old} -> core {target} "
              f"(old core scrubbed and returned to the host)")

    system.run_for(ms(20))
    print(f"\nlong-lived now on cores "
          f"{sorted(kvm_long.planned_cores.values())}; "
          f"rebinds performed: {system.tracer.counters['rec_rebind']}")
    assert vm_long.total_compute_done() > compute_before
    print("the guest kept computing throughout (no guest-visible change)")

    system.finish()
    report = CoreGapAuditor().audit(system.machine, system.tracer)
    print(f"\n{report.summary()}")


if __name__ == "__main__":
    main()
