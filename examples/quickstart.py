#!/usr/bin/env python3
"""Quickstart: boot a core-gapped confidential VM and watch it run.

Builds a 8-core simulated Arm server, launches a 4-vCPU CVM through the
full stack (hotplug -> core dedication -> realm build over sync RPC ->
REC binding -> async run calls), runs a CPU workload for half a
simulated second, and then proves the core-gap invariant held.

Run:  python examples/quickstart.py
"""

from repro.experiments import System, SystemConfig
from repro.guest.vm import GuestVm
from repro.guest.workloads import (
    CoremarkStats,
    coremark_score,
    coremark_workload_factory,
)
from repro.security import CoreGapAuditor
from repro.sim.clock import fmt_ns, ms


def main() -> None:
    print("=== core-gapped CVM quickstart ===\n")

    # 1. a 8-core machine: core 0 stays with the host, the rest can be
    #    dedicated to confidential VMs
    system = System(SystemConfig(mode="gapped", n_cores=8))
    print(f"booted {system.machine.topology.n_cores}-core host, "
          f"host cores = {sorted(system.host_cores)}")

    # 2. define a guest: 4 vCPUs of CPU-bound work
    stats = CoremarkStats()
    vm = GuestVm("demo", 4, coremark_workload_factory(stats))

    # 3. launch: the planner hotplugs cores away from the host, hands
    #    them to the RMM, builds the realm over sync RPC, and binds
    #    each REC to its core at first dispatch
    kvm = system.launch(vm)
    print(f"launched realm {kvm.realm_id}: vCPU->core binding = "
          f"{kvm.planned_cores}")

    # 4. run for half a simulated second
    system.start(kvm)
    start = system.sim.now
    system.run_for(ms(500))
    elapsed = system.sim.now - start
    print(f"\nran for {fmt_ns(elapsed)} of simulated time")
    print(f"CoreMark-PRO-style score: {coremark_score(stats, elapsed):.0f}")
    print(f"VM exits: {system.exit_counts() or '(none - delegation works)'}")
    print(f"timer interrupts handled locally by the RMM: "
          f"{system.tracer.counters.get('rmm_local_timer_inject', 0)}")

    # 5. the security claim: no distrusting domains ever shared a core
    system.finish()
    report = CoreGapAuditor().audit(system.machine, system.tracer)
    print(f"\n{report.summary()}")

    # 6. attestation: the guest can verify it runs under a core-gapped
    #    monitor before trusting the platform with secrets
    token = system.rmm.attestation_token(kvm.realm_id, challenge=42)
    verifier = system.rmm.root_of_trust.public_verifier()
    from repro.rmm import verify_token

    ok = verify_token(token, verifier, require_core_gapped=True)
    print(f"attestation: monitor measured as core-gapped build -> {ok}")


if __name__ == "__main__":
    main()
