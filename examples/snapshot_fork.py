#!/usr/bin/env python3
"""Snapshot & fork: one booted rack, two scenario variants for free.

Booting a server (realm build, REC binding, device attach) is the
expensive prefix every what-if experiment shares.  This example boots
one core-gapped server serving two Redis tenants, then forks the live
process into two variants — a calm run and a run with triple the
offered load — each continuing from the *same* booted state.  A
from-scratch rebuild of the calm variant verifies the fork is
bit-identical (same state digest), and a mid-run checkpoint/restore
shows the other half of repro.snap: rebuild + replay, verified
field-by-field.

Run:  python examples/snapshot_fork.py
"""

from repro.experiments import SystemConfig
from repro.fleet import ScenarioSpec, boot_server, place, redis_tenant, uniform_rack
from repro.sim.clock import ms
from repro.snap import Recipe, can_fork, fork_map, restore, snapshot

SPEC = ScenarioSpec(
    servers=uniform_rack(1, SystemConfig(mode="gapped", n_cores=8), seed=1),
    tenants=(
        redis_tenant("acme", n_vcpus=3, rate_rps=6000.0),
        redis_tenant("bravo", n_vcpus=3, rate_rps=4000.0),
    ),
    duration_ns=ms(30),
    seed=1,
)


def boot():
    """The shared expensive prefix: one booted, traffic-ready server."""
    server = boot_server(SPEC, place(SPEC), 0)
    for client in server.clients:
        client.start(SPEC.duration_ns)
    return server


def main() -> None:
    server = boot()
    system = server.system
    print(f"booted at t={system.sim.now} ns; forking two variants...")

    def run_variant(load_factor: float) -> dict:
        # each child owns a copy-on-write clone of the booted state
        for client in server.clients:
            client._mean_gap_ns /= load_factor
        system.run_for(SPEC.duration_ns)
        return {
            "load": load_factor,
            "completed": sum(c.stats.completed for c in server.clients),
            "p99_ms": max(
                (c.stats.percentile_ms(99) for c in server.clients),
                default=0.0,
            ),
            "digest": system.state_digest(),
        }

    if not can_fork():
        print("os.fork unavailable on this platform; nothing to compare")
        return

    calm, stormy = fork_map([1.0, 3.0], run_variant)
    for row in (calm, stormy):
        print(
            f"  load x{row['load']:.0f}: {row['completed']} completed, "
            f"p99 {row['p99_ms']:.3f} ms"
        )

    # the parent's booted state is untouched: replaying variant 1 from a
    # fresh boot lands on the same digest as the forked child
    replay = boot()
    replay.system.run_for(SPEC.duration_ns)
    match = replay.system.state_digest() == calm["digest"]
    print(f"fork(x1) == from-scratch replay: {match}")

    # checkpoint/restore: the same machinery, mid-run, verified
    state = {}

    def rebuild():
        state["server"] = boot()
        return state["server"].system

    live = boot()
    live.system.run_for(ms(10))
    checkpoint = snapshot(
        live.system,
        recipe=Recipe(build=rebuild),
        extra={"clients": live.clients},
    )
    restored = restore(
        checkpoint,
        extra_fn=lambda _sys: {"clients": state["server"].clients},
    )
    restored.run_for(ms(20))
    live.system.run_for(ms(20))
    print(
        "restore + continue == uninterrupted:",
        restored.state_digest() == live.system.state_digest(),
    )


if __name__ == "__main__":
    main()
