#!/usr/bin/env python3
"""Export a Perfetto trace of one Fig. 6 cell (CoreMark-PRO, gapped).

Runs a single core-gapped CoreMark-PRO cell with schedule tracing
enabled and writes a Chrome trace-event JSON file.  Open the output in
https://ui.perfetto.dev (or chrome://tracing) to see:

* one timeline track per physical core, with the realm's dedicated
  cores running `realm:...` slices and core 0 running the host/VMM;
* flow arrows from each SGI send (e.g. the RMM's exit doorbell or a
  delegated virtual IPI) across to the receiving core's track;
* async slices per RPC port showing run-call submit -> complete ->
  collect lifecycles;
* instants for VM exits and (if a fault plan is active) injected
  faults.

Run:  python examples/trace_fig6.py [output.trace.json]
"""

import sys

from repro.experiments.config import SystemConfig
from repro.experiments.workbench import build_system
from repro.guest.vm import GuestVm
from repro.guest.workloads import CoremarkStats, coremark_workload_factory
from repro.obs import trace_summary, validate_trace, write_trace
from repro.sim.clock import ms

N_CORES = 8          # one Fig. 6 x-axis point: 8 physical cores
DURATION_MS = 20     # long enough for several run-call round trips


def main() -> None:
    out = sys.argv[1] if len(sys.argv) > 1 else "fig6_cell.trace.json"

    config = SystemConfig(
        mode="gapped", n_cores=N_CORES, seed=1, trace_schedules=True
    )
    system = build_system(config)
    stats = CoremarkStats()
    # gapped fair accounting: N-1 vCPUs, one core left to the host
    vm = GuestVm("cvm0", N_CORES - 2, coremark_workload_factory(stats))
    kvm = system.launch(vm)
    system.start(kvm)
    system.run_for(ms(DURATION_MS))
    system.finish()

    trace = write_trace(
        system.tracer, out, label=f"fig6/gapped/{N_CORES}cores"
    )
    errors = validate_trace(trace)
    if errors:
        raise SystemExit("invalid trace: " + "; ".join(errors))

    summary = trace_summary(trace)
    print(f"wrote {out}")
    print(f"  events:           {summary['events']}")
    print(f"  core tracks:      {summary['core_tracks']}")
    print(f"  flow pairs:       {summary['flow_pairs']}")
    print(f"  cross-core flows: {summary['cross_core_flows']}")
    print(f"  coremark chunks:  {stats.chunks_completed}")
    print("\nopen it in https://ui.perfetto.dev or chrome://tracing")


if __name__ == "__main__":
    main()
