#!/usr/bin/env python3
"""Fleet quickstart: a declarative rack serving open-loop tenants.

One ScenarioSpec replaces the imperative System + launch + add_* +
run_until incantation: two core-gapped servers, three Redis tenants
behind SR-IOV VFs, seeded Poisson arrivals.  Placement is core-gap
aware — each tenant's vCPUs are a hard reservation of non-host cores —
and a fourth, oversized tenant is refused admission up front rather
than oversubscribing a gap.

Run:  python examples/fleet_quickstart.py
"""

from repro.experiments import SystemConfig
from repro.fleet import (
    FleetAdmissionError,
    ScenarioSpec,
    place,
    redis_tenant,
    uniform_rack,
)
from repro.guest.workloads.redis import OP_GET, OP_SET
from repro.sim.clock import ms


def main() -> None:
    rack = uniform_rack(2, SystemConfig(mode="gapped", n_cores=8), seed=1)
    spec = ScenarioSpec(
        servers=rack,
        tenants=(
            redis_tenant("acme", n_vcpus=3, rate_rps=8000.0, op=OP_GET),
            redis_tenant("bravo", n_vcpus=3, rate_rps=5000.0, op=OP_SET),
            redis_tenant("corto", n_vcpus=2, rate_rps=3000.0, op=OP_GET),
        ),
        duration_ns=ms(60),
        seed=1,
        placement="spread",
    )

    placement = place(spec)
    print("placement (7 free vCPU slots per gapped 8-core server):")
    for name, server in placement.assignments:
        print(f"  {name:8s} -> server {server}")

    result = spec.boot().run()
    print("\nper-tenant serving results:")
    for row in result.tenants:
        print(
            f"  {row.tenant:8s} server {row.server}  "
            f"{row.completed:4d}/{row.issued} requests  "
            f"p99 {row.p99_ms * 1000:7.1f} us  "
            f"SLO violations {row.slo_violations}"
        )
    print(
        f"\nrack throughput {result.total_throughput_krps():.1f} krps, "
        f"worst p99 {result.worst_p99_ms() * 1000:.1f} us"
    )

    # admission control: a 12-vCPU tenant cannot gap into 8-core servers
    too_big = ScenarioSpec(
        servers=rack,
        tenants=(redis_tenant("gorgon", n_vcpus=12, rate_rps=1000.0),),
        duration_ns=ms(10),
    )
    try:
        too_big.boot()
    except FleetAdmissionError as refusal:
        print(f"\nadmission control: {refusal}")

    assert result.tenants and not result.rejected
    print("\nok")


if __name__ == "__main__":
    main()
