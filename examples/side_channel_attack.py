#!/usr/bin/env python3
"""Sharing is leaking: the same attacks, with and without core gapping.

Runs four classic microarchitectural attacks against the simulated
hardware twice each: once with attacker and victim time-slicing one
physical core (what a malicious hypervisor can always arrange today),
and once with each pinned to its own core (what the core-gapped RMM
enforces).  The attacker code is identical in both runs -- only the
schedule changes.

Run:  python examples/side_channel_attack.py
"""

from repro.hw import Machine, SocTopology
from repro.security import (
    btb_injection_attack,
    cache_covert_channel,
    prime_probe_attack,
    store_buffer_attack,
)

SECRET_BITS = [1, 0, 1, 1, 0, 0, 1, 0, 1, 1, 0, 1, 0, 0, 0, 1] * 4


def banner(title: str) -> None:
    print(f"\n--- {title} ---")


def main() -> None:
    machine = Machine(SocTopology(name="attack-demo", n_cores=4, memory_gib=1))
    print("=== transient-execution attacks vs core gapping ===")
    print(f"secret: {''.join(map(str, SECRET_BITS[:16]))}... "
          f"({len(SECRET_BITS)} bits)")

    banner("L1D prime+probe (the classic cache side channel)")
    shared = prime_probe_attack(machine, attacker_core=0, victim_core=0,
                                secret_bits=SECRET_BITS)
    gapped = prime_probe_attack(machine, attacker_core=1, victim_core=2,
                                secret_bits=SECRET_BITS)
    print(f"  time-sliced on one core: recovered {shared.accuracy:.0%} "
          f"of the secret  -> {'LEAKED' if shared.leaked else 'safe'}")
    print(f"  core-gapped:             recovered {gapped.accuracy:.0%} "
          f"(private L1)   -> {'LEAKED' if gapped.leaked else 'safe'}")

    banner("branch-target injection (Spectre-v2 shape)")
    same = btb_injection_attack(machine, attacker_core=3, victim_core=3)
    cross = btb_injection_attack(machine, attacker_core=3, victim_core=1)
    print(f"  same core:  attacker-planted target predicted = {same}")
    print(f"  core-gapped: attacker-planted target predicted = {cross} "
          f"(per-core BTB)")

    banner("store-buffer forwarding (MDS/Fallout shape)")
    leak = store_buffer_attack(machine, attacker_core=2, victim_core=2)
    none = store_buffer_attack(machine, attacker_core=2, victim_core=3)
    print(f"  same core:  transiently forwarded victim store = "
          f"{hex(leak) if leak else None}")
    print(f"  core-gapped: forwarded = {none} (store buffer is core-private)")

    banner("cache covert channel between colluding VMs")
    noisy = cache_covert_channel(machine, sender_core=1, receiver_core=1,
                                 message_bits=SECRET_BITS)
    silent = cache_covert_channel(machine, sender_core=1, receiver_core=2,
                                  message_bits=SECRET_BITS)
    print(f"  time-sliced: {noisy.accuracy:.0%} of message received")
    print(f"  core-gapped: {silent.accuracy:.0%} "
          f"(only the LLC is shared, out of the threat model; the paper "
          f"recommends hardware LLC partitioning)")

    print("\nConclusion: every same-core channel delivered the secret; "
          "none of them crossed a core boundary.")


if __name__ == "__main__":
    main()
