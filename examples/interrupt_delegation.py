#!/usr/bin/env python3
"""Interrupt delegation (S4.4): the optimisation that makes core
gapping scale.

Runs the same compute-bound CVM twice -- with and without the RMM
emulating the virtual timer and virtual IPIs -- and shows where every
exit went, plus the effect on virtual IPI latency.

Run:  python examples/interrupt_delegation.py
"""

from repro.analysis import render_table, summarize
from repro.experiments import System, SystemConfig
from repro.guest.actions import Compute, SendIpi
from repro.guest.vm import GuestVm
from repro.sim.clock import ms, us


def ipi_heavy_factory(vm, index):
    """vCPU 0 pings its sibling; everyone computes."""

    def pinger():
        while True:
            yield SendIpi(1)
            yield Compute(us(400))

    def worker():
        while True:
            yield Compute(us(400))

    return pinger() if index == 0 else worker()


def run_once(delegation: bool):
    system = System(
        SystemConfig(
            mode="gapped", n_cores=4, delegation=delegation,
            housekeeping=None,
        )
    )
    vm = GuestVm("guest", 3, ipi_heavy_factory)
    kvm = system.launch(vm)
    system.start(kvm)
    system.run_for(ms(200))
    exits = system.exit_counts()
    vipi = summarize(
        [s / 1e3 for s in system.tracer.samples("vipi_latency_ns")]
    )
    local = system.tracer.counters.get("rmm_local_timer_inject", 0)
    return exits, vipi, local


def main() -> None:
    print("=== RMM interrupt delegation ablation ===\n")
    rows = []
    for delegation in (False, True):
        exits, vipi, local = run_once(delegation)
        label = "with delegation" if delegation else "without delegation"
        rows.append(
            (
                label,
                exits.get("exits_total", 0),
                exits.get("exit:timer", 0),
                exits.get("exit:ipi", 0),
                exits.get("exit:host_kick", 0),
                local,
                f"{vipi.mean:.2f}",
            )
        )
    print(
        render_table(
            [
                "config",
                "total exits",
                "timer exits",
                "ipi exits",
                "kick exits",
                "RMM-local timer injects",
                "vIPI us",
            ],
            rows,
            title="200 ms of an IPI-heavy 3-vCPU CVM",
        )
    )
    print(
        "\nWith delegation the RMM handles timer programming and guest "
        "IPIs on the dedicated cores themselves: the host core sees "
        "almost nothing, which is what lets one host core serve 60+ "
        "guest cores (fig. 6) -- and the guest gets a source of time "
        "the hypervisor cannot manipulate."
    )


if __name__ == "__main__":
    main()
