#!/usr/bin/env python3
"""Cloud node lifecycle: admission control, hostile host, reclamation.

Plays out a day in the life of a cloud node running core-gapped CVMs:

1. three tenants launch CVMs; the planner carves cores out of the host;
2. a fourth tenant is *refused* (admission control: no free cores);
3. the (hostile) hypervisor tries to dispatch one tenant's vCPU on
   another tenant's core -- the RMM refuses with an error, the guests
   never notice;
4. a tenant's workload finishes; its realm is destroyed, its granules
   scrubbed, and its cores hotplugged back online;
5. the freed cores immediately admit the tenant that was refused;
6. the full schedule is audited: zero cross-tenant core sharing.

Run:  python examples/cloud_consolidation.py
"""

from repro.experiments import System, SystemConfig
from repro.guest.actions import Compute
from repro.guest.vm import GuestVm
from repro.host.planner import AdmissionError
from repro.rmm.core_gap import HOST_KICK_SGI, RunCall
from repro.rmm.rmi import RecRunPage
from repro.security import CoreGapAuditor
from repro.sim.clock import ms


def forever_factory(vm, index):
    def body():
        while True:
            yield Compute(300_000)

    return body()


def finite_factory(vm, index):
    def body():
        for _ in range(100):
            yield Compute(200_000)

    return body()


class ErrorSink:
    def __init__(self):
        self.errors = []

    def complete(self, result):
        self.errors.append(result)


def main() -> None:
    print("=== cloud node with core-gapped CVMs ===\n")
    system = System(SystemConfig(mode="gapped", n_cores=10))
    print(f"node: {system.machine.n_cores} cores, "
          f"host keeps {sorted(system.host_cores)}")

    # 1. three tenants
    tenants = {}
    for name, vcpus, factory in [
        ("tenant-a", 3, forever_factory),
        ("tenant-b", 3, forever_factory),
        ("tenant-c", 3, finite_factory),
    ]:
        vm = GuestVm(name, vcpus, factory)
        kvm = system.launch(vm)
        system.start(kvm)
        tenants[name] = (vm, kvm)
        print(f"  {name}: realm {kvm.realm_id} on cores "
              f"{sorted(kvm.planned_cores.values())}")

    # 2. admission control refuses a fourth tenant
    print(f"\nfree cores now: {system.planner.free_cores()}")
    try:
        system.planner.admit(2)
    except AdmissionError as exc:
        print(f"tenant-d refused: {exc}")

    # 3. hostile hypervisor: dispatch tenant-a's vCPU 0 on tenant-b's core
    system.run_for(ms(5))
    vm_a, kvm_a = tenants["tenant-a"]
    vm_b, kvm_b = tenants["tenant-b"]
    rec_b0 = system.rmm.find_rec(kvm_b.realm_id, 0)
    sink = ErrorSink()
    hostile = RunCall(sink, kvm_a.realm_id, 0, RecRunPage())
    system.engine.dedicated[rec_b0.bound_core].inbox.try_put(hostile)
    system.machine.gic.send_sgi(rec_b0.bound_core, HOST_KICK_SGI)
    system.run_until(lambda: sink.errors, limit_ns=ms(50))
    print(f"\nhostile dispatch of {vm_a.name}.vcpu0 on core "
          f"{rec_b0.bound_core}: RMM answered {sink.errors[0].status.name}")

    # 4. tenant-c finishes; reclaim its cores
    vm_c, kvm_c = tenants["tenant-c"]
    system.run_until_vm_done(kvm_c, limit_ns=ms(500))
    freed = sorted(kvm_c.planned_cores.values())
    system.terminate(kvm_c)
    print(f"\n{vm_c.name} finished; cores {freed} scrubbed and onlined, "
          f"realm {kvm_c.realm_id} destroyed")
    print(f"free cores now: {system.planner.free_cores()}")

    # 5. the refused tenant fits now
    vm_d = GuestVm("tenant-d", 2, forever_factory)
    kvm_d = system.launch(vm_d)
    system.start(kvm_d)
    print(f"tenant-d admitted on cores {sorted(kvm_d.planned_cores.values())}")
    system.run_for(ms(20))

    # 6. audit the whole day
    system.finish()
    report = CoreGapAuditor().audit(system.machine, system.tracer)
    print(f"\n{report.summary()}")
    exits = system.exit_counts()
    print(f"total VM exits across the run: {exits.get('exits_total', 0)} "
          f"(delegation keeps compute-bound CVMs nearly exit-free)")


if __name__ == "__main__":
    main()
