"""Guest execution actions.

A guest vCPU is modelled as a generator yielding *actions*; whichever
component controls the core (the RMM on a dedicated core, or KVM on a
shared core) consumes them and simulates the corresponding hardware
behaviour.  Each action corresponds to something a real guest does that
is architecturally visible to the virtualization layer:

========================  =====================================================
action                    real-world equivalent
========================  =====================================================
``Compute``               instructions retiring on the core
``SetTimer``              write to the virtual-timer compare register (traps)
``SendIpi``               write to ICC_SGI1R (traps)
``MmioRead``/``MmioWrite``  access to an emulated device (stage-2 fault)
``DeviceDoorbell``        write to a passthrough (SR-IOV) BAR -- no trap
``Wfi``                   wait-for-interrupt
``WaitIo``                driver blocking on a device completion/event
``PowerOff``              PSCI SYSTEM_OFF
========================  =====================================================

The driver answers a ``Compute`` yield with the remaining work (0 when
it completed; positive when an interrupt preempted it).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Optional

__all__ = [
    "Compute",
    "ComputeSpan",
    "SetTimer",
    "SendIpi",
    "MmioRead",
    "MmioWrite",
    "DeviceDoorbell",
    "Wfi",
    "WaitIo",
    "PowerOff",
    "IoRequest",
]


@dataclass
class IoRequest:
    """One guest I/O request (virtqueue descriptor chain).

    Built by guest drivers and carried opaquely through
    :class:`MmioWrite`/:class:`DeviceDoorbell` to whichever device
    backend (virtio or SR-IOV) services it.  Defined here, on the guest
    side of the layering boundary, because guests produce requests and
    every backend consumes them.
    """

    kind: str  # "blk_read" | "blk_write" | "net_tx"
    size_bytes: int
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def size_kib(self) -> float:
        return self.size_bytes / 1024.0


@dataclass
class Compute:
    """Run ``work_ns`` of guest computation."""

    work_ns: int
    #: memory-bound fraction, used to apply memory-encryption overhead
    mem_fraction: float = 0.3


@dataclass
class ComputeSpan:
    """Run ``n_chunks`` identical interruptible compute chunks.

    The semantic twin of yielding ``Compute(chunk_ns)`` ``n_chunks``
    times with ``on_chunk()`` called after each completed chunk — that
    expansion is exactly what the vCPU runtime falls back to whenever
    anything needs per-chunk visibility (tracing, profiling, armed
    fault injection, pending virqs).  When nothing does, the driver may
    *coalesce* the whole span into a single interruptible wait and
    synthesize the per-chunk accounting arithmetically; results are
    digest-identical either way.  Workloads with long uniform compute
    phases (CoreMark batches, kernel-build steps) emit this instead of
    chunk-at-a-time ``Compute`` so the engine can skip thousands of
    identical wakeups.
    """

    chunk_ns: int
    n_chunks: int
    mem_fraction: float = 0.3
    #: credited once per completed chunk (workload progress accounting)
    on_chunk: Optional[Any] = None


@dataclass
class SetTimer:
    """Program the virtual timer ``delta_ns`` into the future."""

    delta_ns: int


@dataclass
class SendIpi:
    """Send a virtual IPI to another vCPU of the same VM."""

    target_vcpu: int
    #: stamped by the runtime for latency measurement
    sent_at: int = 0


@dataclass
class MmioRead:
    """Read from an emulated device register (causes a VM exit)."""

    addr: int
    device: str


@dataclass
class MmioWrite:
    """Write to an emulated device register (causes a VM exit)."""

    addr: int
    device: str
    value: int = 0
    #: request descriptor for virtio doorbells (opaque to the RMM/KVM,
    #: consumed by the device backend)
    request: Any = None


@dataclass
class DeviceDoorbell:
    """Ring a passthrough device's doorbell (no VM exit)."""

    device: str
    request: Any = None


@dataclass
class Wfi:
    """Idle until a virtual interrupt is delivered."""


@dataclass
class WaitIo:
    """Block until ``count`` events of ``kind`` arrived from ``device``."""

    device: str
    kind: str = "complete"
    count: int = 1


@dataclass
class PowerOff:
    """Guest shut down (PSCI SYSTEM_OFF)."""
