"""Guest side: vCPU runtime, VM container, actions, workloads."""

from .actions import (
    Compute,
    ComputeSpan,
    DeviceDoorbell,
    MmioRead,
    MmioWrite,
    PowerOff,
    SendIpi,
    SetTimer,
    Wfi,
    WaitIo,
)
from .vcpu import GuestVcpu, VIPI_VIRQ, VTIMER_VIRQ
from .vm import GuestVm

__all__ = [
    "Compute",
    "ComputeSpan",
    "DeviceDoorbell",
    "GuestVcpu",
    "GuestVm",
    "MmioRead",
    "MmioWrite",
    "PowerOff",
    "SendIpi",
    "SetTimer",
    "VIPI_VIRQ",
    "VTIMER_VIRQ",
    "WaitIo",
    "Wfi",
]
