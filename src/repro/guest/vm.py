"""Guest VM container: vCPUs, devices, identity.

A ``GuestVm`` is what the host boots: a set of vCPU runtimes (each
wrapping one workload generator) plus attached devices.  Whether it runs
as a confidential realm or a plain VM is decided by the system builder
(:mod:`repro.experiments.system`); the guest code is identical in both
cases -- the paper's prototype requires **no guest changes**.
"""

from __future__ import annotations

from typing import Callable, Dict, Generator, List, Optional

from ..costs import CostModel, DEFAULT_COSTS
from ..isa.worlds import SecurityDomain
from .vcpu import GuestVcpu

__all__ = ["GuestVm"]

WorkloadFactory = Callable[["GuestVm", int], Optional[Generator]]


class GuestVm:
    """One guest VM (confidential or not)."""

    def __init__(
        self,
        name: str,
        n_vcpus: int,
        workload_factory: WorkloadFactory,
        costs: CostModel = DEFAULT_COSTS,
        memory_gib: int = 16,
        enable_tick: bool = True,
    ):
        self.name = name
        self.costs = costs
        self.memory_gib = memory_gib
        #: filled in by the system builder when the VM becomes a realm
        self.realm_id: Optional[int] = None
        self.domain: Optional[SecurityDomain] = None
        #: devices by name, attached by the system builder
        self.devices: Dict[str, object] = {}
        self.vcpus: List[GuestVcpu] = [
            GuestVcpu(
                self,
                index,
                workload_factory(self, index),
                costs=costs,
                enable_tick=enable_tick,
            )
            for index in range(n_vcpus)
        ]

    @property
    def n_vcpus(self) -> int:
        return len(self.vcpus)

    def vcpu(self, index: int) -> GuestVcpu:
        return self.vcpus[index]

    def attach_device(self, name: str, device) -> None:
        self.devices[name] = device

    def device(self, name: str):
        return self.devices[name]

    @property
    def all_finished(self) -> bool:
        return all(v.finished for v in self.vcpus)

    def total_compute_done(self) -> int:
        return sum(v.compute_ns_done for v in self.vcpus)
