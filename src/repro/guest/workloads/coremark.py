"""CoreMark-PRO-like CPU-intensive workload (figs. 6, 7; Table 4).

CoreMark-PRO runs a fixed mix of integer/floating kernels and reports a
throughput score.  For the reproduction what matters is its interaction
pattern with the virtualization layer: pure computation in long bursts,
perturbed only by guest timer ticks -- which is why >90% of its VM exits
are timer-related (S4.4).  We model each vCPU as an endless sequence of
compute chunks and derive the score from useful compute retired per unit
of wall time.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, Optional

from ...sim.clock import us
from ..actions import ComputeSpan
from ..vm import GuestVm

__all__ = ["CoremarkStats", "coremark_workload_factory", "coremark_score"]

#: score units per core-second of retired compute; chosen so a 16-core
#: run lands in the same ballpark as published AmpereOne CoreMark-PRO
#: results (a few tens of thousands of "marks")
SCORE_PER_CORE_SECOND = 15_000.0

#: one inner CoreMark kernel iteration batch
DEFAULT_CHUNK_NS = us(500)

#: chunks per emitted span -- long enough to amortize wakeups when the
#: driver coalesces, short enough that the score updates steadily when
#: it expands
SPAN_CHUNKS = 32


@dataclass
class CoremarkStats:
    """Aggregated over all vCPUs of one VM."""

    chunks_completed: int = 0
    per_vcpu_chunks: Dict[int, int] = field(default_factory=dict)

    def note_chunk(self, vcpu_index: int) -> None:
        self.chunks_completed += 1
        self.per_vcpu_chunks[vcpu_index] = (
            self.per_vcpu_chunks.get(vcpu_index, 0) + 1
        )


def coremark_workload_factory(
    stats: CoremarkStats, chunk_ns: int = DEFAULT_CHUNK_NS
):
    """Returns a workload factory for :class:`repro.guest.vm.GuestVm`."""

    def factory(vm: GuestVm, index: int) -> Generator:
        return _coremark_vcpu(stats, index, chunk_ns)

    return factory


def _coremark_vcpu(
    stats: CoremarkStats, index: int, chunk_ns: int
) -> Generator:
    # spans instead of chunk-at-a-time Compute: the vCPU runtime expands
    # them to the identical per-chunk schedule unless the machine can
    # coalesce (repro.guest.actions.ComputeSpan)
    def credit() -> None:
        stats.note_chunk(index)

    while True:
        yield ComputeSpan(
            chunk_ns, SPAN_CHUNKS, mem_fraction=0.35, on_chunk=credit
        )


def coremark_score(
    stats: CoremarkStats, duration_ns: int, chunk_ns: int = DEFAULT_CHUNK_NS
) -> float:
    """Convert retired chunks into a CoreMark-PRO-style score."""
    if duration_ns <= 0:
        return 0.0
    core_seconds = stats.chunks_completed * chunk_ns / 1e9
    wall_seconds = duration_ns / 1e9
    return SCORE_PER_CORE_SECOND * core_seconds / wall_seconds
