"""NetPIPE-like network ping-pong workload (fig. 8).

NetPIPE measures round-trip latency and streaming throughput across a
range of message sizes against an echo peer.  The guest side sends a
message (virtio MMIO doorbell or SR-IOV passthrough doorbell), waits for
the echoed reply, and records the round trip.  Throughput follows from
size / (rtt / 2), as NetPIPE reports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Tuple

from ...costs import CostModel, DEFAULT_COSTS
from ..actions import Compute, DeviceDoorbell, IoRequest, MmioWrite, WaitIo
from ..vm import GuestVm

__all__ = ["NetpipeStats", "netpipe_workload_factory", "DEFAULT_SIZES"]

#: message sizes swept by the benchmark (bytes)
DEFAULT_SIZES = [64, 256, 1024, 4096, 16384, 65536, 262144, 1048576]


@dataclass
class NetpipeStats:
    """Per-message-size round-trip samples (ns)."""

    rtt_ns: Dict[int, List[int]] = field(default_factory=dict)

    def note(self, size: int, rtt: int) -> None:
        self.rtt_ns.setdefault(size, []).append(rtt)

    def mean_rtt_us(self, size: int) -> float:
        samples = self.rtt_ns.get(size, [])
        return sum(samples) / len(samples) / 1e3 if samples else 0.0

    def latency_us(self, size: int) -> float:
        """One-way latency as NetPIPE reports it (rtt/2)."""
        return self.mean_rtt_us(size) / 2.0

    def throughput_gbps(self, size: int) -> float:
        rtt_us = self.mean_rtt_us(size)
        if rtt_us == 0:
            return 0.0
        return size * 8.0 / (rtt_us * 1e3 / 2.0)  # bits per ns -> Gb/s


def netpipe_workload_factory(
    stats: NetpipeStats,
    device: str,
    passthrough: bool,
    clock,
    sizes: List[int] = None,
    pings_per_size: int = 30,
    costs: CostModel = DEFAULT_COSTS,
):
    """Factory: vCPU 0 runs the ping-pong; other vCPUs idle-compute."""
    sizes = sizes or DEFAULT_SIZES

    def factory(vm: GuestVm, index: int) -> Generator:
        if index == 0:
            return _netpipe_vcpu(
                vm, index, stats, device, passthrough, sizes,
                pings_per_size, clock, costs,
            )
        return _idle_vcpu()

    return factory


def _idle_vcpu() -> Generator:
    # light background activity so the vCPU is not pure WFI
    while True:
        yield Compute(1_000_000)


def _netpipe_vcpu(
    vm: GuestVm,
    index: int,
    stats: NetpipeStats,
    device: str,
    passthrough: bool,
    sizes: List[int],
    pings: int,
    clock,
    costs: CostModel,
) -> Generator:
    for size in sizes:
        for ping in range(pings + 1):
            # the first ping of each size is an unrecorded warm-up, as
            # NetPIPE itself does
            start = clock()
            # guest network stack + driver work scales with size
            yield Compute(
                costs.guest_netstack_ns
                + costs.guest_virtio_driver_ns
                + int(size / 1024 * 120),
                mem_fraction=0.6,
            )
            request = _tx_request(size)
            if passthrough:
                yield DeviceDoorbell(device, request)
            else:
                yield MmioWrite(0x1000, device, request=request)
            yield WaitIo(device, "rx", 1)
            vm.device(device).rx_pop(index)
            # receive-side stack processing
            vm_device = None  # resolved lazily through the stats closure
            yield Compute(
                costs.guest_netstack_ns + int(size / 1024 * 120),
                mem_fraction=0.6,
            )
            if ping > 0:
                stats.note(size, clock() - start)


def _tx_request(size: int):

    return IoRequest("net_tx", size, {"echo": True, "payload": b""})
