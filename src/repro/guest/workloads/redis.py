"""Redis-like server workload + external redis-benchmark client (Table 5).

The guest runs a request/response server: receive a request from the
SR-IOV NIC, execute the command, send the reply.  An external load
generator (modelled as a pure simulation process on the "client" host)
keeps 50 connections in closed loop and records per-request latency, as
redis-benchmark does.

Command costs model Redis v7 on a 3 GHz Arm core with 512-byte objects:
SET/GET are O(1) hashtable operations; LRANGE 100 walks 100 list nodes
and serialises a large reply (the memory-intensive long-running query
that behaves differently in Table 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from ...analysis.stats import percentile
from ...costs import CostModel, DEFAULT_COSTS
from ...sim.engine import Simulator
from ..actions import Compute, DeviceDoorbell, IoRequest, WaitIo
from ..vm import GuestVm

__all__ = ["RedisOp", "RedisStats", "RedisClientSim", "redis_server_factory"]


@dataclass(frozen=True)
class RedisOp:
    """One benchmarked command type."""

    name: str
    #: server-side execution cost (ns)
    server_ns: int
    #: request / reply sizes on the wire (bytes)
    request_bytes: int
    reply_bytes: int
    #: memory-bound fraction of the server work
    mem_fraction: float = 0.3


#: 512-byte objects, 50 clients -- the Table 5 configuration.
#: Server costs calibrated to Redis v7 single-instance throughput on a
#: 3 GHz core (SET ~52 krps shared-core, LRANGE-100 ~8x slower).
OP_SET = RedisOp("SET", 16_400, 600, 60, mem_fraction=0.4)
OP_GET = RedisOp("GET", 17_200, 80, 600, mem_fraction=0.4)
OP_LRANGE_100 = RedisOp(
    "LRANGE_100", 72_000, 90, 100 * 512 + 400, mem_fraction=0.8
)


@dataclass
class RedisStats:
    """Client-side samples per op (latency in ns)."""

    latencies: Dict[str, List[int]] = field(default_factory=dict)
    completed: Dict[str, int] = field(default_factory=dict)
    started_at: int = 0
    finished_at: int = 0

    def note(self, op: str, latency_ns: int, now: int) -> None:
        self.latencies.setdefault(op, []).append(latency_ns)
        self.completed[op] = self.completed.get(op, 0) + 1
        self.finished_at = now

    def throughput_krps(self, op: str) -> float:
        n = self.completed.get(op, 0)
        elapsed = self.finished_at - self.started_at
        if elapsed <= 0:
            return 0.0
        return n / (elapsed / 1e9) / 1e3

    def percentile_ms(self, op: str, pct: float) -> float:
        return percentile(self.latencies.get(op, []), pct) / 1e6

    def mean_ms(self, op: str) -> float:
        samples = self.latencies.get(op, [])
        if not samples:
            return 0.0
        return sum(samples) / len(samples) / 1e6


def redis_server_factory(
    device: str, costs: CostModel = DEFAULT_COSTS
):
    """Redis is single-threaded: one server instance runs on vCPU 0,
    the remaining vCPUs model the rest of the guest (light load)."""

    def factory(vm: GuestVm, index: int) -> Generator:
        if index == 0:
            return _server_vcpu(vm, index, device, costs)
        return _background_vcpu()

    return factory


def _background_vcpu() -> Generator:
    while True:
        yield Compute(1_000_000, mem_fraction=0.2)


def _server_vcpu(
    vm: GuestVm, index: int, device_name: str, costs: CostModel
) -> Generator:

    while True:
        yield WaitIo(device_name, "rx", 1)
        device = vm.device(device_name)
        request = device.rx_pop(index)
        if request is None or request.get("op") is None:
            continue
        op: RedisOp = request["op"]
        # network stack receive + command execution
        yield Compute(costs.guest_netstack_ns // 2, mem_fraction=0.5)
        yield Compute(op.server_ns, mem_fraction=op.mem_fraction)
        reply = dict(request)
        yield DeviceDoorbell(
            device_name,
            IoRequest(
                "net_tx",
                op.reply_bytes,
                {"deliver_fn": request["reply_fn"], "payload": reply},
            ),
        )


class RedisClientSim:
    """redis-benchmark: 50 closed-loop clients on a separate machine."""

    def __init__(
        self,
        sim: Simulator,
        device,
        n_vcpus: int,
        op: RedisOp,
        n_requests: int,
        n_clients: int = 50,
        costs: CostModel = DEFAULT_COSTS,
    ):
        self.sim = sim
        self.device = device
        self.n_vcpus = n_vcpus
        self.op = op
        self.n_requests = n_requests
        self.n_clients = n_clients
        self.costs = costs
        self.stats = RedisStats()
        self._issued = 0
        self._rr = 0

    def start(self) -> None:
        self.stats.started_at = self.sim.now
        for _ in range(min(self.n_clients, self.n_requests)):
            self._issue()

    @property
    def done(self) -> bool:
        return sum(self.stats.completed.values()) >= self.n_requests

    def _issue(self) -> None:
        if self._issued >= self.n_requests:
            return
        self._issued += 1
        vcpu = 0  # the single Redis instance listens on vCPU 0

        sent_at = self.sim.now
        request = {
            "op": self.op,
            "sent_at": sent_at,
            "reply_fn": self._on_reply,
        }
        # client -> server wire latency, then NIC rx path in the guest
        self.sim.schedule(
            self.costs.net_wire_ns,
            lambda: self.device.deliver_rx(
                vcpu, request, self.op.request_bytes
            ),
        )

    def _on_reply(self, reply: dict) -> None:
        latency = self.sim.now - reply["sent_at"]
        self.stats.note(self.op.name, latency, self.sim.now)
        self._issue()
