"""Linux-kernel-build-like workload (fig. 10).

``make -jN`` over a virtio disk: each job reads sources, compiles
(CPU+memory heavy), and writes objects; a final single-threaded link
phase serialises.  The virtio disk path puts core-gapping at a
disadvantage (host-core contention for I/O emulation) while the compile
phase benefits from dedicated cores -- fig. 10 shows the two roughly
cancelling out, core-gapped CVMs matching the baseline with one fewer
vCPU.

The build is a scaled-down kernel: fewer, smaller translation units, so
a 16-way build finishes in ~1 simulated second.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Generator, Optional

from ...costs import CostModel, DEFAULT_COSTS
from ...sim.clock import ms
from ..actions import Compute, IoRequest, MmioWrite, WaitIo
from ..vm import GuestVm

__all__ = ["KbuildConfig", "KbuildStats", "kbuild_workload_factory"]


@dataclass
class KbuildConfig:
    """Size of the (scaled-down) kernel tree."""

    total_files: int = 192
    source_bytes: int = 48 * 1024
    object_bytes: int = 96 * 1024
    compile_ns: int = ms(18)
    link_read_files: int = 24
    link_ns: int = ms(120)


@dataclass
class KbuildStats:
    files_compiled: int = 0
    link_done: bool = False
    finished_at: Optional[int] = None


class _SharedBuild:
    """Work queue shared by the guest's make jobs."""

    def __init__(self, config: KbuildConfig, stats: KbuildStats, clock):
        self.config = config
        self.stats = stats
        self.clock = clock
        self.next_file = 0
        self.compiled = 0

    def take_file(self) -> Optional[int]:
        if self.next_file >= self.config.total_files:
            return None
        index = self.next_file
        self.next_file += 1
        return index

    def file_done(self) -> None:
        self.compiled += 1
        self.stats.files_compiled = self.compiled

    @property
    def compile_phase_done(self) -> bool:
        return self.compiled >= self.config.total_files


def kbuild_workload_factory(
    config: KbuildConfig,
    stats: KbuildStats,
    device: str,
    clock,
    costs: CostModel = DEFAULT_COSTS,
):
    shared = _SharedBuild(config, stats, clock)

    def factory(vm: GuestVm, index: int) -> Generator:
        return _make_job(vm, index, shared, device, costs)

    return factory


def _make_job(
    vm: GuestVm, index: int, shared: _SharedBuild, device: str, costs: CostModel
) -> Generator:

    config = shared.config
    while True:
        file_index = shared.take_file()
        if file_index is None:
            break
        # read the source (and headers) through the virtio disk
        yield Compute(costs.guest_virtio_driver_ns)
        yield MmioWrite(
            0x2000, device, request=IoRequest("blk_read", config.source_bytes)
        )
        yield WaitIo(device, "complete", 1)
        # compile: CPU/memory heavy
        yield Compute(config.compile_ns, mem_fraction=0.45)
        # write the object file
        yield Compute(costs.guest_virtio_driver_ns)
        yield MmioWrite(
            0x2000, device, request=IoRequest("blk_write", config.object_bytes)
        )
        yield WaitIo(device, "complete", 1)
        shared.file_done()

    if index == 0:
        # vCPU 0 performs the final link once every object exists
        while not shared.compile_phase_done:
            yield Compute(ms(1))
        for _ in range(config.link_read_files):
            yield Compute(costs.guest_virtio_driver_ns)
            yield MmioWrite(
                0x2000,
                device,
                request=IoRequest("blk_read", config.object_bytes),
            )
            yield WaitIo(device, "complete", 1)
        yield Compute(config.link_ns, mem_fraction=0.55)
        yield Compute(costs.guest_virtio_driver_ns)
        yield MmioWrite(
            0x2000,
            device,
            request=IoRequest("blk_write", 16 * 1024 * 1024),
        )
        yield WaitIo(device, "complete", 1)
        shared.stats.link_done = True
        shared.stats.finished_at = shared.clock()
