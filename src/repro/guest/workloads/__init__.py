"""Guest workload generators used by the evaluation."""

from .coremark import (
    CoremarkStats,
    coremark_score,
    coremark_workload_factory,
)
from .iozone import DEFAULT_RECORDS, IozoneStats, iozone_workload_factory
from .kbuild import KbuildConfig, KbuildStats, kbuild_workload_factory
from .netpipe import DEFAULT_SIZES, NetpipeStats, netpipe_workload_factory
from .redis import (
    OP_GET,
    OP_LRANGE_100,
    OP_SET,
    RedisClientSim,
    RedisOp,
    RedisStats,
    redis_server_factory,
)

__all__ = [
    "CoremarkStats",
    "DEFAULT_RECORDS",
    "DEFAULT_SIZES",
    "IozoneStats",
    "KbuildConfig",
    "KbuildStats",
    "NetpipeStats",
    "OP_GET",
    "OP_LRANGE_100",
    "OP_SET",
    "RedisClientSim",
    "RedisOp",
    "RedisStats",
    "coremark_score",
    "coremark_workload_factory",
    "iozone_workload_factory",
    "kbuild_workload_factory",
    "netpipe_workload_factory",
    "redis_server_factory",
]
