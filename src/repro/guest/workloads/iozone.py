"""IOzone-like block I/O workload (fig. 9).

Sync read/write throughput to a virtio block device using O_DIRECT
(bypassing the guest page cache), swept across record sizes.  Every
record is one synchronous request: doorbell exit, host emulation,
device latency, completion interrupt -- the exit-intensive path where
core gapping pays its highest cost (fig. 9: parity only at >10 MiB
records).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Tuple

from ...costs import CostModel, DEFAULT_COSTS
from ..actions import Compute, IoRequest, MmioWrite, WaitIo
from ..vm import GuestVm

__all__ = ["IozoneStats", "iozone_workload_factory", "DEFAULT_RECORDS"]

KIB = 1024
MIB = 1024 * 1024

#: record sizes swept (bytes), 4 KiB .. 64 MiB as in fig. 9
DEFAULT_RECORDS = [
    4 * KIB,
    16 * KIB,
    64 * KIB,
    256 * KIB,
    1 * MIB,
    4 * MIB,
    16 * MIB,
    64 * MIB,
]

#: virtio-blk segments a large record into requests of at most this size
MAX_SEGMENT = 1 * MIB


@dataclass
class IozoneStats:
    """(record_size, op) -> [duration_ns per record]."""

    samples: Dict[Tuple[int, str], List[int]] = field(default_factory=dict)

    def note(self, record: int, op: str, duration_ns: int) -> None:
        self.samples.setdefault((record, op), []).append(duration_ns)

    def throughput_mib_s(self, record: int, op: str) -> float:
        samples = self.samples.get((record, op), [])
        if not samples:
            return 0.0
        total_ns = sum(samples)
        total_bytes = record * len(samples)
        return total_bytes / MIB / (total_ns / 1e9)


def iozone_workload_factory(
    stats: IozoneStats,
    device: str,
    clock,
    records: List[int] = None,
    ops_per_record: int = 12,
    costs: CostModel = DEFAULT_COSTS,
):
    """Single-threaded IOzone on vCPU 0; other vCPUs idle."""
    records = records or DEFAULT_RECORDS

    def factory(vm: GuestVm, index: int) -> Generator:
        if index == 0:
            return _iozone_vcpu(
                stats, device, clock, records, ops_per_record, costs
            )
        return _idle()

    return factory


def _idle() -> Generator:
    while True:
        yield Compute(1_000_000)


def _iozone_vcpu(
    stats: IozoneStats,
    device: str,
    clock,
    records: List[int],
    ops_per_record: int,
    costs: CostModel,
) -> Generator:

    for record in records:
        for op in ("blk_write", "blk_read"):
            for iteration in range(ops_per_record + 1):
                # iteration 0 is an untimed warm-up, as IOzone does
                start = clock()
                offset = 0
                while offset < record:
                    segment = min(MAX_SEGMENT, record - offset)
                    # guest block layer + driver work per request
                    yield Compute(
                        costs.guest_virtio_driver_ns + segment // 4096 * 60,
                        mem_fraction=0.5,
                    )
                    yield MmioWrite(
                        0x2000, device, request=IoRequest(op, segment)
                    )
                    yield WaitIo(device, "complete", 1)
                    offset += segment
                if iteration > 0:
                    stats.note(record, op, clock() - start)
