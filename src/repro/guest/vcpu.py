"""Guest vCPU runtime: the guest kernel around a workload.

``GuestVcpu.run()`` is the generator the virtualization layer drives.
It wraps the workload with guest-kernel behaviour:

* arming the periodic scheduler tick and handling timer interrupts
  (tick handler + re-arm -- the behaviour responsible for >90% of
  CoreMark's VM exits in the paper's Table 4);
* delivering injected virtual interrupts (IPIs, device completions) to
  handlers at instruction boundaries, with handlers running with
  interrupts masked;
* accounting I/O events so workloads can block on completions.

The driver (RMM dedicated-core loop or KVM vCPU loop) communicates
through :meth:`inject_virq` and by sending the remaining work count back
into ``Compute`` yields.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Deque, Dict, Generator, Optional, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..hw.gic import VTIMER_PPI
from .actions import (
    Compute,
    ComputeSpan,
    DeviceDoorbell,
    MmioRead,
    MmioWrite,
    PowerOff,
    SendIpi,
    SetTimer,
    Wfi,
    WaitIo,
)

__all__ = ["VTIMER_VIRQ", "VIPI_VIRQ", "GuestVcpu"]

#: virtual intids as the guest sees them
VTIMER_VIRQ = VTIMER_PPI  # 27
VIPI_VIRQ = 7  # SGI number used by the guest kernel for IPIs


@dataclass
class InjectedVirq:
    """One pending virtual interrupt with optional payload."""

    intid: int
    payload: Any = None


class GuestVcpu:
    """One guest vCPU: kernel model + workload generator."""

    def __init__(
        self,
        vm,
        index: int,
        workload: Optional[Generator] = None,
        costs: CostModel = DEFAULT_COSTS,
        enable_tick: bool = True,
    ):
        self.vm = vm
        self.index = index
        self.costs = costs
        self.enable_tick = enable_tick
        self._workload = workload
        #: set by the driver (dedicated-core loop) when its machine can
        #: coalesce compute spans; ``None`` (shared-core KVM, tests)
        #: means spans always expand to per-chunk ``Compute`` yields
        self.coalesce_allowed: Optional[Any] = None
        self.pending_virqs: Deque[InjectedVirq] = deque()
        #: I/O event counters: (device, kind) -> arrived count
        self.io_events: Dict[Tuple[str, str], int] = {}
        self._io_consumed: Dict[Tuple[str, str], int] = {}
        self.finished = False
        # statistics
        self.virqs_delivered = 0
        self.ticks_handled = 0
        self.ipis_handled = 0
        self.compute_ns_done = 0

    @property
    def name(self) -> str:
        return f"{self.vm.name}.vcpu{self.index}"

    # ------------------------------------------------------------------
    # driver-side interface
    # ------------------------------------------------------------------

    def inject_virq(self, intid: int, payload: Any = None) -> None:
        """Called by the RMM/KVM when a virtual interrupt is delivered."""
        self.pending_virqs.append(InjectedVirq(intid, payload))

    def has_pending_virq(self) -> bool:
        return bool(self.pending_virqs)

    def note_io_event(self, device: str, kind: str) -> None:
        """Record a device event delivered alongside its interrupt."""
        key = (device, kind)
        self.io_events[key] = self.io_events.get(key, 0) + 1

    # ------------------------------------------------------------------
    # the guest program
    # ------------------------------------------------------------------

    def run(self) -> Generator:
        """The vCPU body: boot, then workload under the kernel."""
        if self.enable_tick:
            yield SetTimer(self.costs.guest_tick_period_ns)
        workload = self._workload
        to_send = None
        while workload is not None:
            try:
                action = workload.send(to_send)
            except StopIteration:
                break
            to_send = yield from self._perform(action)
        self.finished = True
        yield PowerOff()

    # ------------------------------------------------------------------
    # internals
    # ------------------------------------------------------------------

    def _perform(self, action):
        """Execute one workload action, delivering virqs at boundaries."""
        yield from self._deliver_virqs()
        if isinstance(action, Compute):
            yield from self._interruptible_compute(action.work_ns)
            return None
        if isinstance(action, ComputeSpan):
            yield from self._span_compute(action)
            return None
        if isinstance(action, WaitIo):
            # events are cumulative, so a completion that landed before
            # the workload got around to waiting still counts
            key = (action.device, action.kind)
            target = self._io_consumed.get(key, 0) + action.count
            while self.io_events.get(key, 0) < target:
                if not self.pending_virqs:
                    yield Wfi()
                yield from self._deliver_virqs()
            self._io_consumed[key] = target
            return None
        if isinstance(action, Wfi):
            if not self.pending_virqs:
                yield Wfi()
            yield from self._deliver_virqs()
            return None
        if isinstance(action, SendIpi):
            action.sent_at = -1  # stamped by the driver at trap time
            result = yield action
            return result
        # MmioRead/MmioWrite/DeviceDoorbell/SetTimer pass through
        result = yield action
        yield from self._deliver_virqs()
        return result

    def _span_compute(self, action: ComputeSpan):
        """Drive one :class:`ComputeSpan`, coalesced when permitted.

        The expansion branch is digest-identical to the workload having
        yielded ``Compute(chunk_ns)`` per chunk (same events, same
        accounting); the coalesced branch forwards the span to the
        driver, which answers ``(done_chunks, remaining_ns)`` — or
        ``None`` to refuse (a core-level condition wants per-chunk
        execution), which costs no simulated time.  Completed chunks
        are credited driver-side through the closure (so a run cut off
        mid-span still credits them, exactly as the expansion would
        have); the partially-done chunk is finished here per-chunk,
        since its interrupt may have changed what is permitted.
        """
        chunk = int(action.chunk_ns)
        left = int(action.n_chunks)
        on_chunk = action.on_chunk

        def credit() -> None:
            self.compute_ns_done += chunk
            if on_chunk is not None:
                on_chunk()

        while left > 0:
            allowed = self.coalesce_allowed
            if allowed is None or not allowed() or self.pending_virqs:
                resp = None
            else:
                resp = yield ComputeSpan(
                    chunk, left, action.mem_fraction, credit
                )
            if resp is None:
                # expand: the per-chunk path, chunk by chunk
                while left > 0:
                    yield from self._deliver_virqs()
                    yield from self._interruptible_compute(chunk)
                    if on_chunk is not None:
                        on_chunk()
                    left -= 1
                return None
            done, rem = resp
            left -= done
            if rem:
                # a chunk is in flight (rem == chunk: interrupted at its
                # entry, nothing retired yet); finish it per-chunk
                if rem != chunk:
                    self.compute_ns_done += chunk - rem
                yield from self._deliver_virqs()
                while rem > 0:
                    before = rem
                    rem = yield Compute(rem, action.mem_fraction)
                    self.compute_ns_done += before - rem
                    yield from self._deliver_virqs()
                if on_chunk is not None:
                    on_chunk()
                left -= 1
            else:
                yield from self._deliver_virqs()
        return None

    def _interruptible_compute(self, work_ns: int):
        """Compute that pays attention to virq delivery on preemption."""
        remaining = int(work_ns)
        while remaining > 0:
            before = remaining
            remaining = yield Compute(remaining)
            self.compute_ns_done += before - remaining
            yield from self._deliver_virqs()
        return None

    def _masked_compute(self, work_ns: int):
        """Handler compute: preemptible by hardware, but virqs stay
        pending until the handler completes (interrupts masked)."""
        remaining = int(work_ns)
        while remaining > 0:
            remaining = yield Compute(remaining)
        return None

    def _deliver_virqs(self):
        """Run guest interrupt handlers for all pending virqs."""
        while self.pending_virqs:
            virq = self.pending_virqs.popleft()
            self.virqs_delivered += 1
            if virq.intid == VTIMER_VIRQ:
                self.ticks_handled += 1
                yield from self._masked_compute(
                    self.costs.guest_tick_handler_ns
                )
                if self.enable_tick:
                    yield SetTimer(self.costs.guest_tick_period_ns)
            elif virq.intid == VIPI_VIRQ:
                self.ipis_handled += 1
                # IAR read + ack write in shared memory: this is the
                # measurement point for Table 3 (deliver + ack)
                yield from self._masked_compute(250)
                if isinstance(virq.payload, dict) and "acked" in virq.payload:
                    virq.payload["acked"](virq.payload)
                yield from self._masked_compute(
                    self.costs.guest_ipi_handler_ns
                )
            else:
                # device interrupt: account the event, small handler
                if isinstance(virq.payload, tuple) and len(virq.payload) == 2:
                    self.note_io_event(*virq.payload)
                yield from self._masked_compute(800)
        return None
