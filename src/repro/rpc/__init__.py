"""Shared-memory RPC transports (sync busy-wait and async IPI-notified)."""

from .ports import (
    AsyncRpcPort,
    CompletionSlot,
    RpcRequest,
    RpcTimeoutError,
    SyncRpcPort,
)

__all__ = [
    "AsyncRpcPort",
    "CompletionSlot",
    "RpcRequest",
    "RpcTimeoutError",
    "SyncRpcPort",
]
