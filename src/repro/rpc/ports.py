"""Shared-memory RPC transports between host cores and RMM cores.

Three usage patterns, matching S4.3 of the paper:

* :class:`SyncRpcPort` -- short-lived RMI calls (page-table updates,
  lifecycle).  Both sides busy-wait; round trip ~257.7 ns (Table 2).
* :class:`AsyncRpcPort` -- vCPU run calls.  The caller blocks after
  writing arguments; the RMM answers by writing the exit record and
  sending an IPI which activates the host's wake-up thread (fig. 4);
  round trip ~2757.6 ns (Table 2).
* Quarantine-style busy-wait polling for run calls is the same
  :class:`AsyncRpcPort` consumed by a polling client (see
  ``repro.host.kvm``), reproducing the fig. 6 ablation.

These classes are *passive* shared-memory structures: they hold rings,
slots and events, and count traffic.  The CPU time of writing, polling
and reading is charged by the caller on whichever core it occupies,
using the constants in :class:`repro.costs.CostModel` -- exactly like
real shared memory, which costs whoever touches it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from ..sim.engine import Event, SimulationError, Simulator

__all__ = [
    "RpcRequest",
    "RpcTimeoutError",
    "CompletionSlot",
    "SyncRpcPort",
    "AsyncRpcPort",
]


class RpcTimeoutError(SimulationError):
    """A bounded RPC wait expired on the *host* side.

    Raised in host threads only (planner sync calls, run-call retry
    exhaustion): per invariant #2 the guest never observes a host
    transport failure -- the host does, and degrades or refuses.
    """


@dataclass
class RpcRequest:
    """One marshalled call in a shared-memory ring."""

    payload: Any
    submitted_at: int = 0
    response: Any = None
    done: Optional[Event] = None


class SyncRpcPort:
    """Busy-wait synchronous call marshalling to one RMM core.

    The request itself is delivered by placing it in the target
    dedicated core's inbox (its polled shared-memory ring).
    """

    def __init__(
        self, sim: Simulator, name: str, tracer: Optional[Any] = None
    ):
        self.sim = sim
        self.name = name
        self.call_count = 0
        #: duck-typed Tracer (layering: rpc must not import repro.obs)
        self.tracer = tracer

    def post(self, payload: Any) -> RpcRequest:
        """Client: marshal one request (the caller charges
        ``rpc_write_ns`` on its core and enqueues it to the inbox)."""
        self.call_count += 1
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.event(
                self.sim.now,
                "rpc.sync",
                detail={"port": self.name, "seq": self.call_count},
            )
        request = RpcRequest(payload=payload, submitted_at=self.sim.now)
        request.done = Event(f"sync-done:{self.name}")
        return request

    @staticmethod
    def respond(request: RpcRequest, response: Any) -> None:
        """Server: publish the response, releasing the spinning client."""
        request.response = response
        request.done.fire(response)


@dataclass
class CompletionSlot:
    """Shared-memory completion record for one outstanding run call.

    The wake-up thread scans these (fig. 4 steps 3-4); with the
    busy-waiting ablation the vCPU thread itself polls its slot.
    """

    name: str
    state: str = "idle"  # idle | submitted | completed
    payload: Any = None
    result: Any = None
    submitted_at: int = 0
    completed_at: int = 0
    #: fired by the wake-up thread / poller when completion is noticed
    claimed: Optional[Event] = None

    @property
    def completed(self) -> bool:
        return self.state == "completed"


class AsyncRpcPort:
    """Asynchronous run-call channel between one vCPU thread and its
    dedicated RMM core (one-to-one mapping, S4.3)."""

    def __init__(
        self,
        sim: Simulator,
        name: str,
        notify_exit: Callable[["AsyncRpcPort"], None],
        tracer: Optional[Any] = None,
    ):
        self.sim = sim
        self.name = name
        #: invoked when the RMM completes a call (models the exit IPI);
        #: wired to the host's exit-notification dispatcher
        self._notify_exit = notify_exit
        self.slot = CompletionSlot(name=name)
        self.submit_count = 0
        self.complete_count = 0
        #: duck-typed Tracer; ``event()`` is pure observability, so the
        #: slot protocol is byte-identical with tracing on or off
        self.tracer = tracer
        #: fault-injection hook (repro.faults): maps the about-to-be
        #: published result to ``(publish_delay_ns, result)``.  None
        #: (the default) publishes immediately and unchanged.
        self.completion_fault: Optional[
            Callable[["AsyncRpcPort", Any], Tuple[int, Any]]
        ] = None

    # -- client (host vCPU thread) side ------------------------------------

    def submit(self, payload: Any) -> CompletionSlot:
        """Write the call arguments (caller charges ``rpc_write_ns``)."""
        if self.slot.state == "submitted":
            raise SimulationError(
                f"port {self.name}: call already outstanding"
            )
        self.submit_count += 1
        self.slot.state = "submitted"
        self.slot.payload = payload
        self.slot.result = None
        self.slot.submitted_at = self.sim.now
        self.slot.claimed = Event(f"claimed:{self.name}")
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.event(
                self.sim.now,
                "rpc.submit",
                detail={"port": self.name, "seq": self.submit_count},
            )
        return self.slot

    def collect(self) -> Any:
        """Read the result after completion (caller charges read cost)."""
        if self.slot.state != "completed":
            raise SimulationError(
                f"port {self.name}: collect() on a "
                f"{self.slot.state!r} slot"
            )
        result = self.slot.result
        self.slot.state = "idle"
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.event(
                self.sim.now,
                "rpc.collect",
                detail={"port": self.name, "seq": self.submit_count},
            )
        return result

    # -- server (RMM dedicated core) side ------------------------------------

    def complete(self, result: Any) -> None:
        """Publish the exit record and raise the CVM-exit notification
        (the RMM charges its write cost before calling this)."""
        if self.slot.state != "submitted":
            raise SimulationError(
                f"port {self.name}: complete() on a "
                f"{self.slot.state!r} slot (double completion?)"
            )
        delay_ns = 0
        if self.completion_fault is not None:
            delay_ns, result = self.completion_fault(self, result)
        if delay_ns > 0:
            # stalled completion: the exit record stays invisible to the
            # host until the (faulted) write lands
            self.sim.schedule(delay_ns, lambda: self._publish(result))
        else:
            self._publish(result)

    def _publish(self, result: Any) -> None:
        self.slot.state = "completed"
        self.slot.result = result
        self.slot.completed_at = self.sim.now
        self.complete_count += 1
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.event(
                self.sim.now,
                "rpc.complete",
                detail={"port": self.name, "seq": self.submit_count},
            )
        self._notify_exit(self)
