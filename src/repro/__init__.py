"""repro: a full-system simulation reproduction of "Sharing is leaking:
blocking transient-execution attacks with core-gapped confidential VMs"
(Castes & Baumann, ASPLOS 2024).

Subpackages
-----------
``repro.sim``          discrete-event kernel
``repro.hw``           simulated SoC (cores, caches, GIC, timers, memory)
                       + isolation-policy strategies (``repro.hw.policy``)
``repro.isa``          worlds, security domains, SMC cost model
``repro.costs``        calibrated primitive-cost model
``repro.rmm``          the security monitor, incl. core gapping
``repro.rpc``          shared-memory RPC transports
``repro.host``         Linux/KVM-like host: scheduler, hotplug, VMM, planner
``repro.guest``        guest vCPU runtime and workloads
``repro.security``     side channels, attacks, vulnerability catalog,
                       auditor, per-policy leakage probe
``repro.analysis``     statistics and report rendering
``repro.experiments``  one harness per paper table/figure (+ the
                       ``defenses`` policy-comparison sweep)
``repro.fleet``        declarative multi-server scenarios, open-loop
                       serving, per-server sharding (``repro.fleet.shard``),
                       elastic lifecycle: churn, autoscaling, rebalancing
                       (``repro.fleet.elastic``)
``repro.snap``         checkpoint/restore by deterministic re-execution
``repro.faults``       fault injection and chaos harnesses
``repro.obs``          traces, metrics, profiling, run reports
``repro.lint``         static invariant passes + runtime sanitizer
"""

__version__ = "1.0.0"

from .costs import CostModel, DEFAULT_COSTS

__all__ = ["CostModel", "DEFAULT_COSTS", "__version__"]
