"""repro: a full-system simulation reproduction of "Sharing is leaking:
blocking transient-execution attacks with core-gapped confidential VMs"
(Castes & Baumann, ASPLOS 2024).

Subpackages
-----------
``repro.sim``          discrete-event kernel
``repro.hw``           simulated SoC (cores, caches, GIC, timers, memory)
``repro.isa``          worlds, security domains, SMC cost model
``repro.rmm``          the security monitor, incl. core gapping
``repro.rpc``          shared-memory RPC transports
``repro.host``         Linux/KVM-like host: scheduler, hotplug, VMM, planner
``repro.guest``        guest vCPU runtime and workloads
``repro.security``     side channels, attacks, vulnerability catalog, auditor
``repro.analysis``     statistics and report rendering
``repro.experiments``  one harness per paper table/figure
``repro.fleet``        declarative multi-server scenarios, open-loop serving
"""

__version__ = "1.0.0"

from .costs import CostModel, DEFAULT_COSTS

__all__ = ["CostModel", "DEFAULT_COSTS", "__version__"]
