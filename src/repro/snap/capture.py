"""Canonical state capture: a running system -> a JSON-safe tree.

The capturer is *read-only*: it never mutates the objects it walks, so
a run that captures state at every checkpoint stays digest-identical
to one that never captures.  Restore correctness is then checked by
re-executing the recipe and comparing captures (see
:mod:`repro.snap.restore`) — the capture is the *witness* of state,
not the transport.  That sidesteps the one thing this simulator can
never serialize directly: live generator frames (every process body,
guest workload and planner thread is a suspended Python generator).
Generators are captured as ``(qualname, suspended line)`` descriptors,
which is exactly enough to detect divergence without pickling frames.

Canonicalization rules (deterministic by construction):

* scalars pass through; floats via ``repr`` (shortest round-trip);
* dicts are walked in sorted-key order, sets sorted canonically;
* registered classes (:data:`repro.snap.fields.SNAP_FIELDS`) capture
  their declared fields; dataclasses capture all declared fields;
* generators/callables become descriptors; ``random.Random`` becomes
  a hash of its Mersenne state (full 625-word position sensitivity);
* an object met twice becomes a ``<ref:Class>`` marker — captures are
  trees even though the object graph is cyclic.
"""

from __future__ import annotations

import functools
import hashlib
import json
from dataclasses import fields as dataclass_fields, is_dataclass
from enum import Enum
from random import Random
from typing import Any, Callable, Dict, List, Optional, Set

from .fields import SNAP_FIELDS, CaptureSpec

__all__ = [
    "canon",
    "capture_object",
    "capture_system",
    "capture_digest",
    "diff_captures",
]


def _sha16(payload: str) -> str:
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:16]


def _spec_for(obj: Any) -> Optional[CaptureSpec]:
    for klass in type(obj).__mro__:
        key = f"{klass.__module__}:{klass.__qualname__}"
        spec = SNAP_FIELDS.get(key)
        if spec is not None:
            return spec
    return None


def _describe_callable(value: Callable) -> str:
    if isinstance(value, functools.partial):
        return f"partial:{_describe_callable(value.func)}"
    name = getattr(value, "__qualname__", None)
    if name is None:
        name = type(value).__qualname__
    return f"fn:{name}"


def _describe_generator(gen: Any) -> str:
    code = gen.gi_code
    name = getattr(code, "co_qualname", None) or code.co_name
    frame = gen.gi_frame
    where = "done" if frame is None else str(frame.f_lineno)
    return f"gen:{name}@{where}"


# -- per-field summarizers ----------------------------------------------
# Most fields canonicalize generically; these few would bloat captures
# (full trace record lists) or need a stable ordering the raw container
# does not promise (the binary heap's array layout).


def _sum_heap(heap: List, seen: Set[int]) -> List:
    # heapq's internal array layout is deterministic given the same
    # operation history, but sorting by the (when, key, seq) total order
    # is canonical and robust to layout-preserving refactors.
    entries = sorted(heap, key=lambda entry: entry[:3])
    return [
        [entry[0], entry[1], entry[2], canon(entry[3], seen)]
        for entry in entries
    ]


def _sum_buckets(buckets: List, seen: Set[int]) -> List:
    # the calendar ring partitions the same (when, key, seq) order the
    # heap holds; flattening and sorting yields the identical canonical
    # form, so calendar and heap captures of the same queue state agree
    entries = sorted(
        (entry for bucket in buckets for entry in bucket),
        key=lambda entry: entry[:3],
    )
    return [
        [entry[0], entry[1], entry[2], canon(entry[3], seen)]
        for entry in entries
    ]


def _sum_now_q(now_q: Any, seen: Set[int]) -> List:
    # deque of bare timers at the current instant; append order is
    # sequence order, which is already canonical
    return [canon(timer, seen) for timer in now_q]


def _sum_trace_lines(lines: List[str]) -> Dict[str, Any]:
    return {"n": len(lines), "sha": _sha16("\n".join(lines))}


def _sum_records(records: List, seen: Set[int]) -> Dict[str, Any]:
    return _sum_trace_lines(
        [
            f"{r.time}|{r.kind}|{r.core}|{r.domain}|{r.detail}"
            for r in records
        ]
    )


def _sum_spans(spans: List, seen: Set[int]) -> Dict[str, Any]:
    return _sum_trace_lines(
        [f"{s.core}|{s.domain}|{s.start}|{s.end}" for s in spans]
    )


def _sum_samples(samples: Dict, seen: Set[int]) -> Dict[str, Any]:
    return {
        str(name): _sum_trace_lines([str(v) for v in values])
        for name, values in sorted(samples.items())
    }


_SUMMARIZERS: Dict[str, Callable[[Any, Set[int]], Any]] = {
    "repro.sim.engine:Simulator._heap": _sum_heap,
    "repro.sim.engine:Simulator._buckets": _sum_buckets,
    "repro.sim.engine:Simulator._now_q": _sum_now_q,
    "repro.sim.trace:Tracer.records": _sum_records,
    "repro.sim.trace:Tracer.spans": _sum_spans,
    "repro.sim.trace:Tracer._samples": _sum_samples,
}


# -- canonicalizer ------------------------------------------------------


def canon(value: Any, seen: Optional[Set[int]] = None) -> Any:
    """Deterministic JSON-safe canonical form of ``value``."""
    if seen is None:
        seen = set()
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return f"f:{value!r}"
    if isinstance(value, (bytes, bytearray)):
        return f"bytes:{hashlib.sha256(bytes(value)).hexdigest()[:16]}"
    if isinstance(value, Enum):
        return f"{type(value).__qualname__}.{value.name}"
    if isinstance(value, Random):
        return f"rng:{_sha16(repr(value.getstate()))}"
    if isinstance(value, dict):
        out = {}
        for key in sorted(value, key=lambda k: str(canon(k))):
            out[str(canon(key))] = canon(value[key], seen)
        return out
    if isinstance(value, (list, tuple)) or type(value).__name__ == "deque":
        return [canon(item, seen) for item in value]
    if isinstance(value, (set, frozenset)):
        return sorted(
            (canon(item) for item in value), key=lambda c: str(c)
        )
    if hasattr(value, "gi_code"):
        return _describe_generator(value)
    if callable(value) and not isinstance(value, type):
        return _describe_callable(value)
    if isinstance(value, type):
        return f"type:{value.__qualname__}"

    # object graph: registered classes and dataclasses recurse (once)
    spec = _spec_for(value)
    if spec is not None:
        if id(value) in seen:
            return f"<ref:{type(value).__qualname__}>"
        seen.add(id(value))
        return capture_object(value, spec=spec, seen=seen)
    if is_dataclass(value):
        if id(value) in seen:
            return f"<ref:{type(value).__qualname__}>"
        seen.add(id(value))
        out = {"__class__": type(value).__qualname__}
        for f in dataclass_fields(value):
            out[f.name] = canon(getattr(value, f.name), seen)
        return out
    name = getattr(value, "name", None)
    if isinstance(name, str):
        return f"<{type(value).__qualname__}:{name}>"
    return f"<{type(value).__qualname__}>"


def capture_object(
    obj: Any,
    spec: Optional[CaptureSpec] = None,
    seen: Optional[Set[int]] = None,
) -> Dict[str, Any]:
    """Capture one registered object's declared fields."""
    if spec is None:
        spec = _spec_for(obj)
        if spec is None:
            raise KeyError(
                f"{type(obj).__module__}:{type(obj).__qualname__} is not "
                "registered in repro.snap.fields.SNAP_FIELDS"
            )
    if seen is None:
        seen = {id(obj)}
    else:
        seen.add(id(obj))
    key = f"{type(obj).__module__}:{type(obj).__qualname__}"
    out: Dict[str, Any] = {"__class__": type(obj).__qualname__}
    for name in spec.fields:
        summarize = _SUMMARIZERS.get(f"{key}.{name}")
        raw = getattr(obj, name)
        out[name] = (
            summarize(raw, seen) if summarize else canon(raw, seen)
        )
    return out


def capture_system(system: Any, extra: Optional[Dict[str, Any]] = None) -> Dict[str, Any]:
    """Full canonical capture of a :class:`System` (plus fleet extras).

    ``extra`` lets composition layers attach state the System does not
    own — the fleet supervisor passes its tenants' ``OpenLoopClient``
    accounting here, so checkpoints cover SLO state too.
    """
    capture: Dict[str, Any] = {"system": capture_object(system)}
    if extra:
        capture["extra"] = {
            str(key): canon(value) for key, value in sorted(extra.items())
        }
    return capture


def capture_digest(capture: Dict[str, Any]) -> str:
    """sha256 over the canonical JSON encoding of a capture."""
    payload = json.dumps(
        capture, sort_keys=True, separators=(",", ":"), ensure_ascii=True
    )
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


def diff_captures(
    a: Any, b: Any, path: str = "", limit: int = 20
) -> List[str]:
    """Human-readable field-level divergences between two captures."""
    diffs: List[str] = []

    def walk(x: Any, y: Any, where: str) -> None:
        if len(diffs) >= limit:
            return
        if type(x) is not type(y):
            diffs.append(f"{where}: type {type(x).__name__} != {type(y).__name__}")
            return
        if isinstance(x, dict):
            for key in sorted(set(x) | set(y)):
                if key not in x:
                    diffs.append(f"{where}.{key}: only in restored")
                elif key not in y:
                    diffs.append(f"{where}.{key}: only in original")
                else:
                    walk(x[key], y[key], f"{where}.{key}")
                if len(diffs) >= limit:
                    return
        elif isinstance(x, list):
            if len(x) != len(y):
                diffs.append(f"{where}: length {len(x)} != {len(y)}")
                return
            for index, (xi, yi) in enumerate(zip(x, y)):
                walk(xi, yi, f"{where}[{index}]")
                if len(diffs) >= limit:
                    return
        elif x != y:
            diffs.append(f"{where}: {x!r} != {y!r}")

    walk(a, b, path or "capture")
    return diffs
