"""O(1) in-memory forking of a booted system via ``os.fork``.

Checkpoint-by-re-execution (:mod:`repro.snap.restore`) replays boot to
reach a state; for sweep fan-out that cost is pure waste — N variants
of one booted rack re-boot N times.  ``fork_map`` instead forks the
*process*: each child inherits the entire live object graph (suspended
generators included — the one thing no serializer can carry) for the
price of a page-table copy, runs its variant, and ships the picklable
result back over a pipe.  The parent's system is never touched, so one
boot fans out into any number of divergent futures.

Children run serially (deterministic, and honest on 1-CPU CI boxes);
the speedup comes from skipping N-1 boots, not from parallelism —
``benchmarks/test_perf_baseline.py`` records it.  On platforms without
``os.fork`` (Windows), callers fall back to re-booting; ``can_fork``
is the gate.
"""

from __future__ import annotations

import os
import pickle
from typing import Any, Callable, List, Sequence

from .format import SnapshotError

__all__ = ["can_fork", "fork_map", "ForkError"]


class ForkError(SnapshotError):
    """A forked child died or returned an unreadable result."""


def can_fork() -> bool:
    return hasattr(os, "fork")


def _run_child(write_fd: int, fn: Callable[[Any], Any], variant: Any) -> None:
    """Child side: run the variant, ship the pickled result, _exit.

    ``os._exit`` (not ``sys.exit``) so the child never runs the
    parent's atexit hooks, pytest teardown, or buffered-IO flushes —
    it shares all of them with the parent and must touch none.
    """
    status = 1
    try:
        try:
            payload = pickle.dumps(
                ("ok", fn(variant)), protocol=pickle.HIGHEST_PROTOCOL
            )
        except BaseException as exc:  # ship the failure, don't vanish
            payload = pickle.dumps(
                ("err", f"{type(exc).__name__}: {exc}"),
                protocol=pickle.HIGHEST_PROTOCOL,
            )
        with os.fdopen(write_fd, "wb") as pipe:
            pipe.write(len(payload).to_bytes(8, "big"))
            pipe.write(payload)
        status = 0
    finally:
        os._exit(status)


def fork_map(
    variants: Sequence[Any], fn: Callable[[Any], Any]
) -> List[Any]:
    """Run ``fn(variant)`` in a forked copy of this process, per variant.

    Every child starts from the *same* parent memory image (the booted
    system as it is right now), so each call explores an independent
    future of one boot.  Results must pickle (pure-data results like
    ``TenantResult`` do; live systems do not — return extracted data).
    A child that fails re-raises here as :class:`ForkError`.
    """
    if not can_fork():
        raise ForkError(
            "os.fork is unavailable on this platform; re-boot per "
            "variant instead (see examples/snapshot_fork.py)"
        )
    results: List[Any] = []
    for index, variant in enumerate(variants):
        read_fd, write_fd = os.pipe()
        pid = os.fork()
        if pid == 0:
            os.close(read_fd)
            _run_child(write_fd, fn, variant)  # never returns
        os.close(write_fd)
        with os.fdopen(read_fd, "rb") as pipe:
            header = pipe.read(8)
            payload = b""
            if len(header) == 8:
                want = int.from_bytes(header, "big")
                payload = pipe.read(want)
        _, raw_status = os.waitpid(pid, 0)
        if not payload:
            raise ForkError(
                f"forked variant #{index} died without a result "
                f"(wait status {raw_status})"
            )
        status, value = pickle.loads(payload)
        if status != "ok":
            raise ForkError(f"forked variant #{index} failed: {value}")
        results.append(value)
    return results
