"""The versioned snapshot format.

A :class:`Snapshot` is a *recipe plus witness*: the deterministic
build/advance procedure that reaches the captured point, the simulated
time it was taken at, the canonical state capture, and a digest over
the capture.  Restore re-executes the recipe and verifies the rebuilt
state against the witness field-by-field — so a snapshot can never
silently restore to a different state than it saved
(:class:`SnapshotDriftError` carries the exact diverging fields).

The capture/metadata half round-trips through JSON
(:meth:`Snapshot.to_json` / :meth:`Snapshot.from_json`) for archival
and cross-process transfer; the recipe half is a pair of callables and
stays in-memory (a JSON-loaded snapshot must be given its recipe back
before it can restore).
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from ..sim.engine import SimulationError

__all__ = [
    "SNAP_FORMAT_VERSION",
    "Recipe",
    "Snapshot",
    "SnapshotError",
    "SnapshotDriftError",
]

#: bump when the capture shape changes incompatibly; ``from_json``
#: refuses snapshots from a different format generation
SNAP_FORMAT_VERSION = 1


class SnapshotError(SimulationError):
    """Malformed snapshot, version mismatch, or restore misuse."""


class SnapshotDriftError(SnapshotError):
    """Restore reached ``taken_at_ns`` but the rebuilt state differs."""

    def __init__(self, label: str, divergences: List[str]):
        self.divergences = divergences
        shown = "; ".join(divergences[:5])
        more = len(divergences) - min(len(divergences), 5)
        suffix = f" (+{more} more)" if more > 0 else ""
        super().__init__(
            f"snapshot {label!r} drifted on restore: {shown}{suffix}"
        )


@dataclass(frozen=True)
class Recipe:
    """The deterministic path to a snapshot's capture point.

    ``build`` re-creates the system exactly as the original run did
    (same spec, same seed, same fault plan, same hardening) and returns
    it; ``advance`` runs it to an absolute simulated time.  The default
    advance is the engine's own ``sim.run(until=t)``, which is
    bit-identical whether time is covered in one call or many — the
    property checkpointing leans on.
    """

    build: Callable[[], Any]
    advance: Optional[Callable[[Any, int], None]] = None

    def advance_to(self, system: Any, until_ns: int) -> None:
        if self.advance is not None:
            self.advance(system, until_ns)
        else:
            system.sim.run(until=until_ns)


@dataclass(frozen=True)
class Snapshot:
    """One captured instant of a running system."""

    version: int
    label: str
    taken_at_ns: int
    capture: Dict[str, Any]
    digest: str
    recipe: Optional[Recipe] = field(default=None, compare=False, repr=False)

    def to_json(self) -> str:
        return json.dumps(
            {
                "version": self.version,
                "label": self.label,
                "taken_at_ns": self.taken_at_ns,
                "digest": self.digest,
                "capture": self.capture,
            },
            sort_keys=True,
        )

    @classmethod
    def from_json(cls, payload: str, recipe: Optional[Recipe] = None) -> "Snapshot":
        try:
            data = json.loads(payload)
        except json.JSONDecodeError as exc:
            raise SnapshotError(f"unparseable snapshot payload: {exc}")
        version = data.get("version")
        if version != SNAP_FORMAT_VERSION:
            raise SnapshotError(
                f"snapshot format version {version!r} != "
                f"{SNAP_FORMAT_VERSION} (this build)"
            )
        return cls(
            version=version,
            label=data["label"],
            taken_at_ns=data["taken_at_ns"],
            capture=data["capture"],
            digest=data["digest"],
            recipe=recipe,
        )

    def with_recipe(self, recipe: Recipe) -> "Snapshot":
        return Snapshot(
            version=self.version,
            label=self.label,
            taken_at_ns=self.taken_at_ns,
            capture=self.capture,
            digest=self.digest,
            recipe=recipe,
        )
