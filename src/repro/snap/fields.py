"""The snapshot coverage registry: which attributes of which classes
constitute a :class:`~repro.experiments.system.System`'s live state.

Every hand-written stateful class in the tree is registered here with
an explicit verdict for each of its instance attributes: either the
attribute is part of the captured state (``fields``) or it is excluded
with a stated reason (``exclude``).  Dataclasses need no entry — the
capturer walks their declared fields automatically — but may register
one to pin their coverage (``TenantStats`` does).

The registry is deliberately pure data (strings only, no imports from
the rest of the tree) so the ``snapcov`` lint pass can load it without
importing the simulator.  The SNAP001/SNAP002 rules cross-check each
entry against the class's source: a new ``self.x`` assignment with no
registry verdict is SNAP001; a registered name no longer assigned by
the class is SNAP002.  That pairing is what keeps the snapshot format
from rotting silently as later PRs touch the engine.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Dict, Mapping, Tuple

__all__ = ["CaptureSpec", "SNAP_FIELDS", "registry_digest"]

# Shared exclusion reasons (kept as constants so entries stay terse and
# reviews can grep for each policy).
WIRING = "wiring backref; captured via its own registry entry"
ALIAS = "alias of machine.sim/machine.tracer; captured via Machine"
STATIC = "static configuration/calibration; rebuilt by the recipe"
HOOK = "fault-injection hook; reattached by the builder, not state"
OBSERVER = "wall-clock observer; never part of replayable state"
DERIVED = "derived from another captured field at construction"
GLOBAL = "process-global allocator; normalized out of captures"


@dataclass(frozen=True)
class CaptureSpec:
    """Coverage verdicts for one registered class."""

    fields: Tuple[str, ...]
    exclude: Mapping[str, str] = field(default_factory=dict)

    def covered(self, name: str) -> bool:
        return name in self.fields or name in self.exclude


def _spec(*fields: str, **exclude: str) -> CaptureSpec:
    return CaptureSpec(fields=tuple(fields), exclude=dict(exclude))


#: ``"module:ClassName" -> CaptureSpec`` for every registered class.
SNAP_FIELDS: Dict[str, CaptureSpec] = {
    # -- simulation kernel ---------------------------------------------
    "repro.sim.engine:Simulator": _spec(
        "now",
        "tie_break",
        "scheduler",
        "_heap",
        "_buckets",
        "_now_q",
        "_bucket_base",
        "_bucket_width",
        "_cb",
        "_ci",
        "_rebase_seq",
        "_seq",
        "_live",
        "_stale",
        "_live_processes",
        _fifo=DERIVED,
        _tie_key=DERIVED,
        _calendar=DERIVED,
        _bucket_span=DERIVED,
        _profiler=OBSERVER,
    ),
    "repro.sim.engine:Event": _spec(
        "name",
        "fired",
        "value",
        "_waiters",
    ),
    "repro.sim.engine:Process": _spec(
        "name",
        "body",
        "done",
        "result",
        "failed",
        "_finished",
        sim=WIRING,
    ),
    "repro.sim.engine:_Timer": _spec(
        "when",
        "callback",
        "proc",
        "value",
        "anyof",
        "_cancelled",
        "_in_heap",
        cancelled="property alias of _cancelled",
        _sim=WIRING,
    ),
    "repro.sim.engine:Wakeup": _spec("index", "source", "value"),
    "repro.sim.engine:Delay": _spec("ns"),
    "repro.sim.rng:RngFactory": _spec("seed", "_streams"),
    "repro.sim.trace:Tracer": _spec(
        "enabled",
        "records",
        "spans",
        "counters",
        "gauges",
        "tenure_cuts",
        "_open_spans",
        "_samples",
    ),
    "repro.sim.sync:Notify": _spec(
        "name", "_pending", "_waiters", "signal_count"
    ),
    "repro.sim.sync:Channel": _spec(
        "name",
        "capacity",
        "_items",
        "_getters",
        "_putters",
        "put_count",
        "get_count",
    ),
    "repro.sim.sync:Mutex": _spec("name", "_locked", "_waiters"),
    "repro.sim.sync:CountingSemaphore": _spec("name", "_count", "_waiters"),
    "repro.sim.timeout:RetryPolicy": _spec(
        "first_timeout_ns",
        "max_retries",
        "max_timeout_ns",
        "jitter",
        rng="stream position captured via RngFactory._streams",
    ),
    # -- hardware ------------------------------------------------------
    "repro.hw.machine:Machine": _spec(
        "topology",
        "sim",
        "tracer",
        "rng",
        "gic",
        "timers",
        "llc",
        "memory",
        "cores",
        "coalesce_compute",
        pollution_costs=STATIC,
        coalesce_inhibit=HOOK,
    ),
    "repro.hw.core:PhysicalCore": _spec(
        "index",
        "online",
        "world",
        "current_domain",
        "busy_ns",
        "uarch",
        "pollution",
        "_active_span",
        machine=WIRING,
        sim=WIRING,
        tracer=WIRING,
        irq="captured via Machine.gic core interfaces",
        timer="captured via Machine.timers",
    ),
    "repro.hw.uarch:CoreUarchState": _spec(
        "core_index",
        "l1d",
        "l1i",
        "l2",
        "tlb",
        "branch",
        "store_buffer",
        "flush_count",
    ),
    "repro.hw.uarch:StoreBuffer": _spec("capacity", "_entries"),
    "repro.hw.uarch:PollutionModel": _spec(
        "_pending",
        "_last_domain",
        "total_penalty_paid",
        costs=STATIC,
    ),
    "repro.hw.cache:SetAssociativeCache": _spec(
        "geometry", "_sets", "_tick", "hits", "misses"
    ),
    "repro.hw.tlb:Tlb": _spec(
        "name", "capacity", "_entries", "_tick", "hits", "misses"
    ),
    "repro.hw.branch:BranchPredictor": _spec(
        "btb_size",
        "history_bits",
        "history",
        "_btb",
        "_history_domain",
        "mispredicts",
        "train_count",
    ),
    "repro.hw.gic:Gic": _spec(
        "wire_delay_ns",
        "cores",
        "_spi_routes",
        "_next_flow",
        "sgi_sent",
        "spi_raised",
        sim=WIRING,
        tracer=WIRING,
        sgi_fault_hook=HOOK,
    ),
    "repro.hw.gic:CoreInterruptInterface": _spec(
        "core_index",
        "doorbell",
        "list_registers",
        "_pending",
        "received_count",
    ),
    "repro.hw.timer:CoreTimer": _spec(
        "core_index",
        "deadline",
        "fire_count",
        "_armed_timer",
        gic=WIRING,
        sim=WIRING,
    ),
    "repro.hw.memory:PhysicalMemory": _spec(
        "size_bytes",
        "n_granules",
        "_gpt",
        "_content",
        "gpt_checks",
        "gpt_faults",
    ),
    # -- monitor -------------------------------------------------------
    "repro.rmm.monitor:Rmm": _spec(
        "_next_realm_id",
        "_next_vmid",
        "delegated_intids",
        "granules",
        "realms",
        "rmi_counts",
        "image",
        "root_of_trust",
        machine=WIRING,
        costs=STATIC,
    ),
    "repro.rmm.granule:GranuleTracker": _spec(
        "_granules",
        "delegate_count",
        "undelegate_count",
        memory="enforcement mechanism; captured via Machine.memory",
    ),
    "repro.rmm.realm:Realm": _spec(
        "realm_id",
        "vmid",
        "rd_granule",
        "state",
        "rtt",
        "recs",
        "domain",
        "measurement",
        granules="shared GranuleTracker; captured via Rmm.granules",
    ),
    "repro.rmm.rtt:RealmTranslationTable": _spec(
        "realm_id",
        "map_count",
        "unmap_count",
        "_tables",
        "_leaves",
        granules="shared GranuleTracker; captured via Rmm.granules",
    ),
    "repro.rmm.interrupts:VirtualGic": _spec(
        "delegated",
        "lrs",
        "injected_by_rmm",
        "injected_by_host",
        "overflow_drops",
    ),
    "repro.rmm.core_gap:DedicatedCore": _spec(
        "guest_domain",
        "bound_rec",
        "inbox",
        "runs_handled",
        "rmi_handled",
        "failed",
        "released",
        "fail_after_runs",
        core="captured via Machine.cores",
        engine=WIRING,
        rmm=WIRING,
        sim=WIRING,
        tracer=WIRING,
        costs=STATIC,
    ),
    "repro.rmm.core_gap:CoreGapEngine": _spec(
        "dedicated",
        machine=WIRING,
        rmm=WIRING,
        tracer=WIRING,
        costs=STATIC,
        policy=STATIC,
    ),
    "repro.rmm.attestation:PlatformRootOfTrust": _spec(
        "platform_id", "_key"
    ),
    # -- host ----------------------------------------------------------
    "repro.host.kernel:HostKernel": _spec(
        "threads",
        "current",
        "work",
        "_fair",
        "_fifo",
        "_parked",
        "_started",
        "_dispatched_at",
        "irq_handlers",
        "fault_hooks",
        machine=WIRING,
        sim=WIRING,
        tracer=WIRING,
        costs=STATIC,
    ),
    "repro.host.threads:HostThread": _spec(
        "name",
        "body",
        "sched_class",
        "affinity",
        "state",
        "last_core",
        "cpu_ns",
        "per_cpu",
        "pending_action",
        "send_value",
        "result",
        "done_event",
        tid=GLOBAL,
    ),
    "repro.host.kvm:KvmVm": _spec(
        "vm",
        "mode",
        "realm_id",
        "busywait",
        "host_cores",
        "planned_cores",
        "threads",
        "ports",
        "done_event",
        "finished_vcpus",
        "run_errors",
        "run_retries",
        "run_self_claims",
        "run_wait_retry",
        "_injections",
        "_mmio_data",
        "_pause_requests",
        "_wfi_events",
        kernel=WIRING,
        machine=WIRING,
        sim=WIRING,
        tracer=WIRING,
        engine=WIRING,
        policy=STATIC,
        notifier=WIRING,
        costs=STATIC,
    ),
    "repro.host.planner:CorePlanner": _spec(
        "host_cores",
        "allocations",
        "parked",
        "hotplug",
        "sync_port",
        "sync_timeout_ns",
        "_next_granule",
        kernel=WIRING,
        engine=WIRING,
        machine=WIRING,
        notifier=WIRING,
        costs=STATIC,
    ),
    "repro.host.hotplug:HotplugController": _spec(
        "log",
        kernel=WIRING,
        costs=STATIC,
    ),
    "repro.host.wakeup:ExitNotifier": _spec(
        "target_core",
        "ports",
        "thread",
        "_doorbell",
        "activations",
        "ipis_received",
        "wakeups_performed",
        "watchdog_ns",
        "watchdog_polls",
        "watchdog_recoveries",
        kernel=WIRING,
        machine=WIRING,
        costs=STATIC,
        stall_hook=HOOK,
    ),
    "repro.host.virtio:VirtioBackend": _spec(
        "name",
        "device_kind",
        "intid",
        "echo_peer",
        "peer_latency_ns",
        "rx_queues",
        "requests_served",
        "thread",
        "_doorbell",
        "_jobs",
        kernel=WIRING,
        sim=WIRING,
        vm=WIRING,
        costs=STATIC,
        injector="bound KvmVm method; reattached by the builder",
        completion_fault_hook=HOOK,
    ),
    "repro.host.sriov:SriovNic": _spec(
        "name",
        "intid",
        "echo_peer",
        "peer_latency_ns",
        "rx_queues",
        "doorbells",
        "interrupts_raised",
        "_pending",
        kernel=WIRING,
        machine=WIRING,
        sim=WIRING,
        vm=WIRING,
        costs=STATIC,
        injector="bound KvmVm method; reattached by the builder",
    ),
    # -- RPC transport -------------------------------------------------
    "repro.rpc.ports:SyncRpcPort": _spec(
        "name",
        "call_count",
        sim=WIRING,
        tracer=WIRING,
    ),
    "repro.rpc.ports:AsyncRpcPort": _spec(
        "name",
        "slot",
        "submit_count",
        "complete_count",
        "_notify_exit",
        sim=WIRING,
        tracer=WIRING,
        completion_fault=HOOK,
    ),
    # -- guest ---------------------------------------------------------
    "repro.guest.vm:GuestVm": _spec(
        "name",
        "realm_id",
        "memory_gib",
        "domain",
        "devices",
        "vcpus",
        costs=STATIC,
    ),
    "repro.guest.vcpu:GuestVcpu": _spec(
        "index",
        "finished",
        "compute_ns_done",
        "io_events",
        "ipis_handled",
        "ticks_handled",
        "virqs_delivered",
        "pending_virqs",
        "enable_tick",
        "_io_consumed",
        "_workload",
        vm=WIRING,
        costs=STATIC,
        coalesce_allowed=HOOK,
    ),
    # -- composition roots ---------------------------------------------
    "repro.experiments.system:System": _spec(
        "config",
        "machine",
        "kernel",
        "rmm",
        "engine",
        "notifier",
        "planner",
        "host_cores",
        "kvms",
        "_next_spi",
        "_next_vm_serial",
        sim=ALIAS,
        tracer=ALIAS,
        costs=STATIC,
        policy=STATIC,
        metrics="typed view over Tracer counters/gauges; not state",
        _profiler=OBSERVER,
    ),
    "repro.fleet.traffic:TenantStats": _spec(
        "issued",
        "completed",
        "latencies_ns",
        "completed_at_ns",
        "slo_late",
        "started_at",
        "stopped_at",
        "finished_at",
    ),
    "repro.fleet.traffic:OpenLoopClient": _spec(
        "stats",
        "rng",
        "_slo_ns",
        "_mean_gap_ns",
        "_deadline",
        "_open",
        system=WIRING,
        tenant=STATIC,
        traffic=STATIC,
        device=WIRING,
        costs=STATIC,
        sim=WIRING,
    ),
    "repro.faults.injector:FaultInjector": _spec(
        "injected",
        "_counts",
        "_streams",
        plan=STATIC,
        sim=WIRING,
        tracer=WIRING,
        _gic=WIRING,
        _attached="attach-point bookkeeping for detach_all; not state",
    ),
}


def registry_digest() -> str:
    """Stable hash of the whole registry (salts the lint cache, so a
    coverage edit re-lints every registered class's file)."""
    parts = []
    for key in sorted(SNAP_FIELDS):
        spec = SNAP_FIELDS[key]
        parts.append(key)
        parts.extend(spec.fields)
        parts.extend(f"{k}={v}" for k, v in sorted(spec.exclude.items()))
    payload = "\n".join(parts).encode("utf-8")
    return hashlib.sha256(payload).hexdigest()[:16]
