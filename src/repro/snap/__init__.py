"""repro.snap — versioned checkpoint/restore of a running ``System``.

Three pieces (DESIGN.md §5.7):

* :mod:`repro.snap.capture` — a read-only canonical capture of the
  full live state (engine heap and timers, clock, RNG stream
  positions, per-core µarch and pollution state, RMM
  granule/RTT/realm tables and core-gap assignments, host
  planner/kvm/virtio queues, fleet SLO accounting), driven by the
  :data:`~repro.snap.fields.SNAP_FIELDS` coverage registry that the
  ``snapcov`` lint pass (SNAP001/SNAP002) keeps honest.
* :mod:`repro.snap.restore` — ``snapshot``/``restore`` built on
  deterministic re-execution, verified field-by-field against the
  stored capture (restores are bit-identical or they raise).
* :mod:`repro.snap.fork` — ``os.fork``-based O(1) forking of one
  booted system into N divergent futures, for sweeps and the
  snapshot-fork benchmark.
"""

from .capture import (
    canon,
    capture_digest,
    capture_object,
    capture_system,
    diff_captures,
)
from .fields import SNAP_FIELDS, CaptureSpec, registry_digest
from .fork import ForkError, can_fork, fork_map
from .format import (
    SNAP_FORMAT_VERSION,
    Recipe,
    Snapshot,
    SnapshotDriftError,
    SnapshotError,
)
from .restore import restore, snapshot

__all__ = [
    "SNAP_FORMAT_VERSION",
    "SNAP_FIELDS",
    "CaptureSpec",
    "Recipe",
    "Snapshot",
    "SnapshotError",
    "SnapshotDriftError",
    "ForkError",
    "canon",
    "capture_object",
    "capture_system",
    "capture_digest",
    "diff_captures",
    "registry_digest",
    "snapshot",
    "restore",
    "can_fork",
    "fork_map",
]
