"""``snapshot(system) -> Snapshot`` and ``restore(Snapshot) -> System``.

Restore is checkpoint-by-deterministic-re-execution: the recipe
rebuilds the system from its spec and seed, advances the engine to the
snapshot's simulated time, and the rebuilt state is verified
field-by-field against the stored capture.  The engine's chunked-run
equivalence (``run(until=t1); run(until=t2)`` == ``run(until=t2)``)
makes the replayed timeline bit-identical to the original — which is
what lets the sanitizer digest machinery pin restore correctness
end-to-end (tests/snap/).
"""

from __future__ import annotations

from typing import Any, Dict, Optional

from .capture import capture_digest, capture_system, diff_captures
from .format import (
    SNAP_FORMAT_VERSION,
    Recipe,
    Snapshot,
    SnapshotDriftError,
    SnapshotError,
)

__all__ = ["snapshot", "restore"]


def snapshot(
    system: Any,
    recipe: Optional[Recipe] = None,
    label: str = "",
    extra: Optional[Dict[str, Any]] = None,
) -> Snapshot:
    """Capture ``system``'s full live state at the current instant.

    Capturing is read-only: the run that continues after this call is
    digest-identical to one that never snapshotted.  ``recipe`` may be
    omitted for witness-only snapshots (drift detection, archival);
    restoring requires one.
    """
    capture = capture_system(system, extra=extra)
    return Snapshot(
        version=SNAP_FORMAT_VERSION,
        label=label or f"t={system.sim.now}",
        taken_at_ns=system.sim.now,
        capture=capture,
        digest=capture_digest(capture),
        recipe=recipe,
    )


def restore(
    snap: Snapshot,
    verify: bool = True,
    extra_fn: Optional[Any] = None,
) -> Any:
    """Rebuild a system in the exact state ``snap`` captured.

    ``extra_fn(system)`` must return the same ``extra`` mapping shape
    the snapshot was taken with (the fleet supervisor passes its
    rebuilt clients); verification covers it too.  With ``verify`` the
    rebuilt state is re-captured and compared field-by-field — a
    mismatch raises :class:`SnapshotDriftError` naming the diverging
    fields rather than letting a wrong state continue silently.
    """
    if snap.recipe is None:
        raise SnapshotError(
            f"snapshot {snap.label!r} has no recipe attached; rebuild "
            "requires one (Snapshot.with_recipe)"
        )
    if snap.version != SNAP_FORMAT_VERSION:
        raise SnapshotError(
            f"snapshot format version {snap.version} != "
            f"{SNAP_FORMAT_VERSION} (this build)"
        )
    system = snap.recipe.build()
    if system.sim.now > snap.taken_at_ns:
        raise SnapshotError(
            f"recipe build ends at t={system.sim.now} past the snapshot "
            f"instant t={snap.taken_at_ns}; the recipe must rebuild, "
            "not overshoot"
        )
    if system.sim.now < snap.taken_at_ns:
        snap.recipe.advance_to(system, snap.taken_at_ns)
    if system.sim.now != snap.taken_at_ns:
        raise SnapshotError(
            f"recipe advanced to t={system.sim.now}, not the snapshot "
            f"instant t={snap.taken_at_ns}"
        )
    if verify:
        extra = extra_fn(system) if extra_fn is not None else None
        rebuilt = capture_system(system, extra=extra)
        if capture_digest(rebuilt) != snap.digest:
            raise SnapshotDriftError(
                snap.label, diff_captures(rebuilt, snap.capture)
            )
    return system
