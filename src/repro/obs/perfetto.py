"""Chrome trace-event / Perfetto JSON exporter for simulated schedules.

Turns one :class:`~repro.sim.trace.Tracer` into a ``chrome://tracing``-
/ `ui.perfetto.dev <https://ui.perfetto.dev>`_-loadable JSON object:

===================  =====================================================
trace source          Perfetto representation
===================  =====================================================
execution spans       ``X`` (complete) slices, one thread track per
                      physical core under the "cores" process
``sgi.send/recv``     instants plus an ``s``→``f`` flow arrow from the
                      GIC wire slice to the receiving core's track
                      (cross-core notifications become visible arrows)
``rpc.submit/..``     async ``b``/``n``/``e`` events, one track per
                      RPC port under the "transport" process
``exit`` records      instants on the exiting core's track
``fault.inject``      instants on the "faults" track
other records         instants on the "events" track
counters/gauges       carried in ``otherData`` (not on the timeline)
===================  =====================================================

Timestamps convert from the integer-ns simulated clock to the format's
microseconds (``ts = time / 1000``); ``displayTimeUnit`` is ns.

Usage::

    from repro.obs.perfetto import export_trace, write_trace

    trace = export_trace(system.tracer, label="fig6/gapped/8")
    write_trace(system.tracer, "fig6_cell.trace.json")
    # then open the file in chrome://tracing or ui.perfetto.dev
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Tuple

from ..sim.trace import Tracer

__all__ = [
    "export_trace",
    "write_trace",
    "validate_trace",
    "trace_summary",
]

#: process ids (Perfetto groups thread tracks by process)
PID_CORES = 0
PID_TRANSPORT = 1
PID_EVENTS = 2

#: fixed thread ids under the "events" process
TID_GIC = 0
TID_FAULTS = 1
TID_MISC = 2

_VALID_PHASES = {"X", "i", "I", "b", "n", "e", "s", "t", "f", "M", "C"}


def _us(time_ns: int) -> float:
    return time_ns / 1000.0


def _meta(pid: int, name: str, tid: Optional[int] = None) -> Dict[str, Any]:
    event: Dict[str, Any] = {
        "ph": "M",
        "pid": pid,
        "name": "process_name" if tid is None else "thread_name",
        "args": {"name": name},
    }
    if tid is not None:
        event["tid"] = tid
    return event


def _detail_args(detail: Any) -> Dict[str, Any]:
    if isinstance(detail, dict):
        return dict(detail)
    if detail is None:
        return {}
    return {"detail": str(detail)}


def export_trace(tracer: Tracer, label: str = "repro") -> Dict[str, Any]:
    """Render ``tracer`` as a Chrome trace-event JSON object (a dict)."""
    events: List[Dict[str, Any]] = []

    # -- track naming metadata ----------------------------------------
    cores = sorted(
        {span.core for span in tracer.spans}
        | {r.core for r in tracer.records if r.core is not None}
    )
    events.append(_meta(PID_CORES, f"{label}: cores"))
    for core in cores:
        events.append(_meta(PID_CORES, f"core {core}", tid=core))
    events.append(_meta(PID_EVENTS, f"{label}: events"))
    events.append(_meta(PID_EVENTS, "gic", tid=TID_GIC))
    events.append(_meta(PID_EVENTS, "faults", tid=TID_FAULTS))
    events.append(_meta(PID_EVENTS, "misc", tid=TID_MISC))

    # -- execution spans: one X slice per contiguous occupancy --------
    for span in tracer.spans:
        events.append(
            {
                "ph": "X",
                "name": span.domain,
                "cat": "exec",
                "pid": PID_CORES,
                "tid": span.core,
                "ts": _us(span.start),
                "dur": _us(span.end - span.start),
            }
        )

    # -- pair SGI flows (send -> recv by flow id) ---------------------
    sgi_sends: Dict[int, Any] = {}
    sgi_recvs: Dict[int, Any] = {}
    for record in tracer.records:
        if isinstance(record.detail, dict) and "flow" in record.detail:
            flow = record.detail["flow"]
            if record.kind == "sgi.send":
                sgi_sends[flow] = record
            elif record.kind == "sgi.recv":
                sgi_recvs[flow] = record

    # -- RPC port tracks ----------------------------------------------
    port_tids: Dict[str, int] = {}
    rpc_seq: Dict[str, int] = {}

    def port_tid(port: str) -> int:
        if port not in port_tids:
            tid = len(port_tids)
            port_tids[port] = tid
            events.append(_meta(PID_TRANSPORT, port, tid=tid))
        return port_tids[port]

    events.append(_meta(PID_TRANSPORT, f"{label}: transport"))

    # -- records, in trace order --------------------------------------
    for record in tracer.records:
        args = _detail_args(record.detail)
        if record.domain is not None:
            args.setdefault("domain", record.domain)
        if record.kind == "sgi.send":
            flow = args.get("flow")
            target = args.get("target")
            name = f"sgi{args.get('intid')}→core{target}"
            recv = sgi_recvs.get(flow)
            if recv is not None:
                # the wire in flight: a slice on the gic track carrying
                # the flow start, so the arrow has a slice to leave from
                events.append(
                    {
                        "ph": "X",
                        "name": name,
                        "cat": "ipi",
                        "pid": PID_EVENTS,
                        "tid": TID_GIC,
                        "ts": _us(record.time),
                        "dur": _us(recv.time - record.time),
                        "args": args,
                    }
                )
                events.append(
                    {
                        "ph": "s",
                        "name": "sgi",
                        "cat": "ipi",
                        "id": flow,
                        "pid": PID_EVENTS,
                        "tid": TID_GIC,
                        "ts": _us(record.time),
                    }
                )
            else:
                events.append(
                    {
                        "ph": "i",
                        "name": name,
                        "cat": "ipi",
                        "s": "g",
                        "pid": PID_EVENTS,
                        "tid": TID_GIC,
                        "ts": _us(record.time),
                        "args": args,
                    }
                )
        elif record.kind == "sgi.recv":
            flow = args.get("flow")
            core = record.core if record.core is not None else TID_MISC
            pid = PID_CORES if record.core is not None else PID_EVENTS
            events.append(
                {
                    "ph": "i",
                    "name": f"sgi{args.get('intid')}",
                    "cat": "ipi",
                    "s": "t",
                    "pid": pid,
                    "tid": core,
                    "ts": _us(record.time),
                    "args": args,
                }
            )
            if flow in sgi_sends:
                events.append(
                    {
                        "ph": "f",
                        "bp": "e",
                        "name": "sgi",
                        "cat": "ipi",
                        "id": flow,
                        "pid": pid,
                        "tid": core,
                        "ts": _us(record.time),
                    }
                )
        elif record.kind in ("rpc.submit", "rpc.complete", "rpc.collect"):
            port = args.get("port", record.domain or "rpc")
            tid = port_tid(port)
            if record.kind == "rpc.submit":
                rpc_seq[port] = rpc_seq.get(port, 0) + 1
            call_id = f"{port}#{rpc_seq.get(port, 0)}"
            phase = {
                "rpc.submit": "b",
                "rpc.complete": "n",
                "rpc.collect": "e",
            }[record.kind]
            events.append(
                {
                    "ph": phase,
                    "name": "run-call",
                    "cat": "rpc",
                    "id": call_id,
                    "pid": PID_TRANSPORT,
                    "tid": tid,
                    "ts": _us(record.time),
                    "args": args,
                }
            )
        elif record.kind == "exit":
            core = record.core if record.core is not None else TID_MISC
            pid = PID_CORES if record.core is not None else PID_EVENTS
            events.append(
                {
                    "ph": "i",
                    "name": f"exit:{args.get('detail', '?')}",
                    "cat": "exit",
                    "s": "t",
                    "pid": pid,
                    "tid": core,
                    "ts": _us(record.time),
                    "args": args,
                }
            )
        elif record.kind == "fault.inject":
            events.append(
                {
                    "ph": "i",
                    "name": f"fault:{args.get('detail', '?')}",
                    "cat": "fault",
                    "s": "g",
                    "pid": PID_EVENTS,
                    "tid": TID_FAULTS,
                    "ts": _us(record.time),
                    "args": args,
                }
            )
        else:
            core = record.core
            events.append(
                {
                    "ph": "i",
                    "name": record.kind,
                    "cat": "event",
                    "s": "t" if core is not None else "g",
                    "pid": PID_CORES if core is not None else PID_EVENTS,
                    "tid": core if core is not None else TID_MISC,
                    "ts": _us(record.time),
                    "args": args,
                }
            )

    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {
            "label": label,
            "counters": {
                key: int(value)
                for key, value in sorted(tracer.counters.items())
            },
            "gauges": dict(sorted(tracer.gauges.items())),
        },
    }


def write_trace(
    tracer: Tracer, path: str, label: str = "repro"
) -> Dict[str, Any]:
    """Export ``tracer`` and write the JSON to ``path``; returns the dict."""
    trace = export_trace(tracer, label=label)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(trace, handle, indent=1)
        handle.write("\n")
    return trace


# ---------------------------------------------------------------------------
# validation (used by tests and the CI obs job)


def validate_trace(trace: Dict[str, Any]) -> List[str]:
    """Structural trace-event-format checks; returns error strings.

    Covers what a viewer needs to load the file: known phases, numeric
    timestamps, durations on complete events, ids on async/flow events,
    and that every flow finish has a matching start.
    """
    errors: List[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    flow_starts = set()
    flow_finishes: List[Tuple[Any, int]] = []
    for index, event in enumerate(events):
        where = f"traceEvents[{index}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: not an object")
            continue
        phase = event.get("ph")
        if phase not in _VALID_PHASES:
            errors.append(f"{where}: unknown phase {phase!r}")
            continue
        if "pid" not in event:
            errors.append(f"{where}: missing pid")
        if phase != "M":
            if not isinstance(event.get("ts"), (int, float)):
                errors.append(f"{where}: non-numeric ts")
            if event.get("ts", 0) < 0:
                errors.append(f"{where}: negative ts")
        if phase == "X":
            duration = event.get("dur")
            if not isinstance(duration, (int, float)) or duration < 0:
                errors.append(f"{where}: X event needs dur >= 0")
        if phase in ("b", "n", "e", "s", "t", "f") and "id" not in event:
            errors.append(f"{where}: {phase} event needs an id")
        if phase == "s":
            flow_starts.add(event.get("id"))
        if phase == "f":
            flow_finishes.append((event.get("id"), index))
        if phase in ("X", "i", "I", "b", "M") and not event.get("name"):
            errors.append(f"{where}: missing name")
    for flow_id, index in flow_finishes:
        if flow_id not in flow_starts:
            errors.append(
                f"traceEvents[{index}]: flow finish {flow_id!r} "
                "has no matching start"
            )
    return errors


def trace_summary(trace: Dict[str, Any]) -> Dict[str, int]:
    """Quick structural facts for assertions: track and arrow counts."""
    events = trace.get("traceEvents", [])
    core_tracks = {
        event.get("tid")
        for event in events
        if event.get("ph") == "X" and event.get("pid") == PID_CORES
    }
    starts = {
        event.get("id") for event in events if event.get("ph") == "s"
    }
    finishes = {
        event.get("id") for event in events if event.get("ph") == "f"
    }
    cross_core = 0
    by_id: Dict[Any, Dict[str, Any]] = {}
    for event in events:
        if event.get("ph") == "s":
            by_id.setdefault(event.get("id"), {})["s"] = event
        elif event.get("ph") == "f":
            by_id.setdefault(event.get("id"), {})["f"] = event
    for pair in by_id.values():
        start, finish = pair.get("s"), pair.get("f")
        if start and finish and (
            (start.get("pid"), start.get("tid"))
            != (finish.get("pid"), finish.get("tid"))
        ):
            cross_core += 1
    return {
        "events": len(events),
        "core_tracks": len(core_tracks),
        "flow_pairs": len(starts & finishes),
        "cross_core_flows": cross_core,
    }
