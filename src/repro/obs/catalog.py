"""The declared metric catalog: every name the simulation may publish.

This is the single authority the OBS001 lint rule checks string metric
names against — a ``tracer.count("typo_total")`` anywhere in the tree
fails lint until the name is declared here.  Keeping the catalog in one
flat list (rather than scattered ``declare`` calls) makes the full
accounting surface reviewable at a glance and keeps declaration order
deterministic.

Naming convention (DESIGN.md §5.4): new metrics carry a unit suffix —
``_ns`` for integer simulated nanoseconds, ``_count`` for event totals,
``_bytes`` for volumes.  Names that predate the registry are declared
``legacy=True`` because renaming them would move every recorded
sanitizer digest; dynamic families end in ``*`` and match by prefix.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.trace import Tracer
from .metrics import MetricSpec, MetricsRegistry, Unit

__all__ = ["CATALOG", "build_registry", "lookup", "catalog_names"]


def _legacy_counter(name: str, help_text: str) -> MetricSpec:
    return MetricSpec(name, "counter", Unit.COUNT, help_text, legacy=True)


CATALOG: List[MetricSpec] = [
    # -- exit accounting (Table 4; digested) ---------------------------
    _legacy_counter("exit:*", "VM exits by reason (timer, ipi, mmio_*, ...)"),
    _legacy_counter("exits_total", "total VM exits across all reasons"),
    # -- RMM / dedicated cores -----------------------------------------
    _legacy_counter("rec_rebind", "monitor-mediated vCPU core migrations"),
    _legacy_counter("rmm_core_dead_drop", "run calls dropped by a dead core"),
    _legacy_counter("rmm_local_timer_inject", "delegated vtimer injections"),
    _legacy_counter("rmm_local_vipi_notice", "delegated vIPI SGIs absorbed"),
    _legacy_counter("rmm_stale_host_sgi", "stale host IPIs dropped in realm"),
    # -- host kernel / KVM ---------------------------------------------
    _legacy_counter("host_irq:*", "host-handled physical interrupts by intid"),
    _legacy_counter("host_virq_inject", "host-side virtual IRQ injections"),
    _legacy_counter("runwait_retry", "bounded run-wait retries"),
    _legacy_counter("runwait_self_claim", "run waits self-claimed by vCPU"),
    _legacy_counter("runwait_rekick", "host-kick SGIs re-sent on retry"),
    _legacy_counter("runwait_exhausted", "run waits abandoned after retries"),
    _legacy_counter("wakeup_watchdog_recovered", "watchdog-recovered wakeups"),
    # -- planner / hotplug ---------------------------------------------
    _legacy_counter("rmi_sync_timeout", "sync RMI busy-waits that timed out"),
    _legacy_counter("planner_hotplug_retry", "hotplug aborts retried"),
    _legacy_counter("planner_rollback_parked", "cores parked during rollback"),
    _legacy_counter("planner_evacuate", "vCPUs evacuated to spare cores"),
    _legacy_counter("planner_evacuate_refused", "evacuations refused (no spare)"),
    _legacy_counter("planner_failure_refused", "core failures left unhandled"),
    _legacy_counter("hotplug_offline", "cores taken offline"),
    _legacy_counter("hotplug_online", "cores brought online"),
    _legacy_counter("hotplug_abort", "injected hotplug transition aborts"),
    # -- elastic lifecycle (planner verbs; digested counters) ----------
    MetricSpec(
        "planner_shrink_count",
        "counter",
        Unit.COUNT,
        "vCPUs parked and their cores reclaimed (autoscaler shrink)",
    ),
    MetricSpec(
        "planner_grow_count",
        "counter",
        Unit.COUNT,
        "parked vCPUs re-bound to fresh dedicated cores (grow)",
    ),
    MetricSpec(
        "planner_grow_refused_count",
        "counter",
        Unit.COUNT,
        "grow requests refused for want of a free core",
    ),
    MetricSpec(
        "planner_evict_count",
        "counter",
        Unit.COUNT,
        "still-serving CVMs torn down by the lifecycle controller",
    ),
    MetricSpec(
        "rec_unbind_count",
        "counter",
        Unit.COUNT,
        "REC core bindings dropped monitor-side (shrink/park)",
    ),
    # -- fault injection / chaos ---------------------------------------
    _legacy_counter("fault:*", "injected faults by kind (repro.faults)"),
    _legacy_counter("chaos_launch_refused", "chaos launches cleanly refused"),
    # -- latency histograms (integer simulated ns) ---------------------
    MetricSpec(
        "run_to_run_ns",
        "histogram",
        Unit.NS,
        "vCPU run-call return-to-return latency (§5.2: 26.18 µs)",
    ),
    MetricSpec(
        "vipi_latency_ns",
        "histogram",
        Unit.NS,
        "virtual IPI send-to-ack latency (Table 3)",
    ),
    MetricSpec(
        "planner_launch_ns",
        "histogram",
        Unit.NS,
        "CVM launch latency: hotplug + realm build + REC binding",
    ),
    # -- fleet serving (repro.fleet: open-loop tenant traffic) ---------
    MetricSpec(
        "fleet_request_count",
        "counter",
        Unit.COUNT,
        "open-loop tenant requests completed",
    ),
    MetricSpec(
        "fleet_slo_violation_count",
        "counter",
        Unit.COUNT,
        "completed requests over their tenant's latency SLO",
    ),
    MetricSpec(
        "fleet_request_latency_ns",
        "histogram",
        Unit.NS,
        "open-loop tenant request latency (send to reply)",
    ),
    MetricSpec(
        "fleet_offered_count",
        "gauge",
        Unit.COUNT,
        "open-loop requests issued across a server's tenants",
    ),
    MetricSpec(
        "fleet_dropped_count",
        "gauge",
        Unit.COUNT,
        "requests still unanswered when the scenario ended",
    ),
    # -- checkpoint/restore (repro.snap + fleet recovery supervisor) ---
    MetricSpec(
        "snap_checkpoint_count",
        "gauge",
        Unit.COUNT,
        "checkpoints taken by the recovery supervisor",
    ),
    MetricSpec(
        "fleet_restore_count",
        "gauge",
        Unit.COUNT,
        "restores performed after server failures",
    ),
    MetricSpec(
        "fleet_recovery_downtime_ns",
        "gauge",
        Unit.NS,
        "simulated time lost to failures (checkpoint to failure, plus "
        "the modelled restore penalty)",
    ),
    MetricSpec(
        "fleet_recovery_slo_violation_count",
        "gauge",
        Unit.COUNT,
        "completions attributed to recovery windows and charged "
        "against tenant SLOs",
    ),
    # -- elastic fleet lifecycle gauges (repro.fleet.elastic) ----------
    MetricSpec(
        "fleet_admit_count",
        "gauge",
        Unit.COUNT,
        "tenants admitted over a run (boot-time plus churn arrivals)",
    ),
    MetricSpec(
        "fleet_evict_count",
        "gauge",
        Unit.COUNT,
        "tenants drained and evicted (churn departures)",
    ),
    MetricSpec(
        "fleet_reject_count",
        "gauge",
        Unit.COUNT,
        "admissions refused (placement or churn cap)",
    ),
    MetricSpec(
        "fleet_resize_up_count",
        "gauge",
        Unit.COUNT,
        "single-vCPU autoscaler grow steps applied",
    ),
    MetricSpec(
        "fleet_resize_down_count",
        "gauge",
        Unit.COUNT,
        "single-vCPU autoscaler shrink steps applied",
    ),
    MetricSpec(
        "fleet_migrate_count",
        "gauge",
        Unit.COUNT,
        "tenants migrated between servers by the rebalancer",
    ),
    MetricSpec(
        "fleet_migration_downtime_ns",
        "gauge",
        Unit.NS,
        "simulated blackout charged to migrated tenants' SLOs",
    ),
    # -- end-of-run structural gauges (harvested by System.finish) -----
    MetricSpec(
        "gic_sgi_sent_count", "gauge", Unit.COUNT, "SGIs (IPIs) sent"
    ),
    MetricSpec(
        "gic_spi_raised_count", "gauge", Unit.COUNT, "device SPIs raised"
    ),
    MetricSpec(
        "rpc_submit_count", "gauge", Unit.COUNT, "async run calls submitted"
    ),
    MetricSpec(
        "rpc_complete_count", "gauge", Unit.COUNT, "async run calls completed"
    ),
    MetricSpec(
        "rpc_sync_call_count", "gauge", Unit.COUNT, "sync RMI calls posted"
    ),
    MetricSpec(
        "faults_injected_count", "gauge", Unit.COUNT, "total injected faults"
    ),
    MetricSpec(
        "sim_end_ns", "gauge", Unit.NS, "simulated clock at end of run"
    ),
]


def build_registry(tracer: Tracer) -> MetricsRegistry:
    """A registry with the full catalog declared against ``tracer``."""
    registry = MetricsRegistry(tracer)
    for spec in CATALOG:
        registry.declare(spec)
    return registry


def lookup(name: str) -> Optional[MetricSpec]:
    """Catalog spec covering ``name`` (exact or family), else None.

    Used by the OBS001 lint rule; cheap enough to rebuild per call
    given lint runs, but cached via the module-level registry below.
    """
    return _CATALOG_INDEX.lookup(name)


def catalog_names() -> List[str]:
    return [spec.name for spec in CATALOG]


#: index-only registry (bound to a throwaway tracer) for lookups
_CATALOG_INDEX = build_registry(Tracer(enabled=False))
