"""repro.obs — structured observability for the simulation.

Four pieces, all optional and all zero-cost when unused:

* :mod:`repro.obs.metrics` / :mod:`repro.obs.catalog` — the typed
  metrics registry and the single declared catalog of every metric name
  the tree may publish (enforced by lint rule OBS001);
* :mod:`repro.obs.perfetto` — Chrome trace-event / Perfetto JSON export
  of a run's spans, VM exits, RPC slot lifecycles, IPIs and injected
  faults, with flow arrows for cross-core notifications;
* :mod:`repro.obs.profile` — engine dispatch profiling behind
  ``REPRO_PROFILE=1`` / ``--profile`` (wall-clock; never digested);
* :mod:`repro.obs.report` — the run-report generator
  (``python -m repro.obs.report <sweep>``) rendering sweeps into
  Markdown with paper/measured/ratio/verdict rows.

Layering: this package may import :mod:`repro.sim` only (the report CLI
submodule additionally reaches into :mod:`repro.experiments`); nothing
under :mod:`repro.hw`, :mod:`repro.host` or :mod:`repro.rmm` imports it
back — instrumented components receive a duck-typed tracer instead.

Quickstart::

    from repro.obs import build_registry, write_trace

    system = System(ExperimentConfig(mode="gapped", trace_schedules=True))
    system.run(duration)
    write_trace(system.tracer, "fig6_cell.trace.json", label="fig6")
    print(build_registry(system.tracer).snapshot())
"""

from .catalog import CATALOG, build_registry, catalog_names, lookup
from .metrics import (
    DEFAULT_NS_BUCKETS,
    CounterMetric,
    GaugeMetric,
    HistogramMetric,
    MetricError,
    MetricSpec,
    MetricsRegistry,
    Unit,
)
from .perfetto import (
    export_trace,
    trace_summary,
    validate_trace,
    write_trace,
)
from .profile import (
    PROFILE_ENV_VAR,
    EngineProfiler,
    profiler_from_env,
    render_profile,
)

__all__ = [
    "CATALOG",
    "build_registry",
    "catalog_names",
    "lookup",
    "DEFAULT_NS_BUCKETS",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricError",
    "MetricSpec",
    "MetricsRegistry",
    "Unit",
    "export_trace",
    "trace_summary",
    "validate_trace",
    "write_trace",
    "PROFILE_ENV_VAR",
    "EngineProfiler",
    "profiler_from_env",
    "render_profile",
]
