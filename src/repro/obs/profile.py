"""Engine profiling: per-event-kind dispatch time and heap-depth sampling.

Answers "where does the *simulator* spend wall-clock time" — which
process kinds dominate dispatch, and how deep the event heap runs —
without touching the simulated results.  The profiler attaches to a
:class:`~repro.sim.engine.Simulator` via :meth:`attach_profiler`; when
none is attached the engine's run loop is the unmodified fast path, so
profiling is strictly zero-cost when off.

Profiled runs read the host's monotonic clock and are therefore
**excluded from digested/replayed runs by construction**: the DET001
lint rule bans wall-clock reads everywhere except here, and nothing in
the profiler feeds back into simulated state.

Enable it per process with ``REPRO_PROFILE=1`` (the
:class:`~repro.experiments.system.System` composition root checks the
environment) or from the sweep CLI::

    PYTHONPATH=src REPRO_PROFILE=1 python examples/quickstart.py
    PYTHONPATH=src python -m repro.experiments.runner fig6 --profile

Both print a table like::

    kind                      events      total ms     avg us
    hostcore                   51240         312.4        6.1
    rmm-core                   24031         201.7        8.4
    ...
    heap depth: p50=38 p95=71 max=96 (sampled every 64 events)
"""

from __future__ import annotations

import os
import time
from typing import Dict, List, Optional, Tuple

__all__ = [
    "EngineProfiler",
    "profiler_from_env",
    "render_profile",
    "PROFILE_ENV_VAR",
]

PROFILE_ENV_VAR = "REPRO_PROFILE"


def _classify(timer) -> str:
    """Stable, low-cardinality kind for one dispatched timer.

    Process timers group by the process-name prefix before the first
    ``:`` or digit (``rmm-core7`` → ``rmm-core``); bare callbacks group
    by the callback's qualified name.
    """
    proc = timer.proc
    if proc is not None:
        name = proc.name
        head = name.split(":", 1)[0]
        return head.rstrip("0123456789") or head
    callback = timer.callback
    # functools.partial wraps the interesting callee
    func = getattr(callback, "func", callback)
    return getattr(func, "__qualname__", type(func).__name__)


class EngineProfiler:
    """Accumulates dispatch-time and heap-depth statistics.

    Duck-typed against :meth:`Simulator.attach_profiler`: the engine
    calls ``clock()`` around each dispatch and ``note(timer,
    elapsed_ns, heap_len)`` after it.  One profiler may span several
    simulators (a sweep aggregates across cells).
    """

    def __init__(self, heap_sample_every: int = 64):
        #: kind -> [dispatch count, total wall ns]
        self.dispatch: Dict[str, List[int]] = {}
        self.events = 0
        self.heap_sample_every = max(1, heap_sample_every)
        self.heap_depths: List[int] = []
        self.clock = time.perf_counter_ns  # lint: allow(DET001)

    def note(self, timer, elapsed_ns: int, heap_len: int) -> None:
        kind = _classify(timer)
        entry = self.dispatch.get(kind)
        if entry is None:
            self.dispatch[kind] = [1, elapsed_ns]
        else:
            entry[0] += 1
            entry[1] += elapsed_ns
        self.events += 1
        if self.events % self.heap_sample_every == 0:
            self.heap_depths.append(heap_len)

    # -- reporting ----------------------------------------------------

    def rows(self) -> List[Tuple[str, int, int]]:
        """``(kind, count, total_ns)`` rows, heaviest first."""
        return sorted(
            (
                (kind, entry[0], entry[1])
                for kind, entry in self.dispatch.items()
            ),
            key=lambda row: -row[2],
        )

    def heap_stats(self) -> Dict[str, int]:
        depths = sorted(self.heap_depths)
        if not depths:
            return {"p50": 0, "p95": 0, "max": 0}
        return {
            "p50": depths[len(depths) // 2],
            "p95": depths[min(len(depths) - 1, (len(depths) * 95) // 100)],
            "max": depths[-1],
        }


def render_profile(profiler: EngineProfiler, top: int = 12) -> str:
    """The human-readable dispatch table printed by ``--profile``."""
    lines = [
        f"{'kind':<28s}{'events':>10s}{'total ms':>12s}{'avg us':>9s}"
    ]
    rows = profiler.rows()
    for kind, count, total_ns in rows[:top]:
        lines.append(
            f"{kind:<28s}{count:>10d}{total_ns / 1e6:>12.1f}"
            f"{total_ns / count / 1e3:>9.1f}"
        )
    if len(rows) > top:
        rest_count = sum(row[1] for row in rows[top:])
        rest_ns = sum(row[2] for row in rows[top:])
        lines.append(
            f"{'(other)':<28s}{rest_count:>10d}{rest_ns / 1e6:>12.1f}"
            f"{rest_ns / max(1, rest_count) / 1e3:>9.1f}"
        )
    stats = profiler.heap_stats()
    lines.append(
        f"heap depth: p50={stats['p50']} p95={stats['p95']} "
        f"max={stats['max']} (sampled every "
        f"{profiler.heap_sample_every} events); "
        f"{profiler.events} dispatches total"
    )
    return "\n".join(lines)


def profiler_from_env() -> Optional[EngineProfiler]:
    """A shared per-process profiler when ``REPRO_PROFILE`` is set.

    Returns the same instance on every call, so every
    :class:`~repro.experiments.system.System` built in this process
    (e.g. all cells of a serial sweep) aggregates into one report.
    """
    if os.environ.get(PROFILE_ENV_VAR, "").strip() in ("", "0"):
        return None
    global _SHARED
    if _SHARED is None:
        _SHARED = EngineProfiler()
    return _SHARED


_SHARED: Optional[EngineProfiler] = None
