"""Typed metrics registry: declared names, checked units, fixed buckets.

The simulation publishes three shapes of numbers:

* **counters** — monotonic totals (``exits_total``, ``fault:sgi_drop``),
  stored in :attr:`repro.sim.trace.Tracer.counters` and therefore part
  of the sanitizer digest (DESIGN.md invariant #6);
* **gauges** — last-write-wins scalars harvested at the end of a run
  (``gic_sgi_sent_count``), stored in ``Tracer.gauges`` and *excluded*
  from the digest so purely observational totals never move it;
* **histograms** — distributions over fixed buckets with quantile
  estimation (``run_to_run_ns``), backed by ``Tracer.sample`` so the
  raw observations stay available to the experiment harnesses.

Every metric must be *declared* before use — by name, kind, and unit —
and the naming convention is enforced at declaration time: integer
nanosecond metrics end in ``_ns``, event totals in ``_count``, byte
totals in ``_bytes``.  Pre-registry names that predate the convention
(``exits_total``, ``rec_rebind``, ...) are declared with
``legacy=True``: renaming them would move every recorded digest, so the
catalog grandfathers them instead.  Dynamic families (``exit:*``,
``fault:*``) are declared once with a trailing ``*``.

The lint rule OBS001 (:mod:`repro.lint.obs`) closes the loop: any
``tracer.count("name")``/``tracer.sample(...)``/``tracer.set_gauge(...)``
in the tree whose name is not declared in :mod:`repro.obs.catalog` is a
finding, so scattered stringly-typed metrics cannot reappear.

Usage::

    from repro.obs import build_registry

    registry = build_registry(system.tracer)
    registry.counter("exits_total").inc()
    registry.gauge("gic_sgi_sent_count").set(machine.gic.sgi_sent)
    hist = registry.histogram("run_to_run_ns")
    hist.observe(26_180)
    hist.quantile(0.99)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim.trace import Tracer

__all__ = [
    "Unit",
    "MetricError",
    "MetricSpec",
    "CounterMetric",
    "GaugeMetric",
    "HistogramMetric",
    "MetricsRegistry",
    "DEFAULT_NS_BUCKETS",
]


class MetricError(ValueError):
    """Illegal metric declaration or use (wrong kind, duplicate, ...)."""


class Unit:
    """Measurement units; each maps to a mandatory name suffix."""

    NS = "ns"          # integer simulated nanoseconds
    COUNT = "count"    # event totals
    BYTES = "bytes"    # data volumes
    RATIO = "ratio"    # dimensionless 0..1

    #: unit -> required metric-name suffix (None = no requirement)
    SUFFIX: Dict[str, Optional[str]] = {
        NS: "_ns",
        COUNT: "_count",
        BYTES: "_bytes",
        RATIO: None,
    }


#: exponential nanosecond buckets, 100 ns .. 1 s (upper edges)
DEFAULT_NS_BUCKETS: Tuple[int, ...] = (
    100,
    1_000,
    10_000,
    100_000,
    1_000_000,
    10_000_000,
    100_000_000,
    1_000_000_000,
)


@dataclass(frozen=True)
class MetricSpec:
    """One declared metric: its name, kind, unit and provenance.

    A name ending in ``*`` declares a dynamic *family* (``exit:*``):
    every runtime name sharing the prefix belongs to it.  Families are
    necessarily legacy-named — their member names are data-driven.
    """

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    unit: str
    help: str
    #: pre-convention name: suffix check skipped (renames would move
    #: every recorded sanitizer digest)
    legacy: bool = False
    #: histogram bucket upper edges (ignored for other kinds)
    buckets: Tuple[int, ...] = DEFAULT_NS_BUCKETS

    KINDS = ("counter", "gauge", "histogram")

    @property
    def is_family(self) -> bool:
        return self.name.endswith("*")

    @property
    def family_prefix(self) -> str:
        return self.name[:-1]

    def validate(self) -> None:
        if self.kind not in self.KINDS:
            raise MetricError(f"{self.name}: unknown kind {self.kind!r}")
        if self.unit not in Unit.SUFFIX:
            raise MetricError(f"{self.name}: unknown unit {self.unit!r}")
        if self.is_family:
            if self.kind != "counter":
                raise MetricError(
                    f"{self.name}: dynamic families must be counters"
                )
            return
        suffix = Unit.SUFFIX[self.unit]
        if suffix and not self.legacy and not self.name.endswith(suffix):
            raise MetricError(
                f"{self.name}: unit {self.unit!r} requires the "
                f"{suffix!r} suffix (or legacy=True)"
            )


class CounterMetric:
    """Monotonic total backed by ``Tracer.counters`` (digested)."""

    def __init__(self, spec: MetricSpec, tracer: Tracer):
        self.spec = spec
        self._tracer = tracer

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise MetricError(f"{self.spec.name}: counters only go up")
        self._tracer.count(self.spec.name, amount)

    @property
    def value(self) -> int:
        return int(self._tracer.counters.get(self.spec.name, 0))


class GaugeMetric:
    """Last-write-wins scalar backed by ``Tracer.gauges`` (undigested)."""

    def __init__(self, spec: MetricSpec, tracer: Tracer):
        self.spec = spec
        self._tracer = tracer

    def set(self, value: float) -> None:
        self._tracer.set_gauge(self.spec.name, value)

    @property
    def value(self) -> Optional[float]:
        return self._tracer.gauges.get(self.spec.name)


class HistogramMetric:
    """Fixed-bucket distribution over ``Tracer.sample`` observations.

    The tracer's raw sample list stays the single source of truth (the
    experiment harnesses read it directly); bucket counts and quantiles
    are computed on demand, so a histogram declared over a name that
    other code already samples needs no double bookkeeping.
    """

    def __init__(self, spec: MetricSpec, tracer: Tracer):
        self.spec = spec
        self._tracer = tracer

    def observe(self, value: float) -> None:
        self._tracer.sample(self.spec.name, value)

    @property
    def observations(self) -> List[float]:
        return self._tracer.samples(self.spec.name)

    @property
    def count(self) -> int:
        return len(self.observations)

    @property
    def sum(self) -> float:
        return sum(self.observations)

    def bucket_counts(self) -> List[Tuple[Optional[int], int]]:
        """``[(upper_edge, n), ..., (None, n_overflow)]`` — upper edges
        are inclusive, the final ``None`` bucket catches the rest."""
        edges = self.spec.buckets
        counts = [0] * (len(edges) + 1)
        for value in self.observations:
            for index, edge in enumerate(edges):
                if value <= edge:
                    counts[index] += 1
                    break
            else:
                counts[-1] += 1
        out: List[Tuple[Optional[int], int]] = list(zip(edges, counts))
        out.append((None, counts[-1]))
        return out

    def quantile(self, q: float) -> Optional[float]:
        """Estimate the q-quantile from the fixed buckets.

        Linear interpolation inside the winning bucket (Prometheus
        ``histogram_quantile`` style); the overflow bucket returns the
        exact maximum observation.  None when empty.
        """
        if not 0.0 <= q <= 1.0:
            raise MetricError(f"quantile {q} outside [0, 1]")
        observations = self.observations
        total = len(observations)
        if total == 0:
            return None
        rank = q * total
        edges = self.spec.buckets
        cumulative = 0
        lower = 0.0
        counts = [n for _, n in self.bucket_counts()]
        for index, edge in enumerate(edges):
            in_bucket = counts[index]
            if cumulative + in_bucket >= rank and in_bucket > 0:
                fraction = (rank - cumulative) / in_bucket
                return lower + (edge - lower) * fraction
            cumulative += in_bucket
            lower = float(edge)
        return float(max(observations))


@dataclass
class MetricsRegistry:
    """All declared metrics for one :class:`Tracer`.

    Declaration is explicit and unique: declaring the same name twice
    raises (two subsystems silently sharing a counter is exactly the
    accounting bug this registry exists to prevent).
    """

    tracer: Tracer
    _specs: Dict[str, MetricSpec] = field(default_factory=dict)

    def declare(self, spec: MetricSpec) -> "MetricsRegistry":
        spec.validate()
        if spec.name in self._specs:
            raise MetricError(f"metric {spec.name!r} declared twice")
        self._specs[spec.name] = spec
        return self

    def lookup(self, name: str) -> Optional[MetricSpec]:
        """Spec for an exact name, or the family covering it."""
        spec = self._specs.get(name)
        if spec is not None:
            return spec
        for candidate in self._specs.values():
            if candidate.is_family and name.startswith(
                candidate.family_prefix
            ):
                return candidate
        return None

    def specs(self) -> List[MetricSpec]:
        return [self._specs[name] for name in sorted(self._specs)]

    def _typed(self, name: str, kind: str) -> MetricSpec:
        spec = self.lookup(name)
        if spec is None:
            raise MetricError(f"metric {name!r} not declared")
        if spec.kind != kind:
            raise MetricError(
                f"metric {name!r} is a {spec.kind}, not a {kind}"
            )
        return spec

    def counter(self, name: str) -> CounterMetric:
        spec = self._typed(name, "counter")
        if spec.is_family:
            spec = MetricSpec(
                name, "counter", spec.unit, spec.help, legacy=True
            )
        return CounterMetric(spec, self.tracer)

    def gauge(self, name: str) -> GaugeMetric:
        return GaugeMetric(self._typed(name, "gauge"), self.tracer)

    def histogram(self, name: str) -> HistogramMetric:
        return HistogramMetric(self._typed(name, "histogram"), self.tracer)

    def snapshot(self) -> Dict[str, object]:
        """Current values of every declared metric (families expanded
        to their live member names), for reports and debugging."""
        out: Dict[str, object] = {}
        for spec in self.specs():
            if spec.kind == "counter":
                if spec.is_family:
                    for key in sorted(self.tracer.counters):
                        if key.startswith(spec.family_prefix):
                            out[key] = int(self.tracer.counters[key])
                else:
                    out[spec.name] = CounterMetric(spec, self.tracer).value
            elif spec.kind == "gauge":
                value = GaugeMetric(spec, self.tracer).value
                if value is not None:
                    out[spec.name] = value
            else:
                hist = HistogramMetric(spec, self.tracer)
                if hist.count:
                    out[spec.name] = {
                        "count": hist.count,
                        "mean": hist.sum / hist.count,
                        "p50": hist.quantile(0.5),
                        "p99": hist.quantile(0.99),
                    }
        return out
