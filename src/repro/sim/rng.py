"""Deterministic random number streams.

Every stochastic element of the simulation draws from a named substream
derived from one root seed, so adding a new consumer never perturbs the
draws seen by existing ones and whole experiments replay bit-identically.

Substream seeds are derived by hashing an *injection-proof* encoding of
``(root seed, kind, name)``: every component is length-prefixed before
hashing, so no choice of stream name can collide with a fork name (or
vice versa).  In particular ``fork("x")`` and ``stream("fork:x")`` --
which collided under the old ``f"{seed}:{name}"`` scheme -- now derive
from distinct key encodings.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngFactory", "bare_factory", "derive_seed"]


def derive_seed(root_seed: int, kind: str, name: str) -> int:
    """Derive a 64-bit child seed from ``(root_seed, kind, name)``.

    Each component is UTF-8 encoded and length-prefixed (8-byte big
    endian) before hashing, making the encoding injective: there is no
    pair of distinct ``(kind, name)`` tuples that hash the same bytes,
    regardless of separators appearing inside the strings.
    """
    digest = hashlib.sha256()
    for part in (str(root_seed), kind, name):
        data = part.encode("utf-8")
        digest.update(len(data).to_bytes(8, "big"))
        digest.update(data)
    return int.from_bytes(digest.digest()[:8], "big")


class RngFactory:
    """Hands out independent, reproducible ``random.Random`` substreams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the substream for ``name`` (created on first use)."""
        if name not in self._streams:
            self._streams[name] = random.Random(
                derive_seed(self.seed, "stream", name)
            )
        return self._streams[name]

    def fork(self, name: str) -> "RngFactory":
        """Derive a child factory with an independent seed space."""
        return RngFactory(derive_seed(self.seed, "fork", name))


def bare_factory(consumer: str) -> RngFactory:
    """A default factory for components constructed without one.

    Bare construction (``Machine()`` in a unit test, with no experiment
    harness threading the run seed through) still needs deterministic
    draws.  Deriving the seed here -- inside the declared seed root,
    under the ``bare-root`` namespace -- keeps SEED001's guarantee
    intact: every root factory in the tree is created by a seed root,
    and two bare consumers never share a seed by accident.
    """
    return RngFactory(derive_seed(0, "bare-root", consumer))
