"""Deterministic random number streams.

Every stochastic element of the simulation draws from a named substream
derived from one root seed, so adding a new consumer never perturbs the
draws seen by existing ones and whole experiments replay bit-identically.
"""

from __future__ import annotations

import hashlib
import random
from typing import Dict

__all__ = ["RngFactory"]


class RngFactory:
    """Hands out independent, reproducible ``random.Random`` substreams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """Return the substream for ``name`` (created on first use)."""
        if name not in self._streams:
            digest = hashlib.sha256(
                f"{self.seed}:{name}".encode("utf-8")
            ).digest()
            self._streams[name] = random.Random(
                int.from_bytes(digest[:8], "big")
            )
        return self._streams[name]

    def fork(self, name: str) -> "RngFactory":
        """Derive a child factory with an independent seed space."""
        digest = hashlib.sha256(f"{self.seed}:fork:{name}".encode()).digest()
        return RngFactory(int.from_bytes(digest[:8], "big"))
