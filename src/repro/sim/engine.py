"""Discrete-event simulation kernel.

The whole reproduction runs on this engine: physical cores, host threads,
RMM dispatch loops and guest vCPUs are all simulation *processes*
(Python generators) advanced by a single event loop over an integer
nanosecond clock.

A process yields one of:

* :class:`Delay` -- resume after a fixed number of nanoseconds.
* :class:`Event` -- resume when the event fires; the ``yield`` evaluates
  to the value passed to :meth:`Event.fire`.
* :class:`AnyOf` -- resume when the *first* of several delays/events
  fires; the ``yield`` evaluates to a :class:`Wakeup` naming the winner.
* :class:`Process` -- wait for a child process; evaluates to its result.

Sub-behaviours compose with plain ``yield from``.  The loop is strictly
deterministic: simultaneous events run in spawn/schedule order.

Hot-path notes (every experiment is bounded by this loop):

* Heap entries are ``(when, key, seq, timer)`` tuples, so ``heapq``
  comparisons run in C instead of calling a Python ``__lt__``.
* The common resume path (``Delay``/spawn) carries the process on the
  timer itself; no per-event closure is allocated.
* ``pending_events`` is an O(1) counter kept by :meth:`_Timer.cancel`;
  cancelled timers (AnyOf losers, disarmed deadlines) are skipped
  lazily and compacted out of the heap when they pile up.
* The default ``"fifo"`` tie-break skips the tie-key indirection
  entirely; the permuting keys exist only for the schedule-race
  sanitizer and pay the call when selected.
"""

from __future__ import annotations

import heapq
from functools import partial
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Delay",
    "Event",
    "AnyOf",
    "Wakeup",
    "Process",
    "Simulator",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for illegal uses of the simulation API."""


class Delay:
    """Yieldable request to sleep for ``ns`` simulated nanoseconds."""

    __slots__ = ("ns",)

    def __init__(self, ns: int):
        if ns < 0:
            raise SimulationError(f"negative delay: {ns}")
        self.ns = int(ns)

    def __repr__(self) -> str:
        return f"Delay({self.ns})"


class Event:
    """A one-shot event that processes can wait on.

    Waiting on an already-fired event resumes immediately with the fired
    value, so there is no race between firing and waiting.
    """

    __slots__ = ("name", "fired", "value", "_waiters")

    def __init__(self, name: str = ""):
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    def fire(self, value: Any = None) -> None:
        """Fire the event, waking every current and future waiter."""
        if self.fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        if self.fired:
            callback(self.value)
        else:
            self._waiters.append(callback)

    def remove_waiter(self, callback: Callable[[Any], None]) -> None:
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass

    def __repr__(self) -> str:
        state = "fired" if self.fired else "pending"
        return f"Event({self.name!r}, {state})"


class Wakeup:
    """Result of an :class:`AnyOf` wait: which source won, and its value."""

    __slots__ = ("index", "source", "value")

    def __init__(self, index: int, source: Any, value: Any):
        self.index = index
        self.source = source
        self.value = value

    def __repr__(self) -> str:
        return f"Wakeup(index={self.index}, source={self.source!r})"


class AnyOf:
    """Yieldable wait on several delays and/or events; first one wins.

    Losing delays are cancelled and losing event subscriptions removed,
    so an ``AnyOf`` leaves no residue once it resumes.
    """

    __slots__ = ("sources",)

    def __init__(self, sources: Iterable[Any]):
        self.sources = list(sources)
        if not self.sources:
            raise SimulationError("AnyOf requires at least one source")
        for src in self.sources:
            if not isinstance(src, (Delay, Event, Process)):
                raise SimulationError(f"AnyOf cannot wait on {src!r}")


ProcessBody = Generator[Any, Any, Any]


class Process:
    """A running simulation process wrapping a generator body."""

    __slots__ = ("sim", "body", "name", "done", "result", "failed", "_finished")

    def __init__(self, sim: "Simulator", body: ProcessBody, name: str):
        self.sim = sim
        self.body = body
        self.name = name
        self.done = Event(f"done:{name}")
        self.result: Any = None
        self.failed: Optional[BaseException] = None
        self._finished = False

    @property
    def finished(self) -> bool:
        return self._finished

    def __repr__(self) -> str:
        state = "finished" if self._finished else "running"
        return f"Process({self.name!r}, {state})"


class _Timer:
    """A cancellable entry in the event heap.

    Ordering lives in the heap tuple ``(when, key, seq, timer)``, not
    here.  ``proc`` is the closure-free fast path: when set, the loop
    resumes that process directly (sending ``value``) instead of
    calling ``callback``.
    """

    __slots__ = (
        "when", "callback", "proc", "value", "_cancelled", "_in_heap", "_sim"
    )

    def __init__(
        self,
        when: int,
        callback: Optional[Callable[[], None]],
        proc: Optional[Process],
        sim: "Simulator",
        value: Any = None,
    ):
        self.when = when
        self.callback = callback
        self.proc = proc
        self.value = value
        self._cancelled = False
        self._in_heap = True
        self._sim = sim

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @cancelled.setter
    def cancelled(self, value: bool) -> None:
        value = bool(value)
        if value == self._cancelled:
            return
        self._cancelled = value
        # keep the simulator's O(1) live/stale accounting in sync, but
        # only while the entry is actually still queued: cancelling a
        # timer that already fired (an AnyOf winner cancelling its own
        # batch, a disarmed deadline) must not corrupt the counters
        if not self._in_heap:
            return
        sim = self._sim
        if value:
            sim._live -= 1
            sim._stale += 1
            if sim._stale > sim._COMPACT_MIN and sim._stale > sim._live:
                sim._compact()
        else:
            sim._live += 1
            sim._stale -= 1

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "armed"
        return f"_Timer(when={self.when}, {state})"


#: heap entry type: (when, tie_key, seq, timer)
_HeapEntry = Tuple[int, int, int, _Timer]


class Simulator:
    """The deterministic event loop.

    Typical use::

        sim = Simulator()
        proc = sim.spawn(my_generator(), name="worker")
        sim.run(until=1_000_000)   # or sim.run() to drain all events
    """

    #: multiplier for the "seeded" tie-break hash (splitmix64 constant);
    #: pure integer math so permutations replay identically everywhere
    _TIE_MIX = 0x9E3779B97F4A7C15

    #: cancelled entries tolerated in the heap before a compaction pass
    #: (also requires stale > live, so compaction work stays amortized)
    _COMPACT_MIN = 64

    def __init__(self, tie_break: str = "fifo") -> None:
        self.now: int = 0
        self._heap: List[_HeapEntry] = []
        self._seq: int = 0
        self._live: int = 0
        self._stale: int = 0
        self._live_processes: int = 0
        self.tie_break = tie_break
        self._fifo = tie_break == "fifo"
        self._tie_key = self._make_tie_key(tie_break)
        #: optional dispatch profiler (see repro.obs.profile); None keeps
        #: run() on the uninstrumented fast path — zero cost when off
        self._profiler: Optional[Any] = None

    @classmethod
    def _make_tie_key(cls, tie_break: str) -> Callable[[int], int]:
        """Key function ordering same-timestamp timers.

        The default ``"fifo"`` preserves schedule order — the engine's
        documented semantics.  The alternatives exist for the schedule-
        race sanitizer (:mod:`repro.lint.sanitizer`): they permute the
        order of *causally unrelated* same-timestamp events (a timer
        can only run after it was created, so causal chains survive any
        key).  Results that change under a permuted key were riding on
        arbitrary tie order.

        * ``"fifo"``   -- schedule order (default semantics)
        * ``"lifo"``   -- reverse schedule order
        * ``"seeded:N"`` -- deterministic pseudo-random order from salt N
        """
        if tie_break == "fifo":
            return lambda seq: 0
        if tie_break == "lifo":
            return lambda seq: -seq
        if tie_break.startswith("seeded:"):
            salt = int(tie_break.split(":", 1)[1])
            mask = (1 << 64) - 1
            mix = cls._TIE_MIX

            def seeded(seq: int) -> int:
                value = (seq + salt) & mask
                value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & mask
                value = ((value ^ (value >> 27)) * mix) & mask
                return value ^ (value >> 31)

            return seeded
        raise SimulationError(f"unknown tie_break: {tie_break!r}")

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------

    def schedule(self, delay_ns: int, callback: Callable[[], None]) -> _Timer:
        """Run ``callback`` after ``delay_ns``; returns a cancellable timer."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay: {delay_ns}")
        seq = self._seq + 1
        self._seq = seq
        timer = _Timer(self.now + int(delay_ns), callback, None, self)
        heapq.heappush(
            self._heap,
            (timer.when, 0 if self._fifo else self._tie_key(seq), seq, timer),
        )
        self._live += 1
        return timer

    def _schedule_step(self, delay_ns: int, proc: Process) -> _Timer:
        """Closure-free fast path: resume ``proc`` after ``delay_ns``.

        Equivalent to ``schedule(delay_ns, lambda: self._step(proc))``
        without allocating the lambda; ``delay_ns`` is already
        validated by the caller (``Delay.__init__`` / ``spawn``).
        """
        seq = self._seq + 1
        self._seq = seq
        timer = _Timer(self.now + delay_ns, None, proc, self)
        heapq.heappush(
            self._heap,
            (timer.when, 0 if self._fifo else self._tie_key(seq), seq, timer),
        )
        self._live += 1
        return timer

    def _schedule_resume(self, proc: Process, value: Any) -> _Timer:
        """Resume ``proc`` with ``value`` at the current time, through the
        event loop (AnyOf settle path; closure-free)."""
        seq = self._seq + 1
        self._seq = seq
        timer = _Timer(self.now, None, proc, self, value)
        heapq.heappush(
            self._heap,
            (timer.when, 0 if self._fifo else self._tie_key(seq), seq, timer),
        )
        self._live += 1
        return timer

    def call_soon(self, callback: Callable[[], None]) -> _Timer:
        return self.schedule(0, callback)

    def spawn(self, body: ProcessBody, name: str = "proc") -> Process:
        """Create a process from a generator and start it at the current time."""
        proc = Process(self, body, name)
        self._live_processes += 1
        self._schedule_step(0, proc)
        return proc

    # ------------------------------------------------------------------
    # process stepping
    # ------------------------------------------------------------------

    def _step(
        self,
        proc: Process,
        send_value: Any = None,
        throw_exc: Optional[BaseException] = None,
    ) -> None:
        try:
            if throw_exc is not None:
                yielded = proc.body.throw(throw_exc)
            else:
                yielded = proc.body.send(send_value)
        except StopIteration as stop:
            self._finish(proc, getattr(stop, "value", None), None)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via run()
            self._finish(proc, None, exc)
            return
        self._arm(proc, yielded)

    def _finish(
        self, proc: Process, result: Any, exc: Optional[BaseException]
    ) -> None:
        proc.result = result
        proc.failed = exc
        proc._finished = True
        self._live_processes -= 1
        if exc is not None and not proc.done._waiters:
            raise exc
        proc.done.fire(result if exc is None else exc)

    def _arm(self, proc: Process, yielded: Any) -> None:
        """Arm the wakeup condition a process yielded."""
        if isinstance(yielded, Delay):
            self._schedule_step(yielded.ns, proc)
        elif isinstance(yielded, Event):
            yielded.add_waiter(partial(self._step, proc))
        elif isinstance(yielded, Process):
            yielded.done.add_waiter(
                partial(self._resume_from_child, proc, yielded)
            )
        elif isinstance(yielded, AnyOf):
            self._arm_any_of(proc, yielded)
        else:
            self._step(
                proc,
                None,
                SimulationError(f"process {proc.name!r} yielded {yielded!r}"),
            )

    def _resume_from_child(
        self, proc: Process, child: Process, _value: Any = None
    ) -> None:
        if child.failed is not None:
            self._step(proc, None, child.failed)
        else:
            self._step(proc, child.result, None)

    def _arm_any_of(self, proc: Process, any_of: AnyOf) -> None:
        settled = [False]
        timers: List[_Timer] = []
        subscriptions: List[tuple] = []

        def settle(index: int, source: Any, value: Any = None) -> None:
            if settled[0]:
                return
            settled[0] = True
            for timer in timers:
                timer.cancel()
            for event, callback in subscriptions:
                event.remove_waiter(callback)
            # resume via the event loop rather than synchronously: a
            # process looping on already-fired sources must not recurse
            self._schedule_resume(proc, Wakeup(index, source, value))

        for index, source in enumerate(any_of.sources):
            if settled[0]:
                break
            if isinstance(source, Delay):
                timers.append(
                    self.schedule(source.ns, partial(settle, index, source))
                )
            elif isinstance(source, Process):
                callback = partial(settle, index, source)
                subscriptions.append((source.done, callback))
                source.done.add_waiter(callback)
            else:  # Event
                callback = partial(settle, index, source)
                subscriptions.append((source, callback))
                source.add_waiter(callback)

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def _compact(self) -> None:
        """Drop cancelled entries and re-heapify (amortized by the
        trigger threshold; keeps AnyOf-loser storms from growing the
        heap without bound)."""
        live: List[_HeapEntry] = []
        for entry in self._heap:
            timer = entry[3]
            if timer._cancelled:
                timer._in_heap = False
            else:
                live.append(entry)
        heapq.heapify(live)
        self._heap = live
        self._stale = 0

    def _pop_next(self, until: Optional[int] = None) -> Optional[_Timer]:
        """Pop the next live timer, discarding cancelled entries.

        The single pop loop shared by :meth:`run`, :meth:`run_one` and
        (through them) :meth:`run_until_done`.  Returns ``None`` when
        the heap drains or the next live timer lies beyond ``until``
        (which is then left queued).
        """
        heap = self._heap
        while heap:
            entry = heap[0]
            timer = entry[3]
            if timer._cancelled:
                heapq.heappop(heap)
                timer._in_heap = False
                self._stale -= 1
                continue
            when = entry[0]
            if until is not None and when > until:
                return None
            heapq.heappop(heap)
            timer._in_heap = False
            self._live -= 1
            if when < self.now:
                raise SimulationError("time went backwards")
            return timer
        return None

    def attach_profiler(self, profiler: Any) -> None:
        """Route :meth:`run` through the profiled loop.

        ``profiler`` is duck-typed (see :class:`repro.obs.profile.
        EngineProfiler`): it needs ``clock()`` returning monotonic
        integer nanoseconds and ``note(timer, elapsed_ns, heap_len)``.
        The engine itself never reads a wall clock — the profiler owns
        the (nondeterministic) time source, which is why profiling is
        excluded from digested runs rather than special-cased in them.
        """
        self._profiler = profiler

    def detach_profiler(self) -> None:
        self._profiler = None

    def run(self, until: Optional[int] = None) -> int:
        """Process events until the heap drains or the clock passes ``until``.

        Returns the simulated time at which the run stopped.
        """
        if self._profiler is not None:
            return self._run_profiled(until)
        step = self._step
        pop_next = self._pop_next
        while True:
            timer = pop_next(until)
            if timer is None:
                break
            self.now = timer.when
            proc = timer.proc
            if proc is not None:
                step(proc, timer.value, None)
            else:
                timer.callback()
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def _run_profiled(self, until: Optional[int] = None) -> int:
        """The :meth:`run` loop with per-dispatch wall-time attribution.

        A separate copy so the common path stays branch-free inside the
        loop; simulated behaviour is identical (same pops, same order).
        """
        profiler = self._profiler
        clock = profiler.clock
        note = profiler.note
        step = self._step
        pop_next = self._pop_next
        heap = self._heap
        while True:
            timer = pop_next(until)
            if timer is None:
                break
            self.now = timer.when
            proc = timer.proc
            start = clock()
            if proc is not None:
                step(proc, timer.value, None)
            else:
                timer.callback()
            note(timer, clock() - start, len(heap))
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_until_done(self, proc: Process, limit: Optional[int] = None) -> Any:
        """Run until ``proc`` finishes; returns its result, raising its error."""
        while not proc.finished:
            if self._live == 0:
                raise SimulationError(
                    f"deadlock: {proc.name!r} pending with no events queued"
                )
            if limit is not None and self.now > limit:
                raise SimulationError(
                    f"process {proc.name!r} still running at t={self.now}"
                )
            self.run_one()
        if proc.failed is not None:
            raise proc.failed
        return proc.result

    def run_one(self) -> None:
        """Process exactly one (non-cancelled) event."""
        timer = self._pop_next()
        if timer is None:
            return
        self.now = timer.when
        proc = timer.proc
        profiler = self._profiler
        if profiler is not None:
            start = profiler.clock()
            if proc is not None:
                self._step(proc, timer.value, None)
            else:
                timer.callback()
            profiler.note(timer, profiler.clock() - start, len(self._heap))
            return
        if proc is not None:
            self._step(proc, timer.value, None)
        else:
            timer.callback()

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) timers still queued — O(1)."""
        return self._live
