"""Discrete-event simulation kernel.

The whole reproduction runs on this engine: physical cores, host threads,
RMM dispatch loops and guest vCPUs are all simulation *processes*
(Python generators) advanced by a single event loop over an integer
nanosecond clock.

A process yields one of:

* :class:`Delay` -- resume after a fixed number of nanoseconds.
* :class:`Event` -- resume when the event fires; the ``yield`` evaluates
  to the value passed to :meth:`Event.fire`.
* :class:`AnyOf` -- resume when the *first* of several delays/events
  fires; the ``yield`` evaluates to a :class:`Wakeup` naming the winner.
* :class:`Process` -- wait for a child process; evaluates to its result.

Sub-behaviours compose with plain ``yield from``.  The loop is strictly
deterministic: simultaneous events run in spawn/schedule order.

Hot-path notes (every experiment is bounded by this loop):

* The default ``scheduler="calendar"`` splits the queue three ways: a
  *now queue* (plain deque) for events at the current instant, a
  calendar ring of time buckets with O(1) append inserts and batched
  sorted drains for the near future, and a binary heap (``_heap``) for
  far-future overflow, pulled forward epoch by epoch.  The bucket
  width adapts to observed event density at every epoch rebase.
  Dispatch order is identical to a single heap's ``(when, key, seq)``
  total order -- same-instant events were queued later than anything
  already in the bucket for that time, buckets partition time, and
  the overflow heap only feeds empty rings -- so the two schedulers
  are digest-interchangeable (``scheduler="heap"`` keeps the
  single-heap path; non-``"fifo"`` tie-breaks always use it, since a
  permuted key breaks the append-in-order invariant the buckets and
  the now queue exploit).
* Ring and heap entries are ``(when, key, seq, timer)`` tuples, so
  ordering comparisons run in C; now-queue entries are bare timers
  (FIFO append order *is* their sequence order).
* An ``AnyOf`` whose sources are all delays is *elided*: the winner is
  computed arithmetically at arm time and a single timer is queued in
  its place, carrying a pre-built :class:`Wakeup`.  Sequence numbers
  are still reserved for every source, the winner keeps its own
  ``(when, key, seq)`` slot, and its dispatch re-queues the resume
  with a fresh sequence number exactly as the unelided settle hop
  does -- so the dispatch stream (and therefore every digest) is
  identical to arming N timers and cancelling the losers, without the
  loser churn or the compaction pressure.
* The common resume path (``Delay``/spawn) carries the process on the
  timer itself; no per-event closure is allocated.  Timer allocation
  and queue inserts are inlined at the few scheduling sites rather
  than factored through helpers: this file trades repetition for the
  ~40% of dispatch cost that call frames were costing.
* ``pending_events`` is an O(1) counter kept by :meth:`_Timer.cancel`;
  cancelled timers (event-racing ``AnyOf`` losers, disarmed deadlines)
  are skipped lazily and compacted out of the queues when they pile up.
* The default ``"fifo"`` tie-break skips the tie-key indirection
  entirely; the permuting keys exist only for the schedule-race
  sanitizer and pay the call when selected.
"""

from __future__ import annotations

import heapq
from bisect import insort
from collections import deque
from functools import partial
from typing import Any, Callable, Generator, Iterable, List, Optional, Tuple

__all__ = [
    "Delay",
    "Event",
    "AnyOf",
    "Wakeup",
    "Process",
    "Simulator",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for illegal uses of the simulation API."""


class Delay:
    """Yieldable request to sleep for ``ns`` simulated nanoseconds."""

    __slots__ = ("ns",)

    def __init__(self, ns: int):
        if ns < 0:
            raise SimulationError(f"negative delay: {ns}")
        self.ns = int(ns)

    def __repr__(self) -> str:
        return f"Delay({self.ns})"


class Event:
    """A one-shot event that processes can wait on.

    Waiting on an already-fired event resumes immediately with the fired
    value, so there is no race between firing and waiting.
    """

    __slots__ = ("name", "fired", "value", "_waiters")

    def __init__(self, name: str = ""):
        self.name = name
        self.fired = False
        self.value: Any = None
        self._waiters: List[Callable[[Any], None]] = []

    def fire(self, value: Any = None) -> None:
        """Fire the event, waking every current and future waiter."""
        if self.fired:
            raise SimulationError(f"event {self.name!r} fired twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, []
        for waiter in waiters:
            waiter(value)

    def add_waiter(self, callback: Callable[[Any], None]) -> None:
        if self.fired:
            callback(self.value)
        else:
            self._waiters.append(callback)

    def remove_waiter(self, callback: Callable[[Any], None]) -> None:
        try:
            self._waiters.remove(callback)
        except ValueError:
            pass

    def __repr__(self) -> str:
        state = "fired" if self.fired else "pending"
        return f"Event({self.name!r}, {state})"


class Wakeup:
    """Result of an :class:`AnyOf` wait: which source won, and its value."""

    __slots__ = ("index", "source", "value")

    def __init__(self, index: int, source: Any, value: Any):
        self.index = index
        self.source = source
        self.value = value

    def __repr__(self) -> str:
        return f"Wakeup(index={self.index}, source={self.source!r})"


class AnyOf:
    """Yieldable wait on several delays and/or events; first one wins.

    Losing delays are cancelled and losing event subscriptions removed,
    so an ``AnyOf`` leaves no residue once it resumes.
    """

    __slots__ = ("sources",)

    def __init__(self, sources: Iterable[Any]):
        self.sources = list(sources)
        if not self.sources:
            raise SimulationError("AnyOf requires at least one source")
        for src in self.sources:
            if not isinstance(src, (Delay, Event, Process)):
                raise SimulationError(f"AnyOf cannot wait on {src!r}")


ProcessBody = Generator[Any, Any, Any]


class Process:
    """A running simulation process wrapping a generator body."""

    __slots__ = ("sim", "body", "name", "done", "result", "failed", "_finished")

    def __init__(self, sim: "Simulator", body: ProcessBody, name: str):
        self.sim = sim
        self.body = body
        self.name = name
        self.done = Event(f"done:{name}")
        self.result: Any = None
        self.failed: Optional[BaseException] = None
        self._finished = False

    @property
    def finished(self) -> bool:
        return self._finished

    def __repr__(self) -> str:
        state = "finished" if self._finished else "running"
        return f"Process({self.name!r}, {state})"


class _Timer:
    """A cancellable entry in the event queues.

    Ordering lives in the queue tuple ``(when, key, seq, timer)`` (or,
    for now-queue entries, in deque append order), not here.  ``proc``
    is the closure-free fast path: when set, the loop resumes that
    process directly (sending ``value``) instead of calling
    ``callback``.  ``anyof`` marks an elided all-delay :class:`AnyOf`
    winner: it holds the pre-built :class:`Wakeup`, and dispatch
    re-queues the resume (a fresh sequence number at the fire time)
    exactly as the unelided settle path would.
    """

    __slots__ = (
        "when", "callback", "proc", "value", "anyof",
        "_cancelled", "_in_heap", "_sim",
    )

    def __init__(
        self,
        when: int,
        callback: Optional[Callable[[], None]],
        proc: Optional[Process],
        sim: "Simulator",
        value: Any = None,
    ):
        self.when = when
        self.callback = callback
        self.proc = proc
        self.value = value
        self.anyof: Optional[Wakeup] = None
        self._cancelled = False
        self._in_heap = True
        self._sim = sim

    @property
    def cancelled(self) -> bool:
        return self._cancelled

    @cancelled.setter
    def cancelled(self, value: bool) -> None:
        value = bool(value)
        if value == self._cancelled:
            return
        self._cancelled = value
        # keep the simulator's O(1) live/stale accounting in sync, but
        # only while the entry is actually still queued: cancelling a
        # timer that already fired (an AnyOf winner cancelling its own
        # batch, a disarmed deadline) must not corrupt the counters
        if not self._in_heap:
            return
        sim = self._sim
        if value:
            sim._live -= 1
            sim._stale += 1
            if sim._stale > sim._COMPACT_MIN and sim._stale > sim._live:
                sim._compact()
        else:
            sim._live += 1
            sim._stale -= 1

    def cancel(self) -> None:
        self.cancelled = True

    def __repr__(self) -> str:
        state = "cancelled" if self._cancelled else "armed"
        return f"_Timer(when={self.when}, {state})"


#: queue entry type: (when, tie_key, seq, timer)
_HeapEntry = Tuple[int, int, int, _Timer]

#: allocation fast path: ``_new_timer(_Timer)`` + eight slot stores is
#: measurably cheaper than a Python ``__init__`` frame on the paths
#: that allocate one timer per event
_new_timer = _Timer.__new__
_new_wakeup = Wakeup.__new__


class Simulator:
    """The deterministic event loop.

    Typical use::

        sim = Simulator()
        proc = sim.spawn(my_generator(), name="worker")
        sim.run(until=1_000_000)   # or sim.run() to drain all events

    ``scheduler`` selects the queue implementation: ``"calendar"``
    (default) or ``"heap"`` (the single binary heap).  Both dispatch in
    the same ``(when, key, seq)`` total order, so runs are
    digest-identical across the switch; the knob exists for the
    equivalence tests and as an escape hatch.
    """

    #: multiplier for the "seeded" tie-break hash (splitmix64 constant);
    #: pure integer math so permutations replay identically everywhere
    _TIE_MIX = 0x9E3779B97F4A7C15

    #: cancelled entries tolerated in the queues before a compaction pass
    #: (also requires stale > live, so compaction work stays amortized)
    _COMPACT_MIN = 64

    #: calendar ring size (buckets per epoch).  Width x ring is the
    #: epoch span; anything scheduled past it overflows into the heap.
    _N_BUCKETS = 256

    #: initial bucket width in ns; adapted at every epoch rebase
    _INITIAL_WIDTH = 1024

    def __init__(self, tie_break: str = "fifo", scheduler: str = "calendar") -> None:
        if scheduler not in ("calendar", "heap"):
            raise SimulationError(f"unknown scheduler: {scheduler!r}")
        self.now: int = 0
        self._heap: List[_HeapEntry] = []
        self._seq: int = 0
        self._live: int = 0
        self._stale: int = 0
        self._live_processes: int = 0
        self.tie_break = tie_break
        self.scheduler = scheduler
        self._fifo = tie_break == "fifo"
        self._tie_key = self._make_tie_key(tie_break)
        # a permuted tie key breaks the append-in-seq-order invariant
        # the bucket sort and the now queue exploit, so those runs stay
        # on the heap
        self._calendar = scheduler == "calendar" and self._fifo
        #: events at exactly ``self.now``: resume hops, zero delays,
        #: spawns.  Append order is sequence order, so a deque replaces
        #: both the entry tuple and the ordered insert.
        self._now_q: "deque[_Timer]" = deque()
        #: ring of bucket lists; bucket i covers
        #: [base + i*width, base + (i+1)*width)
        self._buckets: List[List[_HeapEntry]] = (
            [[] for _ in range(self._N_BUCKETS)] if self._calendar else []
        )
        self._bucket_base: int = 0
        self._bucket_width: int = self._INITIAL_WIDTH
        self._bucket_span: int = self._INITIAL_WIDTH * self._N_BUCKETS
        #: current bucket index / cursor into its sorted entries
        self._cb: int = 0
        self._ci: int = 0
        #: sequence counter at the last epoch rebase (width adaptation)
        self._rebase_seq: int = 0
        #: optional dispatch profiler (see repro.obs.profile); None keeps
        #: run() on the uninstrumented fast path — zero cost when off
        self._profiler: Optional[Any] = None

    @classmethod
    def _make_tie_key(cls, tie_break: str) -> Callable[[int], int]:
        """Key function ordering same-timestamp timers.

        The default ``"fifo"`` preserves schedule order — the engine's
        documented semantics.  The alternatives exist for the schedule-
        race sanitizer (:mod:`repro.lint.sanitizer`): they permute the
        order of *causally unrelated* same-timestamp events (a timer
        can only run after it was created, so causal chains survive any
        key).  Results that change under a permuted key were riding on
        arbitrary tie order.

        * ``"fifo"``   -- schedule order (default semantics)
        * ``"lifo"``   -- reverse schedule order
        * ``"seeded:N"`` -- deterministic pseudo-random order from salt N
        """
        if tie_break == "fifo":
            return lambda seq: 0
        if tie_break == "lifo":
            return lambda seq: -seq
        if tie_break.startswith("seeded:"):
            salt = int(tie_break.split(":", 1)[1])
            mask = (1 << 64) - 1
            mix = cls._TIE_MIX

            def seeded(seq: int) -> int:
                value = (seq + salt) & mask
                value = ((value ^ (value >> 30)) * 0xBF58476D1CE4E5B9) & mask
                value = ((value ^ (value >> 27)) * mix) & mask
                return value ^ (value >> 31)

            return seeded
        raise SimulationError(f"unknown tie_break: {tie_break!r}")

    # ------------------------------------------------------------------
    # queue primitives
    # ------------------------------------------------------------------

    def _enqueue(self, entry: _HeapEntry) -> None:
        """Queue one tuple entry (``when > now`` or heap mode).

        Calendar inserts pick the bucket by offset; an insert into the
        bucket currently being drained lands (bisected) among its
        *undispatched* suffix, which is exactly where the heap would
        surface it.  The hot scheduling sites inline the common cases
        of this logic; they must stay behaviourally identical to it.
        """
        if self._calendar:
            offset = entry[0] - self._bucket_base
            if offset < self._bucket_span:
                index = offset // self._bucket_width
                cb = self._cb
                if index == cb:
                    insort(self._buckets[index], entry, self._ci)
                elif index > cb:
                    self._buckets[index].append(entry)
                else:
                    # the ring drained past this slot (cursor at the
                    # end, clock moved on); rewind the cursor to it —
                    # every bucket in between is already empty, and the
                    # old current bucket keeps only its undispatched
                    # suffix so the rewound walk cannot replay events
                    if cb < self._N_BUCKETS and self._ci:
                        del self._buckets[cb][: self._ci]
                    self._cb = index
                    self._ci = 0
                    self._buckets[index].append(entry)
                return
        heapq.heappush(self._heap, entry)

    # ------------------------------------------------------------------
    # scheduling primitives
    # ------------------------------------------------------------------

    def schedule(self, delay_ns: int, callback: Callable[[], None]) -> _Timer:
        """Run ``callback`` after ``delay_ns``; returns a cancellable timer."""
        if delay_ns < 0:
            raise SimulationError(f"negative delay: {delay_ns}")
        seq = self._seq + 1
        self._seq = seq
        timer = _Timer(self.now + int(delay_ns), callback, None, self)
        self._live += 1
        if self._calendar and timer.when == self.now:
            self._now_q.append(timer)
        else:
            self._enqueue(
                (timer.when, 0 if self._fifo else self._tie_key(seq), seq, timer)
            )
        return timer

    def _schedule_step(self, delay_ns: int, proc: Process) -> _Timer:
        """Closure-free fast path: resume ``proc`` after ``delay_ns``.

        Equivalent to ``schedule(delay_ns, lambda: self._step(proc))``
        without allocating the lambda; ``delay_ns`` is already
        validated by the caller (``Delay.__init__`` / ``spawn``).
        """
        seq = self._seq + 1
        self._seq = seq
        when = self.now + delay_ns
        timer = _new_timer(_Timer)
        timer.when = when
        timer.callback = None
        timer.proc = proc
        timer.value = None
        timer.anyof = None
        timer._cancelled = False
        timer._in_heap = True
        timer._sim = self
        self._live += 1
        if self._calendar:
            if delay_ns == 0:
                self._now_q.append(timer)
                return timer
            offset = when - self._bucket_base
            if offset < self._bucket_span:
                index = offset // self._bucket_width
                cb = self._cb
                if index == cb:
                    insort(self._buckets[index], (when, 0, seq, timer), self._ci)
                elif index > cb:
                    self._buckets[index].append((when, 0, seq, timer))
                else:
                    self._enqueue((when, 0, seq, timer))
                return timer
            heapq.heappush(self._heap, (when, 0, seq, timer))
            return timer
        self._enqueue(
            (when, 0 if self._fifo else self._tie_key(seq), seq, timer)
        )
        return timer

    def _schedule_resume(self, proc: Process, value: Any) -> _Timer:
        """Resume ``proc`` with ``value`` at the current time, through the
        event loop (AnyOf settle path; closure-free)."""
        seq = self._seq + 1
        self._seq = seq
        timer = _new_timer(_Timer)
        timer.when = self.now
        timer.callback = None
        timer.proc = proc
        timer.value = value
        timer.anyof = None
        timer._cancelled = False
        timer._in_heap = True
        timer._sim = self
        self._live += 1
        if self._calendar:
            self._now_q.append(timer)
        else:
            self._enqueue(
                (timer.when, 0 if self._fifo else self._tie_key(seq), seq, timer)
            )
        return timer

    def call_soon(self, callback: Callable[[], None]) -> _Timer:
        return self.schedule(0, callback)

    def spawn(self, body: ProcessBody, name: str = "proc") -> Process:
        """Create a process from a generator and start it at the current time."""
        proc = Process(self, body, name)
        self._live_processes += 1
        self._schedule_step(0, proc)
        return proc

    # ------------------------------------------------------------------
    # process stepping
    # ------------------------------------------------------------------

    def _step(
        self,
        proc: Process,
        send_value: Any = None,
        throw_exc: Optional[BaseException] = None,
    ) -> None:
        try:
            if throw_exc is not None:
                yielded = proc.body.throw(throw_exc)
            else:
                yielded = proc.body.send(send_value)
        except StopIteration as stop:
            self._finish(proc, getattr(stop, "value", None), None)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via run()
            self._finish(proc, None, exc)
            return
        # hot-kind dispatch inlined here (one call frame per event saved);
        # _arm keeps the full chain for the cold kinds and subclasses
        kind = type(yielded)
        if kind is Delay:
            seq = self._seq + 1
            self._seq = seq
            delay_ns = yielded.ns
            when = self.now + delay_ns
            timer = _new_timer(_Timer)
            timer.when = when
            timer.callback = None
            timer.proc = proc
            timer.value = None
            timer.anyof = None
            timer._cancelled = False
            timer._in_heap = True
            timer._sim = self
            self._live += 1
            if self._calendar:
                if delay_ns == 0:
                    self._now_q.append(timer)
                    return
                offset = when - self._bucket_base
                if offset < self._bucket_span:
                    index = offset // self._bucket_width
                    cb = self._cb
                    if index == cb:
                        insort(
                            self._buckets[index], (when, 0, seq, timer), self._ci
                        )
                    elif index > cb:
                        self._buckets[index].append((when, 0, seq, timer))
                    else:
                        self._enqueue((when, 0, seq, timer))
                    return
                heapq.heappush(self._heap, (when, 0, seq, timer))
                return
            self._enqueue(
                (when, 0 if self._fifo else self._tie_key(seq), seq, timer)
            )
        elif kind is AnyOf:
            sources = yielded.sources
            for source in sources:
                if type(source) is not Delay:
                    self._arm_any_of(proc, yielded)
                    break
            else:
                self._arm_delay_race(proc, sources)
        else:
            self._arm(proc, yielded)

    def _finish(
        self, proc: Process, result: Any, exc: Optional[BaseException]
    ) -> None:
        proc.result = result
        proc.failed = exc
        proc._finished = True
        self._live_processes -= 1
        if exc is not None and not proc.done._waiters:
            raise exc
        proc.done.fire(result if exc is None else exc)

    def _arm(self, proc: Process, yielded: Any) -> None:
        """Arm the wakeup condition a process yielded.

        ``type() is`` checks dodge ``isinstance`` for the exact engine
        types (the only ones the stack yields); the ``isinstance``
        chain at the end keeps subclasses working at the old speed.
        """
        kind = type(yielded)
        if kind is Delay:
            self._schedule_step(yielded.ns, proc)
        elif kind is AnyOf:
            self._arm_any_of(proc, yielded)
        elif kind is Event:
            yielded.add_waiter(partial(self._step, proc))
        elif kind is Process:
            yielded.done.add_waiter(
                partial(self._resume_from_child, proc, yielded)
            )
        elif isinstance(yielded, Delay):
            self._schedule_step(yielded.ns, proc)
        elif isinstance(yielded, AnyOf):
            self._arm_any_of(proc, yielded)
        elif isinstance(yielded, Event):
            yielded.add_waiter(partial(self._step, proc))
        elif isinstance(yielded, Process):
            yielded.done.add_waiter(
                partial(self._resume_from_child, proc, yielded)
            )
        else:
            self._step(
                proc,
                None,
                SimulationError(f"process {proc.name!r} yielded {yielded!r}"),
            )

    def _resume_from_child(
        self, proc: Process, child: Process, _value: Any = None
    ) -> None:
        if child.failed is not None:
            self._step(proc, None, child.failed)
        else:
            self._step(proc, child.result, None)

    def _arm_any_of(self, proc: Process, any_of: AnyOf) -> None:
        sources = any_of.sources
        for source in sources:
            if type(source) is not Delay:
                break
        else:
            self._arm_delay_race(proc, sources)
            return
        settled = [False]
        timers: List[_Timer] = []
        subscriptions: List[tuple] = []

        def settle(index: int, source: Any, value: Any = None) -> None:
            if settled[0]:
                return
            settled[0] = True
            for timer in timers:
                timer.cancel()
            for event, callback in subscriptions:
                event.remove_waiter(callback)
            # resume via the event loop rather than synchronously: a
            # process looping on already-fired sources must not recurse
            self._schedule_resume(proc, Wakeup(index, source, value))

        for index, source in enumerate(any_of.sources):
            if settled[0]:
                break
            if isinstance(source, Delay):
                timers.append(
                    self.schedule(source.ns, partial(settle, index, source))
                )
            elif isinstance(source, Process):
                callback = partial(settle, index, source)
                subscriptions.append((source.done, callback))
                source.done.add_waiter(callback)
            else:  # Event
                callback = partial(settle, index, source)
                subscriptions.append((source, callback))
                source.add_waiter(callback)

    def _arm_delay_race(self, proc: Process, sources: List[Delay]) -> None:
        """Elide an all-delay :class:`AnyOf`: only a race between fixed
        delays has a winner that is a pure function of the arm time, so
        the losers never need to be queued at all.

        Sequence numbers are reserved for every source (one bump per
        delay, in source order, exactly as arming N timers would) and
        the winner is the minimum ``(when, key, seq)`` over them -- the
        same entry the heap would pop first.  Dispatching it re-queues
        the process resume with a fresh sequence number at the fire
        time, matching the unelided settle hop, so the global dispatch
        stream is unchanged while the losers -- and the cancel/compact
        churn they caused -- vanish.
        """
        seq0 = self._seq
        n = len(sources)
        self._seq = seq0 + n
        now = self.now
        if self._fifo:
            if n == 2:
                # the dominant shape (compute-vs-doorbell, work-vs-deadline)
                if sources[1].ns < sources[0].ns:
                    best_index = 1
                    best_when = now + sources[1].ns
                else:
                    best_index = 0
                    best_when = now + sources[0].ns
            else:
                best_index = 0
                best_when = now + sources[0].ns
                for index in range(1, n):
                    when = now + sources[index].ns
                    if when < best_when:
                        best_when = when
                        best_index = index
            best_key = 0
            best_seq = seq0 + 1 + best_index
        else:
            tie_key = self._tie_key
            best_index = 0
            best = (now + sources[0].ns, tie_key(seq0 + 1), seq0 + 1)
            for index in range(1, n):
                seq = seq0 + 1 + index
                candidate = (now + sources[index].ns, tie_key(seq), seq)
                if candidate < best:
                    best = candidate
                    best_index = index
            best_when, best_key, best_seq = best
        wakeup = _new_wakeup(Wakeup)
        wakeup.index = best_index
        wakeup.source = sources[best_index]
        wakeup.value = None
        timer = _new_timer(_Timer)
        timer.when = best_when
        timer.callback = None
        timer.proc = proc
        timer.value = None
        timer.anyof = wakeup
        timer._cancelled = False
        timer._in_heap = True
        timer._sim = self
        self._live += 1
        if self._calendar:
            if best_when == now:
                self._now_q.append(timer)
                return
            offset = best_when - self._bucket_base
            if offset < self._bucket_span:
                index = offset // self._bucket_width
                cb = self._cb
                if index == cb:
                    insort(
                        self._buckets[index],
                        (best_when, best_key, best_seq, timer),
                        self._ci,
                    )
                elif index > cb:
                    self._buckets[index].append(
                        (best_when, best_key, best_seq, timer)
                    )
                else:
                    self._enqueue((best_when, best_key, best_seq, timer))
                return
            heapq.heappush(self._heap, (best_when, best_key, best_seq, timer))
            return
        self._enqueue((best_when, best_key, best_seq, timer))

    def _fire_elided(self, timer: _Timer) -> None:
        """Dispatch an elided-race winner: re-queue the resume at the
        fire time, reusing the timer object (the unelided settle path
        allocates a fresh one; object identity is not observable).
        Matches :meth:`_schedule_resume` including the sequence bump.
        """
        wakeup = timer.anyof
        timer.anyof = None
        timer.value = wakeup
        timer.when = self.now
        timer._in_heap = True
        seq = self._seq + 1
        self._seq = seq
        self._live += 1
        if self._calendar:
            self._now_q.append(timer)
        else:
            self._enqueue(
                (timer.when, 0 if self._fifo else self._tie_key(seq), seq, timer)
            )

    # ------------------------------------------------------------------
    # running
    # ------------------------------------------------------------------

    def _compact(self) -> None:
        """Drop cancelled entries and rebuild the queues (amortized by
        the trigger threshold; keeps cancellation storms from growing
        the queues without bound)."""
        live: List[_HeapEntry] = []
        for entry in self._heap:
            timer = entry[3]
            if timer._cancelled:
                timer._in_heap = False
            else:
                live.append(entry)
        heapq.heapify(live)
        self._heap = live
        if self._calendar:
            current = self._cb
            for index in range(current, self._N_BUCKETS):
                bucket = self._buckets[index]
                if not bucket:
                    continue
                start = self._ci if index == current else 0
                kept = []
                for entry in bucket[start:]:
                    timer = entry[3]
                    if timer._cancelled:
                        timer._in_heap = False
                    else:
                        kept.append(entry)
                bucket[:] = kept
                if index == current:
                    self._ci = 0
            if self._now_q:
                fresh: "deque[_Timer]" = deque()
                for timer in self._now_q:
                    if timer._cancelled:
                        timer._in_heap = False
                    else:
                        fresh.append(timer)
                self._now_q = fresh
        self._stale = 0

    def _rebase(self, until: Optional[int]) -> bool:
        """Start a new calendar epoch at the next heap timer, pulling
        every overflow entry that now falls inside the epoch span.

        The bucket width adapts here: the mean gap between the events
        scheduled during the previous epoch estimates upcoming density.
        Width only changes dispatch *batching*, never dispatch order,
        so any deterministic estimate is digest-safe.
        """
        heap = self._heap
        if not heap:
            return False
        base = heap[0][0]
        if until is not None and base > until:
            return False
        scheduled = self._seq - self._rebase_seq
        self._rebase_seq = self._seq
        if scheduled > 0:
            elapsed = base - self._bucket_base
            gap = elapsed // scheduled
            width = min(max(gap * 8, 64), 1 << 22)
            self._bucket_width = width
            self._bucket_span = width * self._N_BUCKETS
        self._bucket_base = base
        limit = base + self._bucket_span
        width = self._bucket_width
        buckets = self._buckets
        pop = heapq.heappop
        while heap and heap[0][0] < limit:
            entry = pop(heap)
            buckets[(entry[0] - base) // width].append(entry)
        self._cb = 0
        self._ci = 0
        first = buckets[0]
        if len(first) > 1:
            first.sort()
        return True

    def _advance(self, until: Optional[int]) -> Optional[List[_HeapEntry]]:
        """Move the calendar cursor to the next undispatched entry.

        Returns the (sorted) bucket holding it with ``_ci`` pointing at
        it, or ``None`` when the ring and heap are drained past
        ``until``.  Exhausted buckets are cleared in passing; a stop at
        ``until`` trims the dispatched prefix so captures see only
        queued state.  The now queue is the caller's business.
        """
        n_buckets = self._N_BUCKETS
        buckets = self._buckets
        while True:
            cb = self._cb
            if cb < n_buckets:
                bucket = buckets[cb]
                ci = self._ci
                if ci < len(bucket):
                    if until is not None and bucket[ci][0] > until:
                        if ci:
                            del bucket[:ci]
                            self._ci = 0
                        return None
                    return bucket
                if bucket:
                    bucket.clear()
                self._ci = 0
                cb += 1
                self._cb = cb
                if cb < n_buckets:
                    nxt = buckets[cb]
                    if len(nxt) > 1:
                        nxt.sort()
                continue
            if not self._rebase(until):
                return None

    def _pop_next(self, until: Optional[int] = None) -> Optional[_Timer]:
        """Pop the next live timer, discarding cancelled entries.

        The single pop loop shared by :meth:`run_one`, the profiled
        loop and (through them) :meth:`run_until_done`; :meth:`run`
        inlines the same order.  Returns ``None`` when the queues drain
        or the next live timer lies beyond ``until`` (which is then
        left queued).
        """
        if self._calendar:
            now = self.now
            now_q = self._now_q
            while True:
                # bucket entries at the current instant outrank the now
                # queue: they were queued before `now` was reached, so
                # their sequence numbers are strictly smaller
                cb = self._cb
                if cb < self._N_BUCKETS:
                    bucket = self._buckets[cb]
                    ci = self._ci
                    if ci < len(bucket) and bucket[ci][0] == now:
                        self._ci = ci + 1
                        timer = bucket[ci][3]
                        if timer._cancelled:
                            timer._in_heap = False
                            self._stale -= 1
                            continue
                        timer._in_heap = False
                        self._live -= 1
                        return timer
                if now_q:
                    timer = now_q.popleft()
                    if timer._cancelled:
                        timer._in_heap = False
                        self._stale -= 1
                        continue
                    timer._in_heap = False
                    self._live -= 1
                    return timer
                bucket = self._advance(until)
                if bucket is None:
                    return None
                ci = self._ci
                entry = bucket[ci]
                self._ci = ci + 1
                timer = entry[3]
                if timer._cancelled:
                    timer._in_heap = False
                    self._stale -= 1
                    continue
                timer._in_heap = False
                self._live -= 1
                if entry[0] < now:
                    raise SimulationError("time went backwards")
                return timer
        heap = self._heap
        while heap:
            entry = heap[0]
            timer = entry[3]
            if timer._cancelled:
                heapq.heappop(heap)
                timer._in_heap = False
                self._stale -= 1
                continue
            when = entry[0]
            if until is not None and when > until:
                return None
            heapq.heappop(heap)
            timer._in_heap = False
            self._live -= 1
            if when < self.now:
                raise SimulationError("time went backwards")
            return timer
        return None

    def attach_profiler(self, profiler: Any) -> None:
        """Route :meth:`run` through the profiled loop.

        ``profiler`` is duck-typed (see :class:`repro.obs.profile.
        EngineProfiler`): it needs ``clock()`` returning monotonic
        integer nanoseconds and ``note(timer, elapsed_ns, queue_len)``.
        The engine itself never reads a wall clock — the profiler owns
        the (nondeterministic) time source, which is why profiling is
        excluded from digested runs rather than special-cased in them.
        """
        self._profiler = profiler

    def detach_profiler(self) -> None:
        self._profiler = None

    @property
    def profiling(self) -> bool:
        """True while an engine profiler is attached (see
        :meth:`attach_profiler`); consumers that would hide per-event
        detail from it — e.g. compute-span coalescing — check this."""
        return self._profiler is not None

    def run(self, until: Optional[int] = None) -> int:
        """Process events until the queues drain or the clock passes
        ``until``.  Returns the simulated time at which the run stopped.

        On the calendar path the loop drains whole buckets inline:
        one sort orders a batch of same-epoch timers and dispatch walks
        it with a cursor, touching the pop machinery only at bucket
        boundaries; same-instant followups drain straight off the now
        queue.
        """
        if self._profiler is not None:
            return self._run_profiled(until)
        step = self._step
        if not self._calendar:
            pop_next = self._pop_next
            while True:
                timer = pop_next(until)
                if timer is None:
                    break
                self.now = timer.when
                proc = timer.proc
                if proc is not None:
                    if timer.anyof is None:
                        step(proc, timer.value, None)
                    else:
                        self._fire_elided(timer)
                else:
                    timer.callback()
            if until is not None and until > self.now:
                self.now = until
            return self.now
        now_q = self._now_q
        buckets = self._buckets
        n_buckets = self._N_BUCKETS
        while True:
            # 1) same-instant events, unless the current bucket still
            #    holds (earlier-queued) entries at this timestamp
            while now_q:
                cb = self._cb
                if cb < n_buckets:
                    bucket = buckets[cb]
                    ci = self._ci
                    if ci < len(bucket) and bucket[ci][0] == self.now:
                        self._ci = ci + 1
                        timer = bucket[ci][3]
                        if timer._cancelled:
                            timer._in_heap = False
                            self._stale -= 1
                            continue
                        timer._in_heap = False
                        self._live -= 1
                        proc = timer.proc
                        if proc is not None:
                            if timer.anyof is None:
                                step(proc, timer.value, None)
                            else:
                                self._fire_elided(timer)
                        else:
                            timer.callback()
                        continue
                timer = now_q.popleft()
                if timer._cancelled:
                    timer._in_heap = False
                    self._stale -= 1
                    continue
                timer._in_heap = False
                self._live -= 1
                proc = timer.proc
                if proc is not None:
                    if timer.anyof is None:
                        step(proc, timer.value, None)
                    else:
                        self._fire_elided(timer)
                else:
                    timer.callback()
            # 2) batch-drain the current bucket up to `until`
            bucket = self._advance(until)
            if bucket is None:
                break
            while True:
                ci = self._ci
                if ci >= len(bucket):
                    break
                entry = bucket[ci]
                when = entry[0]
                if until is not None and when > until:
                    break
                self._ci = ci + 1
                timer = entry[3]
                if timer._cancelled:
                    timer._in_heap = False
                    self._stale -= 1
                    continue
                timer._in_heap = False
                self._live -= 1
                if when < self.now:
                    raise SimulationError("time went backwards")
                self.now = when
                proc = timer.proc
                if proc is not None:
                    wakeup = timer.anyof
                    if wakeup is None:
                        step(proc, timer.value, None)
                    else:
                        # _fire_elided, inlined: re-queue the resume at
                        # the fire time with a fresh sequence number
                        timer.anyof = None
                        timer.value = wakeup
                        timer._in_heap = True
                        self._seq += 1
                        self._live += 1
                        now_q.append(timer)
                else:
                    timer.callback()
                if now_q:
                    break
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def _run_profiled(self, until: Optional[int] = None) -> int:
        """The :meth:`run` loop with per-dispatch wall-time attribution.

        A separate copy so the common path stays branch-free inside the
        loop; simulated behaviour is identical (same pops, same order).
        """
        profiler = self._profiler
        clock = profiler.clock
        note = profiler.note
        step = self._step
        pop_next = self._pop_next
        while True:
            timer = pop_next(until)
            if timer is None:
                break
            self.now = timer.when
            proc = timer.proc
            start = clock()
            if proc is not None:
                if timer.anyof is None:
                    step(proc, timer.value, None)
                else:
                    self._fire_elided(timer)
            else:
                timer.callback()
            note(timer, clock() - start, self._live + self._stale)
        if until is not None and until > self.now:
            self.now = until
        return self.now

    def run_until_done(self, proc: Process, limit: Optional[int] = None) -> Any:
        """Run until ``proc`` finishes; returns its result, raising its error."""
        while not proc.finished:
            if self._live == 0:
                raise SimulationError(
                    f"deadlock: {proc.name!r} pending with no events queued"
                )
            if limit is not None and self.now > limit:
                raise SimulationError(
                    f"process {proc.name!r} still running at t={self.now}"
                )
            self.run_one()
        if proc.failed is not None:
            raise proc.failed
        return proc.result

    def run_one(self) -> None:
        """Process exactly one (non-cancelled) event."""
        timer = self._pop_next()
        if timer is None:
            return
        self.now = timer.when
        proc = timer.proc
        profiler = self._profiler
        if profiler is not None:
            start = profiler.clock()
            if proc is not None:
                if timer.anyof is None:
                    self._step(proc, timer.value, None)
                else:
                    self._fire_elided(timer)
            else:
                timer.callback()
            profiler.note(
                timer, profiler.clock() - start, self._live + self._stale
            )
            return
        if proc is not None:
            if timer.anyof is None:
                self._step(proc, timer.value, None)
            else:
                self._fire_elided(timer)
        else:
            timer.callback()

    @property
    def pending_events(self) -> int:
        """Live (non-cancelled) timers still queued — O(1)."""
        return self._live
