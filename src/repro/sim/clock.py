"""Time units and helpers.

All simulated time is kept as integer nanoseconds; these helpers make
latency constants and printed results readable.
"""

from __future__ import annotations

__all__ = [
    "NS",
    "US",
    "MS",
    "SEC",
    "ns",
    "us",
    "ms",
    "sec",
    "to_us",
    "to_ms",
    "to_sec",
    "fmt_ns",
]

NS = 1
US = 1_000
MS = 1_000_000
SEC = 1_000_000_000


def ns(value: float) -> int:
    """Nanoseconds (identity, for symmetry)."""
    return int(round(value))


def us(value: float) -> int:
    """Microseconds to integer nanoseconds."""
    return int(round(value * US))


def ms(value: float) -> int:
    """Milliseconds to integer nanoseconds."""
    return int(round(value * MS))


def sec(value: float) -> int:
    """Seconds to integer nanoseconds."""
    return int(round(value * SEC))


def to_us(value_ns: int) -> float:
    return value_ns / US


def to_ms(value_ns: int) -> float:
    return value_ns / MS


def to_sec(value_ns: int) -> float:
    return value_ns / SEC


def fmt_ns(value_ns: float) -> str:
    """Render a duration with a human-appropriate unit."""
    value_ns = float(value_ns)
    if abs(value_ns) >= SEC:
        return f"{value_ns / SEC:.3f} s"
    if abs(value_ns) >= MS:
        return f"{value_ns / MS:.3f} ms"
    if abs(value_ns) >= US:
        return f"{value_ns / US:.2f} us"
    return f"{value_ns:.1f} ns"
