"""Synchronization primitives built on the simulation kernel.

These model the shared-memory constructs the real system uses: doorbell
notifications (IPIs ring these), bounded FIFO channels (virtqueues, RPC
rings) and mutexes (host kernel locks).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Generator, List, Optional

from .engine import Event, SimulationError

__all__ = ["Notify", "Channel", "Mutex", "CountingSemaphore"]


class Notify:
    """A re-armable notification ("doorbell").

    Unlike :class:`Event`, a ``Notify`` can fire many times.  Each call to
    :meth:`wait` returns a fresh one-shot event for the *next* signal.  A
    signal with no waiter is remembered (level-triggered), matching how an
    IPI pends in the interrupt controller until acknowledged.
    """

    def __init__(self, name: str = ""):
        self.name = name
        self._pending = 0
        self._waiters: List[Event] = []
        self.signal_count = 0

    def signal(self, value: Any = None) -> None:
        """Wake one waiter, or remember the signal if nobody waits."""
        self.signal_count += 1
        if self._waiters:
            self._waiters.pop(0).fire(value)
        else:
            self._pending += 1

    def wait(self) -> Event:
        """Return an event that fires on the next (or a pending) signal."""
        event = Event(f"notify:{self.name}")
        if self._pending:
            self._pending -= 1
            event.fire(None)
        else:
            self._waiters.append(event)
        return event

    def cancel_wait(self, event: Event) -> None:
        """Withdraw a waiter obtained from :meth:`wait`.

        If the event already fired, the consumed signal is returned to
        the pending pool so no notification is lost; otherwise the
        waiter is simply removed.
        """
        if event.fired:
            self._pending += 1
        else:
            try:
                self._waiters.remove(event)
            except ValueError:
                pass

    def clear(self) -> None:
        """Drop any remembered (unconsumed) signals."""
        self._pending = 0

    @property
    def pending(self) -> bool:
        return self._pending > 0


class Channel:
    """A bounded FIFO channel with blocking get (and optionally put).

    Models shared-memory rings: RPC request/response rings, virtqueues.
    """

    def __init__(self, name: str = "", capacity: Optional[int] = None):
        self.name = name
        self.capacity = capacity
        self._items: Deque[Any] = deque()
        self._getters: List[Event] = []
        self._putters: List[Event] = []
        self.put_count = 0
        self.get_count = 0

    def __len__(self) -> int:
        return len(self._items)

    @property
    def full(self) -> bool:
        return self.capacity is not None and len(self._items) >= self.capacity

    def try_put(self, item: Any) -> bool:
        """Non-blocking put; returns False when the channel is full."""
        if self.full:
            return False
        self.put_count += 1
        if self._getters:
            self._getters.pop(0).fire(item)
        else:
            self._items.append(item)
        return True

    def put(self, item: Any) -> Generator:
        """Blocking put (a generator to ``yield from``)."""
        while not self.try_put(item):
            event = Event(f"chan-put:{self.name}")
            self._putters.append(event)
            yield event
        return None

    def try_get(self) -> tuple:
        """Non-blocking get; returns ``(ok, item)``."""
        if not self._items:
            return False, None
        item = self._items.popleft()
        self.get_count += 1
        if self._putters:
            self._putters.pop(0).fire(None)
        return True, item

    def get(self) -> Generator:
        """Blocking get (a generator to ``yield from``); returns the item."""
        ok, item = self.try_get()
        if ok:
            return item
        event = Event(f"chan-get:{self.name}")
        self._getters.append(event)
        item = yield event
        self.get_count += 1
        return item

    def peek(self) -> Any:
        if not self._items:
            raise SimulationError(f"peek on empty channel {self.name!r}")
        return self._items[0]


class Mutex:
    """A FIFO mutex."""

    def __init__(self, name: str = ""):
        self.name = name
        self._locked = False
        self._waiters: List[Event] = []

    @property
    def locked(self) -> bool:
        return self._locked

    def acquire(self) -> Generator:
        if not self._locked:
            self._locked = True
            return
            yield  # pragma: no cover - makes this a generator
        event = Event(f"mutex:{self.name}")
        self._waiters.append(event)
        yield event

    def release(self) -> None:
        if not self._locked:
            raise SimulationError(f"release of unlocked mutex {self.name!r}")
        if self._waiters:
            self._waiters.pop(0).fire(None)
        else:
            self._locked = False


class CountingSemaphore:
    """A counting semaphore with FIFO wakeup order."""

    def __init__(self, initial: int, name: str = ""):
        if initial < 0:
            raise SimulationError("semaphore count must be non-negative")
        self.name = name
        self._count = initial
        self._waiters: List[Event] = []

    @property
    def count(self) -> int:
        return self._count

    def acquire(self) -> Generator:
        if self._count > 0:
            self._count -= 1
            return
            yield  # pragma: no cover - makes this a generator
        event = Event(f"sem:{self.name}")
        self._waiters.append(event)
        yield event

    def release(self) -> None:
        if self._waiters:
            self._waiters.pop(0).fire(None)
        else:
            self._count += 1
