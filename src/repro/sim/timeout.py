"""Timeout and deadline primitives for bounded waits.

The happy-path simulation never needed these: every IPI arrives and
every RPC completes.  Under fault injection (:mod:`repro.faults`) a
wait can become unbounded, and the hardening paths -- the wake-up
watchdog, bounded-retry run-call waits, sync-RPC deadlines -- all share
the same building block: *race an event against the clock*.

:func:`with_timeout` wraps an :class:`~repro.sim.engine.Event` into a
new event that fires either with the inner event's value or with the
:data:`TIMED_OUT` sentinel, whichever comes first.  The loser is
cancelled (timer cancelled / waiter removed), so repeated guarded waits
leave no residue on the inner event.
"""

from __future__ import annotations

from typing import Optional

from .engine import Event, SimulationError, Simulator

__all__ = ["TIMED_OUT", "with_timeout", "Deadline", "RetryPolicy"]


class _TimedOut:
    """Singleton sentinel distinguishing a timeout from any fired value."""

    __slots__ = ()

    def __repr__(self) -> str:
        return "TIMED_OUT"


#: the value a :func:`with_timeout` event fires with when the clock wins
TIMED_OUT = _TimedOut()


def with_timeout(
    sim: Simulator, event: Event, timeout_ns: int, name: str = "timeout"
) -> Event:
    """Race ``event`` against ``timeout_ns``; returns the guarded event.

    The returned event fires exactly once: with the inner event's value
    if it fires within the window, otherwise with :data:`TIMED_OUT`.
    An already-fired inner event resolves immediately.
    """
    if timeout_ns <= 0:
        raise SimulationError(f"non-positive timeout: {timeout_ns}")
    guarded = Event(name)
    if event.fired:
        guarded.fire(event.value)
        return guarded

    def on_inner(value) -> None:
        if guarded.fired:
            return
        timer.cancelled = True
        guarded.fire(value)

    def on_timeout() -> None:
        if guarded.fired:
            return
        event.remove_waiter(on_inner)
        guarded.fire(TIMED_OUT)

    event.add_waiter(on_inner)
    timer = sim.schedule(timeout_ns, on_timeout)
    return guarded


class Deadline:
    """An absolute point in simulated time that work must not outlive."""

    __slots__ = ("sim", "at_ns")

    def __init__(self, sim: Simulator, budget_ns: int):
        if budget_ns < 0:
            raise SimulationError(f"negative deadline budget: {budget_ns}")
        self.sim = sim
        self.at_ns = sim.now + int(budget_ns)

    @property
    def expired(self) -> bool:
        return self.sim.now >= self.at_ns

    def remaining_ns(self) -> int:
        return max(0, self.at_ns - self.sim.now)


class RetryPolicy:
    """Bounded retry with exponential backoff (integer nanoseconds).

    ``timeouts()`` yields the per-attempt timeout sequence: the first
    wait uses ``first_timeout_ns`` and each retry doubles it (capped at
    ``max_timeout_ns``), for ``max_retries`` retries after the initial
    attempt.

    With ``jitter > 0`` each yielded wait is stretched by a uniform
    draw in ``[0, jitter]`` of itself (full additive jitter, so waits
    never shrink below the deterministic schedule).  The draws come
    from a ``random.Random`` stream handed in by the caller -- obtained
    from the machine's :class:`~repro.sim.rng.RngFactory` under a
    ``retry:``-prefixed name -- so jittered schedules replay
    bit-identically and never couple to another consumer's stream.
    ``timeout_for`` stays pure (no draws); only ``timeouts()`` applies
    jitter, which is the sequence retry loops actually consume.
    """

    __slots__ = (
        "first_timeout_ns",
        "max_retries",
        "max_timeout_ns",
        "jitter",
        "rng",
    )

    def __init__(
        self,
        first_timeout_ns: int,
        max_retries: int,
        max_timeout_ns: Optional[int] = None,
        jitter: float = 0.0,
        rng=None,
    ):
        if first_timeout_ns <= 0:
            raise SimulationError(
                f"non-positive retry timeout: {first_timeout_ns}"
            )
        if max_retries < 0:
            raise SimulationError(f"negative max_retries: {max_retries}")
        if jitter < 0.0:
            raise SimulationError(f"negative retry jitter: {jitter}")
        if jitter > 0.0 and rng is None:
            raise SimulationError(
                "jittered RetryPolicy needs an rng stream (pass "
                "machine.rng.stream('retry:<consumer>'))"
            )
        self.first_timeout_ns = int(first_timeout_ns)
        self.max_retries = int(max_retries)
        self.max_timeout_ns = (
            None if max_timeout_ns is None else int(max_timeout_ns)
        )
        self.jitter = float(jitter)
        self.rng = rng

    def timeout_for(self, attempt: int) -> int:
        """Deterministic (un-jittered) timeout for attempt ``attempt``
        (0 = the initial wait)."""
        timeout = self.first_timeout_ns << attempt
        if self.max_timeout_ns is not None:
            timeout = min(timeout, self.max_timeout_ns)
        return timeout

    def timeouts(self):
        for attempt in range(self.max_retries + 1):
            timeout = self.timeout_for(attempt)
            if self.jitter > 0.0:
                timeout += int(timeout * self.jitter * self.rng.random())
            yield timeout

    def total_budget_ns(self) -> int:
        """Worst-case wait across all attempts (jitter at its maximum)."""
        base = sum(self.timeout_for(a) for a in range(self.max_retries + 1))
        return base + int(base * self.jitter)
