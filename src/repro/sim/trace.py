"""Trace recording for simulated schedules.

The security auditor (``repro.security.audit``) consumes these traces to
prove the core-gap invariant; the experiment harnesses use the counters
for exit accounting (Table 4) and CPU-time conservation checks.
"""

from __future__ import annotations

from bisect import bisect_right
from collections import Counter, defaultdict
from dataclasses import dataclass
from typing import Any, Dict, Iterator, List, Optional, Tuple

__all__ = ["TraceRecord", "Tracer", "ExecutionSpan"]


@dataclass(frozen=True)
class TraceRecord:
    """One timestamped trace event."""

    time: int
    kind: str
    core: Optional[int] = None
    domain: Optional[str] = None
    detail: Optional[Any] = None


@dataclass(frozen=True)
class ExecutionSpan:
    """A contiguous interval during which a domain occupied a core."""

    core: int
    domain: str
    start: int
    end: int

    @property
    def duration(self) -> int:
        return self.end - self.start


class Tracer:
    """Records trace events, execution spans, named counters and gauges.

    ``enabled=False`` keeps only the counters, so the large macro
    benchmarks do not pay the cost of storing full schedules.

    Two record-producing entry points with different contracts:

    * :meth:`record` — counts *and* (when enabled) stores the record;
      the counter side is part of the accounting surface and moves the
      sanitizer digest (DESIGN.md invariant #6).
    * :meth:`event` — pure observability: stores the record only when
      enabled and **never** touches the counters, so instrumented and
      uninstrumented runs digest bit-identically when tracing is off.
      The Perfetto exporter (:mod:`repro.obs.perfetto`) consumes these.
    """

    def __init__(self, enabled: bool = True):
        self.enabled = enabled
        self.records: List[TraceRecord] = []
        self.counters: Counter = Counter()
        #: last-write-wins named scalars, harvested at the end of a run
        #: (structural totals like ``gic_sgi_sent_count``); never part
        #: of the sanitizer digest
        self.gauges: Dict[str, float] = {}
        self._open_spans: Dict[int, Tuple[str, int]] = {}
        self.spans: List[ExecutionSpan] = []
        #: (time, core, domain) marks where a scrubbed ownership change
        #: ended a domain's tenure on a core (monitor unbind/rebind).
        #: Always recorded -- the core-gap auditor needs them to split
        #: occupancy windows even when record storage is disabled --
        #: and, like gauges, never part of the sanitizer digest.
        self.tenure_cuts: List[TraceRecord] = []
        self._samples: Dict[str, List[float]] = defaultdict(list)

    # -- events ---------------------------------------------------------

    def record(
        self,
        time: int,
        kind: str,
        core: Optional[int] = None,
        domain: Optional[str] = None,
        detail: Optional[Any] = None,
    ) -> None:
        self.counters[kind] += 1
        if self.enabled:
            self.records.append(TraceRecord(time, kind, core, domain, detail))

    def event(
        self,
        time: int,
        kind: str,
        core: Optional[int] = None,
        domain: Optional[str] = None,
        detail: Optional[Any] = None,
    ) -> None:
        """Store a pure-observability record; no-op when disabled."""
        if self.enabled:
            self.records.append(TraceRecord(time, kind, core, domain, detail))

    def count(self, kind: str, amount: int = 1) -> None:
        self.counters[kind] += amount

    def tenure_cut(self, time: int, core: int, domain: str) -> None:
        """Mark a scrubbed ownership change: ``domain``'s tenure on
        ``core`` ends now.  Recorded regardless of ``enabled``."""
        self.tenure_cuts.append(
            TraceRecord(time, "tenure-cut", core, domain, None)
        )

    def sample(self, name: str, value: float) -> None:
        """Record one scalar observation (latency, size, ...)."""
        self._samples[name].append(value)

    def samples(self, name: str) -> List[float]:
        return self._samples.get(name, [])

    def set_gauge(self, name: str, value: float) -> None:
        """Publish a last-write-wins scalar (end-of-run totals)."""
        self.gauges[name] = value

    # -- execution spans --------------------------------------------------

    def begin_span(self, time: int, core: int, domain: str) -> None:
        """Mark that ``domain`` starts executing on ``core``."""
        if core in self._open_spans:
            self.end_span(time, core)
        self._open_spans[core] = (domain, time)

    def end_span(self, time: int, core: int) -> None:
        """Close the open execution span on ``core`` (no-op if none)."""
        open_span = self._open_spans.pop(core, None)
        if open_span is None:
            return
        domain, start = open_span
        if time > start:
            self.spans.append(ExecutionSpan(core, domain, start, time))

    def insert_span(self, core: int, domain: str, start: int, end: int) -> None:
        """Record a closed span directly, keeping end-time order.

        ``end_span`` appends because real time only moves forward; span
        coalescing (:meth:`repro.hw.core.PhysicalCore.execute_span`)
        synthesizes past chunks retroactively, so their spans must be
        placed where a live run would have appended them.  Within one
        end time the new span goes after existing ones — the order a
        same-instant append would have produced.  Zero-length spans are
        dropped, matching :meth:`end_span`.
        """
        if end <= start:
            return
        spans = self.spans
        if not spans or spans[-1].end <= end:
            spans.append(ExecutionSpan(core, domain, start, end))
            return
        index = bisect_right(spans, end, key=lambda s: s.end)
        spans.insert(index, ExecutionSpan(core, domain, start, end))

    def close_all_spans(self, time: int) -> None:
        for core in list(self._open_spans):
            self.end_span(time, core)

    # -- queries ----------------------------------------------------------

    def spans_on_core(self, core: int) -> Iterator[ExecutionSpan]:
        return (s for s in self.spans if s.core == core)

    def domains_on_core(self, core: int) -> List[str]:
        """Distinct domains that ever executed on ``core``, in order."""
        seen: List[str] = []
        for span in self.spans_on_core(core):
            if span.domain not in seen:
                seen.append(span.domain)
        return seen

    def busy_time(self, core: Optional[int] = None, domain: Optional[str] = None) -> int:
        """Total span time, filtered by core and/or domain."""
        total = 0
        for span in self.spans:
            if core is not None and span.core != core:
                continue
            if domain is not None and span.domain != domain:
                continue
            total += span.duration
        return total
