"""Discrete-event simulation kernel: engine, sync primitives, tracing."""

from .clock import MS, NS, SEC, US, fmt_ns, ms, ns, sec, to_ms, to_sec, to_us, us
from .engine import AnyOf, Delay, Event, Process, SimulationError, Simulator, Wakeup
from .rng import RngFactory
from .sync import Channel, CountingSemaphore, Mutex, Notify
from .trace import ExecutionSpan, TraceRecord, Tracer

__all__ = [
    "AnyOf",
    "Channel",
    "CountingSemaphore",
    "Delay",
    "Event",
    "ExecutionSpan",
    "Mutex",
    "Notify",
    "Process",
    "RngFactory",
    "SimulationError",
    "Simulator",
    "TraceRecord",
    "Tracer",
    "Wakeup",
    "MS",
    "NS",
    "SEC",
    "US",
    "fmt_ns",
    "ms",
    "ns",
    "sec",
    "to_ms",
    "to_sec",
    "to_us",
    "us",
]
