"""Discrete-event simulation kernel: engine, sync primitives, tracing."""

from .clock import MS, NS, SEC, US, fmt_ns, ms, ns, sec, to_ms, to_sec, to_us, us
from .engine import AnyOf, Delay, Event, Process, SimulationError, Simulator, Wakeup
from .rng import RngFactory
from .sync import Channel, CountingSemaphore, Mutex, Notify
from .timeout import TIMED_OUT, Deadline, RetryPolicy, with_timeout
from .trace import ExecutionSpan, TraceRecord, Tracer

__all__ = [
    "AnyOf",
    "Channel",
    "CountingSemaphore",
    "Deadline",
    "Delay",
    "Event",
    "ExecutionSpan",
    "Mutex",
    "Notify",
    "Process",
    "RetryPolicy",
    "RngFactory",
    "SimulationError",
    "Simulator",
    "TIMED_OUT",
    "TraceRecord",
    "Tracer",
    "Wakeup",
    "with_timeout",
    "MS",
    "NS",
    "SEC",
    "US",
    "fmt_ns",
    "ms",
    "ns",
    "sec",
    "to_ms",
    "to_sec",
    "to_us",
    "us",
]
