"""Side-channel primitives over the simulated microarchitecture.

These are the attacker's building blocks, implemented against the real
(simulated) structures in :mod:`repro.hw`:

* prime+probe on a set-associative cache (L1 if same core, LLC across
  cores);
* branch-target injection via BTB aliasing (Spectre-v2 shape);
* store-buffer forwarding leaks (MDS/Fallout shape).

Each primitive works on *state*, so the attack experiments compose them
with schedules: the same attacker code succeeds when it shares a core
with the victim and fails when core-gapped.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..hw.cache import SetAssociativeCache
from ..hw.core import PhysicalCore
from ..isa.worlds import SecurityDomain

__all__ = [
    "prime_sets",
    "probe_sets",
    "eviction_addresses",
    "btb_inject",
    "btb_probe",
    "store_buffer_leak",
]

#: threshold separating an L1 hit from anything slower (ns at 3 GHz)
L1_HIT_THRESHOLD_NS = 2.0


def eviction_addresses(
    cache: SetAssociativeCache, set_index: int, base: int = 1 << 24
) -> List[int]:
    """Addresses that together fill one set of ``cache``."""
    geometry = cache.geometry
    stride = geometry.line_bytes * geometry.n_sets
    first = base + set_index * geometry.line_bytes
    return [first + way * stride for way in range(geometry.ways)]


def prime_sets(
    core: PhysicalCore,
    domain: SecurityDomain,
    sets: Sequence[int],
) -> Dict[int, List[int]]:
    """Fill the given L1D sets with attacker lines; returns the address
    map used, for the later probe."""
    plan: Dict[int, List[int]] = {}
    for set_index in sets:
        addrs = eviction_addresses(core.uarch.l1d, set_index)
        for addr in addrs:
            core.access_memory(addr, domain)
        plan[set_index] = addrs
    return plan


def probe_sets(
    core: PhysicalCore,
    domain: SecurityDomain,
    plan: Dict[int, List[int]],
) -> Dict[int, bool]:
    """Re-access the primed lines and time them.  A slow (non-L1) access
    means somebody evicted our line from that set: activity detected."""
    result: Dict[int, bool] = {}
    for set_index, addrs in plan.items():
        worst = max(core.probe_latency(addr, domain) for addr in addrs)
        result[set_index] = worst > L1_HIT_THRESHOLD_NS
    return result


def btb_inject(
    core: PhysicalCore,
    attacker: SecurityDomain,
    victim_branch_pc: int,
    gadget_target: int,
) -> None:
    """Train the core's BTB so the victim's branch predicts to the
    attacker's gadget (Spectre-v2 shape).  Only affects *this core's*
    predictor -- the whole point of the experiment."""
    predictor = core.uarch.branch
    # find an attacker-controlled PC aliasing with the victim's slot
    alias = victim_branch_pc + predictor.btb_size
    predictor.train(alias, gadget_target, attacker)


def btb_probe(
    core: PhysicalCore, victim_branch_pc: int, gadget_target: int
) -> bool:
    """Would the victim's branch at ``victim_branch_pc`` speculatively
    jump to the attacker's gadget on this core right now?"""
    entry = core.uarch.branch.predict(victim_branch_pc)
    return entry is not None and entry.target == gadget_target


def store_buffer_leak(
    core: PhysicalCore, attacker: SecurityDomain, victim_addr: int
) -> Optional[int]:
    """MDS/Fallout shape: a faulting attacker load transiently forwards
    from a (victim) store still sitting in this core's store buffer."""
    entry = core.uarch.store_buffer.forward(victim_addr)
    if entry is None or entry.domain == attacker:
        return None
    return entry.value
