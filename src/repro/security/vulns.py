"""The vulnerability catalog behind fig. 3.

Disclosed transient-execution vulnerabilities and architectural CPU bugs
that broke processor security isolation on mainstream CPUs since 2018,
classified by the *sharing scope* an attacker needs:

* ``SAME_CORE`` -- attacker and victim must time-slice one core
  (context-switch boundary attacks, per-core structures);
* ``SIBLING_THREAD`` -- attacker on the other hardware thread of the
  victim's core (still same physical core);
* ``CROSS_CORE`` -- exploitable from a different physical core;
* ``REMOTE`` -- exploitable over the network.

Core gapping removes every same-core and sibling-thread channel from
the guest's TCB.  The paper's headline observation (S2.2): across 30+
vulnerabilities, only **CrossTalk** demonstrated a cross-core leak
severe enough for vendor advisories in cloud-VM settings, and only
**NetSpectre** works remotely (at <10 bits/hour).  GhostRace is nominally
cross-core but requires a kernel shared between attacker and victim
cores, which core gapping precludes.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "Scope",
    "Kind",
    "Vulnerability",
    "CATALOG",
    "mitigated_by_core_gapping",
    "timeline",
    "unmitigated",
    "render_fig3",
]


class Scope(enum.Enum):
    SAME_CORE = "same-core"
    SIBLING_THREAD = "sibling-thread"
    CROSS_CORE = "cross-core"
    REMOTE = "remote"


class Kind(enum.Enum):
    TRANSIENT = "transient-execution"
    ARCH_BUG = "architectural-bug"


@dataclass(frozen=True)
class Vulnerability:
    name: str
    year: int
    kind: Kind
    scope: Scope
    vendors: Tuple[str, ...]
    #: shared structure exploited
    structure: str
    #: special condition that changes the core-gapping verdict
    needs_shared_kernel: bool = False
    notes: str = ""


def _v(name, year, kind, scope, vendors, structure, **kw):
    return Vulnerability(name, year, kind, scope, tuple(vendors), structure, **kw)


#: fig. 3's timeline (paper references [3,10,14,16,17,22,26-29,32,36,40,
#: 42,44,48,51-55,57,60-62,65-67,69-72,75,76,78,79] and more)
CATALOG: List[Vulnerability] = [
    _v("Spectre", 2018, Kind.TRANSIENT, Scope.SAME_CORE,
       ("Intel", "AMD", "Arm"), "branch predictor"),
    _v("Meltdown", 2018, Kind.TRANSIENT, Scope.SAME_CORE,
       ("Intel", "Arm"), "L1D / permission check bypass"),
    _v("Spectre-SSB (v4)", 2018, Kind.TRANSIENT, Scope.SAME_CORE,
       ("Intel", "AMD", "Arm"), "store buffer (speculative store bypass)"),
    _v("LazyFP", 2018, Kind.TRANSIENT, Scope.SAME_CORE,
       ("Intel",), "FPU register file"),
    _v("Foreshadow/L1TF", 2018, Kind.TRANSIENT, Scope.SIBLING_THREAD,
       ("Intel",), "L1D cache"),
    _v("NetSpectre", 2019, Kind.TRANSIENT, Scope.REMOTE,
       ("Intel", "AMD", "Arm"), "branch predictor via network timing",
       notes="<10 bits/hour in a cloud setting"),
    _v("ZombieLoad", 2019, Kind.TRANSIENT, Scope.SIBLING_THREAD,
       ("Intel",), "fill buffers (MDS)"),
    _v("RIDL", 2019, Kind.TRANSIENT, Scope.SIBLING_THREAD,
       ("Intel",), "line fill buffers / load ports (MDS)"),
    _v("Fallout", 2019, Kind.TRANSIENT, Scope.SAME_CORE,
       ("Intel",), "store buffer"),
    _v("SWAPGS speculation", 2019, Kind.TRANSIENT, Scope.SAME_CORE,
       ("Intel",), "segment registers / speculation"),
    _v("iTLB multihit", 2019, Kind.ARCH_BUG, Scope.SAME_CORE,
       ("Intel",), "instruction TLB"),
    _v("Plundervolt", 2020, Kind.ARCH_BUG, Scope.SAME_CORE,
       ("Intel",), "voltage interface fault injection"),
    _v("LVI", 2020, Kind.TRANSIENT, Scope.SAME_CORE,
       ("Intel",), "load value injection via µarch buffers"),
    _v("CacheOut", 2020, Kind.TRANSIENT, Scope.SIBLING_THREAD,
       ("Intel",), "L1D eviction sampling"),
    _v("Snoop-assisted L1 sampling", 2020, Kind.TRANSIENT, Scope.SAME_CORE,
       ("Intel",), "L1D snoops"),
    _v("CrossTalk", 2020, Kind.TRANSIENT, Scope.CROSS_CORE,
       ("Intel",), "shared staging buffer (RDRAND/CPUID)",
       notes="the one severe cross-core leak (S2.2)"),
    _v("Straight-line speculation", 2020, Kind.TRANSIENT, Scope.SAME_CORE,
       ("Arm",), "speculation past unconditional control flow"),
    _v("I see dead uops", 2021, Kind.TRANSIENT, Scope.SIBLING_THREAD,
       ("Intel", "AMD"), "micro-op cache"),
    _v("Branch History Injection", 2022, Kind.TRANSIENT, Scope.SAME_CORE,
       ("Intel", "Arm"), "branch history buffer"),
    _v("Retbleed", 2022, Kind.TRANSIENT, Scope.SAME_CORE,
       ("Intel", "AMD"), "return stack / BTB underflow"),
    _v("PACMAN", 2022, Kind.TRANSIENT, Scope.SAME_CORE,
       ("Arm",), "pointer authentication oracles"),
    _v("Augury", 2022, Kind.TRANSIENT, Scope.SAME_CORE,
       ("Arm",), "data memory-dependent prefetcher"),
    _v("AEPIC leak", 2022, Kind.ARCH_BUG, Scope.SAME_CORE,
       ("Intel",), "local APIC undefined-range reads"),
    _v("MMIO stale data", 2022, Kind.ARCH_BUG, Scope.SAME_CORE,
       ("Intel",), "MMIO propagation of stale fill-buffer data"),
    _v("Inception", 2023, Kind.TRANSIENT, Scope.SAME_CORE,
       ("AMD",), "return predictions via phantom speculation"),
    _v("Downfall", 2023, Kind.TRANSIENT, Scope.SIBLING_THREAD,
       ("Intel",), "gather data sampling (vector registers)"),
    _v("Zenbleed", 2023, Kind.ARCH_BUG, Scope.SAME_CORE,
       ("AMD",), "vector register file leak"),
    _v("Reptar", 2023, Kind.ARCH_BUG, Scope.SAME_CORE,
       ("Intel",), "redundant-prefix instruction decode"),
    _v("(M)WAIT for it", 2023, Kind.TRANSIENT, Scope.CROSS_CORE,
       ("Intel", "AMD"), "monitor/mwait coherence-state timing",
       notes="side channel only; no transient leak of victim data"),
    _v("Speculation at fault", 2023, Kind.TRANSIENT, Scope.SAME_CORE,
       ("Intel", "Arm"), "exception-path speculation"),
    _v("GhostRace", 2024, Kind.TRANSIENT, Scope.CROSS_CORE,
       ("Intel", "AMD", "Arm"), "speculative race conditions",
       needs_shared_kernel=True,
       notes="requires a kernel shared across cores: mitigated by gapping"),
    _v("GoFetch", 2024, Kind.TRANSIENT, Scope.SAME_CORE,
       ("Apple",), "data memory-dependent prefetcher"),
    _v("CacheWarp", 2024, Kind.ARCH_BUG, Scope.SAME_CORE,
       ("AMD",), "INVD selective state reset on SEV VMs"),
    _v("TikTag", 2024, Kind.TRANSIENT, Scope.SAME_CORE,
       ("Arm",), "MTE tag-check speculation"),
    _v("Leaky Address Masking", 2024, Kind.TRANSIENT, Scope.SAME_CORE,
       ("Intel",), "non-canonical address translation gadgets"),
    _v("InSpectre Gadget", 2024, Kind.TRANSIENT, Scope.SAME_CORE,
       ("Intel",), "residual cross-privilege Spectre-v2 surface"),
]


def mitigated_by_core_gapping(vuln: Vulnerability) -> bool:
    """Does removing same-core sharing (incl. sibling threads, and any
    shared kernel) close this vulnerability for CVM guests?"""
    if vuln.scope in (Scope.SAME_CORE, Scope.SIBLING_THREAD):
        return True
    if vuln.needs_shared_kernel:
        return True
    return False


def timeline() -> List[Vulnerability]:
    return sorted(CATALOG, key=lambda v: (v.year, v.name))


def unmitigated() -> List[Vulnerability]:
    return [v for v in timeline() if not mitigated_by_core_gapping(v)]


def render_fig3() -> str:
    """Text rendering of fig. 3: the timeline with gapping verdicts."""
    lines = [
        "Fig. 3: processor isolation breaks since 2018 "
        "(X = mitigated by core gapping)",
        "",
    ]
    year = None
    for vuln in timeline():
        if vuln.year != year:
            year = vuln.year
            lines.append(f"--- {year} ---")
        mark = "X" if mitigated_by_core_gapping(vuln) else "!"
        lines.append(
            f" [{mark}] {vuln.name:<28} {vuln.scope.value:<14} "
            f"{vuln.structure}"
        )
    total = len(CATALOG)
    closed = sum(1 for v in CATALOG if mitigated_by_core_gapping(v))
    lines.append("")
    lines.append(
        f"{closed}/{total} closed by core gapping; remaining: "
        + ", ".join(v.name for v in unmitigated())
    )
    return "\n".join(lines)
