"""Residual-leakage scoring for isolation policies.

The defense-comparison sweep needs one number per policy answering "how
much does a co-located attacker still learn?".  This module provides a
seeded prime+probe observer that drives the attack of
:mod:`repro.security.attacker` *through* an isolation policy
(:mod:`repro.hw.policy`): the policy's :meth:`on_switch` hook fires at
every attacker<->victim domain switch, exactly where the monitor would
invoke it on real hardware, and the policy's placement flag decides
whether the two domains share a core at all.

Three signals are scored per run:

* **accuracy** -- the fraction of secret bits the prime+probe attacker
  recovers (1.0 = full leak, ~0.5 = chance);
* **cross-domain pollution** -- the refill debt the victim's execution
  deposits on the attacker's core, observed via
  :class:`~repro.hw.uarch.PollutionModel` (the covert-channel *and*
  performance face of sharing);
* **residency** -- which tagged structures on the attacker's core still
  hold victim state when the run ends (``flush_all`` leaves the
  per-core L2 warm, so a flush-on-switch policy always shows an ``l2``
  residue -- the caveat the paper's core-reassignment scrub exists for).

The secret is derived with :func:`repro.sim.rng.derive_seed` so the
probe is deterministic per seed without constructing an RNG factory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import FrozenSet, List, Tuple

from ..hw.machine import Machine
from ..hw.policy import IsolationPolicy
from ..hw.topology import SocTopology
from ..isa.worlds import realm_domain
from ..sim.rng import derive_seed
from .attacker import AttackResult
from .channels import eviction_addresses, prime_sets, probe_sets

__all__ = [
    "LeakageResult",
    "leakage_probe",
    "secret_bits",
    "tolerated_residency",
]

#: the two L1D sets carrying the covert channel (as in attacker.py)
_SET0, _SET1 = 3, 11
#: modelled victim compute per secret-dependent access; drives the
#: pollution charge the attacker's core absorbs when sharing
_VICTIM_RUN_NS = 1_000


@dataclass(frozen=True)
class LeakageResult:
    """What one seeded prime+probe run observed under one policy."""

    policy: str
    n_bits: int
    #: fraction of secret bits recovered (1.0 = full leak, ~0.5 = chance)
    accuracy: float
    #: recovered meaningfully more than chance (AttackResult.leaked)
    leaked: bool
    #: refill debt the victim deposited on the attacker's core (ns)
    cross_pollution_ns: int
    #: attacker-core structures still holding victim state at the end
    residual_structures: Tuple[str, ...]
    #: structures the policy's switch scrub actually cleared
    scrubbed_structures: Tuple[str, ...]
    #: mitigation flushes the attacker's core paid during the run
    flushes: int
    #: total switch-flush latency charged by the policy (ns)
    flush_cost_ns: int


def secret_bits(seed: int, n_bits: int) -> List[int]:
    """A deterministic secret: one hashed bit per index."""
    return [derive_seed(seed, "defense", f"bit:{i}") & 1 for i in range(n_bits)]


def tolerated_residency(policy: IsolationPolicy) -> FrozenSet[str]:
    """Structures the residency audit must tolerate under ``policy``.

    Core-gapping promises a clean core; a flush-on-switch policy clears
    everything ``flush_all`` covers but leaves the per-core L2 warm; no
    defense tolerates residue everywhere.  This is how the core-gap
    audit stays policy-aware: a finding in a tolerated structure is the
    policy's documented gap, not a simulation bug.
    """
    if policy.requires_core_gap:
        return frozenset()
    if policy.flush_on_switch:
        return frozenset({"l2"})
    return frozenset({"l1d", "l1i", "l2", "tlb", "branch", "store_buffer"})


def leakage_probe(
    policy: IsolationPolicy, n_bits: int = 64, seed: int = 0
) -> LeakageResult:
    """Score ``policy`` against a seeded L1D prime+probe attacker.

    State-level (no simulator event loop, like the attack functions in
    :mod:`repro.security.attacker`): the attacker primes two L1D sets,
    the victim makes one secret-dependent access, and the attacker
    probes.  The policy is consulted at both domain switches per bit; a
    core-gapping policy places the victim on its own core instead.
    """
    machine = Machine(SocTopology(name="leakage-probe", n_cores=2, memory_gib=1))
    attacker = realm_domain(66)
    victim = realm_domain(1)
    a_core = machine.core(0)
    v_core = machine.core(0 if not policy.requires_core_gap else 1)
    a_core.pollution.note_run(attacker)
    v_core.pollution.note_run(victim)
    secret = secret_bits(seed, n_bits)
    recovered: List[int] = []
    cross_pollution_ns = 0
    scrubbed: Tuple[str, ...] = ()
    for bit in secret:
        plan = prime_sets(a_core, attacker, [_SET0, _SET1])
        policy.on_switch(a_core)  # attacker -> victim
        before = a_core.pollution.pending_penalty(attacker)
        v_core.pollution.note_run(victim)
        target_set = _SET1 if bit else _SET0
        addr = eviction_addresses(v_core.uarch.l1d, target_set, base=1 << 26)[0]
        v_core.access_memory(addr, victim)
        v_core.pollution.note_run_duration(victim, _VICTIM_RUN_NS)
        cross_pollution_ns += a_core.pollution.pending_penalty(attacker) - before
        dirty = {
            name
            for name, s in a_core.uarch.structures()
            if victim in s.domains_present()
        }
        policy.on_switch(a_core)  # victim -> attacker
        still = {
            name
            for name, s in a_core.uarch.structures()
            if victim in s.domains_present()
        }
        scrubbed = tuple(sorted(dirty - still))
        activity = probe_sets(a_core, attacker, plan)
        if activity[_SET0] == activity[_SET1]:
            recovered.append(0)  # no signal: guess 0, as a real attacker does
        else:
            recovered.append(1 if activity[_SET1] else 0)
    attack = AttackResult(policy.name, secret, recovered)
    residual = tuple(
        sorted(
            name
            for name, s in a_core.uarch.structures()
            if victim in s.domains_present()
        )
    )
    flushes = a_core.uarch.flush_count
    return LeakageResult(
        policy=policy.name,
        n_bits=n_bits,
        accuracy=attack.accuracy,
        leaked=attack.leaked,
        cross_pollution_ns=cross_pollution_ns,
        residual_structures=residual,
        scrubbed_structures=scrubbed,
        flushes=flushes,
        flush_cost_ns=flushes * policy.flush_costs.switch_flush_ns(),
    )
