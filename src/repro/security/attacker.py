"""End-to-end attack scenarios: shared core vs. core-gapped.

Each scenario pits an attacker domain against a victim domain twice:

* **shared-core**: attacker and victim time-slice one physical core --
  the status quo a malicious hypervisor can always arrange by
  co-scheduling vCPUs (S1);
* **core-gapped**: attacker and victim each own a core, as the modified
  RMM enforces.

The attacks run against the real simulated structures, so "mitigated"
is an *observed outcome*, not an assertion: the same attacker code
recovers the secret in one schedule and noise in the other.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..hw.machine import Machine
from ..isa.worlds import SecurityDomain, realm_domain
from .channels import (
    btb_inject,
    btb_probe,
    prime_sets,
    probe_sets,
    store_buffer_leak,
)

__all__ = [
    "AttackResult",
    "prime_probe_attack",
    "btb_injection_attack",
    "store_buffer_attack",
    "cache_covert_channel",
]


@dataclass
class AttackResult:
    """Outcome of one attack run."""

    scenario: str
    secret_bits: List[int]
    recovered_bits: List[int]

    @property
    def accuracy(self) -> float:
        if not self.secret_bits:
            return 0.0
        hits = sum(
            1
            for secret, guess in zip(self.secret_bits, self.recovered_bits)
            if secret == guess
        )
        return hits / len(self.secret_bits)

    @property
    def leaked(self) -> bool:
        """Recovered meaningfully more than chance."""
        return self.accuracy >= 0.95


def _victim_touch(machine, core_index, domain, secret_bit, set0, set1):
    """The victim's secret-dependent access: touch set0 or set1."""
    from .channels import eviction_addresses

    core = machine.core(core_index)
    cache = core.uarch.l1d
    target_set = set1 if secret_bit else set0
    addr = eviction_addresses(cache, target_set, base=1 << 26)[0]
    core.access_memory(addr, domain)


def prime_probe_attack(
    machine: Machine,
    attacker_core: int,
    victim_core: int,
    secret_bits: List[int],
    attacker: Optional[SecurityDomain] = None,
    victim: Optional[SecurityDomain] = None,
) -> AttackResult:
    """L1D prime+probe.  Bit=0 -> victim touches set A, bit=1 -> set B;
    the attacker primes both sets and probes which one got evicted.

    When ``attacker_core == victim_core`` this is the classic time-sliced
    attack.  When the cores differ (core gapping), the victim's accesses
    land in its *own private* L1 and the attacker's probe sees nothing.
    """
    attacker = attacker or realm_domain(66)
    victim = victim or realm_domain(1)
    set0, set1 = 3, 11
    recovered: List[int] = []
    core_a = machine.core(attacker_core)
    for bit in secret_bits:
        plan = prime_sets(core_a, attacker, [set0, set1])
        _victim_touch(machine, victim_core, victim, bit, set0, set1)
        activity = probe_sets(core_a, attacker, plan)
        if activity[set0] == activity[set1]:
            # no signal: guess 0 (what a real attacker reduces to)
            recovered.append(0)
        else:
            recovered.append(1 if activity[set1] else 0)
    scenario = (
        "shared-core" if attacker_core == victim_core else "core-gapped"
    )
    return AttackResult(scenario, list(secret_bits), recovered)


def btb_injection_attack(
    machine: Machine,
    attacker_core: int,
    victim_core: int,
) -> bool:
    """Spectre-v2 shape: can the attacker steer the victim's prediction?

    Returns True when the injected target would be speculatively
    executed by the victim.
    """
    attacker = realm_domain(66)
    victim_branch = 0x400_000
    gadget = 0xBAD_000
    btb_inject(machine.core(attacker_core), attacker, victim_branch, gadget)
    # the victim consults the predictor of the core it runs on
    return btb_probe(machine.core(victim_core), victim_branch, gadget)


def store_buffer_attack(
    machine: Machine,
    attacker_core: int,
    victim_core: int,
    secret: int = 0x5EC2E7,
) -> Optional[int]:
    """MDS/Fallout shape: victim stores a secret; attacker transiently
    forwards from the store buffer of *its own* core."""
    victim = realm_domain(1)
    attacker = realm_domain(66)
    # a fresh address per scenario so repeated experiments on one
    # machine don't alias through leftover in-flight stores
    addr = 0x7000 + (attacker_core * 17 + victim_core) * 0x100
    machine.core(victim_core).access_memory(
        addr, victim, write=True
    )
    # plant the actual secret value in the victim's in-flight store
    machine.core(victim_core).uarch.store_buffer.push(addr, secret, victim)
    return store_buffer_leak(machine.core(attacker_core), attacker, addr)


def cache_covert_channel(
    machine: Machine,
    sender_core: int,
    receiver_core: int,
    message_bits: List[int],
) -> AttackResult:
    """Two colluding VMs signalling through L1 evictions.

    Works time-sliced on one core; silent across core-gapped cores
    (their only shared cache is the LLC, out of the threat model and
    recommended for partitioning, S2.4).
    """
    sender = realm_domain(7)
    receiver = realm_domain(8)
    set_sig = 5
    received: List[int] = []
    core_r = machine.core(receiver_core)
    for bit in message_bits:
        plan = prime_sets(core_r, receiver, [set_sig])
        if bit:
            from .channels import eviction_addresses

            cache = machine.core(sender_core).uarch.l1d
            for addr in eviction_addresses(cache, set_sig, base=1 << 27):
                machine.core(sender_core).access_memory(addr, sender)
        activity = probe_sets(core_r, receiver, plan)
        received.append(1 if activity[set_sig] else 0)
    scenario = "shared-core" if sender_core == receiver_core else "core-gapped"
    return AttackResult(scenario, list(message_bits), received)
