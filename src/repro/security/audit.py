"""The core-gap auditor: proving the invariant over simulated schedules.

The paper's security argument (S3) reduces to two checkable properties:

(a) all instructions of a confidential vCPU execute on one core, and
(b) from first to last instruction, only guest-trusted code (the
    monitor) runs on that core.

The auditor consumes the tracer's execution spans -- the ground truth of
which security domain occupied which core when -- and reports every
violation: a pair of mutually distrusting domains that both executed on
one physical core.  It also audits *residual microarchitectural state*:
after a run, no core-private structure may hold a distrusting pair.

Run on shared-core schedules it reports exactly the sharing the paper
calls leaking; on core-gapped schedules it must return clean.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..hw.machine import Machine
from ..isa.worlds import (
    HOST_DOMAIN,
    IDLE_DOMAIN,
    MONITOR_DOMAIN,
    ROOT_DOMAIN,
    SecurityDomain,
    World,
    realm_domain,
)
from ..sim.trace import Tracer

__all__ = [
    "SharingViolation",
    "ResidencyViolation",
    "AuditReport",
    "CoreGapAuditor",
    "audit_conservation",
]


@dataclass(frozen=True)
class SharingViolation:
    """Two distrusting domains executed on the same core."""

    core: int
    domain_a: str
    domain_b: str
    #: first time each domain was seen on the core
    first_a: int
    first_b: int

    def __str__(self) -> str:
        return (
            f"core {self.core}: {self.domain_a} (t={self.first_a}) and "
            f"{self.domain_b} (t={self.first_b}) shared the core"
        )


@dataclass(frozen=True)
class ResidencyViolation:
    """A core-private structure holds state of distrusting domains."""

    core: int
    structure: str
    domains: Tuple[str, ...]

    def __str__(self) -> str:
        return (
            f"core {self.core}: {self.structure} holds state of "
            f"{', '.join(self.domains)}"
        )


@dataclass
class AuditReport:
    sharing: List[SharingViolation] = field(default_factory=list)
    residency: List[ResidencyViolation] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        return not self.sharing and not self.residency

    def summary(self) -> str:
        if self.clean:
            return "AUDIT CLEAN: no distrusting domains ever shared a core"
        lines = [
            f"AUDIT FAILED: {len(self.sharing)} sharing violations, "
            f"{len(self.residency)} residency violations"
        ]
        lines += [f"  {v}" for v in self.sharing[:20]]
        lines += [f"  {v}" for v in self.residency[:20]]
        return "\n".join(lines)


def audit_conservation(
    tracer: Tracer, end_ns: int, start_ns: int = 0
) -> List[str]:
    """Accounting invariants (#8) that must hold on any schedule, fault
    injected or not.  Returns human-readable problems ([] when clean).

    * exit-count conservation: ``exits_total`` equals the sum of the
      per-reason ``exit:*`` counters (an exit that is counted must be
      attributed, and vice versa);
    * CPU-time conservation: per core, the summed execution-span time
      cannot exceed the wall-clock window, and no span runs backwards
      or escapes the window.
    """
    problems: List[str] = []
    counters = tracer.counters
    exits_total = int(counters.get("exits_total", 0))
    by_reason = sum(
        int(v) for k, v in counters.items() if k.startswith("exit:")
    )
    if exits_total != by_reason:
        problems.append(
            f"exit counts unbalanced: exits_total={exits_total} but "
            f"sum(exit:*)={by_reason}"
        )
    wall = end_ns - start_ns
    busy: Dict[int, int] = {}
    for span in tracer.spans:
        if span.end < span.start:
            problems.append(
                f"core {span.core}: span for {span.domain} runs "
                f"backwards ({span.start}..{span.end})"
            )
            continue
        if span.start < start_ns or span.end > end_ns:
            problems.append(
                f"core {span.core}: span for {span.domain} escapes the "
                f"window ({span.start}..{span.end} vs {start_ns}..{end_ns})"
            )
        busy[span.core] = busy.get(span.core, 0) + (span.end - span.start)
    for core, busy_ns in sorted(busy.items()):
        if busy_ns > wall:
            problems.append(
                f"core {core}: {busy_ns} ns of execution in a "
                f"{wall} ns window"
            )
    return problems


def _split_tenures(
    spans: List[Tuple[int, int]], boundaries: Iterable[int]
) -> List[Tuple[int, int]]:
    """Partition one domain's (start, end) spans on a core into tenure
    windows, cut at scrubbed unbind times.

    A span belongs to the tenure that was live when it started; the
    window of each tenure is [min start, max end] over its spans.  With
    no boundaries this degenerates to the single occupancy window the
    audit always used.
    """
    cuts = sorted(boundaries)
    if not cuts:
        first = min(start for start, _ in spans)
        last = max(end for _, end in spans)
        return [(first, last)]
    groups: Dict[int, List[Tuple[int, int]]] = {}
    for start, end in spans:
        index = bisect.bisect_right(cuts, start)
        groups.setdefault(index, []).append((start, end))
    return [
        (
            min(start for start, _ in group),
            max(end for _, end in group),
        )
        for _, group in sorted(groups.items())
    ]


class CoreGapAuditor:
    """Checks schedules and residual state against the threat model."""

    def __init__(self, domains: Optional[Iterable[SecurityDomain]] = None):
        #: registry for resolving span names back to domain objects
        self._registry: Dict[str, SecurityDomain] = {
            d.name: d
            for d in (HOST_DOMAIN, MONITOR_DOMAIN, ROOT_DOMAIN, IDLE_DOMAIN)
        }
        for domain in domains or ():
            self.register(domain)

    def register(self, domain: SecurityDomain) -> None:
        self._registry[domain.name] = domain

    def _resolve(self, name: str) -> SecurityDomain:
        if name in self._registry:
            return self._registry[name]
        if name.startswith("realm:"):
            domain = realm_domain(int(name.split(":", 1)[1]))
        elif name.startswith("vm:"):
            domain = SecurityDomain(name, World.NORMAL)
        else:
            domain = SecurityDomain(name, World.NORMAL)
        self._registry[name] = domain
        return domain

    # ------------------------------------------------------------------
    # schedule audit
    # ------------------------------------------------------------------

    def audit_schedule(self, tracer: Tracer) -> List[SharingViolation]:
        """Occupancy-window distrust check over every core's history.

        The paper's invariant (S3): from the *first to the last
        instruction* of a vCPU on its core, only guest-trusted code may
        run there.  So two distrusting domains violate the invariant on
        a core iff their occupancy windows [first span, last span]
        overlap -- a host that ran only *before* dedication, or a realm
        that reused a core after another realm was destroyed (and its
        state scrubbed; see the residency audit), is legitimate.

        A monitor-mediated unbind or rebind (autoscaler shrink/park,
        evacuation) *ends* the realm's tenure on its core: the core is
        scrubbed and handed back, and a later re-dedication -- even to
        the same realm -- opens a fresh occupancy window.  The monitor
        records each such scrubbed ownership change as a tenure cut
        (:meth:`~repro.sim.trace.Tracer.tenure_cut`), so host spans
        between two tenures of one realm are not violations.
        """
        violations: List[SharingViolation] = []
        spans_by_core: Dict[int, List] = {}
        for span in tracer.spans:
            spans_by_core.setdefault(span.core, []).append(span)
        # tenure boundaries: (core, domain) -> scrubbed handoff times
        unbinds: Dict[Tuple[int, str], List[int]] = {}
        for cut in getattr(tracer, "tenure_cuts", []):
            unbinds.setdefault((cut.core, cut.domain), []).append(cut.time)
        seen_pairs = set()
        for core in sorted(spans_by_core):
            windows: Dict[str, List[Tuple[int, int]]] = {}
            for span in spans_by_core[core]:
                windows.setdefault(span.domain, []).append(
                    (span.start, span.end)
                )
            for name, owned in windows.items():
                owner = self._resolve(name)
                if not (owner.is_realm or owner.name.startswith("vm:")):
                    # the invariant is stated for guests: their occupancy
                    # window must be exclusive.  The host's occupancy
                    # legitimately has gaps (hotplug off -> realm
                    # lifetime -> hotplug on), so it is not a window.
                    continue
                tenures = _split_tenures(
                    owned, unbinds.get((core, name), ())
                )
                for span in spans_by_core[core]:
                    if span.domain == name:
                        continue
                    other = self._resolve(span.domain)
                    if not owner.distrusts(other):
                        continue
                    # a foreign span strictly inside one of the owner's
                    # tenure windows is the leak
                    for first, last in tenures:
                        if span.start < last and span.end > first:
                            key = (core, *sorted((name, span.domain)))
                            if key in seen_pairs:
                                break
                            seen_pairs.add(key)
                            violations.append(
                                SharingViolation(
                                    core,
                                    name,
                                    span.domain,
                                    first,
                                    span.start,
                                )
                            )
                            break
        return violations

    # ------------------------------------------------------------------
    # residual microarchitectural state audit
    # ------------------------------------------------------------------

    def audit_residency(self, machine: Machine) -> List[ResidencyViolation]:
        """Walk every core-private structure for distrusting co-residency.

        The shared LLC is deliberately excluded: it is out of the threat
        model (S2.4), with hardware partitioning recommended instead.
        """
        violations: List[ResidencyViolation] = []
        for core in machine.cores:
            for name, structure in core.uarch.structures():
                present = structure.domains_present()
                bad = self._distrusting_subsets(present)
                if bad:
                    violations.append(
                        ResidencyViolation(core.index, name, bad)
                    )
        return violations

    def _distrusting_subsets(
        self, present: Set[SecurityDomain]
    ) -> Tuple[str, ...]:
        domains = sorted(present, key=lambda d: d.name)
        for i, dom_a in enumerate(domains):
            for dom_b in domains[i + 1:]:
                if dom_a.distrusts(dom_b):
                    return tuple(d.name for d in domains)
        return ()

    # ------------------------------------------------------------------
    # combined
    # ------------------------------------------------------------------

    def audit(self, machine: Machine, tracer: Optional[Tracer] = None) -> AuditReport:
        tracer = tracer or machine.tracer
        tracer.close_all_spans(machine.sim.now)
        return AuditReport(
            sharing=self.audit_schedule(tracer),
            residency=self.audit_residency(machine),
        )
