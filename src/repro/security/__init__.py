"""Security analysis: side channels, attacks, vulnerability catalog, auditor."""

from .attacker import (
    AttackResult,
    btb_injection_attack,
    cache_covert_channel,
    prime_probe_attack,
    store_buffer_attack,
)
from .audit import (
    AuditReport,
    CoreGapAuditor,
    ResidencyViolation,
    SharingViolation,
    audit_conservation,
)
from .channels import (
    btb_inject,
    btb_probe,
    eviction_addresses,
    prime_sets,
    probe_sets,
    store_buffer_leak,
)
from .policy import (
    LeakageResult,
    leakage_probe,
    secret_bits,
    tolerated_residency,
)
from .vulns import (
    CATALOG,
    Kind,
    Scope,
    Vulnerability,
    mitigated_by_core_gapping,
    render_fig3,
    timeline,
    unmitigated,
)

__all__ = [
    "AttackResult",
    "AuditReport",
    "CATALOG",
    "CoreGapAuditor",
    "audit_conservation",
    "Kind",
    "LeakageResult",
    "ResidencyViolation",
    "Scope",
    "SharingViolation",
    "Vulnerability",
    "btb_inject",
    "btb_injection_attack",
    "btb_probe",
    "cache_covert_channel",
    "eviction_addresses",
    "leakage_probe",
    "mitigated_by_core_gapping",
    "prime_probe_attack",
    "prime_sets",
    "probe_sets",
    "render_fig3",
    "secret_bits",
    "store_buffer_attack",
    "store_buffer_leak",
    "timeline",
    "tolerated_residency",
]
