"""Host stack: kernel/scheduler, KVM, VMM device backends, planner."""

from .hotplug import offline_core, online_core
from .kernel import CVM_EXIT_SGI, HostKernel, RESCHED_SGI
from .kvm import KvmVm, VmMode
from .planner import AdmissionError, CorePlanner
from .sriov import SriovNic
from .threads import (
    HostThread,
    SchedClass,
    TBlock,
    TCompute,
    TSleep,
    TSpin,
    TYield,
    ThreadState,
)
from .virtio import IoRequest, VirtioBackend
from .wakeup import ExitNotifier

__all__ = [
    "AdmissionError",
    "CVM_EXIT_SGI",
    "CorePlanner",
    "ExitNotifier",
    "HostKernel",
    "HostThread",
    "IoRequest",
    "KvmVm",
    "RESCHED_SGI",
    "SchedClass",
    "SriovNic",
    "TBlock",
    "TCompute",
    "TSleep",
    "TSpin",
    "TYield",
    "ThreadState",
    "VirtioBackend",
    "VmMode",
    "offline_core",
    "online_core",
]
