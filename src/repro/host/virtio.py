"""Virtio device backends (kvmtool-style userspace emulation).

The exit-intensive I/O path of the evaluation: every guest request is a
doorbell MMIO write that exits to the host, is dispatched to the VMM,
and then processed by a backend I/O thread on a host core.  Completions
cost host CPU again (AIO completion + irqfd injection).  On core-gapped
CVMs all of this contends for the (single) host core -- exactly the
fig. 8/9 penalty -- while SR-IOV (:mod:`repro.host.sriov`) bypasses it.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Any, Callable, Deque, Dict, Optional, Set, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..guest.actions import IoRequest
from ..sim.sync import Notify
from .kernel import HostKernel
from .threads import HostThread, SchedClass, TBlock, TCompute

__all__ = ["IoRequest", "VirtioBackend"]

Injector = Callable[[int, int, Any], None]


class VirtioBackend:
    """One emulated virtio device with a backend I/O thread."""

    def __init__(
        self,
        name: str,
        device_kind: str,  # "net" | "blk"
        kernel: HostKernel,
        injector: Injector,
        intid: int,
        host_cores: Set[int],
        n_vcpus: int,
        vm=None,
        costs: CostModel = DEFAULT_COSTS,
        echo_peer: bool = False,
        peer_latency_ns: int = 3_000,
    ):
        self.name = name
        self.vm = vm
        self.device_kind = device_kind
        self.kernel = kernel
        self.sim = kernel.sim
        self.injector = injector
        self.intid = intid
        self.costs = costs
        self.echo_peer = echo_peer
        self.peer_latency_ns = peer_latency_ns
        self._jobs: Deque[Tuple[str, int, IoRequest]] = deque()
        self._doorbell = Notify(f"virtio:{name}")
        #: fault-injection hook (repro.faults): extra nanoseconds added
        #: to one device-side completion latency, keyed by operation
        #: kind; None (default) adds nothing
        self.completion_fault_hook: Optional[
            Callable[[str, int, IoRequest], int]
        ] = None
        #: received packet contents, readable by the guest driver
        self.rx_queues: Dict[int, Deque[Any]] = {
            i: deque() for i in range(n_vcpus)
        }
        self.requests_served = 0
        self.thread = HostThread(
            name=f"virtio-io:{name}",
            body=self._body(),
            sched_class=SchedClass.FAIR,
            affinity=host_cores,
        )
        kernel.add_thread(self.thread)

    # -- host-facing API ----------------------------------------------------

    def submit_from_host(self, vcpu_idx: int, request: IoRequest) -> None:
        """VMM dispatch after a doorbell MMIO exit."""
        self._jobs.append(("submit", vcpu_idx, request))
        self._doorbell.signal()

    def read_register(self) -> int:
        """Emulated config-space read."""
        return 0

    def guest_doorbell(self, runtime, request: IoRequest) -> None:
        raise TypeError(
            f"virtio device {self.name} is emulated: guests must use "
            "MmioWrite (which exits), not a passthrough doorbell"
        )

    # -- the backend I/O thread -----------------------------------------------

    def _copy_cost(self, request: IoRequest) -> int:
        return int(
            self.costs.virtio_backend_ns
            + request.size_kib * self.costs.virtio_copy_ns_per_kib
        )

    def _body(self):
        while True:
            while not self._jobs:
                # stale doorbell signals (raised while we were already
                # processing) make this wait return immediately; loop
                yield TBlock(self._doorbell.wait())
            job, vcpu_idx, request = self._jobs.popleft()
            if job == "submit":
                yield TCompute(self._copy_cost(request))
                self.requests_served += 1
                self._start_device_op(vcpu_idx, request)
            elif job == "rx":
                # inbound packet: host copies into guest buffers
                yield TCompute(self._copy_cost(request))
                self.rx_queues[vcpu_idx].append(request.meta.get("payload"))
                if self.vm is not None:
                    self.vm.vcpu(vcpu_idx).note_io_event(self.name, "rx")
                if len(self.rx_queues[vcpu_idx]) == 1:
                    # NAPI-style: interrupt only on the empty->non-empty
                    # ring transition; the guest polls the rest
                    self.injector(vcpu_idx, self.intid, None)
            elif job == "complete":
                yield TCompute(1_000)  # AIO completion + irqfd write
                if self.vm is not None:
                    self.vm.vcpu(vcpu_idx).note_io_event(
                        self.name, "complete"
                    )
                self.injector(vcpu_idx, self.intid, None)

    # -- the "hardware" behind the backend ---------------------------------------

    def _fault_delay(self, kind: str, vcpu_idx: int, request: IoRequest) -> int:
        if self.completion_fault_hook is None:
            return 0
        return int(self.completion_fault_hook(kind, vcpu_idx, request) or 0)

    def _start_device_op(self, vcpu_idx: int, request: IoRequest) -> None:
        costs = self.costs
        if request.kind in ("blk_read", "blk_write"):
            latency = int(
                costs.block_device_ns
                + request.size_kib * costs.block_per_kib_ns
            ) + self._fault_delay("blk", vcpu_idx, request)
            self.sim.schedule(
                latency, lambda: self._enqueue("complete", vcpu_idx, request)
            )
            return
        if request.kind == "net_tx":
            serialize = int(request.size_kib * costs.nic_per_kib_ns)
            one_way = serialize + costs.net_wire_ns
            if request.meta.get("echo") or self.echo_peer:
                round_trip = (
                    2 * one_way
                    + self.peer_latency_ns
                    + self._fault_delay("net", vcpu_idx, request)
                )
                reply = IoRequest(
                    "net_rx",
                    request.size_bytes,
                    {"payload": request.meta.get("payload")},
                )
                self.sim.schedule(
                    round_trip,
                    lambda: self._enqueue("rx", vcpu_idx, reply),
                )
            deliver = request.meta.get("deliver_fn")
            if deliver is not None:
                payload = request.meta.get("payload")
                self.sim.schedule(one_way, lambda: deliver(payload))
            return
        raise ValueError(f"unknown request kind {request.kind!r}")

    def _enqueue(self, job: str, vcpu_idx: int, request: IoRequest) -> None:
        self._jobs.append((job, vcpu_idx, request))
        self._doorbell.signal()

    # -- external ingress (a remote peer sends us traffic) -----------------------

    def deliver_rx(self, vcpu_idx: int, payload: Any, size_bytes: int) -> None:
        """A packet arrives from the network for this guest."""
        request = IoRequest("net_rx", size_bytes, {"payload": payload})
        self._enqueue("rx", vcpu_idx, request)

    def rx_pop(self, vcpu_idx: int) -> Any:
        """Guest driver consumes one received packet from the ring."""
        return self.rx_queues[vcpu_idx].popleft()
