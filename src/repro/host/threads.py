"""Host thread model.

Host-side activities (KVM vCPU threads, the wake-up thread, VMM I/O
threads, kernel housekeeping) are *threads* scheduled by the host
kernel model.  A thread body is a generator yielding thread actions:

===========  =============================================================
``TCompute``  burn CPU on the current core (optionally as a guest domain,
              for shared-core guest execution inside a vCPU thread)
``TBlock``    deschedule until an event fires (the yield evaluates to the
              event's value)
``TSleep``    deschedule for a fixed time
``TYield``    cooperative yield (round-robin)
``TSpin``     busy-wait on an event while *occupying the core* -- used by
              synchronous RPC clients and the Quarantine-style polling
              ablation
===========  =============================================================
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Any, Generator, Optional, Set

from ..isa.worlds import SecurityDomain
from ..sim.engine import Event

__all__ = [
    "TCompute",
    "TBlock",
    "TSleep",
    "TYield",
    "TSpin",
    "SchedClass",
    "ThreadState",
    "HostThread",
]


@dataclass
class TCompute:
    work_ns: int
    #: None means host-kernel/userspace work (the host domain); vCPU
    #: threads pass the guest's domain for guest execution segments
    domain: Optional[SecurityDomain] = None
    #: when True, an interrupt hands control back to the thread body
    #: with the remaining work (VM-exit semantics for guest segments)
    return_on_irq: bool = False


@dataclass
class TBlock:
    event: Event


@dataclass
class TSleep:
    ns: int


@dataclass
class TYield:
    pass


@dataclass
class TSpin:
    """Busy-wait on ``event``; the core stays 100% busy meanwhile."""

    event: Event


class SchedClass:
    FAIR = "fair"
    FIFO = "fifo"  # real-time class; always preempts fair threads


class ThreadState:
    RUNNABLE = "runnable"
    RUNNING = "running"
    BLOCKED = "blocked"
    DONE = "done"


_thread_ids = itertools.count()


class HostThread:
    """One host OS thread."""

    def __init__(
        self,
        name: str,
        body: Generator,
        sched_class: str = SchedClass.FAIR,
        affinity: Optional[Set[int]] = None,
    ):
        self.tid = next(_thread_ids)
        self.name = name
        self.body = body
        self.sched_class = sched_class
        self.affinity = set(affinity) if affinity is not None else None
        self.state = ThreadState.RUNNABLE
        self.last_core: Optional[int] = None
        #: value to send into the body on next resume
        self.send_value: Any = None
        #: an action carried over after preemption (compute remainder
        #: or an interrupted spin)
        self.pending_action: Any = None
        self.cpu_ns = 0
        self.result: Any = None
        self.done_event = Event(f"done:{name}")
        #: per-cpu kernel threads are parked (not migrated) on hotplug
        self.per_cpu = False

    def allowed_on(self, core_index: int) -> bool:
        return self.affinity is None or core_index in self.affinity

    def __repr__(self) -> str:
        return (
            f"HostThread({self.name!r}, {self.sched_class}, {self.state})"
        )
