"""SR-IOV passthrough NIC (Intel E2000-class IPU virtual function).

The exit-free I/O path: the guest rings the device doorbell directly
(a write to a passthrough BAR -- no VM exit) and the NIC hardware DMAs
data without host involvement.  The one remaining host touch-point in
the paper's prototype is **interrupt delivery**: the VF's completion/RX
interrupt lands on a host core, and the host injects it into the guest
(S5.3: "the host serving only to deliver interrupts", costing the extra
10-20 us vs. bare metal; direct interrupt delivery is future work).
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Any, Callable, Deque, Dict, Optional, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..hw.machine import Machine
from .kernel import HostKernel
from .virtio import IoRequest

__all__ = ["SriovNic"]

Injector = Callable[[int, int, Any], None]


class SriovNic:
    """One SR-IOV virtual function assigned to a guest."""

    def __init__(
        self,
        name: str,
        machine: Machine,
        kernel: HostKernel,
        injector: Injector,
        intid: int,
        irq_core: int,
        n_vcpus: int,
        vm=None,
        costs: CostModel = DEFAULT_COSTS,
        echo_peer: bool = False,
        peer_latency_ns: int = 3_000,
    ):
        self.name = name
        self.vm = vm
        self.machine = machine
        self.sim = machine.sim
        self.kernel = kernel
        self.injector = injector
        self.intid = intid
        self.costs = costs
        self.echo_peer = echo_peer
        self.peer_latency_ns = peer_latency_ns
        #: device events awaiting host interrupt-delivery
        self._pending: Deque[Tuple[int, str]] = deque()
        self.rx_queues: Dict[int, Deque[Any]] = {
            i: deque() for i in range(n_vcpus)
        }
        self.doorbells = 0
        self.interrupts_raised = 0
        machine.gic.route_spi(intid, irq_core)
        kernel.register_irq_handler(intid, self._host_irq)

    # -- guest-facing (no exits) ------------------------------------------------

    def guest_doorbell(self, runtime, request: IoRequest) -> None:
        """Guest writes the VF doorbell: pure hardware processing."""
        self.doorbells += 1
        vcpu_idx = runtime.index
        costs = self.costs
        serialize = int(request.size_kib * costs.nic_per_kib_ns)
        one_way = costs.sriov_doorbell_ns + serialize + costs.net_wire_ns
        if request.kind != "net_tx":
            raise ValueError(f"SR-IOV NIC got {request.kind!r}")
        if request.meta.get("echo") or self.echo_peer:
            round_trip = one_way + self.peer_latency_ns + (
                costs.net_wire_ns + serialize
            )
            payload = request.meta.get("payload")
            self.sim.schedule(
                round_trip,
                lambda: self._rx_arrived(vcpu_idx, payload),
            )
        deliver = request.meta.get("deliver_fn")
        if deliver is not None:
            payload = request.meta.get("payload")
            self.sim.schedule(one_way, lambda: deliver(payload))

    def submit_from_host(self, vcpu_idx: int, request: IoRequest) -> None:
        raise TypeError(
            f"SR-IOV device {self.name} is passthrough: requests never "
            "reach the host"
        )

    def read_register(self) -> int:
        return 0

    # -- external ingress ---------------------------------------------------------

    def deliver_rx(self, vcpu_idx: int, payload: Any, size_bytes: int) -> None:
        """A packet arrives from the network for this guest's VF."""
        serialize = int(size_bytes / 1024.0 * self.costs.nic_per_kib_ns)
        self.sim.schedule(
            serialize, lambda: self._rx_arrived(vcpu_idx, payload)
        )

    # -- interrupt path (the host's only involvement) -------------------------------

    def _rx_arrived(self, vcpu_idx: int, payload: Any) -> None:
        """DMA complete: the data is already in guest memory (the guest
        driver can poll it); raise the VF interrupt only on the
        empty->non-empty ring transition (NAPI-style suppression, which
        is what lets interrupts coalesce under load)."""
        self.rx_queues[vcpu_idx].append(payload)
        if self.vm is not None:
            self.vm.vcpu(vcpu_idx).note_io_event(self.name, "rx")
        if len(self.rx_queues[vcpu_idx]) == 1:
            self._pending.append((vcpu_idx, "rx"))
            self.interrupts_raised += 1
            self.machine.gic.raise_spi(self.intid)

    def rx_pop(self, vcpu_idx: int) -> Any:
        """Guest driver consumes one received packet from the ring."""
        return self.rx_queues[vcpu_idx].popleft()

    def _host_irq(self, core_index: int, intid: int) -> int:
        """Host IRQ handler: inject the VF interrupt into the guest.

        This is the prototype limitation the paper measures: each
        interrupt costs a host-core handler plus a guest kick/injection.
        """
        count = 0
        while self._pending:
            vcpu_idx, kind = self._pending.popleft()
            # the event itself was accounted at DMA time; this interrupt
            # only wakes the guest
            self.injector(vcpu_idx, self.intid, None)
            count += 1
        return self.costs.host_device_irq_ns + count * self.costs.kvm_irq_inject_ns
