"""KVM: the host hypervisor's vCPU execution paths.

Three modes, matching the paper's evaluation matrix:

* ``SHARED`` -- the paper's baseline: a traditional non-confidential VM.
  The vCPU thread runs guest code on whatever core the host scheduler
  gives it; every exit (timer, IPI, MMIO, WFI, physical interrupt) is
  handled *on that same core*, polluting the guest's microarchitectural
  state and sharing it with the host.
* ``SHARED_CVM`` -- a shared-core *confidential* VM (what the paper
  could not measure without RME hardware, S5.1): same structure, but
  every trust-boundary crossing pays world switches plus mitigation
  flushes, and flushes leave the core cold.
* ``GAPPED`` -- core-gapped CVM: the vCPU thread only issues run calls
  over the async RPC port and handles exits remotely; guest execution
  happens on the dedicated core (:mod:`repro.rmm.core_gap`).  With
  ``busywait=True`` the thread polls its completion slot instead of
  blocking (the Quarantine-style ablation of fig. 6).
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Set, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..guest.actions import (
    Compute,
    DeviceDoorbell,
    MmioRead,
    MmioWrite,
    PowerOff,
    SendIpi,
    SetTimer,
    Wfi,
)
from ..guest.vcpu import VIPI_VIRQ, VTIMER_VIRQ
from ..guest.vm import GuestVm
from ..hw.policy import IsolationPolicy, resolve_policy
from ..rmm.core_gap import CoreGapEngine, HOST_KICK_SGI, RunCall
from ..rmm.rmi import ExitReason, RecRunPage, RmiResult, RmiStatus
from ..sim.engine import Event, SimulationError
from ..sim.timeout import TIMED_OUT, RetryPolicy, with_timeout
from .kernel import HostKernel, RESCHED_SGI
from .threads import HostThread, SchedClass, TBlock, TCompute, TYield
from .wakeup import ExitNotifier

__all__ = ["VmMode", "KvmVm"]


class VmMode:
    SHARED = "shared"
    SHARED_CVM = "shared-cvm"
    GAPPED = "gapped"


class KvmVm:
    """Host-side state and threads for one VM."""

    def __init__(
        self,
        kernel: HostKernel,
        vm: GuestVm,
        mode: str,
        host_cores: Set[int],
        costs: CostModel = DEFAULT_COSTS,
        notifier: Optional[ExitNotifier] = None,
        engine: Optional[CoreGapEngine] = None,
        realm_id: Optional[int] = None,
        busywait: bool = False,
        policy: Optional[IsolationPolicy] = None,
    ):
        self.kernel = kernel
        self.machine = kernel.machine
        self.sim = kernel.sim
        self.tracer = kernel.tracer
        self.vm = vm
        self.mode = mode
        #: isolation policy driving exit costs and switch-time scrubbing;
        #: defaults to what the mode always implied (repro.hw.policy)
        self.policy = policy if policy is not None else resolve_policy(mode)
        self.costs = costs
        self.host_cores = set(host_cores)
        self.notifier = notifier
        self.engine = engine
        self.realm_id = realm_id
        self.busywait = busywait
        self._injections: Dict[int, List[Tuple[int, Any]]] = {
            i: [] for i in range(vm.n_vcpus)
        }
        self._wfi_events: Dict[int, Event] = {}
        self._mmio_data: Dict[int, Any] = {}
        self.ports: Dict[int, Any] = {}
        self.threads: Dict[int, HostThread] = {}
        self.finished_vcpus = 0
        self.done_event = Event(f"vm-done:{vm.name}")
        self.run_errors: List[RmiResult] = []
        #: bounded-retry policy for async run-call waits (gapped mode):
        #: None (default) keeps the paper's unbounded TBlock.  When set,
        #: each wait is raced against a timeout; on expiry the thread
        #: re-checks its slot (self-claiming a completion whose exit IPI
        #: was lost), re-kicks the dedicated core if an injection is
        #: pending, and backs off exponentially.  Exhaustion surfaces a
        #: host-side run error -- never a guest-visible one.
        self.run_wait_retry: Optional[RetryPolicy] = None
        self.run_retries = 0
        self.run_self_claims = 0
        #: vCPU index -> dedicated core chosen by the planner (gapped)
        self.planned_cores: Dict[int, int] = {}
        #: vCPU index -> (acked, resume) pause handshake (gapped)
        self._pause_requests: Dict[int, Tuple[Event, Event]] = {}

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn one vCPU thread per guest vCPU."""
        for idx in range(self.vm.n_vcpus):
            if self.mode == VmMode.GAPPED:
                body = self._vcpu_body_gapped(idx)
                sched_class = (
                    SchedClass.FAIR if self.busywait else SchedClass.FIFO
                )
            else:
                body = self._vcpu_body_shared(idx)
                sched_class = SchedClass.FAIR
            thread = HostThread(
                name=f"kvm-vcpu:{self.vm.name}.{idx}",
                body=body,
                sched_class=sched_class,
                affinity=self.host_cores,
            )
            self.threads[idx] = thread
            self.kernel.add_thread(thread)

    def _vcpu_finished(self) -> None:
        self.finished_vcpus += 1
        if self.finished_vcpus == self.vm.n_vcpus:
            self.done_event.fire(self.sim.now)

    # ------------------------------------------------------------------
    # interrupt injection into the guest (host-initiated)
    # ------------------------------------------------------------------

    def inject_virq(self, vcpu_idx: int, intid: int, payload: Any = None) -> None:
        """Queue a virtual interrupt for a guest vCPU and kick it."""
        self._injections[vcpu_idx].append((intid, payload))
        self.tracer.count("host_virq_inject")
        if self.mode == VmMode.GAPPED:
            port = self.ports.get(vcpu_idx)
            rec = self.engine.rmm.find_rec(self.realm_id, vcpu_idx)
            if (
                port is not None
                and port.slot.state == "submitted"
                and rec.bound_core is not None
            ):
                # the vCPU is (potentially) running on its dedicated
                # core: ask the RMM to exit it (S4.4 fig. 5, host kick)
                self.machine.gic.send_sgi(rec.bound_core, HOST_KICK_SGI)
        else:
            wfi_event = self._wfi_events.get(vcpu_idx)
            if wfi_event is not None and not wfi_event.fired:
                wfi_event.fire(None)
                return
            thread = self.threads.get(vcpu_idx)
            if thread is not None and thread.last_core is not None:
                # reschedule IPI forces a VM exit if the guest is on-core
                self.machine.gic.send_sgi(thread.last_core, RESCHED_SGI)

    def pause_vcpu(self, vcpu_idx: int) -> Tuple[Event, Event]:
        """Park a gapped vCPU thread between run calls (for rebinding).

        Returns ``(acked, resume)``: ``acked`` fires once the vCPU has
        exited and its thread is parked (the REC is READY); fire
        ``resume`` to let it run again.
        """
        if self.mode != VmMode.GAPPED:
            raise SimulationError("pause_vcpu is for core-gapped VMs")
        acked = Event(f"pause-ack:{self.vm.name}.{vcpu_idx}")
        resume = Event(f"resume:{self.vm.name}.{vcpu_idx}")
        self._pause_requests[vcpu_idx] = (acked, resume)
        port = self.ports.get(vcpu_idx)
        rec = self.engine.rmm.find_rec(self.realm_id, vcpu_idx)
        if (
            port is not None
            and port.slot.state == "submitted"
            and rec.bound_core is not None
        ):
            self.machine.gic.send_sgi(rec.bound_core, HOST_KICK_SGI)
        return acked, resume

    def _program_guest_timer(self, vcpu_idx: int, delta_ns: int) -> None:
        """KVM-side hrtimer for an undelegated guest timer."""

        def fire() -> None:
            if self.finished_vcpus < self.vm.n_vcpus:
                self.inject_virq(vcpu_idx, VTIMER_VIRQ)

        self.sim.schedule(delta_ns, fire)

    def _drain_injections(self, vcpu_idx: int) -> List[Tuple[int, Any]]:
        injections = self._injections[vcpu_idx]
        self._injections[vcpu_idx] = []
        return injections

    def _count_exit(self, reason: str) -> None:
        self.tracer.count(f"exit:{reason}")
        self.tracer.count("exits_total")
        if self.tracer.enabled:
            # host-side exit handling runs on whichever host core the
            # thread lands on; the record carries no core affinity
            self.tracer.event(self.sim.now, "exit", detail=reason)

    # ------------------------------------------------------------------
    # core-gapped vCPU thread (fig. 4 client side)
    # ------------------------------------------------------------------

    def _vcpu_body_gapped(self, idx: int):
        costs = self.costs
        port = self.ports[idx]
        page = RecRunPage()
        last_return: Optional[int] = None

        while True:
            pause = self._pause_requests.get(idx)
            if pause is not None:
                acked, resume = pause
                if not acked.fired:
                    acked.fire(None)
                yield TBlock(resume)
                self._pause_requests.pop(idx, None)
            page.entry.interrupt_list = self._drain_injections(idx)
            page.entry.mmio_data = self._mmio_data.pop(idx, None)
            yield TCompute(costs.rpc_write_ns)
            if last_return is not None:
                # run-to-run latency (S4.3): from the vCPU exit event
                # (the RMM completing the previous run call) to issuing
                # the next run call
                self.tracer.sample(
                    "run_to_run_ns", self.sim.now - last_return
                )
            slot = port.submit(
                RunCall(port, self.realm_id, idx, page)
            )
            target = self._dedicated_inbox(idx)
            target.try_put(slot.payload)

            if self.busywait:
                # Quarantine-style yield-polling (fig. 6 ablation): the
                # thread stays always-runnable, competing with every
                # other poller and I/O thread; under a CFS-like host
                # scheduler each turn costs a full min-granularity slice
                while not slot.completed:
                    yield TCompute(costs.busywait_yield_slice_ns)
                    yield TYield()
            elif self.run_wait_retry is None:
                yield TBlock(slot.claimed)
            else:
                claimed = yield from self._guarded_wait(idx, port, slot)
                if not claimed:
                    # retry budget exhausted: the dedicated core is gone
                    # (or the transport is); fail this vCPU host-side
                    self.tracer.count("runwait_exhausted")
                    self.run_errors.append(
                        RmiResult(
                            RmiStatus.ERROR_INPUT,
                            f"vcpu {idx}: run call unanswered after "
                            f"{self.run_wait_retry.max_retries} retries",
                        )
                    )
                    self._vcpu_finished()
                    return
            yield TCompute(costs.rpc_read_ns)
            result = port.collect()
            last_return = port.slot.completed_at

            if isinstance(result, RmiResult):
                self.run_errors.append(result)
                self._vcpu_finished()
                return
            rec_exit = result.exit
            yield TCompute(
                costs.kvm_exit_handle_ns + costs.kvm_realm_exit_loop_ns
            )
            reason = rec_exit.reason

            if reason in (ExitReason.WORKLOAD_DONE, ExitReason.PSCI_OFF):
                self._count_exit(reason.value)
                self._vcpu_finished()
                return
            if reason is ExitReason.TIMER:
                self._program_guest_timer(idx, rec_exit.timer_delta_ns)
            elif reason is ExitReason.IPI_REQUEST:
                yield TCompute(costs.kvm_ipi_emulation_ns)
                self.inject_virq(
                    rec_exit.ipi_target, VIPI_VIRQ, rec_exit.ipi_payload
                )
            elif reason is ExitReason.MMIO_WRITE:
                yield TCompute(costs.vmm_mmio_dispatch_ns)
                device = self.vm.device(rec_exit.device)
                device.submit_from_host(idx, rec_exit.request)
            elif reason is ExitReason.MMIO_READ:
                yield TCompute(costs.vmm_mmio_dispatch_ns)
                device = self.vm.device(rec_exit.device)
                self._mmio_data[idx] = device.read_register()
            elif reason in (ExitReason.HOST_KICK, ExitReason.IRQ):
                pass  # injections are drained at the top of the loop

    def _guarded_wait(self, idx: int, port, slot):
        """Bounded-retry wait on a run-call completion (hardening).

        Thread-body generator; returns True once the completion is
        claimed, False when the retry budget is exhausted.  Handles the
        two lost-IPI shapes: a completed-but-unnotified slot is claimed
        directly, and a lost *host kick* (injection pending while the
        guest runs on) is re-sent.
        """
        policy = self.run_wait_retry
        for attempt, timeout_ns in enumerate(policy.timeouts()):
            guarded = with_timeout(
                self.sim, slot.claimed, timeout_ns,
                name=f"runwait:{port.name}",
            )
            value = yield TBlock(guarded)
            if value is not TIMED_OUT:
                return True
            self.run_retries += 1
            self.tracer.count("runwait_retry")
            yield TCompute(self.costs.wakeup_scan_slot_ns)
            if slot.claimed.fired:
                return True
            if slot.completed:
                # the exit record is published but the exit IPI (or the
                # wake-up thread) went missing: claim it ourselves
                self.run_self_claims += 1
                self.tracer.count("runwait_self_claim")
                slot.claimed.fire(slot.result)
                return True
            if self._injections[idx]:
                # our earlier host kick may have been dropped while the
                # guest keeps running: kick again
                rec = self.engine.rmm.find_rec(self.realm_id, idx)
                if rec.bound_core is not None:
                    self.tracer.count("runwait_rekick")
                    self.machine.gic.send_sgi(rec.bound_core, HOST_KICK_SGI)
        return False

    def _dedicated_inbox(self, idx: int):
        rec = self.engine.rmm.find_rec(self.realm_id, idx)
        if rec.bound_core is not None:
            return self.engine.dedicated[rec.bound_core].inbox
        # first dispatch: the planner assigned this vCPU a core
        core_index = self.planned_cores[idx]
        return self.engine.dedicated[core_index].inbox

    # ------------------------------------------------------------------
    # shared-core vCPU thread (baseline VM / extrapolated shared CVM)
    # ------------------------------------------------------------------

    def _exit_cost_userspace(self) -> int:
        if self.mode == VmMode.SHARED_CVM:
            return (
                self.policy.world_switch_round_trip_ns(
                    self.costs.world_switch
                )
                + self.costs.kvm_exit_handle_ns
            )
        return (
            self.costs.vmentry_exit_hw_ns
            + self.policy.switch_flush_ns()
            + self.costs.kvm_exit_handle_ns
        )

    def _exit_cost_inkernel(self) -> int:
        if self.mode == VmMode.SHARED_CVM:
            return (
                self.policy.world_switch_round_trip_ns(
                    self.costs.world_switch
                )
                + 400
            )
        return self.costs.vmentry_exit_hw_ns + self.policy.switch_flush_ns() + 400

    def _note_cvm_flush(self, idx: int) -> None:
        """Exits under a flush-on-switch policy scrub microarchitectural
        state: both the refill-cost accounting and the actual tagged
        structures (so the residency auditor sees what the mitigation
        achieves)."""
        if not self.policy.flush_on_switch:
            return
        thread = self.threads.get(idx)
        if thread is not None and thread.last_core is not None:
            self.policy.on_switch(self.machine.core(thread.last_core))

    def _vcpu_body_shared(self, idx: int):
        costs = self.costs
        runtime = self.vm.vcpu(idx)
        gen = runtime.run()
        guest_domain = self.vm.domain
        to_send: Any = None

        while True:
            try:
                action = gen.send(to_send)
            except StopIteration:
                self._vcpu_finished()
                return
            to_send = None

            if isinstance(action, Compute):
                remaining = action.work_ns
                while True:
                    remaining = yield TCompute(
                        remaining, domain=guest_domain, return_on_irq=True
                    )
                    if remaining <= 0:
                        break
                    # physical interrupt: VM exit, host handles it here
                    self._count_exit("irq")
                    self._note_cvm_flush(idx)
                    yield TCompute(self._exit_cost_inkernel())
                    if self._injections[idx]:
                        break
                self._deliver_injections(idx)
                to_send = max(0, remaining)

            elif isinstance(action, SetTimer):
                self._count_exit("timer")
                self._note_cvm_flush(idx)
                yield TCompute(self._exit_cost_inkernel())
                self._program_guest_timer(idx, action.delta_ns)

            elif isinstance(action, SendIpi):
                self._count_exit("ipi")
                self._note_cvm_flush(idx)
                payload = self._make_vipi_payload()
                yield TCompute(
                    self._exit_cost_inkernel() + costs.kvm_ipi_emulation_ns
                )
                self.inject_virq(action.target_vcpu, VIPI_VIRQ, payload)

            elif isinstance(action, (MmioRead, MmioWrite)):
                is_read = isinstance(action, MmioRead)
                self._count_exit("mmio_read" if is_read else "mmio_write")
                self._note_cvm_flush(idx)
                yield TCompute(
                    self._exit_cost_userspace() + costs.vmm_mmio_dispatch_ns
                )
                device = self.vm.device(action.device)
                if is_read:
                    to_send = device.read_register()
                else:
                    device.submit_from_host(idx, action.request)
                self._deliver_injections(idx)

            elif isinstance(action, DeviceDoorbell):
                device = self.vm.device(action.device)
                device.guest_doorbell(runtime, action.request)

            elif isinstance(action, Wfi):
                self._count_exit("wfi")
                self._note_cvm_flush(idx)
                yield TCompute(
                    self._exit_cost_inkernel() + costs.kvm_wfi_handle_ns
                )
                while True:
                    self._deliver_injections(idx)
                    if runtime.has_pending_virq():
                        break
                    event = Event(f"wfi:{self.vm.name}.{idx}")
                    self._wfi_events[idx] = event
                    if self._injections[idx]:
                        self._wfi_events.pop(idx, None)
                        continue
                    yield TBlock(event)
                    self._wfi_events.pop(idx, None)
                # re-entry after idle
                yield TCompute(self._exit_cost_inkernel())

            elif isinstance(action, PowerOff):
                self._count_exit("psci_off")
                self._vcpu_finished()
                return

            else:
                raise SimulationError(f"guest yielded {action!r}")

    def _deliver_injections(self, idx: int) -> None:
        runtime = self.vm.vcpu(idx)
        for intid, payload in self._drain_injections(idx):
            runtime.inject_virq(intid, payload)

    def _make_vipi_payload(self) -> dict:
        tracer = self.tracer
        sim = self.sim
        payload = {
            "sent_at": sim.now,
            "acked_at_fn": lambda: sim.now,
        }

        def acked(p: dict) -> None:
            tracer.sample("vipi_latency_ns", sim.now - p["sent_at"])

        payload["acked"] = acked
        return payload
