"""The CVM-exit wake-up thread (fig. 4).

The RMM signals a vCPU exit with a single IPI (Arm has 16 SGI numbers,
Linux reserves 7; the prototype allocates exactly one more), so the IPI
itself carries no information about *which* vCPU exited.  The IPI
handler activates a wake-up thread which polls the RPC completion slots,
unblocks every vCPU thread whose run call completed, keeps polling while
it finds work, and then suspends until the next IPI.

Using IPIs instead of continuous polling is what lets one host core
serve 60+ guest cores (S5.2): the wake-up thread is only runnable when
there is something to wake, unlike Quarantine's always-runnable pollers.
"""

from __future__ import annotations

from typing import Callable, List, Optional

from ..costs import CostModel, DEFAULT_COSTS
from ..rpc.ports import AsyncRpcPort
from ..sim.sync import Notify
from ..sim.timeout import TIMED_OUT, with_timeout
from .kernel import CVM_EXIT_SGI, HostKernel
from .threads import HostThread, SchedClass, TBlock, TCompute

__all__ = ["ExitNotifier"]


class ExitNotifier:
    """Host-side dispatcher for CVM-exit IPIs (one per host)."""

    def __init__(
        self,
        kernel: HostKernel,
        target_core: int,
        costs: CostModel = DEFAULT_COSTS,
        host_cores: Optional[set] = None,
    ):
        self.kernel = kernel
        self.machine = kernel.machine
        self.costs = costs
        #: the host core the exit IPI is sent to
        self.target_core = target_core
        self.ports: List[AsyncRpcPort] = []
        self._doorbell = Notify("cvm-exit")
        self.ipis_received = 0
        self.wakeups_performed = 0
        self.activations = 0
        #: watchdog period: when set, the wake-up thread re-polls the
        #: completion slots after this long without an exit IPI, so a
        #: lost IPI degrades to latency instead of a hang.  ``None``
        #: (default) keeps the paper's pure IPI-driven behaviour.
        self.watchdog_ns: Optional[int] = None
        self.watchdog_polls = 0
        self.watchdog_recoveries = 0
        #: fault-injection hook (repro.faults): extra nanoseconds the
        #: wake-up thread burns before scanning on one activation
        self.stall_hook: Optional[Callable[[], int]] = None
        kernel.register_irq_handler(CVM_EXIT_SGI, self._irq_handler)
        self.thread = HostThread(
            name="cvm-wakeup",
            body=self._body(),
            sched_class=SchedClass.FIFO,
            affinity=host_cores or {target_core},
        )
        kernel.add_thread(self.thread, core_hint=target_core)

    def register_port(self, port: AsyncRpcPort) -> None:
        self.ports.append(port)

    # -- RMM side: the exit IPI (step 1) ----------------------------------

    def notify_exit(self, port: AsyncRpcPort) -> None:
        """Called by the RMM after writing the exit record."""
        self.machine.gic.send_sgi(self.target_core, CVM_EXIT_SGI)

    # -- host side ---------------------------------------------------------

    def _irq_handler(self, core_index: int, intid: int) -> int:
        """IPI handler: activate the wake-up thread (step 2)."""
        self.ipis_received += 1
        self._doorbell.signal()
        return self.costs.wakeup_activate_ns

    def _body(self):
        """Wake-up thread: poll channels, wake vCPU threads (steps 3-6).

        With ``watchdog_ns`` set, the suspend in step 2 is bounded: if
        no exit IPI arrives within the period the thread re-polls the
        slots anyway, recovering completions whose IPI was lost.
        """
        sim = self.kernel.sim
        while True:
            from_watchdog = False
            if self.watchdog_ns is None:
                yield TBlock(self._doorbell.wait())
            else:
                wait = self._doorbell.wait()
                guarded = with_timeout(
                    sim, wait, self.watchdog_ns, name="wakeup-watchdog"
                )
                value = yield TBlock(guarded)
                if value is TIMED_OUT:
                    self._doorbell.cancel_wait(wait)
                    self.watchdog_polls += 1
                    from_watchdog = True
            self.activations += 1
            if self.stall_hook is not None:
                stall_ns = self.stall_hook()
                if stall_ns:
                    yield TCompute(stall_ns)
            progress = True
            while progress:
                progress = False
                for port in self.ports:
                    yield TCompute(self.costs.wakeup_scan_slot_ns)
                    slot = port.slot
                    if slot.completed and not slot.claimed.fired:
                        yield TCompute(self.costs.vcpu_unblock_ns)
                        self.wakeups_performed += 1
                        if from_watchdog:
                            self.watchdog_recoveries += 1
                            self.machine.tracer.count(
                                "wakeup_watchdog_recovered"
                            )
                        slot.claimed.fire(slot.result)
                        progress = True
