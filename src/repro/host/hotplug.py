"""CPU hotplug: gracefully handing cores between host and monitor.

The paper's insight (S4.2, inspired by AWS Nitro Enclaves): Linux's
existing hotplug machinery already migrates tasks away, retargets
interrupts, and marks a core unusable.  The prototype's only changes
are (1) skipping the frequency-scaling clean-up so "offline" cores stay
at full clock, and (2) ending the shutdown path with a call into the
monitor instead of halting the core.

Both transitions are symmetric and idempotence-safe: a wrong-state
request (offlining an offline core, onlining an online one) raises a
typed :class:`HotplugError` *before* any state is touched, and a
fault-injected mid-transition abort (``kernel.fault_hooks["hotplug"]``)
likewise fires before the first mutation, so an aborted transition
leaves the core exactly as it found it.
"""

from __future__ import annotations

from ..costs import CostModel, DEFAULT_COSTS
from ..sim.engine import SimulationError
from .kernel import HostKernel
from .threads import TCompute, TSleep

__all__ = ["HotplugError", "offline_core", "online_core"]


class HotplugError(SimulationError):
    """A hotplug transition was requested from the wrong state, or was
    aborted mid-way (fault injection).  Host-visible only."""


def _check_abort(kernel: HostKernel, direction: str, index: int) -> None:
    """Consult the fault-injection hook; placed before any mutation so
    an abort needs no rollback."""
    hook = kernel.fault_hooks.get("hotplug")
    if hook is not None and hook(direction, index):
        kernel.machine.tracer.count("hotplug_abort")
        raise HotplugError(
            f"hotplug {direction} of core {index} aborted mid-transition"
        )


def offline_core(
    kernel: HostKernel,
    index: int,
    fallback_core: int,
    costs: CostModel = DEFAULT_COSTS,
):
    """Take a core offline (thread-body generator fragment).

    Afterwards the host scheduler no longer uses the core; its clock
    stays up (the skipped frequency-scaling step) so the monitor can
    take it over immediately.
    """
    machine = kernel.machine
    core = machine.core(index)
    if not core.online:
        raise HotplugError(f"core {index} already offline")
    # the hotplug state machine runs work on several CPUs and waits for
    # RCU grace periods; we charge a little CPU and mostly wall time
    yield TCompute(50_000)
    yield TSleep(costs.hotplug_offline_ns)
    _check_abort(kernel, "offline", index)
    kernel.migrate_all_from(index)
    machine.gic.retarget_spis_away_from(index, fallback=fallback_core)
    core.set_online(False)
    # NOTE: the stock shutdown path would now drop the core's frequency
    # and halt it; the core-gapping patch skips that (S4.2) and instead
    # transfers control to the monitor (done by the caller).
    kernel.kick_core(index)  # make its scheduler loop notice and exit
    machine.tracer.count("hotplug_offline")
    return index


def online_core(
    kernel: HostKernel,
    index: int,
    costs: CostModel = DEFAULT_COSTS,
):
    """Bring a reclaimed core back online for the host."""
    machine = kernel.machine
    core = machine.core(index)
    if core.online:
        raise HotplugError(f"core {index} already online")
    yield TCompute(30_000)
    yield TSleep(costs.hotplug_online_ns)
    _check_abort(kernel, "online", index)
    core.irq.reset()
    core.set_online(True)
    kernel.start_core(index)
    kernel.unpark_for_core(index)
    machine.tracer.count("hotplug_online")
    return index
