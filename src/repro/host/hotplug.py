"""CPU hotplug: gracefully handing cores between host and monitor.

The paper's insight (S4.2, inspired by AWS Nitro Enclaves): Linux's
existing hotplug machinery already migrates tasks away, retargets
interrupts, and marks a core unusable.  The prototype's only changes
are (1) skipping the frequency-scaling clean-up so "offline" cores stay
at full clock, and (2) ending the shutdown path with a call into the
monitor instead of halting the core.

Both transitions are symmetric and idempotence-safe: a wrong-state
request (offlining an offline core, onlining an online one) raises a
typed :class:`HotplugError` *before* any state is touched, and a
fault-injected mid-transition abort (``kernel.fault_hooks["hotplug"]``)
likewise fires before the first mutation, so an aborted transition
leaves the core exactly as it found it.

The transitions live on a :class:`HotplugController` bound to one host
kernel.  Every transition — successful or aborted — is appended to the
controller's typed log (:class:`HotplugResult`), which the elastic
fleet sweep reads for its timeline and :meth:`HotplugController.audit`
cross-checks against the tracer counters and the cores' online bits.
The module-level :func:`offline_core`/:func:`online_core` functions are
thin wrappers kept for one release; new code should go through the
planner's controller (``planner.hotplug``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..costs import CostModel, DEFAULT_COSTS
from ..sim.engine import SimulationError
from .kernel import HostKernel
from .threads import TCompute, TSleep

__all__ = [
    "HotplugError",
    "HotplugResult",
    "HotplugController",
    "offline_core",
    "online_core",
]


class HotplugError(SimulationError):
    """A hotplug transition was requested from the wrong state, or was
    aborted mid-way (fault injection).  Host-visible only."""


@dataclass(frozen=True)
class HotplugResult:
    """One logged hotplug transition (symmetric for both directions)."""

    direction: str  # "offline" | "online"
    core: int
    ok: bool
    started_ns: int
    finished_ns: int
    error: str = ""

    @property
    def duration_ns(self) -> int:
        return self.finished_ns - self.started_ns


class HotplugController:
    """Hotplug transitions for one kernel, with a consumable log.

    The planner owns one controller per server
    (:attr:`~repro.host.planner.CorePlanner.hotplug`); every core it
    acquires or reclaims flows through here, so the log is the complete
    hotplug history of the machine.
    """

    def __init__(self, kernel: HostKernel, costs: CostModel = DEFAULT_COSTS):
        self.kernel = kernel
        self.costs = costs
        self.log: List[HotplugResult] = []

    # ------------------------------------------------------------------
    # transitions (thread-body generator fragments)
    # ------------------------------------------------------------------

    def _check_abort(self, direction: str, index: int) -> None:
        """Consult the fault-injection hook; placed before any mutation
        so an abort needs no rollback."""
        hook = self.kernel.fault_hooks.get("hotplug")
        if hook is not None and hook(direction, index):
            self.kernel.machine.tracer.count("hotplug_abort")
            raise HotplugError(
                f"hotplug {direction} of core {index} aborted mid-transition"
            )

    def _record(
        self, direction: str, index: int, started_ns: int, error: str = ""
    ) -> None:
        self.log.append(
            HotplugResult(
                direction=direction,
                core=index,
                ok=not error,
                started_ns=started_ns,
                finished_ns=self.kernel.sim.now,
                error=error,
            )
        )

    def offline(self, index: int, fallback_core: int):
        """Take a core offline (thread-body generator fragment).

        Afterwards the host scheduler no longer uses the core; its
        clock stays up (the skipped frequency-scaling step) so the
        monitor can take it over immediately.
        """
        machine = self.kernel.machine
        core = machine.core(index)
        if not core.online:
            raise HotplugError(f"core {index} already offline")
        started_ns = self.kernel.sim.now
        # the hotplug state machine runs work on several CPUs and waits
        # for RCU grace periods; we charge a little CPU and mostly wall
        # time
        yield TCompute(50_000)
        yield TSleep(self.costs.hotplug_offline_ns)
        try:
            self._check_abort("offline", index)
        except HotplugError as exc:
            self._record("offline", index, started_ns, error=str(exc))
            raise
        self.kernel.migrate_all_from(index)
        machine.gic.retarget_spis_away_from(index, fallback=fallback_core)
        core.set_online(False)
        # NOTE: the stock shutdown path would now drop the core's
        # frequency and halt it; the core-gapping patch skips that
        # (S4.2) and instead transfers control to the monitor (done by
        # the caller).
        self.kernel.kick_core(index)  # make its scheduler loop notice + exit
        machine.tracer.count("hotplug_offline")
        self._record("offline", index, started_ns)
        return index

    def online(self, index: int):
        """Bring a reclaimed core back online for the host."""
        machine = self.kernel.machine
        core = machine.core(index)
        if core.online:
            raise HotplugError(f"core {index} already online")
        started_ns = self.kernel.sim.now
        yield TCompute(30_000)
        yield TSleep(self.costs.hotplug_online_ns)
        try:
            self._check_abort("online", index)
        except HotplugError as exc:
            self._record("online", index, started_ns, error=str(exc))
            raise
        core.irq.reset()
        core.set_online(True)
        self.kernel.start_core(index)
        self.kernel.unpark_for_core(index)
        machine.tracer.count("hotplug_online")
        self._record("online", index, started_ns)
        return index

    # ------------------------------------------------------------------
    # log views + audit
    # ------------------------------------------------------------------

    def transitions(self, direction: Optional[str] = None) -> List[HotplugResult]:
        """Logged transitions, optionally filtered by direction."""
        if direction is None:
            return list(self.log)
        return [r for r in self.log if r.direction == direction]

    def audit(self) -> List[str]:
        """Cross-check the log against counters and the cores' state.

        Returns human-readable problems (empty when clean):

        * successful offline/online totals must equal the tracer's
          ``hotplug_offline``/``hotplug_online`` counters (the log and
          the metrics must tell the same story);
        * replaying the log per core must land on the core's actual
          ``online`` bit (no transition happened behind the log's back).
        """
        problems: List[str] = []
        machine = self.kernel.machine
        counters = machine.tracer.counters
        for direction in ("offline", "online"):
            logged = sum(
                1 for r in self.log if r.direction == direction and r.ok
            )
            counted = int(counters.get(f"hotplug_{direction}", 0))
            if logged != counted:
                problems.append(
                    f"hotplug log records {logged} {direction} "
                    f"transition(s) but the hotplug_{direction} counter "
                    f"says {counted}"
                )
        final: dict = {}
        for result in self.log:
            if result.ok:
                final[result.core] = result.direction == "online"
        for index, expect_online in sorted(final.items()):
            actual = machine.core(index).online
            if actual != expect_online:
                problems.append(
                    f"core {index}: log ends with "
                    f"{'online' if expect_online else 'offline'} but the "
                    f"core is {'online' if actual else 'offline'}"
                )
        return problems


# ---------------------------------------------------------------------------
# thin wrappers (deprecated shape; kept for one release)


def offline_core(
    kernel: HostKernel,
    index: int,
    fallback_core: int,
    costs: CostModel = DEFAULT_COSTS,
):
    """Deprecated wrapper: one-shot :meth:`HotplugController.offline`.

    The transition log of the throwaway controller is discarded; use
    ``planner.hotplug.offline(...)`` to keep the machine's history.
    """
    return HotplugController(kernel, costs).offline(index, fallback_core)


def online_core(
    kernel: HostKernel,
    index: int,
    costs: CostModel = DEFAULT_COSTS,
):
    """Deprecated wrapper: one-shot :meth:`HotplugController.online`."""
    return HotplugController(kernel, costs).online(index)
