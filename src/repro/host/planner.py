"""The user-mode core planner (S3).

Performs admission control on CVMs, assigns physical cores, and
orchestrates dedicating those cores to the monitor and returning them to
the host afterwards.  It complements the cloud's node-level resource
allocator: a vCPU-to-core binding that used to be a performance hint
("pinning") is now a security property enforced by the RMM from the
first dispatch of each vCPU.

The planner runs as an ordinary (untrusted) host thread: nothing it
does is in the guest's TCB -- if it misbehaves, the RMM's binding
enforcement turns scheduling violations into RMI errors, not leaks.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..costs import CostModel, DEFAULT_COSTS
from ..guest.vm import GuestVm
from ..hw.memory import GRANULE_SIZE
from ..rmm.core_gap import CoreGapEngine, ReleaseCall, RmiCall
from ..rmm.rmi import RmiCommand, RmiResult
from ..rpc.ports import AsyncRpcPort, RpcTimeoutError, SyncRpcPort
from ..sim.engine import Event, SimulationError
from ..sim.timeout import TIMED_OUT, with_timeout
from .hotplug import HotplugController, HotplugError
from .kernel import HostKernel
from .kvm import KvmVm, VmMode
from .threads import TCompute, TSpin
from .wakeup import ExitNotifier

__all__ = ["AdmissionError", "CorePlanner"]


class AdmissionError(Exception):
    """Not enough free cores to honour the CVM's requirements."""


class CorePlanner:
    """Admission control + core allocation + CVM orchestration."""

    #: guest "image" pages loaded via DATA_CREATE per CVM (stand-in for
    #: a real kernel image; keeps measurement and RTT paths exercised)
    IMAGE_PAGES = 8

    def __init__(
        self,
        kernel: HostKernel,
        engine: CoreGapEngine,
        notifier: ExitNotifier,
        host_cores: Set[int],
        costs: CostModel = DEFAULT_COSTS,
    ):
        self.kernel = kernel
        self.machine = kernel.machine
        self.engine = engine
        self.notifier = notifier
        self.host_cores = set(host_cores)
        self.costs = costs
        self.sync_port = SyncRpcPort(
            kernel.sim, "planner", tracer=self.machine.tracer
        )
        #: deadline for one sync RMI busy-wait: None (default) spins
        #: forever (the paper's happy path); when set, an unanswered
        #: call raises a host-visible RpcTimeoutError instead of
        #: wedging the planner on a dead dedicated core
        self.sync_timeout_ns: Optional[int] = None
        #: vm name -> dedicated core list
        self.allocations: Dict[str, List[int]] = {}
        #: every hotplug transition this planner drives flows through
        #: one controller, so its log is the machine's hotplug history
        self.hotplug = HotplugController(kernel, costs)
        #: (vm name, vcpu index) -> resume event of a parked (shrunk)
        #: vCPU; grow_vcpu pops and fires it
        self.parked: Dict[Tuple[str, int], Event] = {}
        #: bump allocator for granules handed to the RMM
        self._next_granule = 1 << 30

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------

    def free_cores(self) -> List[int]:
        allocated = {c for cores in self.allocations.values() for c in cores}
        return [
            core.index
            for core in self.machine.cores
            if core.online
            and core.index not in self.host_cores
            and core.index not in allocated
        ]

    def admit(self, n_vcpus: int) -> List[int]:
        """Pick cores for a new CVM or refuse it."""
        free = self.free_cores()
        if len(free) < n_vcpus:
            raise AdmissionError(
                f"need {n_vcpus} cores, only {len(free)} available"
            )
        return free[:n_vcpus]

    # ------------------------------------------------------------------
    # granules
    # ------------------------------------------------------------------

    def _alloc_granule(self) -> int:
        addr = self._next_granule
        self._next_granule += GRANULE_SIZE
        return addr

    # ------------------------------------------------------------------
    # RMI transport (sync busy-wait RPC, S4.3)
    # ------------------------------------------------------------------

    def rmi(self, inbox, cmd: RmiCommand, args=()):
        """Issue one synchronous RMI call (thread-body generator).

        With ``sync_timeout_ns`` set the busy-wait is bounded: a call a
        dead dedicated core never answers raises a host-visible
        :class:`RpcTimeoutError` (invariant #2: the guest never sees
        transport failures; the planner does, and degrades).
        """
        yield TCompute(self.costs.rpc_write_ns)
        request = self.sync_port.post((cmd, args))
        inbox.try_put(RmiCall(request))
        if self.sync_timeout_ns is None:
            result = yield TSpin(request.done)
        else:
            guarded = with_timeout(
                self.kernel.sim, request.done, self.sync_timeout_ns,
                name=f"rmi-timeout:{cmd.name}",
            )
            result = yield TSpin(guarded)
            if result is TIMED_OUT:
                self.machine.tracer.count("rmi_sync_timeout")
                raise RpcTimeoutError(
                    f"RMI {cmd} unanswered after {self.sync_timeout_ns} ns"
                )
        yield TCompute(self.costs.rpc_poll_detect_ns + self.costs.rpc_read_ns)
        if not isinstance(result, RmiResult) or not result.ok:
            raise SimulationError(f"RMI {cmd} failed: {result}")
        return result

    # ------------------------------------------------------------------
    # CVM launch / teardown (thread-body generators)
    # ------------------------------------------------------------------

    def _acquire_cores(self, n_vcpus: int):
        """Offline + dedicate ``n_vcpus`` cores (thread-body generator).

        Hardened against mid-transition hotplug aborts: a core whose
        offline transition aborts is skipped and the next free core is
        tried; if the pool runs dry, every already-dedicated core is
        rolled back (released + onlined) and admission is refused.
        """
        self.admit(n_vcpus)  # fail fast before touching any core
        fallback = min(self.host_cores)
        acquired: List[int] = []
        abandoned: Set[int] = set()
        while len(acquired) < n_vcpus:
            candidates = [
                c for c in self.free_cores() if c not in abandoned
            ]
            if not candidates:
                yield from self._rollback_cores(acquired)
                raise AdmissionError(
                    f"need {n_vcpus} cores, acquisition failed after "
                    f"{len(abandoned)} aborted hotplug transition(s)"
                )
            index = candidates[0]
            try:
                yield from self.hotplug.offline(index, fallback)
            except HotplugError:
                self.machine.tracer.count("planner_hotplug_retry")
                abandoned.add(index)
                continue
            self.engine.dedicate(index)
            acquired.append(index)
        return acquired

    def _rollback_cores(self, acquired: List[int]):
        """Release + online cores dedicated by a failed acquisition."""
        for index in acquired:
            release = ReleaseCall(done=Event(f"release:{index}"))
            self.engine.dedicated[index].inbox.try_put(release)
            yield TSpin(release.done)
            try:
                yield from self.hotplug.online(index)
            except HotplugError:
                # an abort during rollback leaves the core parked
                # offline; it is unusable but in a consistent state
                self.machine.tracer.count("planner_rollback_parked")

    def launch_cvm(self, vm: GuestVm, busywait: bool = False):
        """Dedicate cores, build the realm, start the vCPU threads.

        Returns the :class:`KvmVm`; run as (part of) a host thread body.
        """
        launch_started_at = self.kernel.sim.now
        # 1. hotplug the cores away from the host, hand them to the RMM
        cores = yield from self._acquire_cores(vm.n_vcpus)
        self.allocations[vm.name] = cores
        inbox = self.engine.dedicated[cores[0]].inbox

        # 2. create and populate the realm over sync RPC
        rd = self._alloc_granule()
        yield from self.rmi(inbox, RmiCommand.GRANULE_DELEGATE, (rd,))
        result = yield from self.rmi(inbox, RmiCommand.REALM_CREATE, (rd,))
        realm_id = result.value

        for level in (1, 2, 3):
            table = self._alloc_granule()
            yield from self.rmi(inbox, RmiCommand.GRANULE_DELEGATE, (table,))
            yield from self.rmi(
                inbox, RmiCommand.RTT_CREATE, (realm_id, 0, level, table)
            )
        for page in range(self.IMAGE_PAGES):
            data = self._alloc_granule()
            yield from self.rmi(inbox, RmiCommand.GRANULE_DELEGATE, (data,))
            yield from self.rmi(
                inbox,
                RmiCommand.DATA_CREATE,
                (realm_id, page * GRANULE_SIZE, data, page),
            )

        for idx in range(vm.n_vcpus):
            rec_granule = self._alloc_granule()
            yield from self.rmi(
                inbox, RmiCommand.GRANULE_DELEGATE, (rec_granule,)
            )
            yield from self.rmi(
                inbox, RmiCommand.REC_CREATE, (realm_id, rec_granule)
            )
            # loading the guest image: attach the vCPU runtime
            rec = self.engine.rmm.find_rec(realm_id, idx)
            rec.runtime = vm.vcpu(idx)
        yield from self.rmi(inbox, RmiCommand.REALM_ACTIVATE, (realm_id,))

        vm.realm_id = realm_id
        vm.domain = self.engine.rmm.realms[realm_id].domain

        # 3. host-side plumbing: ports, notifier, vCPU threads
        kvm = KvmVm(
            self.kernel,
            vm,
            VmMode.GAPPED,
            host_cores=self.host_cores,
            costs=self.costs,
            notifier=self.notifier,
            engine=self.engine,
            realm_id=realm_id,
            busywait=busywait,
            policy=self.engine.policy,
        )
        for idx in range(vm.n_vcpus):
            port = AsyncRpcPort(
                self.kernel.sim,
                f"{vm.name}.vcpu{idx}",
                notify_exit=self.notifier.notify_exit,
                tracer=self.machine.tracer,
            )
            kvm.ports[idx] = port
            kvm.planned_cores[idx] = cores[idx]
            self.notifier.register_port(port)
        self.machine.tracer.sample(
            "planner_launch_ns", self.kernel.sim.now - launch_started_at
        )
        return kvm

    def rebind_vcpu(self, kvm: KvmVm, vcpu_idx: int, new_core: int):
        """Extension (S3 future work): migrate one vCPU's core binding.

        Thread-body generator.  The new core must already be free; the
        planner hotplugs it away from the host, dedicates it, asks the
        REC's current core to hand the binding over, and then reclaims
        the old core.  Used to defragment long-running nodes at coarse
        (tens of seconds) time scales.
        """
        from ..rmm.core_gap import RebindCall

        vm = kvm.vm
        if new_core in self.host_cores:
            raise SimulationError("cannot rebind onto a host core")
        old_core = kvm.planned_cores[vcpu_idx]
        # 1. park the vCPU between run calls (kick + hold the thread)
        acked, resume = kvm.pause_vcpu(vcpu_idx)
        yield TSpin(acked)
        # 2. prepare the destination
        yield from self.hotplug.offline(new_core, min(self.host_cores))
        self.engine.dedicate(new_core)
        # 3. ask the current core to hand over (validates READY state)
        rec = self.engine.rmm.find_rec(kvm.realm_id, vcpu_idx)
        rebind = RebindCall(
            kvm.realm_id, vcpu_idx, new_core, Event(f"rebind:{rec.name}")
        )
        self.engine.dedicated[old_core].inbox.try_put(rebind)
        result = yield TSpin(rebind.done)
        if not result.ok:
            # roll the destination back
            release = ReleaseCall(done=Event(f"release:{new_core}"))
            self.engine.dedicated[new_core].inbox.try_put(release)
            yield TSpin(release.done)
            yield from self.hotplug.online(new_core)
            resume.fire(None)
            raise SimulationError(f"rebind refused: {result}")
        # 4. reclaim the old core for the host
        release = ReleaseCall(done=Event(f"release:{old_core}"))
        self.engine.dedicated[old_core].inbox.try_put(release)
        release_result = yield TSpin(release.done)
        if not release_result.ok:
            raise SimulationError(f"old core release failed: {release_result}")
        yield from self.hotplug.online(old_core)
        # 5. bookkeeping + resume the vCPU (its next run call lands in
        # the new core's inbox via the updated binding)
        kvm.planned_cores[vcpu_idx] = new_core
        cores = self.allocations[vm.name]
        cores[cores.index(old_core)] = new_core
        resume.fire(None)
        return new_core

    def evacuate_vcpu(self, kvm: KvmVm, vcpu_idx: int):
        """Graceful degradation: move a vCPU off its (suspect) core.

        Thread-body generator.  Picks a spare free core and rebinds the
        REC onto it via the existing :class:`RebindCall` path; with no
        spare core available the evacuation is *cleanly refused* with
        an :class:`AdmissionError` (host-visible, never guest-visible).
        """
        spares = self.free_cores()
        if not spares:
            self.machine.tracer.count("planner_evacuate_refused")
            raise AdmissionError(
                f"no spare core to evacuate vcpu {vcpu_idx} of "
                f"{kvm.vm.name}"
            )
        new_core = yield from self.rebind_vcpu(kvm, vcpu_idx, spares[0])
        self.machine.tracer.count("planner_evacuate")
        return new_core

    def handle_core_failure(self, kvm: KvmVm, vcpu_idx: int):
        """Best-effort response to a dedicated-core failure report.

        Thread-body generator: try to evacuate the vCPU to a spare
        core; any failure along the way (no spare, rebind refused,
        sync-RPC timeout against a dead core) is absorbed into a clean
        host-side refusal -- ``(False, reason)`` -- instead of an
        unhandled error.
        """
        try:
            new_core = yield from self.evacuate_vcpu(kvm, vcpu_idx)
        except (AdmissionError, RpcTimeoutError, SimulationError) as exc:
            self.machine.tracer.count("planner_failure_refused")
            return (False, str(exc))
        return (True, new_core)

    def shrink_vcpu(self, kvm: KvmVm, vcpu_idx: int):
        """Autoscaler shrink: park one vCPU, reclaim its core (thread body).

        The vCPU thread is paused between run calls, the REC's binding
        is dropped monitor-side (:class:`~repro.rmm.core_gap.UnbindCall`,
        which scrubs the core), and the core is released and hotplugged
        back online for the host.  The REC keeps its runtime state; a
        later :meth:`grow_vcpu` re-binds it to a fresh core.
        """
        from ..rmm.core_gap import UnbindCall

        vm = kvm.vm
        key = (vm.name, vcpu_idx)
        if key in self.parked:
            raise SimulationError(
                f"vcpu {vcpu_idx} of {vm.name} is already parked"
            )
        # 1. park the vCPU thread between run calls
        acked, resume = kvm.pause_vcpu(vcpu_idx)
        yield TSpin(acked)
        self.parked[key] = resume
        old_core = kvm.planned_cores[vcpu_idx]
        # 2. drop the binding monitor-side (validates READY, scrubs)
        unbind = UnbindCall(
            kvm.realm_id, vcpu_idx, Event(f"unbind:{vm.name}.{vcpu_idx}")
        )
        self.engine.dedicated[old_core].inbox.try_put(unbind)
        result = yield TSpin(unbind.done)
        if not result.ok:
            self.parked.pop(key, None)
            resume.fire(None)
            raise SimulationError(f"shrink refused: {result}")
        # 3. reclaim the core for the host
        release = ReleaseCall(done=Event(f"release:{old_core}"))
        self.engine.dedicated[old_core].inbox.try_put(release)
        release_result = yield TSpin(release.done)
        if not release_result.ok:
            raise SimulationError(
                f"core {old_core} release failed: {release_result}"
            )
        yield from self.hotplug.online(old_core)
        self.allocations[vm.name].remove(old_core)
        self.machine.tracer.count("planner_shrink_count")
        return old_core

    def grow_vcpu(self, kvm: KvmVm, vcpu_idx: int):
        """Autoscaler grow: give a parked vCPU a fresh dedicated core.

        Thread-body generator.  Hotplugs a free core away from the
        host, dedicates it, points the parked vCPU at it and resumes
        the thread; the REC's next dispatch becomes a first dispatch on
        the new core (permanent binding, S4.2).  Refused cleanly with
        :class:`AdmissionError` when no core is free.
        """
        vm = kvm.vm
        key = (vm.name, vcpu_idx)
        resume = self.parked.get(key)
        if resume is None:
            raise SimulationError(
                f"vcpu {vcpu_idx} of {vm.name} is not parked"
            )
        free = self.free_cores()
        if not free:
            self.machine.tracer.count("planner_grow_refused_count")
            raise AdmissionError(
                f"no spare core to grow {vm.name} back to "
                f"vcpu {vcpu_idx}"
            )
        index = free[0]
        yield from self.hotplug.offline(index, min(self.host_cores))
        self.engine.dedicate(index)
        kvm.planned_cores[vcpu_idx] = index
        self.allocations[vm.name].append(index)
        self.parked.pop(key)
        resume.fire(None)
        self.machine.tracer.count("planner_grow_count")
        return index

    def terminate_cvm(self, kvm: KvmVm):
        """Destroy a finished CVM and reclaim its cores (thread body)."""
        vm = kvm.vm
        realm_id = kvm.realm_id
        cores = self.allocations.get(vm.name, [])
        inbox = self.engine.dedicated[cores[0]].inbox
        for idx in range(vm.n_vcpus):
            yield from self.rmi(
                inbox, RmiCommand.REC_DESTROY, (realm_id, idx)
            )
        yield from self.rmi(inbox, RmiCommand.REALM_DESTROY, (realm_id,))
        # ask each dedicated core to stand down, then online it again
        for index in cores:
            release = ReleaseCall(done=Event(f"release:{index}"))
            self.engine.dedicated[index].inbox.try_put(release)
            result = yield TSpin(release.done)
            if not result.ok:
                raise SimulationError(f"core {index} release failed: {result}")
            yield from self.hotplug.online(index)
        self.allocations.pop(vm.name, None)
        # parked (shrunk) vCPU threads of this VM stay parked forever;
        # their resume events die with the bookkeeping
        for key in [k for k in self.parked if k[0] == vm.name]:
            self.parked.pop(key)
        return len(cores)

    def evict_cvm(self, kvm: KvmVm):
        """Tear down a *still-serving* CVM (thread body).

        :meth:`terminate_cvm` assumes every REC is READY (finished
        workloads).  Eviction first parks every live vCPU thread
        between run calls — the same pause handshake the rebind path
        uses — so REC_DESTROY always sees a READY REC, then reuses the
        terminate path.  Returns the number of reclaimed cores.
        """
        vm = kvm.vm
        for idx in range(vm.n_vcpus):
            if (vm.name, idx) in self.parked:
                continue  # already parked by an earlier shrink
            rec = self.engine.rmm.find_rec(kvm.realm_id, idx)
            if rec.runtime is not None and rec.runtime.finished:
                continue  # workload done; its thread has exited
            acked, resume = kvm.pause_vcpu(idx)
            yield TSpin(acked)
            self.parked[(vm.name, idx)] = resume
        released = yield from self.terminate_cvm(kvm)
        self.machine.tracer.count("planner_evict_count")
        return released
