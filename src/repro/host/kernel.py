"""Host OS kernel model: per-core scheduler, IRQs, threads, hotplug hooks.

Models the parts of Linux that the paper's design interacts with:

* a per-core scheduler with a fair (CFS-like, quantum round-robin) class
  and a FIFO real-time class -- the prototype runs vCPU threads and the
  wake-up thread at FIFO priority (S4.3) so they run to completion;
* interrupt handling on whichever core an interrupt targets, with the
  pollution cost that implies for co-located guests;
* reschedule IPIs so cross-core wakeups preempt lower-priority work;
* task migration off cores that go offline (the hotplug path, S4.2);
* optional per-core housekeeping threads (kworkers, RCU, timers) that
  model the background noise a shared-core guest suffers.

Threads yield :mod:`repro.host.threads` actions; guest execution inside
a vCPU thread uses ``TCompute(..., domain=<realm>, return_on_irq=True)``
so any physical interrupt returns control for VM-exit semantics.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, List, Optional

from ..costs import CostModel, DEFAULT_COSTS
from ..hw.core import ExecStatus, PhysicalCore
from ..hw.machine import Machine
from ..isa.worlds import HOST_DOMAIN
from ..sim.engine import AnyOf, Event
from ..sim.sync import Notify
from .threads import (
    HostThread,
    SchedClass,
    TBlock,
    TCompute,
    TSleep,
    TSpin,
    TYield,
    ThreadState,
)

__all__ = ["RESCHED_SGI", "CVM_EXIT_SGI", "HostKernel"]

#: one of Linux's 7 reserved IPIs
RESCHED_SGI = 0
#: the single additional IPI the prototype allocates for CVM-exit
#: notifications (S4.3: 16 SGIs exist, 7 reserved, we take one more)
CVM_EXIT_SGI = 8

IrqHandler = Callable[[int, int], Optional[int]]

#: CFS-like wakeup granularity: a freshly woken fair thread (which has
#: accumulated a large vruntime deficit while sleeping) preempts a fair
#: thread that has already run at least this long
WAKEUP_GRANULARITY_NS = 100_000


class HostKernel:
    """The host OS across all normal-world cores."""

    def __init__(self, machine: Machine, costs: CostModel = DEFAULT_COSTS):
        self.machine = machine
        self.sim = machine.sim
        self.tracer = machine.tracer
        self.costs = costs
        n = machine.n_cores
        self._fifo: Dict[int, Deque[HostThread]] = {i: deque() for i in range(n)}
        self._fair: Dict[int, Deque[HostThread]] = {i: deque() for i in range(n)}
        self.work: Dict[int, Notify] = {
            i: Notify(f"work{i}") for i in range(n)
        }
        self.current: Dict[int, Optional[HostThread]] = {
            i: None for i in range(n)
        }
        self._dispatched_at: Dict[int, int] = {i: 0 for i in range(n)}
        self.irq_handlers: Dict[int, IrqHandler] = {}
        #: fault-injection hooks (repro.faults), keyed by site name
        #: (e.g. "hotplug"); empty in normal operation
        self.fault_hooks: Dict[str, Callable[..., object]] = {}
        self.threads: List[HostThread] = []
        self._parked: List[HostThread] = []
        self._started = False
        self.register_irq_handler(RESCHED_SGI, lambda core, intid: 150)

    # ------------------------------------------------------------------
    # public API
    # ------------------------------------------------------------------

    def start(self) -> None:
        """Spawn the scheduler loop on every online normal-world core."""
        self._started = True
        for core in self.machine.cores:
            if core.online:
                self.start_core(core.index)

    def start_core(self, index: int) -> None:
        core = self.machine.core(index)
        self.sim.spawn(self._core_loop(core), name=f"hostcpu{index}")

    def add_thread(
        self, thread: HostThread, core_hint: Optional[int] = None
    ) -> HostThread:
        """Register and enqueue a new thread."""
        self.threads.append(thread)
        self._enqueue(thread, core_hint)
        return thread

    def wake(self, thread: HostThread, value=None) -> None:
        """Make a blocked thread runnable (with a value to send in)."""
        if thread.state is not ThreadState.BLOCKED:
            return
        thread.send_value = value
        self._enqueue(thread)

    def register_irq_handler(self, intid: int, handler: IrqHandler) -> None:
        """Install a handler; it may return extra handling cost in ns."""
        self.irq_handlers[intid] = handler

    def add_housekeeping(self, period_ns: int, burst_ns: int) -> None:
        """Per-core background kernel work (kworkers, RCU callbacks...).

        This is the host "noise" that shared-core guests absorb and
        core-gapped guests escape.
        """
        for core in self.machine.cores:
            if not core.online:
                continue
            thread = HostThread(
                name=f"kworker/{core.index}",
                body=self._housekeeping_body(period_ns, burst_ns),
                sched_class=SchedClass.FAIR,
                affinity={core.index},
            )
            thread.per_cpu = True
            self.add_thread(thread, core_hint=core.index)

    def _housekeeping_body(self, period_ns: int, burst_ns: int):
        while True:
            yield TSleep(period_ns)
            yield TCompute(burst_ns)

    # ------------------------------------------------------------------
    # placement
    # ------------------------------------------------------------------

    def _load(self, index: int) -> int:
        return (
            len(self._fifo[index])
            + len(self._fair[index])
            + (1 if self.current[index] is not None else 0)
        )

    def _eligible_cores(self, thread: HostThread) -> List[int]:
        return [
            c.index
            for c in self.machine.cores
            if c.online and thread.allowed_on(c.index)
        ]

    def _enqueue(self, thread: HostThread, core_hint: Optional[int] = None) -> None:
        eligible = self._eligible_cores(thread)
        if not eligible:
            # per-cpu thread whose core is offline: park it
            thread.state = ThreadState.BLOCKED
            self._parked.append(thread)
            return
        idle = [c for c in eligible if self._load(c) == 0]
        if core_hint is not None and core_hint in eligible:
            target = core_hint
        elif thread.last_core in eligible and (
            self._load(thread.last_core) == 0 or not idle
        ):
            # cache affinity, unless the old core is busy and an idle
            # one exists (Linux wake_affine / select_idle_sibling)
            target = thread.last_core
        elif idle:
            target = idle[0]
        else:
            target = min(eligible, key=self._load)
        thread.state = ThreadState.RUNNABLE
        queue = (
            self._fifo if thread.sched_class == SchedClass.FIFO else self._fair
        )
        queue[target].append(thread)
        self.work[target].signal()
        running = self.current[target]
        if running is not None and running.sched_class == SchedClass.FAIR:
            if thread.sched_class == SchedClass.FIFO:
                self.machine.gic.send_sgi(target, RESCHED_SGI)
            elif (
                self.sim.now - self._dispatched_at[target]
                >= WAKEUP_GRANULARITY_NS
            ):
                # CFS wakeup preemption: don't let a long-running fair
                # thread starve freshly woken ones (I/O threads)
                self.machine.gic.send_sgi(target, RESCHED_SGI)

    def _pick_next(self, index: int) -> Optional[HostThread]:
        if self._fifo[index]:
            return self._fifo[index].popleft()
        if self._fair[index]:
            return self._fair[index].popleft()
        return None

    def _has_runnable(self, index: int) -> bool:
        return bool(self._fifo[index] or self._fair[index])

    def _fifo_waiting(self, index: int) -> bool:
        return bool(self._fifo[index])

    # ------------------------------------------------------------------
    # hotplug support (mechanism; policy in repro.host.hotplug)
    # ------------------------------------------------------------------

    def migrate_all_from(self, index: int) -> int:
        """Move every queued thread off a core (parking per-cpu ones)."""
        moved = 0
        for queue in (self._fifo[index], self._fair[index]):
            while queue:
                thread = queue.popleft()
                thread.last_core = None
                self._enqueue(thread)
                moved += 1
        return moved

    def unpark_for_core(self, index: int) -> None:
        """Re-enqueue per-cpu threads parked when ``index`` went offline."""
        still_parked = []
        for thread in self._parked:
            if thread.allowed_on(index):
                thread.state = ThreadState.RUNNABLE
                self._fair[index].append(thread)
                self.work[index].signal()
            else:
                still_parked.append(thread)
        self._parked = still_parked

    def kick_core(self, index: int) -> None:
        """Send a reschedule IPI (used by hotplug and cross-core wakeups)."""
        self.machine.gic.send_sgi(index, RESCHED_SGI)

    # ------------------------------------------------------------------
    # the per-core scheduler loop
    # ------------------------------------------------------------------

    def _core_loop(self, core: PhysicalCore):
        index = core.index
        while core.online:
            yield from self._handle_irqs(core)
            if not core.online:
                break
            thread = self._pick_next(index)
            if thread is None:
                work_event = self.work[index].wait()
                irq_event = core.irq.doorbell.wait()
                wakeup = yield AnyOf([work_event, irq_event])
                if wakeup.source is work_event:
                    core.irq.doorbell.cancel_wait(irq_event)
                else:
                    self.work[index].cancel_wait(work_event)
                continue
            yield from self._run_thread(core, thread)
        # core went offline: push everything somewhere else
        self.migrate_all_from(index)

    def _handle_irqs(self, core: PhysicalCore):
        """Acknowledge and handle all pending interrupts on this core."""
        while True:
            intid = core.take_interrupt()
            if intid is None:
                return
            self.tracer.count(f"host_irq:{intid}")
            cost = self.costs.host_irq_entry_ns
            handler = self.irq_handlers.get(intid)
            if handler is not None:
                extra = handler(core.index, intid)
                cost += extra or 0
            else:
                cost += self.costs.host_device_irq_ns
            yield from core.execute(HOST_DOMAIN, cost, interruptible=False)

    def _run_thread(self, core: PhysicalCore, thread: HostThread):
        index = core.index
        self.current[index] = thread
        self._dispatched_at[index] = self.sim.now
        thread.state = ThreadState.RUNNING
        thread.last_core = index
        yield from core.execute(
            HOST_DOMAIN,
            self.costs.sched_pick_ns + self.costs.thread_switch_ns,
            interruptible=False,
        )
        try:
            yield from self._drive(core, thread)
        finally:
            if self.current[index] is thread:
                self.current[index] = None

    def _drive(self, core: PhysicalCore, thread: HostThread):
        """Advance one thread until it blocks, yields, finishes, or is
        preempted."""
        index = core.index
        dispatched_at = self.sim.now
        is_fair = thread.sched_class == SchedClass.FAIR
        while core.online:
            if (
                is_fair
                and self.sim.now - dispatched_at >= self.costs.sched_quantum_ns
                and self._has_runnable(index)
            ):
                # quantum used up across actions: round-robin
                self._requeue(thread, index)
                return
            if thread.pending_action is not None:
                action = thread.pending_action
                thread.pending_action = None
            else:
                try:
                    action = thread.body.send(thread.send_value)
                except StopIteration as stop:
                    thread.state = ThreadState.DONE
                    thread.result = getattr(stop, "value", None)
                    thread.done_event.fire(thread.result)
                    return
                thread.send_value = None

            if isinstance(action, TCompute):
                outcome = yield from self._run_compute(core, thread, action)
                if outcome == "descheduled":
                    return
            elif isinstance(action, TBlock):
                if action.event.fired:
                    thread.send_value = action.event.value
                    continue
                thread.state = ThreadState.BLOCKED
                action.event.add_waiter(
                    lambda value, t=thread: self.wake(t, value)
                )
                return
            elif isinstance(action, TSleep):
                timer_event = Event(f"sleep:{thread.name}")
                self.sim.schedule(action.ns, timer_event.fire)
                thread.state = ThreadState.BLOCKED
                timer_event.add_waiter(
                    lambda value, t=thread: self.wake(t, value)
                )
                return
            elif isinstance(action, TYield):
                if self._has_runnable(index):
                    self._requeue(thread, index)
                    return
                # nothing else to run: continue immediately
                continue
            elif isinstance(action, TSpin):
                outcome = yield from self._run_spin(core, thread, action)
                if outcome == "descheduled":
                    return
            else:
                raise TypeError(
                    f"thread {thread.name!r} yielded {action!r}"
                )

        # core went offline mid-thread: move it elsewhere
        self._requeue(thread, exclude=index)

    def _requeue(self, thread: HostThread, index: Optional[int] = None, exclude: Optional[int] = None) -> None:
        thread.state = ThreadState.RUNNABLE
        if exclude is not None:
            thread.last_core = None
        queue = (
            self._fifo if thread.sched_class == SchedClass.FIFO else self._fair
        )
        if index is not None and self.machine.core(index).online:
            queue[index].append(thread)
            self.work[index].signal()
        else:
            self._enqueue(thread)

    def _run_compute(self, core: PhysicalCore, thread: HostThread, action: TCompute):
        """Run one TCompute; returns "done" or "descheduled"."""
        index = core.index
        domain = action.domain or HOST_DOMAIN
        is_fair = thread.sched_class == SchedClass.FAIR
        return_on_irq = action.return_on_irq
        remaining = action.work_ns
        while remaining > 0:
            slice_ns = (
                min(remaining, self.costs.sched_quantum_ns)
                if is_fair
                else remaining
            )
            result = yield from core.execute(domain, slice_ns)
            executed = slice_ns - result.remaining_ns
            thread.cpu_ns += executed
            remaining -= executed
            if result.status == ExecStatus.INTERRUPTED:
                if return_on_irq:
                    # VM-exit semantics: hand the interrupt situation
                    # back to the thread body (KVM) with remaining work
                    thread.send_value = remaining
                    return "done"
                if not core.online:
                    self._requeue(thread, exclude=index)
                    return "descheduled"
                yield from self._handle_irqs(core)
                if is_fair and (
                    self._fifo_waiting(index)
                    or (
                        self._has_runnable(index)
                        and self.sim.now - self._dispatched_at[index]
                        >= WAKEUP_GRANULARITY_NS
                    )
                ):
                    thread.pending_action = TCompute(
                        remaining, action.domain, action.return_on_irq
                    )
                    self._requeue(thread, index)
                    return "descheduled"
                continue
            if is_fair and remaining > 0 and self._has_runnable(index):
                # quantum expired with competition: round-robin
                thread.pending_action = TCompute(
                    remaining, action.domain, action.return_on_irq
                )
                self._requeue(thread, index)
                return "descheduled"
        if return_on_irq:
            thread.send_value = 0
        return "done"

    def _run_spin(self, core: PhysicalCore, thread: HostThread, action: TSpin):
        """Busy-wait on an event while occupying the core."""
        index = core.index
        chunk = 100_000  # re-check interrupts at least every 100 us
        while not action.event.fired:
            result = yield from core.execute(
                HOST_DOMAIN, chunk, extra_wakeups=[action.event]
            )
            thread.cpu_ns += chunk - result.remaining_ns
            if result.status == ExecStatus.INTERRUPTED:
                if not core.online:
                    self._requeue(thread, exclude=index)
                    return "descheduled"
                yield from self._handle_irqs(core)
                if (
                    thread.sched_class == SchedClass.FAIR
                    and self._fifo_waiting(index)
                ):
                    # a FIFO thread preempts the spinner; respin later
                    thread.pending_action = action
                    self._requeue(thread, index)
                    return "descheduled"
        thread.send_value = action.event.value
        return "done"
