"""ISA-level abstractions: worlds, security domains, SMC, terminology."""

from .smc import SmcCall, SmcFunction, WorldSwitchCosts, crossing_needs_flush
from .terminology import TERMINOLOGY, IsaTerms, render_table1
from .worlds import (
    HOST_DOMAIN,
    IDLE_DOMAIN,
    MONITOR_DOMAIN,
    ROOT_DOMAIN,
    ExceptionLevel,
    SecurityDomain,
    World,
    realm_domain,
)

__all__ = [
    "HOST_DOMAIN",
    "IDLE_DOMAIN",
    "MONITOR_DOMAIN",
    "ROOT_DOMAIN",
    "TERMINOLOGY",
    "ExceptionLevel",
    "IsaTerms",
    "SecurityDomain",
    "SmcCall",
    "SmcFunction",
    "World",
    "WorldSwitchCosts",
    "crossing_needs_flush",
    "realm_domain",
    "render_table1",
]
