"""SMC calling convention and world-switch cost model.

On real hardware, every host<->monitor interaction is a Secure Monitor
Call through EL3 firmware, and every transition across the trust
boundary pays for context save/restore plus the microarchitectural
flushes that mitigate transient-execution attacks (e.g. the TDX module
flushing branch history on return to the host).  The paper's Table 2
shows a *null* EL3 call already costing >12.8 us on their AmpereOne
server, dominated by those mitigations.

This module models that cost structure explicitly so the same-core
baseline (traditional CVMs) and the core-gapped design (which avoids
these transitions entirely) can be compared on equal footing.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from .worlds import World

__all__ = ["SmcFunction", "SmcCall", "WorldSwitchCosts"]


class SmcFunction(enum.Enum):
    """SMC function groups relevant to CVM operation."""

    RMI = "rmi"  # host -> RMM realm management interface
    RSI = "rsi"  # realm -> RMM realm services interface
    PSCI = "psci"  # power state coordination (hotplug on/off)
    VENDOR = "vendor"


@dataclass(frozen=True)
class SmcCall:
    """One SMC with its function id and arguments (registers x0..x6)."""

    function: SmcFunction
    fid: int
    args: Tuple = ()

    def __str__(self) -> str:
        return f"SMC({self.function.value}:{self.fid:#x})"


@dataclass
class WorldSwitchCosts:
    """Latency components of a same-core world switch (one direction).

    Defaults are calibrated so a null host->RMM->host round trip through
    EL3 costs a little more than the paper's 12.8 us EL3-only figure
    (the paper notes the EL3 call is *part* of the full RMM call path).
    """

    # architectural context save/restore (GPRs, sysregs, SIMD)
    context_save_ns: int = 400
    context_restore_ns: int = 400
    # EL3 firmware dispatch logic
    el3_dispatch_ns: int = 300
    # transient-execution mitigation flushes applied on the trust
    # boundary: branch predictor / BHB invalidation, L1D flush,
    # speculation barriers.  This is the dominant term (see Table 2).
    mitigation_flush_ns: int = 5_300
    # RMM entry/exit bookkeeping (GPT/world register reconfiguration)
    world_reconfig_ns: int = 150

    def one_way(
        self, flush: bool = True, flush_ns: Optional[int] = None
    ) -> int:
        """Cost of a single transition between worlds on one core.

        ``flush_ns`` overrides the mitigation-flush term outright (an
        isolation policy substituting its own per-structure flush cost,
        possibly zero); otherwise ``flush`` selects the default term.
        """
        cost = (
            self.context_save_ns
            + self.el3_dispatch_ns
            + self.world_reconfig_ns
            + self.context_restore_ns
        )
        if flush_ns is not None:
            cost += flush_ns
        elif flush:
            cost += self.mitigation_flush_ns
        return cost

    def round_trip(
        self, flush: bool = True, flush_ns: Optional[int] = None
    ) -> int:
        """Null same-core call: enter the other world and come back."""
        return 2 * self.one_way(flush=flush, flush_ns=flush_ns)


#: Which world transitions cross a trust boundary and therefore require
#: mitigation flushes.  monitor<->realm is inside the guest TCB; the
#: expensive edges are anything touching the normal world.
TRUST_BOUNDARY: Dict[Tuple[World, World], bool] = {
    (World.NORMAL, World.REALM): True,
    (World.REALM, World.NORMAL): True,
    (World.NORMAL, World.ROOT): True,
    (World.ROOT, World.NORMAL): True,
    (World.REALM, World.ROOT): False,
    (World.ROOT, World.REALM): False,
}


def crossing_needs_flush(src: World, dst: World) -> bool:
    """True when a src->dst world switch must flush microarchitectural state."""
    return TRUST_BOUNDARY.get((src, dst), False)
