"""Table 1: confidential-VM terminology across ISA extensions.

The paper's unified model maps each vendor's names onto three concepts:
the confidential VM itself, the security monitor firmware, and the
privileged CPU mode the monitor runs in.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

__all__ = ["IsaTerms", "TERMINOLOGY", "unified_concepts", "render_table1"]


@dataclass(frozen=True)
class IsaTerms:
    """One column of Table 1."""

    isa: str
    confidential_vm: str
    security_monitor: str
    privileged_mode: str


TERMINOLOGY: Dict[str, IsaTerms] = {
    "Arm CCA": IsaTerms("Arm CCA", "realm VM", "RMM", "realm"),
    "Intel TDX": IsaTerms("Intel TDX", "TD VM", "TDX module", "SEAM"),
    "CoVE": IsaTerms("CoVE", "TVM", "TSM", "confidential"),
}


def unified_concepts() -> List[str]:
    """The row labels of Table 1."""
    return ["Confidential VM", "Security monitor", "Privileged mode"]


def lookup(isa: str, concept: str) -> str:
    """Translate a unified concept into one ISA's terminology."""
    terms = TERMINOLOGY[isa]
    mapping = {
        "Confidential VM": terms.confidential_vm,
        "Security monitor": terms.security_monitor,
        "Privileged mode": terms.privileged_mode,
    }
    return mapping[concept]


def render_table1() -> str:
    """Render Table 1 as aligned text."""
    isas = list(TERMINOLOGY)
    header = [""] + isas
    rows = [
        [concept] + [lookup(isa, concept) for isa in isas]
        for concept in unified_concepts()
    ]
    widths = [
        max(len(row[i]) for row in [header] + rows) for i in range(len(header))
    ]
    lines = []
    for row in [header] + rows:
        lines.append(
            "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))
        )
    return "\n".join(lines)
