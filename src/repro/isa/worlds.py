"""Security worlds, exception levels and security domains.

This models the privilege structure that Arm CCA (and, with different
names, Intel TDX and RISC-V CoVE) adds for confidential VMs: a *realm*
world holding CVM memory and the security monitor, the *normal* world
holding the untrusted host, and a *root* world for the lowest-level
firmware (EL3).  See Table 1 in the paper for the terminology map
(implemented in :mod:`repro.isa.terminology`).

Security *domains* are the unit at which the core-gap invariant is
stated: no two mutually distrusting domains may ever execute on the same
physical core during the life of a confidential VM.  The monitor domain
is trusted by everyone and is the only domain allowed to share a core
with a realm.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

__all__ = [
    "World",
    "ExceptionLevel",
    "SecurityDomain",
    "HOST_DOMAIN",
    "MONITOR_DOMAIN",
    "ROOT_DOMAIN",
    "IDLE_DOMAIN",
    "realm_domain",
]


class World(enum.Enum):
    """Physical address space / execution world."""

    NORMAL = "normal"
    REALM = "realm"
    ROOT = "root"
    SECURE = "secure"  # legacy TrustZone secure world; unused by CVMs


class ExceptionLevel(enum.IntEnum):
    """Arm exception levels (EL0 user .. EL3 firmware)."""

    EL0 = 0
    EL1 = 1
    EL2 = 2
    EL3 = 3


@dataclass(frozen=True)
class SecurityDomain:
    """A mutually-distrusting principal for the core-gap invariant.

    ``trusted_by_all`` marks the security monitor (and root firmware):
    sharing a core with it leaks nothing the monitor is not already
    trusted with, so the auditor permits it on any core.
    """

    name: str
    world: World
    trusted_by_all: bool = False

    def __post_init__(self) -> None:
        # domains key the per-core pollution/residency dicts on every
        # executed segment; precompute the (immutable) field hash once
        object.__setattr__(
            self, "_hash", hash((self.name, self.world, self.trusted_by_all))
        )

    def __hash__(self) -> int:
        return self._hash  # type: ignore[attr-defined]

    @property
    def is_realm(self) -> bool:
        return self.world is World.REALM and not self.trusted_by_all

    def distrusts(self, other: "SecurityDomain") -> bool:
        """True when microarchitectural sharing with ``other`` is a leak."""
        if self == other:
            return False
        if self.trusted_by_all or other.trusted_by_all:
            return False
        if self.name == "idle" or other.name == "idle":
            return False
        return True

    def __str__(self) -> str:
        return self.name


HOST_DOMAIN = SecurityDomain("host", World.NORMAL)
MONITOR_DOMAIN = SecurityDomain("monitor", World.REALM, trusted_by_all=True)
ROOT_DOMAIN = SecurityDomain("root-firmware", World.ROOT, trusted_by_all=True)
IDLE_DOMAIN = SecurityDomain("idle", World.NORMAL)


def realm_domain(realm_id: int) -> SecurityDomain:
    """The security domain of one confidential VM (realm)."""
    return SecurityDomain(f"realm:{realm_id}", World.REALM)
