"""Central calibrated cost model.

All primitive latencies of the simulation live here so that every
experiment draws from one consistent, documented set of constants.
Values are calibrated against the paper's own microbenchmarks on an
AmpereOne (Armv8.6, 3 GHz) server:

* Table 2 -- null RMM call: 257.7 ns sync RPC, 2757.6 ns async RPC,
  >12.8 us same-core EL3 call (mitigation flushes dominate);
* Table 3 -- virtual IPI: 2.22 us delegated, 43.9 us undelegated
  core-gapped, 3.85 us shared-core;
* S5.2 -- run-to-run latency ~26.18 us for CoreMark.

Macro benchmarks derive from these plus the workload models; we aim to
match shapes and ratios, not microsecond-exact absolutes.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .isa.smc import WorldSwitchCosts
from .sim.clock import ms, us

__all__ = ["CostModel", "DEFAULT_COSTS"]


@dataclass(frozen=True)
class CostModel:
    """Every primitive latency (ns) used by the stack."""

    # -- shared-memory RPC transport (S4.3) ---------------------------------
    #: writing call arguments / results to the shared page
    rpc_write_ns: int = 45
    #: polling side noticing a newly written cache line (coherence miss)
    rpc_poll_detect_ns: int = 35
    #: reading arguments / results
    rpc_read_ns: int = 30
    #: a null RMM handler (dispatch + validation, no work)
    rmm_null_handler_ns: int = 40

    # -- asynchronous call path (fig. 4) -------------------------------------
    #: host IRQ entry: exception vector to handler for the CVM-exit SGI
    host_irq_entry_ns: int = 300
    #: IPI handler activating (waking) the wake-up thread
    wakeup_activate_ns: int = 180
    #: wake-up thread scanning one RPC channel slot
    wakeup_scan_slot_ns: int = 80
    #: unblocking one vCPU thread (FIFO class, runs next on that core)
    vcpu_unblock_ns: int = 200
    #: context switch between host threads on one core
    thread_switch_ns: int = 300
    #: host scheduler pick-next cost
    sched_pick_ns: int = 100

    # -- same-core world switches (baseline CVM) ------------------------------
    world_switch: WorldSwitchCosts = field(default_factory=WorldSwitchCosts)

    # -- KVM / hypervisor ------------------------------------------------------
    #: hardware VM entry+exit round trip for a non-confidential VM
    vmentry_exit_hw_ns: int = 650
    #: generic KVM exit decode/handling
    kvm_exit_handle_ns: int = 900
    #: KVM vGIC virtual interrupt injection bookkeeping
    kvm_irq_inject_ns: int = 450
    #: KVM emulating a guest SGI write (vgic ICC_SGI1R path: vcpu lookup,
    #: locking, list-register maintenance) -- the slow path that makes
    #: undelegated vIPIs expensive
    kvm_ipi_emulation_ns: int = 1_200
    #: KVM handling a WFI exit (block the vCPU thread)
    kvm_wfi_handle_ns: int = 500
    #: per-exit processing of a *realm* run call in KVM: run-page
    #: validation, filtered LR list import/export, REC state checks --
    #: the work behind the paper's ~26 us run-to-run latency (S5.2)
    kvm_realm_exit_loop_ns: int = 14_000
    #: userspace (VMM) MMIO dispatch on top of a KVM exit
    vmm_mmio_dispatch_ns: int = 1_400

    # -- RMM execution (S4.2-S4.4) -----------------------------------------------
    #: RMM intercepting a trap from the guest on a dedicated core
    #: (register save, cause decode) -- no world switch, no flush
    rmm_intercept_ns: int = 300
    #: REC context install on entry / save on exit (dedicated core)
    rec_enter_ns: int = 250
    rec_exit_ns: int = 250
    #: emulating a virtual-timer register write in the RMM (S4.4)
    rmm_vtimer_emul_ns: int = 150
    #: emulating a guest IPI in the RMM and injecting remotely
    rmm_vipi_emul_ns: int = 600
    #: RMM synchronising the filtered interrupt list with the host view
    rmm_lr_sync_ns: int = 70

    # -- guest kernel ----------------------------------------------------------
    #: guest timer tick period (CONFIG_HZ=250, as in the paper's >90%
    #: timer-exit observation)
    guest_tick_period_ns: int = ms(4)
    #: guest timer tick handler work
    guest_tick_handler_ns: int = 1_800
    #: guest IPI handler work (deliver + ack in shared memory)
    guest_ipi_handler_ns: int = 600
    #: guest-side virtio driver work per request (prepare descriptors)
    guest_virtio_driver_ns: int = 1_200
    #: guest network stack work per packet (TCP/IP)
    guest_netstack_ns: int = 2_800

    # -- host scheduling -----------------------------------------------------
    #: fair-class scheduling quantum
    sched_quantum_ns: int = ms(4)
    #: host IRQ handler for a device interrupt (top half)
    host_device_irq_ns: int = 1_200
    #: cost of one busy-wait poll iteration (Quarantine-style ablation)
    busywait_poll_ns: int = 80
    #: effective CPU slice an always-runnable yield-poller occupies per
    #: scheduler turn (CFS min granularity): with many pollers on one
    #: host core, exit service latency grows as pollers x this slice --
    #: the scalability bottleneck the paper attributes to Quarantine
    busywait_yield_slice_ns: int = 750_000

    # -- virtio backend (kvmtool-style userspace emulation) ---------------------
    #: backend servicing one virtio request (descriptor parsing, copy)
    virtio_backend_ns: int = 3_500
    #: backend per-byte copy cost (both directions)
    virtio_copy_ns_per_kib: int = 38
    #: block device access latency (NVMe-class backing store)
    block_device_ns: int = us(18)
    #: block device per-KiB transfer time (~3.5 GB/s)
    block_per_kib_ns: int = 280

    # -- network ---------------------------------------------------------------
    #: one-way wire + switch latency between two hosts
    net_wire_ns: int = us(6)
    #: NIC per-KiB serialization at 200 Gb/s-class link (per the E2000)
    nic_per_kib_ns: int = 41
    #: SR-IOV doorbell + DMA descriptor processing in the NIC
    sriov_doorbell_ns: int = 900

    # -- hotplug (S4.2) ---------------------------------------------------------
    #: migrating tasks off + reconfiguring interrupts for one core
    hotplug_offline_ns: int = ms(2)
    hotplug_online_ns: int = ms(1)

    def sync_rpc_round_trip(self) -> int:
        """The Table 2 'core-gapped synchronous' null-call latency."""
        return (
            self.rpc_write_ns
            + self.rpc_poll_detect_ns
            + self.rpc_read_ns
            + self.rmm_null_handler_ns
            + self.rpc_write_ns
            + self.rpc_poll_detect_ns
            + self.rpc_read_ns
        )

    def with_overrides(self, **kwargs) -> "CostModel":
        return replace(self, **kwargs)


DEFAULT_COSTS = CostModel()
