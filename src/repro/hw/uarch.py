"""Per-core microarchitectural state and the locality cost model.

Two concerns live here:

* **Security**: ``CoreUarchState`` aggregates every core-private
  structure the paper's threat model puts in scope (L1I/L1D, L2, TLB,
  branch predictor, store buffer).  Each is domain-tagged so the auditor
  can detect cross-domain residency and the attack simulations can probe
  real state.

* **Performance**: ``PollutionModel`` converts context switches and
  locally-handled VM exits into refill penalties on subsequent compute,
  the "indirect cost" the paper attributes to cache and TLB pollution and
  cold microarchitectural state after mitigation flushes (S3, citing
  FlexSC).  Core-gapped guests avoid these penalties entirely because
  nothing else ever runs on their core; shared-core guests pay them on
  every exit handled locally.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Set

from ..isa.worlds import SecurityDomain
from .branch import BranchPredictor
from .cache import (
    L1D_GEOMETRY,
    L1I_GEOMETRY,
    L2_GEOMETRY,
    SetAssociativeCache,
)
from .tlb import Tlb

__all__ = ["StoreBufferEntry", "StoreBuffer", "CoreUarchState", "PollutionModel"]


@dataclass
class StoreBufferEntry:
    """An in-flight store: address, value, owning domain."""

    addr: int
    value: int
    domain: SecurityDomain


class StoreBuffer:
    """A small FIFO store buffer (the MDS/Fallout attack surface)."""

    def __init__(self, entries: int = 56):
        self.capacity = entries
        self._entries: List[StoreBufferEntry] = []

    def push(self, addr: int, value: int, domain: SecurityDomain) -> None:
        if len(self._entries) >= self.capacity:
            self._entries.pop(0)  # oldest store drains to cache
        self._entries.append(StoreBufferEntry(addr, value, domain))

    def forward(self, addr: int) -> Optional[StoreBufferEntry]:
        """Store-to-load forwarding: youngest matching store wins.

        Transient-execution bugs in this path (e.g. Fallout) forward
        stale data across privilege boundaries; the attack simulations
        model that by letting a distrusting domain observe the returned
        entry when one is present.
        """
        for entry in reversed(self._entries):
            if entry.addr == addr:
                return entry
        return None

    def drain(self) -> int:
        dropped = len(self._entries)
        self._entries.clear()
        return dropped

    def domains_present(self) -> Set[SecurityDomain]:
        return {e.domain for e in self._entries}

    @property
    def occupancy(self) -> int:
        return len(self._entries)


class CoreUarchState:
    """All core-private microarchitectural structures of one core."""

    def __init__(self, core_index: int):
        self.core_index = core_index
        self.l1d = SetAssociativeCache(L1D_GEOMETRY)
        self.l1i = SetAssociativeCache(L1I_GEOMETRY)
        self.l2 = SetAssociativeCache(L2_GEOMETRY)
        self.tlb = Tlb(name=f"TLB{core_index}")
        self.branch = BranchPredictor()
        self.store_buffer = StoreBuffer()
        self.flush_count = 0

    def flush_all(self) -> None:
        """Full mitigation flush (what the monitor does on a trust-boundary
        switch in the shared-core design)."""
        self.l1d.flush()
        self.l1i.flush()
        self.tlb.invalidate_all()
        self.branch.flush()
        self.store_buffer.drain()
        self.flush_count += 1

    def scrub_for_reassignment(self) -> None:
        """Everything ``flush_all`` does plus the core-private L2: used
        when a dedicated core changes ownership (release/rebind).  The
        L2 is per-core on the target platforms and in the threat model
        (S2.4), so it must not carry state to the next owner."""
        self.flush_all()
        self.l2.flush()

    def domains_present(self) -> Set[SecurityDomain]:
        """Every domain with residual state anywhere in this core."""
        present: Set[SecurityDomain] = set()
        present |= self.l1d.domains_present()
        present |= self.l1i.domains_present()
        present |= self.l2.domains_present()
        present |= self.tlb.domains_present()
        present |= self.branch.domains_present()
        present |= self.store_buffer.domains_present()
        return present

    def structures(self):
        """(name, structure) pairs, for audits that walk everything."""
        return [
            ("l1d", self.l1d),
            ("l1i", self.l1i),
            ("l2", self.l2),
            ("tlb", self.tlb),
            ("branch", self.branch),
            ("store_buffer", self.store_buffer),
        ]


@dataclass
class PollutionCosts:
    """Calibration constants for the locality model."""

    # maximum refill penalty after another domain ran on this core
    # (cold L1 + L2-resident working set + TLB, ~18 us at 3 GHz)
    foreign_run_penalty_ns: int = 18_000
    # refill penalty after a mitigation flush (everything cold)
    flush_penalty_ns: int = 14_000
    # how much refill debt one ns of foreign execution creates: a short
    # interrupt handler displaces little; a full quantum evicts the cap
    pollution_rate: float = 3.0
    # penalty cap after the monitor ran (tiny working set)
    monitor_penalty_ns: int = 200
    # cap on accumulated penalty for a guest victim (finite working set)
    max_pending_penalty_ns: int = 60_000
    # cap for the *host* as victim: kernel exit/interrupt paths touch a
    # few KiB, so their refill cost is bounded and small
    host_victim_cap_ns: int = 500


class PollutionModel:
    """Tracks pending refill penalties for one core.

    Events (foreign execution, flushes, local interrupts) accumulate a
    pending penalty per *victim* domain; the next compute by that domain
    pays it off before doing useful work.
    """

    def __init__(self, costs: Optional[PollutionCosts] = None):
        self.costs = costs or PollutionCosts()
        #: victim domain -> [pending_debt_ns, victim_cap_ns]; the cap is
        #: a pure function of the domain, cached at registration so the
        #: per-charge loop touches no methods and hashes nothing
        self._pending: dict = {}
        self._last_domain: Optional[SecurityDomain] = None
        self.total_penalty_paid = 0

    def _victim_cap(self, victim: SecurityDomain) -> int:
        """How cold a victim can possibly get (its working-set size)."""
        if victim.is_realm or victim.name.startswith("vm:"):
            return self.costs.max_pending_penalty_ns
        return self.costs.host_victim_cap_ns

    def _entry(self, domain: SecurityDomain) -> list:
        entry = self._pending.get(domain)
        if entry is None:
            entry = self._pending[domain] = [0, self._victim_cap(domain)]
        return entry

    def _add(self, amount: int, exclude: Optional[SecurityDomain]) -> None:
        # values are mutated in place; no key is inserted or removed, so
        # iterating the live dict is safe (and allocation-free)
        for domain, entry in self._pending.items():
            if domain == exclude:
                continue
            debt = entry[0] + amount
            cap = entry[1]
            entry[0] = debt if debt < cap else cap

    def note_run(self, domain: SecurityDomain) -> None:
        """``domain`` starts running on this core (registration only;
        charging happens per executed duration).

        Trusted firmware (the monitor) is not tracked: its working set
        is a few cache lines of dispatch code, so it neither suffers
        meaningful refill penalties nor is a victim worth modelling.
        """
        if domain.trusted_by_all:
            return
        self._entry(domain)
        self._last_domain = domain

    def note_run_duration(self, domain: SecurityDomain, elapsed_ns: int) -> None:
        """``domain`` ran for ``elapsed_ns``: it displaced the other
        domains' state proportionally, up to its working-set cap.

        The cap depends on who ran: the monitor's working set is tiny
        (a short dispatch path), so it barely displaces anything; an
        untrusted domain running a full quantum evicts everything.
        """
        cap = (
            self.costs.monitor_penalty_ns
            if domain.trusted_by_all
            else self.costs.foreign_run_penalty_ns
        )
        charge = min(cap, int(elapsed_ns * self.costs.pollution_rate))
        if charge > 0:
            self._add(charge, exclude=domain)

    def note_flush(self) -> None:
        """A mitigation flush makes *everyone* cold (including the flusher's
        beneficiary)."""
        flush = self.costs.flush_penalty_ns
        cap = self.costs.max_pending_penalty_ns
        for entry in self._pending.values():
            entry[0] = min(entry[0] + flush, cap)
        self._last_domain = None

    def consume_penalty(
        self, domain: SecurityDomain, work_ns: Optional[int] = None
    ) -> int:
        """Refill penalty ``domain`` pays on its next compute segment.

        Refill is amortized: misses interleave with execution, so a
        segment of W ns pays at most W extra (a 2x slowdown while the
        working set streams back in).  Unpaid debt stays pending.
        With ``work_ns=None`` the whole debt is paid at once.
        """
        if domain.trusted_by_all:
            return 0
        entry = self._entry(domain)
        pending = entry[0]
        pay = pending if work_ns is None else min(pending, int(work_ns))
        entry[0] = pending - pay
        self.total_penalty_paid += pay
        return pay

    def pending_penalty(self, domain: SecurityDomain) -> int:
        entry = self._pending.get(domain)
        return 0 if entry is None else entry[0]
