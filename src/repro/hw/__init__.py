"""Hardware substrate: cores, caches, TLB, GIC, timers, memory, machine."""

from .branch import BranchPredictor, BtbEntry
from .cache import (
    AccessResult,
    CacheGeometry,
    CacheLine,
    L1D_GEOMETRY,
    L1I_GEOMETRY,
    L2_GEOMETRY,
    LLC_GEOMETRY,
    SetAssociativeCache,
)
from .core import ExecResult, ExecStatus, PhysicalCore
from .gic import (
    Gic,
    LINUX_RESERVED_SGIS,
    ListRegister,
    LrState,
    N_LIST_REGISTERS,
    N_SGIS,
    VTIMER_PPI,
    SPI_BASE,
)
from .machine import Machine
from .memory import GRANULE_SIZE, GptFault, PhysicalMemory
from .policy import (
    CoreGapPolicy,
    FlushCostModel,
    FlushOnSwitchPolicy,
    IsolationPolicy,
    NoDefensePolicy,
    POLICIES,
    resolve_policy,
)
from .timer import CoreTimer
from .tlb import Tlb, TlbEntry
from .topology import AMPERE_ONE_LIKE, SocTopology
from .uarch import CoreUarchState, PollutionModel, StoreBuffer

__all__ = [
    "AMPERE_ONE_LIKE",
    "AccessResult",
    "BranchPredictor",
    "BtbEntry",
    "CacheGeometry",
    "CacheLine",
    "CoreGapPolicy",
    "CoreTimer",
    "CoreUarchState",
    "ExecResult",
    "ExecStatus",
    "FlushCostModel",
    "FlushOnSwitchPolicy",
    "IsolationPolicy",
    "GRANULE_SIZE",
    "Gic",
    "GptFault",
    "L1D_GEOMETRY",
    "L1I_GEOMETRY",
    "L2_GEOMETRY",
    "LINUX_RESERVED_SGIS",
    "LLC_GEOMETRY",
    "ListRegister",
    "LrState",
    "Machine",
    "N_LIST_REGISTERS",
    "N_SGIS",
    "NoDefensePolicy",
    "POLICIES",
    "PhysicalCore",
    "PhysicalMemory",
    "PollutionModel",
    "SPI_BASE",
    "SetAssociativeCache",
    "SocTopology",
    "StoreBuffer",
    "Tlb",
    "TlbEntry",
    "VTIMER_PPI",
    "resolve_policy",
]
