"""Physical core model.

A core executes *work* on behalf of a security domain.  Work segments
are interruptible by the core's GIC interface (IPIs, timer PPIs, device
SPIs).  Every segment is recorded as an execution span in the machine's
tracer -- those spans are the ground truth for the core-gap auditor and
for CPU-time accounting.

The locality model charges a refill penalty (via
:class:`repro.hw.uarch.PollutionModel`) when a domain resumes on a core
that something else has used since -- the indirect cost of shared-core
virtualization that core gapping eliminates.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..isa.worlds import SecurityDomain, World
from ..sim.engine import AnyOf, Delay, Event, SimulationError
from .uarch import CoreUarchState, PollutionModel

__all__ = ["ExecStatus", "ExecResult", "PhysicalCore", "MEM_LATENCY"]


class ExecStatus:
    """Why an execute() segment ended."""

    DONE = "done"
    INTERRUPTED = "interrupted"
    PREEMPTED = "preempted"  # an extra wakeup event fired


@dataclass
class ExecResult:
    """Result of one execute() segment."""

    status: str
    remaining_ns: int
    wakeup_value: object = None
    #: full chunks retired by an :meth:`PhysicalCore.execute_span` call
    #: before it ended (``remaining_ns`` then refers to the chunk in
    #: flight, not the whole span)
    chunks_done: int = 0

    @property
    def done(self) -> bool:
        return self.status == ExecStatus.DONE


@dataclass(frozen=True)
class MemLatency:
    """Access latencies (ns) through the hierarchy at ~3 GHz."""

    l1_ns: float = 1.3
    l2_ns: float = 4.0
    llc_ns: float = 30.0
    dram_ns: float = 95.0


MEM_LATENCY = MemLatency()


class PhysicalCore:
    """One physical core of the simulated SoC."""

    def __init__(self, machine, index: int):
        self.machine = machine
        self.sim = machine.sim
        self.tracer = machine.tracer
        self.index = index
        self.irq = machine.gic.cores[index]
        self.timer = machine.timers[index]
        self.uarch = CoreUarchState(index)
        self.pollution = PollutionModel(machine.pollution_costs)
        self.world: World = World.NORMAL
        self.online: bool = True
        self.current_domain: Optional[SecurityDomain] = None
        self.busy_ns = 0
        #: in-flight coalesced compute span, or None:
        #: (domain, start, penalty, chunk_ns, n_chunks, credit) — held
        #: so a run cut off mid-span can synthesize what completed
        #: (:meth:`finalize_span`)
        self._active_span: Optional[tuple] = None

    def __repr__(self) -> str:
        return f"PhysicalCore({self.index}, world={self.world.value})"

    # ------------------------------------------------------------------
    # execution
    # ------------------------------------------------------------------

    def execute(
        self,
        domain: SecurityDomain,
        work_ns: int,
        interruptible: bool = True,
        extra_wakeups: Sequence[Event] = (),
    ):
        """Run ``work_ns`` of ``domain`` work on this core (generator).

        Returns an :class:`ExecResult`.  When an interrupt (or an extra
        wakeup event) arrives mid-segment, the result carries the work
        still owed; callers resume with another ``execute`` call after
        handling it.  Refill penalties from prior pollution are paid at
        the start of the segment and are *not* refunded on preemption.
        """
        if not self.online and not domain.trusted_by_all and not domain.is_realm:
            raise SimulationError(
                f"core {self.index} is offline to the host (hotplugged)"
            )
        if interruptible and self.irq.has_pending():
            return ExecResult(ExecStatus.INTERRUPTED, work_ns)

        penalty = self.pollution.consume_penalty(domain, work_ns)
        self.pollution.note_run(domain)
        self.current_domain = domain
        self.tracer.begin_span(self.sim.now, self.index, domain.name)
        start = self.sim.now
        total = work_ns + penalty

        sources: List = [Delay(total)]
        doorbell_event = None
        if interruptible:
            doorbell_event = self.irq.doorbell.wait()
            sources.append(doorbell_event)
        sources.extend(extra_wakeups)

        wakeup = yield AnyOf(sources)

        elapsed = self.sim.now - start
        self.busy_ns += elapsed
        self.pollution.note_run_duration(domain, elapsed)
        self.tracer.end_span(self.sim.now, self.index)
        self.current_domain = None

        if wakeup.index == 0:
            if doorbell_event is not None:
                self.irq.doorbell.cancel_wait(doorbell_event)
            return ExecResult(ExecStatus.DONE, 0)

        work_done = max(0, elapsed - penalty)
        remaining = max(0, work_ns - work_done)
        if interruptible and wakeup.index == 1:
            return ExecResult(
                ExecStatus.INTERRUPTED, remaining, wakeup.value
            )
        if doorbell_event is not None:
            self.irq.doorbell.cancel_wait(doorbell_event)
        return ExecResult(ExecStatus.PREEMPTED, remaining, wakeup.value)

    def execute_span(
        self,
        domain: SecurityDomain,
        chunk_ns: int,
        n_chunks: int,
        credit=None,
    ):
        """Run ``n_chunks`` identical interruptible chunks as ONE wait
        (generator).  Returns an :class:`ExecResult` whose
        ``chunks_done`` counts fully-retired chunks.

        Semantically equivalent to ``n_chunks`` sequential
        ``execute(domain, chunk_ns)`` calls: every per-chunk observable
        (execution spans, pollution charges, ``busy_ns``, the
        ``credit`` progress callback) is synthesized arithmetically
        when the wait resolves, at the exact values the expansion
        would have produced.  Callers must ensure the pending refill
        penalty fits inside one chunk (the expansion would amortize a
        larger debt across chunks, which one coalesced wait cannot).

        On an interrupt at time ``t``, chunks that finished before
        ``t`` are synthesized and the in-flight chunk is reported via
        ``remaining_ns`` exactly as :meth:`execute` would have; a
        ``remaining_ns`` of a full chunk with no partial progress
        means the interrupt landed on a chunk boundary (the expansion
        would have refused to start the next chunk at entry).
        """
        if not self.online and not domain.trusted_by_all and not domain.is_realm:
            raise SimulationError(
                f"core {self.index} is offline to the host (hotplugged)"
            )
        if self.irq.has_pending():
            return ExecResult(ExecStatus.INTERRUPTED, chunk_ns)

        penalty = self.pollution.consume_penalty(domain, chunk_ns)
        self.pollution.note_run(domain)
        self.current_domain = domain
        start = self.sim.now
        total = chunk_ns * n_chunks + penalty
        self._active_span = (
            domain, start, penalty, chunk_ns, n_chunks, credit
        )
        doorbell_event = self.irq.doorbell.wait()
        wakeup = yield AnyOf([Delay(total), doorbell_event])
        self._active_span = None
        now = self.sim.now
        elapsed = now - start

        if wakeup.index == 0:
            self.irq.doorbell.cancel_wait(doorbell_event)
            self._synthesize_chunks(
                domain, start, penalty, chunk_ns, n_chunks, credit
            )
            self.current_domain = None
            return ExecResult(ExecStatus.DONE, 0, chunks_done=n_chunks)

        first = chunk_ns + penalty
        if elapsed < first:
            # interrupted inside the first chunk: identical bookkeeping
            # to a lone execute() preempted at the same instant
            self.busy_ns += elapsed
            self.pollution.note_run_duration(domain, elapsed)
            if now > start:
                self.tracer.insert_span(self.index, domain.name, start, now)
            self.current_domain = None
            work_done = max(0, elapsed - penalty)
            return ExecResult(
                ExecStatus.INTERRUPTED, chunk_ns - work_done, wakeup.value
            )
        done = 1 + (elapsed - first) // chunk_ns
        partial = (elapsed - first) % chunk_ns
        self._synthesize_chunks(
            domain, start, penalty, chunk_ns, done, credit
        )
        if partial:
            self.busy_ns += partial
            self.pollution.note_run_duration(domain, partial)
            self.tracer.insert_span(
                self.index, domain.name, now - partial, now
            )
            self.current_domain = None
            return ExecResult(
                ExecStatus.INTERRUPTED,
                chunk_ns - partial,
                wakeup.value,
                chunks_done=done,
            )
        # boundary interrupt: the next chunk never started (the
        # expansion's entry check would have refused it)
        self.current_domain = None
        return ExecResult(
            ExecStatus.INTERRUPTED, chunk_ns, wakeup.value, chunks_done=done
        )

    def _synthesize_chunks(
        self,
        domain: SecurityDomain,
        start: int,
        penalty: int,
        chunk_ns: int,
        count: int,
        credit,
    ) -> None:
        """Account ``count`` retired chunks exactly as ``count``
        sequential execute() calls would have (spans in end-time order,
        per-chunk pollution charges, busy time, progress credit)."""
        if count <= 0:
            return
        tracer = self.tracer
        pollution = self.pollution
        index = self.index
        name = domain.name
        self.busy_ns += chunk_ns * count + penalty
        t = start
        end = start + chunk_ns + penalty
        for _ in range(count):
            pollution.note_run(domain)
            pollution.note_run_duration(domain, end - t)
            tracer.insert_span(index, name, t, end)
            if credit is not None:
                credit()
            t = end
            end = t + chunk_ns

    def finalize_span(self) -> bool:
        """Settle an in-flight coalesced span at a run cutoff.

        Synthesizes the chunks that completed before ``now`` and
        re-opens the partial chunk as a normal open span, so
        ``Tracer.close_all_spans`` treats it exactly like an expansion
        suspended mid-chunk.  Returns True if there was a span.
        """
        active = self._active_span
        if active is None:
            return False
        self._active_span = None
        domain, start, penalty, chunk_ns, _n_chunks, credit = active
        elapsed = self.sim.now - start
        first = chunk_ns + penalty
        if elapsed < first:
            partial_start = start
        else:
            done = 1 + (elapsed - first) // chunk_ns
            self._synthesize_chunks(
                domain, start, penalty, chunk_ns, done, credit
            )
            partial_start = start + first + (done - 1) * chunk_ns
        self.tracer.begin_span(partial_start, self.index, domain.name)
        return True

    def run_to_completion(self, domain: SecurityDomain, work_ns: int):
        """Uninterruptible convenience wrapper (generator)."""
        result = yield from self.execute(domain, work_ns, interruptible=False)
        return result

    # ------------------------------------------------------------------
    # interrupts
    # ------------------------------------------------------------------

    def take_interrupt(self) -> Optional[int]:
        """Acknowledge the highest-priority pending interrupt."""
        return self.irq.acknowledge()

    # ------------------------------------------------------------------
    # memory accesses through the hierarchy (security experiments)
    # ------------------------------------------------------------------

    def access_memory(
        self, addr: int, domain: SecurityDomain, write: bool = False
    ) -> float:
        """One data access; returns its latency and updates tagged state."""
        lat = MEM_LATENCY
        if write:
            self.uarch.store_buffer.push(addr, 0, domain)
        l1 = self.uarch.l1d.access(addr, domain)
        if l1.hit:
            return lat.l1_ns
        l2 = self.uarch.l2.access(addr, domain)
        if l2.hit:
            return lat.l2_ns
        llc = self.machine.llc.access(addr, domain)
        if llc.hit:
            return lat.llc_ns
        return lat.dram_ns

    def probe_latency(self, addr: int, domain: SecurityDomain) -> float:
        """Timing-probe an address *without* disturbing LRU more than a
        real probe would (it performs a normal access)."""
        return self.access_memory(addr, domain)

    # ------------------------------------------------------------------
    # hotplug / world control (mechanisms; policy lives in host/rmm)
    # ------------------------------------------------------------------

    def set_online(self, online: bool) -> None:
        self.online = online

    def set_world(self, world: World) -> None:
        self.world = world
