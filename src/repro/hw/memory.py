"""Physical memory, granules and the granule protection table (GPT).

CCA partitions physical memory into 4 KiB *granules*, each assigned to a
physical address space (PAS): normal, realm, or root.  The hardware
consults the GPT on every access (in the TLB-miss path on real RME
hardware); an access from the wrong world faults.  Only the root/realm
firmware may reassign granules -- that policy lives in
:mod:`repro.rmm.granule`; this module is the enforcement mechanism.

A small byte-addressable content store backs the security experiments
(secrets in realm memory, shared RPC pages in normal memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..isa.worlds import World

__all__ = [
    "GRANULE_SHIFT",
    "GRANULE_SIZE",
    "GptFault",
    "PhysicalMemory",
]

GRANULE_SHIFT = 12
GRANULE_SIZE = 1 << GRANULE_SHIFT


class GptFault(Exception):
    """Granule protection fault: access from a world that doesn't own it."""

    def __init__(self, addr: int, world: World, pas: World):
        super().__init__(
            f"GPT fault: {world.value} access to {addr:#x} (PAS={pas.value})"
        )
        self.addr = addr
        self.world = world
        self.pas = pas


#: For each accessing world, the set of PASes it may touch.  Root
#: firmware sees everything; realm world sees realm + normal (shared
#: RPC buffers are normal-world memory); normal world sees only normal.
_ACCESS = {
    World.NORMAL: {World.NORMAL},
    World.REALM: {World.REALM, World.NORMAL},
    World.ROOT: {World.ROOT, World.REALM, World.NORMAL},
}


@dataclass
class GranuleRecord:
    """Hardware-visible state of one granule."""

    pas: World = World.NORMAL


class PhysicalMemory:
    """Granule-managed physical memory with GPT enforcement."""

    def __init__(self, size_bytes: int):
        if size_bytes % GRANULE_SIZE:
            raise ValueError("memory size must be granule aligned")
        self.size_bytes = size_bytes
        self.n_granules = size_bytes // GRANULE_SIZE
        self._gpt: Dict[int, GranuleRecord] = {}
        self._content: Dict[int, int] = {}
        self.gpt_checks = 0
        self.gpt_faults = 0

    # -- GPT management (called only by root/realm firmware models) -------

    def granule_index(self, addr: int) -> int:
        if not 0 <= addr < self.size_bytes:
            raise ValueError(f"address {addr:#x} out of range")
        return addr >> GRANULE_SHIFT

    def pas_of(self, addr: int) -> World:
        record = self._gpt.get(self.granule_index(addr))
        return record.pas if record else World.NORMAL

    def set_pas(self, addr: int, pas: World) -> None:
        """Reassign the granule containing ``addr`` (firmware only)."""
        self._gpt[self.granule_index(addr)] = GranuleRecord(pas=pas)

    # -- accesses ----------------------------------------------------------

    def check_access(self, addr: int, world: World) -> None:
        """GPT check; raises :class:`GptFault` on violation."""
        self.gpt_checks += 1
        pas = self.pas_of(addr)
        if pas not in _ACCESS[world]:
            self.gpt_faults += 1
            raise GptFault(addr, world, pas)

    def read(self, addr: int, world: World) -> int:
        self.check_access(addr, world)
        return self._content.get(addr, 0)

    def write(self, addr: int, value: int, world: World) -> None:
        self.check_access(addr, world)
        self._content[addr] = value

    def scrub_granule(self, addr: int) -> None:
        """Zero a granule's contents (on undelegation, before the host can
        see it again)."""
        base = self.granule_index(addr) << GRANULE_SHIFT
        for offset in list(self._content):
            if base <= offset < base + GRANULE_SIZE:
                del self._content[offset]

    def granules_with_pas(self, pas: World) -> int:
        count = sum(1 for rec in self._gpt.values() if rec.pas is pas)
        if pas is World.NORMAL:
            count += self.n_granules - len(self._gpt)
        return count
