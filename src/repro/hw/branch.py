"""Branch predictor state (BTB + branch history), domain tagged.

Branch target injection (Spectre-v2 family, branch history injection,
Inception/RETBLEED style training) all rely on predictor state shared
between attacker and victim *on the same core*.  We model a direct-mapped
BTB and a global history register so the security experiments can show
training by one domain steering prediction in another, and show that the
cross-core attacker has no such handle.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Set

from ..isa.worlds import SecurityDomain

__all__ = ["BtbEntry", "BranchPredictor"]


@dataclass
class BtbEntry:
    """One branch-target-buffer entry: source PC -> predicted target."""

    src: int
    target: int
    domain: SecurityDomain


class BranchPredictor:
    """A direct-mapped BTB plus a global branch-history register."""

    def __init__(self, btb_entries: int = 4096, history_bits: int = 32):
        self.btb_size = btb_entries
        self.history_bits = history_bits
        self._btb: Dict[int, BtbEntry] = {}
        self.history = 0
        self._history_domain: Optional[SecurityDomain] = None
        self.train_count = 0
        self.mispredicts = 0

    def _index(self, src: int) -> int:
        # simple indexing with history mixing, as real predictors do
        return (src ^ (self.history & 0xFFF)) % self.btb_size

    def train(self, src: int, target: int, domain: SecurityDomain) -> None:
        """Record an observed taken branch src -> target."""
        self.train_count += 1
        self._btb[self._index(src)] = BtbEntry(src, target, domain)
        self.history = (
            (self.history << 1) | (target & 1)
        ) & ((1 << self.history_bits) - 1)
        self._history_domain = domain

    def predict(self, src: int) -> Optional[BtbEntry]:
        """Prediction for a branch at ``src``; None when untrained.

        Note the entry returned may have been planted by a *different*
        domain -- that aliasing is exactly the Spectre-v2 injection
        vector the security experiments exercise.
        """
        return self._btb.get(self._index(src))

    def flush(self) -> int:
        """Invalidate all predictor state (the costly mitigation)."""
        dropped = len(self._btb)
        self._btb.clear()
        self.history = 0
        self._history_domain = None
        return dropped

    def domains_present(self) -> Set[SecurityDomain]:
        domains = {entry.domain for entry in self._btb.values()}
        if self._history_domain is not None:
            domains.add(self._history_domain)
        return domains

    @property
    def occupancy(self) -> int:
        return len(self._btb)
