"""Pluggable isolation policies: what a trust-boundary switch scrubs and costs.

The paper's argument is comparative: core-gapping beats flush-on-switch
defenses on *both* security and overhead (S1, S7).  This module makes
that comparison runnable by promoting "isolation policy" to a strategy
object consumed by the world-switch paths (:mod:`repro.host.kvm`,
:mod:`repro.rmm.core_gap`, :mod:`repro.isa.smc`):

* :class:`CoreGapPolicy` -- the contribution: distrusting domains never
  share a core, so switches flush nothing; dedicated cores are scrubbed
  (including the per-core L2) only when ownership changes.
* :class:`FlushOnSwitchPolicy` -- the SIMF-style software mitigation: on
  every world/domain switch the core's private structures are flushed,
  with a per-structure cost model charged to the switching domain.
* :class:`NoDefensePolicy` -- the insecure baseline: shared structures,
  no scrubbing, no flush cost.

Policies are stateless: each carries only a frozen
:class:`FlushCostModel`, so module-level singletons are safe to share
across systems and worker processes.  ``SystemConfig`` resolves its
``policy`` knob through :func:`resolve_policy`; the default for each
mode reproduces the pre-policy behavior bit-identically (pinned by
``tests/security/test_policy.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from ..isa.smc import WorldSwitchCosts

__all__ = [
    "FlushCostModel",
    "IsolationPolicy",
    "CoreGapPolicy",
    "FlushOnSwitchPolicy",
    "NoDefensePolicy",
    "POLICIES",
    "default_policy_name",
    "resolve_policy",
]


@dataclass(frozen=True)
class FlushCostModel:
    """Per-structure flush latencies for a mitigation flush.

    The split is calibrated so the structures cleared by
    ``CoreUarchState.flush_all`` sum to exactly
    ``WorldSwitchCosts.mitigation_flush_ns`` (5.3 us) -- the aggregate
    the paper's Table 2 attributes to trust-boundary mitigations -- so
    the default :class:`FlushOnSwitchPolicy` reproduces the pre-policy
    shared-CVM switch cost bit-identically.  The per-core L2 is *not*
    part of a switch flush (SIMF-style defenses leave it warm; see the
    leakage caveat in DESIGN.md section 5.8); it is paid only on core
    reassignment.
    """

    l1d_ns: int = 2_000
    l1i_ns: int = 800
    tlb_ns: int = 900
    branch_ns: int = 1_100
    store_buffer_ns: int = 500
    #: reassignment-only: the per-core L2 (threat model S2.4)
    l2_ns: int = 4_000

    def switch_flush_ns(self) -> int:
        """Cost of one switch-time flush (everything but the L2)."""
        return (
            self.l1d_ns
            + self.l1i_ns
            + self.tlb_ns
            + self.branch_ns
            + self.store_buffer_ns
        )

    def reassignment_scrub_ns(self) -> int:
        """Cost of a full ownership-change scrub (switch flush + L2)."""
        return self.switch_flush_ns() + self.l2_ns

    def table(self) -> Tuple[Tuple[str, int], ...]:
        """(structure, ns) rows in flush order, for reports and docs."""
        return (
            ("l1d", self.l1d_ns),
            ("l1i", self.l1i_ns),
            ("tlb", self.tlb_ns),
            ("branch", self.branch_ns),
            ("store_buffer", self.store_buffer_ns),
            ("l2 (reassignment only)", self.l2_ns),
        )


class IsolationPolicy:
    """Strategy interface: how a system keeps distrusting domains apart.

    Subclasses set three class attributes (``name``,
    ``requires_core_gap``, ``flush_on_switch``) and inherit the hooks;
    the hooks are written so each policy's behavior falls out of the
    flags, and only :class:`NoDefensePolicy` overrides one.
    """

    name: str = "abstract"
    #: placement must give every guest vCPU a dedicated core
    requires_core_gap: bool = False
    #: every trust-boundary switch scrubs the core's private structures
    flush_on_switch: bool = False

    def __init__(self, flush_costs: Optional[FlushCostModel] = None):
        self.flush_costs = flush_costs or FlushCostModel()

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"

    # -- costs ---------------------------------------------------------

    def switch_flush_ns(self) -> int:
        """Mitigation-flush latency added to each boundary crossing."""
        return self.flush_costs.switch_flush_ns() if self.flush_on_switch else 0

    def world_switch_one_way_ns(self, costs: WorldSwitchCosts) -> int:
        """One same-core world transition under this policy."""
        return costs.one_way(flush_ns=self.switch_flush_ns())

    def world_switch_round_trip_ns(self, costs: WorldSwitchCosts) -> int:
        """A null same-core call (enter the other world, come back)."""
        return costs.round_trip(flush_ns=self.switch_flush_ns())

    # -- state scrubbing (charged to the switching domain) -------------

    def on_switch(self, core) -> None:
        """A world/domain switch happened on ``core``: scrub per policy.

        ``core`` is duck-typed (anything with ``.uarch`` and
        ``.pollution``) so the hook works on :class:`PhysicalCore`
        without this module importing it.
        """
        if not self.flush_on_switch:
            return
        core.pollution.note_flush()
        core.uarch.flush_all()

    def on_reassignment(self, core) -> None:
        """``core`` changes ownership (release/rebind): full scrub,
        including the per-core L2 (threat model S2.4)."""
        core.uarch.scrub_for_reassignment()
        core.pollution.note_flush()


class CoreGapPolicy(IsolationPolicy):
    """The paper's design: spatial isolation instead of switch flushes.

    Nothing distrusting ever runs on a guest's core, so switches cost
    no flush at all; the only scrub is the ownership-change scrub of a
    dedicated core (inherited ``on_reassignment``).
    """

    name = "core-gap"
    requires_core_gap = True
    flush_on_switch = False


class FlushOnSwitchPolicy(IsolationPolicy):
    """SIMF-style temporal isolation: flush core-private state on every
    trust-boundary switch, paying :meth:`switch_flush_ns` each time.

    This is what ``shared-cvm`` mode always modelled; the policy object
    just names it and makes the flush-cost split explicit.
    """

    name = "flush"
    requires_core_gap = False
    flush_on_switch = True


class NoDefensePolicy(IsolationPolicy):
    """Insecure baseline: structures stay shared and are never scrubbed,
    so switches are cheap and cross-domain residue survives -- the
    leakage the other two policies exist to block."""

    name = "none"
    requires_core_gap = False
    flush_on_switch = False

    def on_reassignment(self, core) -> None:  # shared structures: no scrub
        pass


#: singleton per policy name (policies are stateless; see module docstring)
POLICIES: Dict[str, IsolationPolicy] = {
    policy.name: policy
    for policy in (CoreGapPolicy(), FlushOnSwitchPolicy(), NoDefensePolicy())
}

#: the policy each mode implied before policies existed; resolving the
#: default must reproduce pre-policy behavior bit-identically
_DEFAULT_FOR_MODE: Dict[str, str] = {
    "gapped": "core-gap",
    "shared-cvm": "flush",
    "shared": "none",
}

#: modes a policy can legally run under.  Core-gapping *is* a placement
#: discipline, so it needs gapped mode (and vice versa); the shared-core
#: policies compose with either shared flavor ("flush" on plain shared
#: adds SIMF costs to a non-confidential VM, "none" on shared-cvm models
#: a CVM whose firmware skips mitigation flushes).
_ALLOWED_MODES: Dict[str, Tuple[str, ...]] = {
    "core-gap": ("gapped",),
    "flush": ("shared", "shared-cvm"),
    "none": ("shared", "shared-cvm"),
}


def default_policy_name(mode: str) -> str:
    """The policy ``mode`` implies when none is named explicitly."""
    try:
        return _DEFAULT_FOR_MODE[mode]
    except KeyError:
        raise ValueError(
            f"unknown mode {mode!r}; expected one of "
            f"{sorted(_DEFAULT_FOR_MODE)}"
        ) from None


def resolve_policy(mode: str, name: Optional[str] = None) -> IsolationPolicy:
    """Resolve and validate the (mode, policy) pair to a strategy object."""
    if name is None:
        name = default_policy_name(mode)
    else:
        default_policy_name(mode)  # validate the mode even when named
    policy = POLICIES.get(name)
    if policy is None:
        raise ValueError(
            f"unknown isolation policy {name!r}; expected one of "
            f"{sorted(POLICIES)}"
        )
    if mode not in _ALLOWED_MODES[policy.name]:
        raise ValueError(
            f"policy {policy.name!r} cannot run under mode {mode!r} "
            f"(allowed: {', '.join(_ALLOWED_MODES[policy.name])})"
        )
    return policy
