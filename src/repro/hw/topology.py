"""SoC topology description.

The evaluation platform is an AmpereOne-class Arm server: many
single-threaded cores at 3 GHz, private L1/L2, one shared LLC.  None of
the paper's target Arm platforms support hardware threads, so SMT
defaults to 1; the model still carries the parameter because on a
threaded processor *all* siblings of a core must be dedicated to the
same CVM (footnote 1 in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .cache import CacheGeometry, LLC_GEOMETRY

__all__ = ["SocTopology", "AMPERE_ONE_LIKE"]


@dataclass(frozen=True)
class SocTopology:
    """Static description of the simulated machine."""

    name: str
    n_cores: int
    threads_per_core: int = 1
    frequency_ghz: float = 3.0
    memory_gib: int = 64
    llc_geometry: CacheGeometry = field(default_factory=lambda: LLC_GEOMETRY)
    ipi_wire_delay_ns: int = 350
    memory_encryption: bool = False
    #: fractional slowdown on memory-bound work when encryption is on
    #: (Intel reports 2-3% for TDX; CCA hardware is expected to be similar)
    encryption_overhead: float = 0.025

    def __post_init__(self) -> None:
        if self.n_cores < 1:
            raise ValueError("need at least one core")
        if self.threads_per_core != 1:
            raise ValueError(
                "threaded processors are unsupported: dedicate all "
                "hardware threads of a core to the same CVM instead"
            )

    def with_cores(self, n_cores: int) -> "SocTopology":
        """A copy with a different core count (for scaling sweeps)."""
        return SocTopology(
            name=self.name,
            n_cores=n_cores,
            threads_per_core=self.threads_per_core,
            frequency_ghz=self.frequency_ghz,
            memory_gib=self.memory_gib,
            llc_geometry=self.llc_geometry,
            ipi_wire_delay_ns=self.ipi_wire_delay_ns,
            memory_encryption=self.memory_encryption,
            encryption_overhead=self.encryption_overhead,
        )


AMPERE_ONE_LIKE = SocTopology(name="ampereone-like", n_cores=64)
