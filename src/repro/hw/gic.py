"""Generic interrupt controller (GIC-like) model.

Models the pieces of Arm's GICv3 that the paper's mechanisms depend on:

* **SGIs** (software-generated interrupts, intids 0-15) -- the IPIs used
  both by the guest (virtual IPIs between vCPUs) and by our async RPC
  transport (the RMM notifying the host of a vCPU exit, the host kicking
  a running vCPU).  Arm has 16 SGI numbers; Linux reserves 7, and the
  prototype allocates exactly one more as the CVM-exit doorbell.
* **PPIs** (private peripheral interrupts, 16-31) -- per-core timer.
* **SPIs** (shared peripheral interrupts, 32+) -- devices, routed to a
  configurable core.
* **List registers** -- per-core virtual-interrupt slots used for
  interrupt virtualization (fig. 5).  The RMM-side filtering logic lives
  in :mod:`repro.rmm.interrupts`; the raw registers are hardware.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import partial
from typing import Any, Callable, Dict, List, Optional, Set

from ..sim.engine import SimulationError, Simulator
from ..sim.sync import Notify

__all__ = [
    "SGI_BASE",
    "PPI_BASE",
    "SPI_BASE",
    "VTIMER_PPI",
    "N_SGIS",
    "LINUX_RESERVED_SGIS",
    "N_LIST_REGISTERS",
    "LrState",
    "ListRegister",
    "CoreInterruptInterface",
    "Gic",
]

SGI_BASE = 0
N_SGIS = 16
PPI_BASE = 16
SPI_BASE = 32
VTIMER_PPI = 27  # virtual timer PPI, as on Arm
#: IPI numbers Linux already uses (reschedule, call-function, stop, ...)
LINUX_RESERVED_SGIS = 7

N_LIST_REGISTERS = 16


class LrState:
    """Virtual interrupt state in a list register."""

    INVALID = "invalid"
    PENDING = "pending"
    ACTIVE = "active"
    PENDING_ACTIVE = "pending+active"


@dataclass
class ListRegister:
    """One ich_lr<n>_el2 register: a virtual intid and its state."""

    vintid: Optional[int] = None
    state: str = LrState.INVALID

    @property
    def free(self) -> bool:
        return self.state == LrState.INVALID

    def copy(self) -> "ListRegister":
        return ListRegister(self.vintid, self.state)


class CoreInterruptInterface:
    """Per-core GIC interface: pending physical interrupts + doorbell."""

    def __init__(self, core_index: int):
        self.core_index = core_index
        self._pending: Set[int] = set()
        self.doorbell = Notify(f"irq-core{core_index}")
        self.list_registers: List[ListRegister] = [
            ListRegister() for _ in range(N_LIST_REGISTERS)
        ]
        self.received_count: Dict[int, int] = {}

    def pend(self, intid: int) -> None:
        self.received_count[intid] = self.received_count.get(intid, 0) + 1
        if intid in self._pending:
            return  # edge interrupts coalesce while pending
        self._pending.add(intid)
        self.doorbell.signal(intid)

    def has_pending(self) -> bool:
        return bool(self._pending)

    def peek_pending(self) -> Optional[int]:
        return min(self._pending) if self._pending else None

    def acknowledge(self) -> Optional[int]:
        """Take the highest-priority (lowest intid) pending interrupt."""
        if not self._pending:
            return None
        intid = min(self._pending)
        self._pending.discard(intid)
        return intid

    def clear(self, intid: int) -> None:
        self._pending.discard(intid)

    def reset(self) -> None:
        """Drop all pending interrupts and doorbell signals (used when a
        core changes ownership, e.g. on dedication to the monitor)."""
        self._pending.clear()
        self.doorbell.clear()


class Gic:
    """The distributor: routes SGIs/PPIs/SPIs to per-core interfaces."""

    def __init__(
        self,
        sim: Simulator,
        n_cores: int,
        wire_delay_ns: int = 400,
        tracer: Optional[Any] = None,
    ):
        self.sim = sim
        self.wire_delay_ns = wire_delay_ns
        self.cores = [CoreInterruptInterface(i) for i in range(n_cores)]
        self._spi_routes: Dict[int, int] = {}
        self.sgi_sent = 0
        self.spi_raised = 0
        #: duck-typed :class:`repro.sim.trace.Tracer` (layering: hw must
        #: not import repro.obs); ``event()`` records are observability-
        #: only and never scheduled, so tracing cannot perturb delivery
        self.tracer = tracer
        self._next_flow = 0
        #: fault-injection hook (repro.faults): maps ``(target, intid)``
        #: to the list of delivery delays for this SGI -- ``[]`` drops
        #: it, one entry delays it, several duplicate it.  ``None``
        #: (and a ``None`` return) means the default single delivery
        #: after the wire delay.
        self.sgi_fault_hook: Optional[
            Callable[[int, int], Optional[List[int]]]
        ] = None

    # -- SGIs (IPIs) -------------------------------------------------------

    def send_sgi(
        self, target_core: int, intid: int, from_core: Optional[int] = None
    ) -> None:
        """Send an IPI; it pends on the target after the wire delay.

        ``from_core`` is observability metadata only (the trace exporter
        draws the cross-core flow arrow from it); many senders -- e.g. a
        dedicated RMM core raising the exit doorbell -- legitimately
        pass None.  The scheduled delivery is identical whether or not a
        tracer is attached: one event per delay, same order.
        """
        if not 0 <= intid < N_SGIS:
            raise SimulationError(f"SGI intid {intid} out of range")
        self.sgi_sent += 1
        target = self.cores[target_core]
        delays: List[int] = [self.wire_delay_ns]
        if self.sgi_fault_hook is not None:
            faulted = self.sgi_fault_hook(target_core, intid)
            if faulted is not None:
                delays = faulted
        flow: Optional[int] = None
        if self.tracer is not None and self.tracer.enabled:
            flow = self._next_flow
            self._next_flow += 1
            self.tracer.event(
                self.sim.now,
                "sgi.send",
                core=from_core,
                detail={"target": target_core, "intid": intid, "flow": flow},
            )
        for delay_ns in delays:
            self.sim.schedule(
                delay_ns, partial(self._deliver_sgi, target, intid, flow)
            )

    def _deliver_sgi(
        self, target: CoreInterruptInterface, intid: int, flow: Optional[int]
    ) -> None:
        if flow is not None and self.tracer is not None:
            self.tracer.event(
                self.sim.now,
                "sgi.recv",
                core=target.core_index,
                detail={"intid": intid, "flow": flow},
            )
        target.pend(intid)

    # -- PPIs (per-core timer etc.) -----------------------------------------

    def raise_ppi(self, core_index: int, intid: int) -> None:
        if not PPI_BASE <= intid < SPI_BASE:
            raise SimulationError(f"PPI intid {intid} out of range")
        self.cores[core_index].pend(intid)

    # -- SPIs (devices) ------------------------------------------------------

    def route_spi(self, intid: int, core_index: int) -> None:
        """Configure SPI affinity (the host does this for device IRQs)."""
        if intid < SPI_BASE:
            raise SimulationError(f"SPI intid {intid} out of range")
        self._spi_routes[intid] = core_index

    def spi_route(self, intid: int) -> int:
        return self._spi_routes.get(intid, 0)

    def raise_spi(self, intid: int) -> None:
        """Device raises an interrupt; delivered to its routed core."""
        if intid < SPI_BASE:
            raise SimulationError(f"SPI intid {intid} out of range")
        self.spi_raised += 1
        target = self.cores[self.spi_route(intid)]
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.event(
                self.sim.now,
                "spi.raise",
                core=target.core_index,
                detail={"intid": intid},
            )
        self.sim.schedule(self.wire_delay_ns, lambda: target.pend(intid))

    def retarget_spis_away_from(self, core_index: int, fallback: int) -> int:
        """Hotplug support: move all SPI routes off a core going offline."""
        moved = 0
        for intid, route in list(self._spi_routes.items()):
            if route == core_index:
                self._spi_routes[intid] = fallback
                moved += 1
        return moved
