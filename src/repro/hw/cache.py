"""Set-associative cache model with security-domain tagging.

Two consumers:

* the security analysis (``repro.security``) replays real access
  sequences through this model to demonstrate prime+probe attacks and
  to show which structures are per-core (core gapping removes them from
  the attack surface) versus shared (LLC, out of scope per the threat
  model);
* the auditor, which checks that after core gapping no line in a
  *core-private* cache is ever observed by a distrusting domain.

The model is a true set-associative cache with LRU replacement; each
line remembers the security domain that filled it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..isa.worlds import SecurityDomain

__all__ = ["CacheGeometry", "CacheLine", "SetAssociativeCache", "AccessResult"]


@dataclass(frozen=True)
class CacheGeometry:
    """Size/shape of one cache level."""

    name: str
    size_bytes: int
    line_bytes: int
    ways: int
    shared: bool = False  # True for LLC (off-core, out of threat-model scope)

    def __post_init__(self) -> None:
        if self.size_bytes % (self.line_bytes * self.ways):
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line*ways={self.line_bytes * self.ways}"
            )

    @property
    def n_sets(self) -> int:
        return self.size_bytes // (self.line_bytes * self.ways)

    def set_index(self, addr: int) -> int:
        return (addr // self.line_bytes) % self.n_sets

    def tag(self, addr: int) -> int:
        return addr // (self.line_bytes * self.n_sets)


@dataclass
class CacheLine:
    """One filled cache line: its tag and the domain that filled it."""

    tag: int
    domain: SecurityDomain
    last_touch: int = 0  # monotonic counter for LRU


@dataclass(frozen=True)
class AccessResult:
    """Outcome of one access: hit/miss and what was evicted (if anything)."""

    hit: bool
    set_index: int
    evicted: Optional[CacheLine] = None


class SetAssociativeCache:
    """An LRU set-associative cache whose lines carry domain tags."""

    def __init__(self, geometry: CacheGeometry):
        self.geometry = geometry
        self._sets: List[List[CacheLine]] = [
            [] for _ in range(geometry.n_sets)
        ]
        self._tick = 0
        self.hits = 0
        self.misses = 0

    # -- core operations --------------------------------------------------

    def access(self, addr: int, domain: SecurityDomain) -> AccessResult:
        """Access ``addr`` as ``domain``: hit updates LRU, miss fills."""
        self._tick += 1
        set_index = self.geometry.set_index(addr)
        tag = self.geometry.tag(addr)
        lines = self._sets[set_index]
        for line in lines:
            if line.tag == tag:
                line.last_touch = self._tick
                line.domain = domain
                self.hits += 1
                return AccessResult(hit=True, set_index=set_index)
        self.misses += 1
        evicted = None
        if len(lines) >= self.geometry.ways:
            victim = min(lines, key=lambda l: l.last_touch)
            lines.remove(victim)
            evicted = victim
        lines.append(CacheLine(tag=tag, domain=domain, last_touch=self._tick))
        return AccessResult(hit=False, set_index=set_index, evicted=evicted)

    def probe(self, addr: int) -> bool:
        """Non-destructive presence check (a timing-attack primitive)."""
        set_index = self.geometry.set_index(addr)
        tag = self.geometry.tag(addr)
        return any(line.tag == tag for line in self._sets[set_index])

    def flush(self) -> int:
        """Invalidate everything; returns the number of lines dropped."""
        dropped = sum(len(s) for s in self._sets)
        self._sets = [[] for _ in range(self.geometry.n_sets)]
        return dropped

    def flush_domain(self, domain: SecurityDomain) -> int:
        """Invalidate only one domain's lines (selective flush)."""
        dropped = 0
        for lines in self._sets:
            keep = [l for l in lines if l.domain != domain]
            dropped += len(lines) - len(keep)
            lines[:] = keep
        return dropped

    # -- inspection (used by the auditor and attacks) ----------------------

    def domains_present(self) -> Set[SecurityDomain]:
        return {line.domain for lines in self._sets for line in lines}

    def set_occupancy(self, set_index: int) -> List[CacheLine]:
        return list(self._sets[set_index])

    def occupancy_by_domain(self) -> Dict[SecurityDomain, int]:
        counts: Dict[SecurityDomain, int] = {}
        for lines in self._sets:
            for line in lines:
                counts[line.domain] = counts.get(line.domain, 0) + 1
        return counts

    @property
    def filled_lines(self) -> int:
        return sum(len(s) for s in self._sets)

    def __repr__(self) -> str:
        g = self.geometry
        return (
            f"SetAssociativeCache({g.name}: {g.size_bytes >> 10} KiB, "
            f"{g.ways}-way, {g.n_sets} sets)"
        )


#: Typical Arm server cache geometries (AmpereOne-like).
L1D_GEOMETRY = CacheGeometry("L1D", 64 * 1024, 64, 8)
L1I_GEOMETRY = CacheGeometry("L1I", 64 * 1024, 64, 8)
L2_GEOMETRY = CacheGeometry("L2", 2 * 1024 * 1024, 64, 8)
LLC_GEOMETRY = CacheGeometry("LLC", 64 * 1024 * 1024, 64, 16, shared=True)
