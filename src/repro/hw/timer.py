"""Per-core generic timer.

Each core has an architectural timer that raises the virtual-timer PPI
when its programmed deadline passes.  In the baseline CVM design every
guest timer tick traps to the RMM and is reflected to the host (two VM
exits per tick); with interrupt delegation (S4.4) the RMM programs this
physical timer itself and injects the virtual interrupt locally.
"""

from __future__ import annotations

from typing import Optional

from ..sim.engine import Simulator
from .gic import Gic, VTIMER_PPI

__all__ = ["CoreTimer"]


class CoreTimer:
    """One core's programmable countdown timer."""

    def __init__(self, sim: Simulator, gic: Gic, core_index: int):
        self.sim = sim
        self.gic = gic
        self.core_index = core_index
        self._armed_timer = None
        self.deadline: Optional[int] = None
        self.fire_count = 0

    def program(self, deadline_ns: int) -> None:
        """Arm the timer for an absolute deadline (re-arming cancels)."""
        self.cancel()
        self.deadline = deadline_ns
        delay = max(0, deadline_ns - self.sim.now)
        self._armed_timer = self.sim.schedule(delay, self._fire)

    def program_after(self, delta_ns: int) -> None:
        self.program(self.sim.now + delta_ns)

    def cancel(self) -> None:
        if self._armed_timer is not None:
            self._armed_timer.cancelled = True
            self._armed_timer = None
        self.deadline = None

    @property
    def armed(self) -> bool:
        return self._armed_timer is not None

    def _fire(self) -> None:
        self._armed_timer = None
        self.deadline = None
        self.fire_count += 1
        self.gic.raise_ppi(self.core_index, VTIMER_PPI)
