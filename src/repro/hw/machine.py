"""The assembled machine: cores, GIC, timers, LLC, memory, tracer.

Everything above the hardware (RMM, host OS, guests) receives a
:class:`Machine` and builds on its mechanisms.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.engine import Simulator
from ..sim.rng import RngFactory, bare_factory
from ..sim.trace import Tracer
from .cache import SetAssociativeCache
from .core import PhysicalCore
from .gic import Gic
from .memory import PhysicalMemory
from .timer import CoreTimer
from .topology import AMPERE_ONE_LIKE, SocTopology
from .uarch import PollutionCosts

__all__ = ["Machine"]

GIB = 1024 * 1024 * 1024


class Machine:
    """A simulated server."""

    def __init__(
        self,
        topology: SocTopology = AMPERE_ONE_LIKE,
        sim: Optional[Simulator] = None,
        tracer: Optional[Tracer] = None,
        rng: Optional[RngFactory] = None,
        pollution_costs: Optional[PollutionCosts] = None,
    ):
        self.topology = topology
        self.sim = sim or Simulator()
        self.tracer = tracer or Tracer(enabled=True)
        self.rng = rng if rng is not None else bare_factory("hw.machine")
        self.pollution_costs = pollution_costs or PollutionCosts()
        self.gic = Gic(
            self.sim,
            topology.n_cores,
            wire_delay_ns=topology.ipi_wire_delay_ns,
            tracer=self.tracer,
        )
        self.timers: List[CoreTimer] = [
            CoreTimer(self.sim, self.gic, i) for i in range(topology.n_cores)
        ]
        self.llc = SetAssociativeCache(topology.llc_geometry)
        self.memory = PhysicalMemory(topology.memory_gib * GIB)
        self.cores: List[PhysicalCore] = [
            PhysicalCore(self, i) for i in range(topology.n_cores)
        ]

    @property
    def now(self) -> int:
        return self.sim.now

    def core(self, index: int) -> PhysicalCore:
        return self.cores[index]

    @property
    def n_cores(self) -> int:
        return self.topology.n_cores

    def online_cores(self) -> List[PhysicalCore]:
        return [c for c in self.cores if c.online]

    def finish_tracing(self) -> None:
        """Close all open execution spans at the current time."""
        self.tracer.close_all_spans(self.sim.now)
