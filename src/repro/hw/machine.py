"""The assembled machine: cores, GIC, timers, LLC, memory, tracer.

Everything above the hardware (RMM, host OS, guests) receives a
:class:`Machine` and builds on its mechanisms.
"""

from __future__ import annotations

from typing import List, Optional

from ..sim.engine import Simulator
from ..sim.rng import RngFactory, bare_factory
from ..sim.trace import Tracer
from .cache import SetAssociativeCache
from .core import PhysicalCore
from .gic import Gic
from .memory import PhysicalMemory
from .timer import CoreTimer
from .topology import AMPERE_ONE_LIKE, SocTopology
from .uarch import PollutionCosts

__all__ = ["Machine"]

GIB = 1024 * 1024 * 1024


class Machine:
    """A simulated server."""

    def __init__(
        self,
        topology: SocTopology = AMPERE_ONE_LIKE,
        sim: Optional[Simulator] = None,
        tracer: Optional[Tracer] = None,
        rng: Optional[RngFactory] = None,
        pollution_costs: Optional[PollutionCosts] = None,
    ):
        self.topology = topology
        self.sim = sim or Simulator()
        self.tracer = tracer or Tracer(enabled=True)
        self.rng = rng if rng is not None else bare_factory("hw.machine")
        self.pollution_costs = pollution_costs or PollutionCosts()
        self.gic = Gic(
            self.sim,
            topology.n_cores,
            wire_delay_ns=topology.ipi_wire_delay_ns,
            tracer=self.tracer,
        )
        self.timers: List[CoreTimer] = [
            CoreTimer(self.sim, self.gic, i) for i in range(topology.n_cores)
        ]
        self.llc = SetAssociativeCache(topology.llc_geometry)
        self.memory = PhysicalMemory(topology.memory_gib * GIB)
        self.cores: List[PhysicalCore] = [
            PhysicalCore(self, i) for i in range(topology.n_cores)
        ]
        #: opt-in: model long uniform compute as one interruptible span
        #: (:meth:`PhysicalCore.execute_span`); set from SystemConfig
        self.coalesce_compute: bool = False
        #: count of attached observers that need per-chunk visibility
        #: (armed fault injectors); any > 0 forces per-chunk expansion
        self.coalesce_inhibit: int = 0

    @property
    def now(self) -> int:
        return self.sim.now

    def core(self, index: int) -> PhysicalCore:
        return self.cores[index]

    @property
    def n_cores(self) -> int:
        return self.topology.n_cores

    def online_cores(self) -> List[PhysicalCore]:
        return [c for c in self.cores if c.online]

    def coalesce_allowed(self) -> bool:
        """True when compute spans may be coalesced *right now*.

        Tracing and profiling want to see each chunk individually; an
        armed fault injector bumps ``coalesce_inhibit``.  The check is
        re-evaluated per span, so toggling any condition mid-run
        de-coalesces transparently from that point on.
        """
        return (
            self.coalesce_compute
            and self.coalesce_inhibit == 0
            and not self.tracer.enabled
            and not self.sim.profiling
        )

    def finish_tracing(self) -> None:
        """Close all open execution spans at the current time."""
        synthesized = False
        for core in self.cores:
            if core.finalize_span():
                synthesized = True
        if synthesized:
            # close_all_spans flushes in dict order; synthesis re-opened
            # spans in core order, whereas a live run's dict order is by
            # span start (begin_span re-inserts at the end).  Restore
            # that order so cutoff flushes stay digest-identical.
            opens = self.tracer._open_spans
            items = sorted(opens.items(), key=lambda kv: (kv[1][1], kv[0]))
            opens.clear()
            opens.update(items)
        self.tracer.close_all_spans(self.sim.now)
