"""TLB model with domain and address-space (VMID/ASID) tagging.

The TLB is a core-private structure; the paper lists it among the
state that core gapping removes from the cross-domain attack surface.
On CCA hardware, each TLB fill for realm memory additionally performs a
granule protection check, which we surface as a per-fill cost hook.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Set

from ..isa.worlds import SecurityDomain

__all__ = ["TlbEntry", "Tlb"]

PAGE_SHIFT = 12
PAGE_SIZE = 1 << PAGE_SHIFT


@dataclass
class TlbEntry:
    """One cached translation, tagged with its owner domain and VMID."""

    vpn: int
    ppn: int
    vmid: int
    domain: SecurityDomain
    last_touch: int = 0


class Tlb:
    """A fully-associative LRU TLB."""

    def __init__(self, entries: int = 1024, name: str = "TLB"):
        self.name = name
        self.capacity = entries
        self._entries: List[TlbEntry] = []
        self._tick = 0
        self.hits = 0
        self.misses = 0

    def lookup(self, vaddr: int, vmid: int) -> Optional[int]:
        """Translate; returns the PPN on a hit, None on a miss."""
        self._tick += 1
        vpn = vaddr >> PAGE_SHIFT
        for entry in self._entries:
            if entry.vpn == vpn and entry.vmid == vmid:
                entry.last_touch = self._tick
                self.hits += 1
                return entry.ppn
        self.misses += 1
        return None

    def fill(
        self, vaddr: int, paddr: int, vmid: int, domain: SecurityDomain
    ) -> Optional[TlbEntry]:
        """Insert a translation; returns the evicted entry, if any."""
        self._tick += 1
        evicted = None
        if len(self._entries) >= self.capacity:
            evicted = min(self._entries, key=lambda e: e.last_touch)
            self._entries.remove(evicted)
        self._entries.append(
            TlbEntry(
                vpn=vaddr >> PAGE_SHIFT,
                ppn=paddr >> PAGE_SHIFT,
                vmid=vmid,
                domain=domain,
                last_touch=self._tick,
            )
        )
        return evicted

    def invalidate_all(self) -> int:
        dropped = len(self._entries)
        self._entries.clear()
        return dropped

    def invalidate_vmid(self, vmid: int) -> int:
        before = len(self._entries)
        self._entries = [e for e in self._entries if e.vmid != vmid]
        return before - len(self._entries)

    def invalidate_page(self, vaddr: int, vmid: int) -> bool:
        vpn = vaddr >> PAGE_SHIFT
        for entry in self._entries:
            if entry.vpn == vpn and entry.vmid == vmid:
                self._entries.remove(entry)
                return True
        return False

    def domains_present(self) -> Set[SecurityDomain]:
        return {e.domain for e in self._entries}

    @property
    def occupancy(self) -> int:
        return len(self._entries)
