"""Text renderers for tables and figure series.

The benchmark harnesses print the same rows/series the paper reports;
these helpers keep the output aligned and consistent.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["render_table", "render_series", "render_comparison"]


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Aligned plain-text table."""
    cells = [[str(c) for c in row] for row in rows]
    header_cells = [str(h) for h in headers]
    widths = [
        max(
            len(header_cells[i]),
            max((len(row[i]) for row in cells), default=0),
        )
        for i in range(len(header_cells))
    ]

    def fmt(row: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(fmt(header_cells))
    lines.append("  ".join("-" * w for w in widths))
    lines.extend(fmt(row) for row in cells)
    return "\n".join(lines)


def render_series(
    x_label: str,
    series: Dict[str, List[Tuple[float, float]]],
    title: Optional[str] = None,
    y_format: str = "{:.1f}",
) -> str:
    """One row per x value, one column per named series (figure data)."""
    xs = sorted({x for points in series.values() for x, _ in points})
    lookup = {
        name: {x: y for x, y in points} for name, points in series.items()
    }
    headers = [x_label] + list(series)
    rows = []
    for x in xs:
        row = [x]
        for name in series:
            value = lookup[name].get(x)
            row.append("-" if value is None else y_format.format(value))
        rows.append(row)
    return render_table(headers, rows, title=title)


def render_comparison(
    rows: Sequence[Tuple[str, float, float]],
    measured_label: str = "measured",
    paper_label: str = "paper",
    title: Optional[str] = None,
    unit: str = "",
) -> str:
    """measured-vs-paper rows with the ratio, for EXPERIMENTS.md."""
    table_rows = []
    for name, measured, paper in rows:
        ratio = measured / paper if paper else float("nan")
        table_rows.append(
            (name, f"{measured:.2f}{unit}", f"{paper:.2f}{unit}", f"{ratio:.2f}x")
        )
    return render_table(
        ["metric", measured_label, paper_label, "ratio"],
        table_rows,
        title=title,
    )
