"""Summary statistics for experiment samples."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence

__all__ = ["Summary", "mean", "stdev", "percentile", "summarize"]


def mean(samples: Sequence[float]) -> float:
    if not samples:
        return 0.0
    return sum(samples) / len(samples)


def stdev(samples: Sequence[float]) -> float:
    """Sample standard deviation (n-1); 0 for fewer than two samples."""
    n = len(samples)
    if n < 2:
        return 0.0
    mu = mean(samples)
    return math.sqrt(sum((x - mu) ** 2 for x in samples) / (n - 1))


def percentile(samples: Sequence[float], pct: float) -> float:
    """Nearest-rank percentile; 0 for empty input."""
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if pct <= 0:
        return ordered[0]
    if pct >= 100:
        return ordered[-1]
    rank = max(1, math.ceil(pct / 100.0 * len(ordered)))
    return ordered[rank - 1]


@dataclass(frozen=True)
class Summary:
    """Mean +- stdev with extremes and percentiles."""

    n: int
    mean: float
    stdev: float
    minimum: float
    maximum: float
    p50: float
    p95: float
    p99: float

    def __str__(self) -> str:
        return f"{self.mean:.1f} +- {self.stdev:.1f} (n={self.n})"


def summarize(samples: Sequence[float]) -> Summary:
    if not samples:
        return Summary(0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0.0)
    return Summary(
        n=len(samples),
        mean=mean(samples),
        stdev=stdev(samples),
        minimum=min(samples),
        maximum=max(samples),
        p50=percentile(samples, 50),
        p95=percentile(samples, 95),
        p99=percentile(samples, 99),
    )
