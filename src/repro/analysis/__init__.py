"""Statistics and report rendering for the experiment harnesses."""

from .reporting import render_comparison, render_series, render_table
from .stats import Summary, mean, percentile, stdev, summarize

__all__ = [
    "Summary",
    "mean",
    "percentile",
    "render_comparison",
    "render_series",
    "render_table",
    "stdev",
    "summarize",
]
