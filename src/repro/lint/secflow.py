"""Secflow pass: statically verify the core-gap isolation contract.

The runtime auditor (``repro.security.audit``) proves, per simulated
schedule, that no two distrusting domains shared core-local state.
This pass proves the *code* can't quietly build such sharing in the
first place, using the declarative tables in
``[tool.repro.lint.domains]`` (:mod:`repro.lint.domains`):

* **SEC001** — direct attribute access (load, store, or method call)
  on another domain's tagged state outside a sanctioned crossing.
  Receivers are resolved best-effort but *precisely*: imported
  symbols/modules, names with cross-domain type annotations, and
  locals assigned from a cross-domain constructor.  Anything the pass
  cannot resolve statically is left to the runtime auditor — a
  finding here is always a real cross-domain touch.
* **SEC002** — a core-local µarch structure in ``repro.hw`` (any class
  exposing the auditor's ``domains_present`` duck type) missing from
  the ``structures`` declaration table: undeclared structures are
  invisible to both this pass and DESIGN.md's Table 1 mapping.
* **SEC003** — a closure/callback handed to an engine registration
  sink (``schedule``, ``spawn``, ``call_soon``, ``add_waiter``, ...)
  that captures a cross-domain object: the callback will run later,
  in whatever domain context the engine happens to be dispatching,
  with a live reference across the boundary.
* **SEC004** — a public package ``__init__`` re-exporting (via
  ``__all__``) a symbol whose *defining* module belongs to another
  domain — laundering a domain-private name through a public surface.
  Re-export chains are chased transitively across the linted tree, so
  an intermediate shim module does not hide the origin (tree-level:
  see :func:`check_reexports`).

Sanctioned crossings are exactly the audited surfaces: symbols of a
``crossing-surfaces`` module (RMI, RPC ports, SMC) may be touched from
anywhere, and ``crossing-roots`` modules (experiment harnesses, the
security auditor itself) may touch anything.  Files outside the
``repro`` package (benchmarks, tests, examples) are composition roots
by nature and are skipped.
"""

from __future__ import annotations

import ast
import builtins
import re
from typing import Dict, List, Optional, Set, Tuple

from .contract import LintContract
from .domains import SHARED, DomainContract
from .findings import Finding, SourceFile
from .layering import _resolve_relative

__all__ = ["check_secflow", "extract_facts", "check_reexports"]

#: engine/event registration methods that defer a callable (SEC003)
_CALLBACK_SINKS = {
    "schedule",
    "call_soon",
    "spawn",
    "add_waiter",
    "subscribe",
    "register",
    "register_callback",
}

_BUILTIN_NAMES = frozenset(dir(builtins))

#: CONSTANT_CASE imports (VTIMER_VIRQ, HOST_KICK_SGI, ...) are immutable
#: ABI values shared by construction, not live domain state — touching
#: or capturing one crosses no boundary
_CONSTANT_NAME = re.compile(r"^[A-Z][A-Z0-9_]*$")


def _dotted(node: ast.AST) -> Optional[str]:
    """Reconstruct ``a.b.c`` from an attribute/name chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return ".".join(parts)
    return None


class _ImportMap:
    """Local alias -> absolute dotted origin, relative imports included."""

    def __init__(self, source: SourceFile):
        self.aliases: Dict[str, str] = {}
        self.lines: Dict[str, int] = {}
        for node in ast.walk(source.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    self._bind(local, target, node.lineno)
            elif isinstance(node, ast.ImportFrom):
                if node.level:
                    base = _resolve_relative(source, node)
                else:
                    base = node.module
                if base is None:
                    continue
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    self._bind(local, f"{base}.{alias.name}", node.lineno)

    def _bind(self, local: str, target: str, line: int) -> None:
        self.aliases[local] = target
        self.lines[local] = line

    def resolve(self, dotted: str) -> str:
        head, sep, rest = dotted.partition(".")
        real = self.aliases.get(head, head)
        return real + sep + rest if rest else real


def _annotation_target(node: Optional[ast.AST]) -> Optional[str]:
    """Dotted name at the core of a type annotation (unwraps
    ``Optional[X]``, ``X | None``, subscripts and string forms)."""
    if node is None:
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        # "HostKernel" (string annotation): a bare dotted name only
        text = node.value.strip()
        if all(part.isidentifier() for part in text.split(".")) and text:
            return text
        return None
    if isinstance(node, ast.Subscript):
        # Optional[X] / List[X]: check the subscript argument(s) too —
        # a container of cross-domain objects is still cross-domain,
        # but the *receiver* type is the container; keep the outer name
        inner = node.slice
        outer = _annotation_target(node.value)
        if outer in ("Optional", "typing.Optional"):
            return _annotation_target(inner)
        return outer
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_target(node.left)
        if left is not None and left != "None":
            return left
        return _annotation_target(node.right)
    name = _dotted(node)
    return name


def _in_repro_tree(module: Optional[str]) -> bool:
    return module is not None and (
        module == "repro" or module.startswith("repro.")
    )


def _foreign_origin(
    origin: str,
    my_domain: Optional[str],
    domains: DomainContract,
) -> Optional[Tuple[str, str]]:
    """``(origin, owning_domain)`` when touching ``origin`` from a
    module owned by ``my_domain`` crosses a domain boundary."""
    if not origin.startswith("repro"):
        return None
    if domains.is_crossing_surface(origin):
        return None
    owner = domains.domain_of(origin)
    if owner is None or owner == SHARED:
        return None
    if owner == my_domain:
        return None
    return origin, owner


class _ForeignNames:
    """Names in one file that statically resolve to cross-domain state."""

    def __init__(
        self,
        source: SourceFile,
        imports: _ImportMap,
        my_domain: Optional[str],
        domains: DomainContract,
    ):
        #: local name -> (origin dotted, owning domain)
        self.names: Dict[str, Tuple[str, str]] = {}
        self._imports = imports
        self._my_domain = my_domain
        self._domains = domains

        for local, target in sorted(imports.aliases.items()):
            if _CONSTANT_NAME.match(local):
                continue
            foreign = _foreign_origin(target, my_domain, domains)
            if foreign is not None:
                self.names[local] = foreign

        for node in ast.walk(source.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                args = list(node.args.args) + list(node.args.kwonlyargs)
                if node.args.vararg:
                    args.append(node.args.vararg)
                if node.args.kwarg:
                    args.append(node.args.kwarg)
                for arg in args:
                    self._bind_annotation(arg.arg, arg.annotation)
            elif isinstance(node, ast.AnnAssign):
                if isinstance(node.target, ast.Name):
                    self._bind_annotation(node.target.id, node.annotation)
            elif isinstance(node, ast.Assign) and isinstance(
                node.value, ast.Call
            ):
                ctor = _dotted(node.value.func)
                if ctor is None:
                    continue
                foreign = _foreign_origin(
                    self._imports.resolve(ctor), my_domain, domains
                )
                if foreign is None:
                    continue
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        self.names[target.id] = foreign

    def _bind_annotation(
        self, name: str, annotation: Optional[ast.AST]
    ) -> None:
        target = _annotation_target(annotation)
        if target is None:
            return
        foreign = _foreign_origin(
            self._imports.resolve(target), self._my_domain, self._domains
        )
        if foreign is not None:
            self.names[name] = foreign

    def lookup(self, name: str) -> Optional[Tuple[str, str]]:
        return self.names.get(name)


def _free_names(func: ast.AST) -> Set[str]:
    """Names a nested function/lambda reads but does not bind itself."""
    if isinstance(func, ast.Lambda):
        params = {a.arg for a in func.args.args + func.args.kwonlyargs}
        body: List[ast.AST] = [func.body]
    else:
        assert isinstance(func, (ast.FunctionDef, ast.AsyncFunctionDef))
        params = {a.arg for a in func.args.args + func.args.kwonlyargs}
        if func.args.vararg:
            params.add(func.args.vararg.arg)
        if func.args.kwarg:
            params.add(func.args.kwarg.arg)
        body = list(func.body)
    bound = set(params)
    loaded: Set[str] = set()
    for stmt in body:
        for node in ast.walk(stmt):
            if isinstance(node, ast.Name):
                if isinstance(node.ctx, (ast.Store, ast.Del)):
                    bound.add(node.id)
                else:
                    loaded.add(node.id)
    return loaded - bound - _BUILTIN_NAMES


def check_secflow(
    source: SourceFile, contract: LintContract
) -> List[Finding]:
    domains = contract.domains
    module = source.module
    path = str(source.path)
    findings: List[Finding] = []

    def report(line: int, rule: str, message: str) -> None:
        if not source.suppressed(line, rule):
            findings.append(Finding(path, line, rule, message))

    # ------------------------------------------------------------------
    # SEC002: µarch structures must be declared (checked even inside
    # crossing roots — the table is about repro.hw, which never is one)
    # ------------------------------------------------------------------
    if module is not None and (
        module == "repro.hw" or module.startswith("repro.hw.")
    ):
        for node in ast.walk(source.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            has_domains = any(
                isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
                and item.name == "domains_present"
                for item in node.body
            )
            if has_domains and domains.structure_domain(
                module, node.name
            ) is None:
                report(
                    node.lineno,
                    "SEC002",
                    f"µarch structure {module}:{node.name} (has "
                    "domains_present) is not declared in "
                    "[tool.repro.lint.domains.structures]",
                )

    if not _in_repro_tree(module):
        return findings
    if domains.is_crossing_root(module):  # type: ignore[arg-type]
        return findings

    my_domain = domains.domain_of(module)  # type: ignore[arg-type]
    imports = _ImportMap(source)
    foreign = _ForeignNames(source, imports, my_domain, domains)

    # ------------------------------------------------------------------
    # SEC001: attribute access on cross-domain state
    # ------------------------------------------------------------------
    seen: Set[Tuple[int, str]] = set()

    def flag_access(line: int, root: str, origin: str, owner: str) -> None:
        key = (line, root)
        if key in seen:
            return
        seen.add(key)
        whose = f"{owner!r}-domain"
        report(
            line,
            "SEC001",
            f"direct access to {whose} state via {root!r} (origin "
            f"{origin}); only the audited crossing surfaces "
            "(rmi/rpc/smc) may cross domains",
        )

    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Attribute):
            continue
        receiver = node.value
        if isinstance(receiver, ast.Name):
            hit = foreign.lookup(receiver.id)
            if hit is not None:
                origin, owner = hit
                flag_access(node.lineno, receiver.id, origin, owner)
            continue
        # dotted chains rooted at an imported module:
        # repro.host.kernel.SOMETHING, pkg_alias.kernel.X, ...
        chain = _dotted(receiver)
        if chain is None:
            continue
        resolved = imports.resolve(chain)
        hit2 = _foreign_origin(resolved, my_domain, domains)
        if hit2 is not None:
            # one finding per (line, chain root): a.b.c.d visits every
            # intermediate Attribute, which would otherwise multi-flag
            root = chain.split(".")[0]
            key = (node.lineno, root)
            if key not in seen:
                seen.add(key)
                flag_access(node.lineno, chain, hit2[0], hit2[1])

    # ------------------------------------------------------------------
    # SEC003: cross-domain capture in engine callbacks
    # ------------------------------------------------------------------
    local_defs: Dict[str, ast.AST] = {}
    for node in ast.walk(source.tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            local_defs[node.name] = node

    def captured_foreign(func_node: ast.AST) -> List[Tuple[str, str, str]]:
        out = []
        for name in sorted(_free_names(func_node)):
            hit = foreign.lookup(name)
            if hit is not None:
                out.append((name, hit[0], hit[1]))
        return out

    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        if not isinstance(node.func, ast.Attribute):
            continue
        if node.func.attr not in _CALLBACK_SINKS:
            continue
        for arg in list(node.args) + [kw.value for kw in node.keywords]:
            candidates: List[Tuple[str, str, str]] = []
            if isinstance(arg, ast.Lambda):
                candidates = captured_foreign(arg)
            elif isinstance(arg, ast.Name):
                if arg.id in local_defs:
                    candidates = captured_foreign(local_defs[arg.id])
                else:
                    hit = foreign.lookup(arg.id)
                    if hit is not None:
                        candidates = [(arg.id, hit[0], hit[1])]
            for name, origin, owner in candidates:
                report(
                    node.lineno,
                    "SEC003",
                    f"callback registered via .{node.func.attr}() "
                    f"captures {owner!r}-domain object {name!r} "
                    f"(origin {origin}); pass domain state through the "
                    "audited crossing surfaces instead",
                )
    return findings


# ----------------------------------------------------------------------
# SEC004: re-export chains (tree-level)
# ----------------------------------------------------------------------


def extract_facts(source: SourceFile) -> Dict[str, object]:
    """Per-file facts for the tree-level passes (JSON-serialisable,
    cached alongside findings so warm runs skip the parse entirely).

    * ``module`` / ``is_package``
    * ``defined`` — names defined at module top level
    * ``imports`` — local name -> [origin dotted, line]
    * ``exports`` — names listed in ``__all__`` (when statically a
      list/tuple of string constants)
    * ``allow`` — pragma-suppressed line -> rule ids (tree passes run
      after per-file suppression state is gone)
    """
    defined: List[str] = []
    exports: List[str] = []
    imports: Dict[str, List[object]] = {}
    for node in source.tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            defined.append(node.name)
        elif isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    defined.append(target.id)
                    if target.id == "__all__" and isinstance(
                        node.value, (ast.List, ast.Tuple)
                    ):
                        for elt in node.value.elts:
                            if isinstance(elt, ast.Constant) and isinstance(
                                elt.value, str
                            ):
                                exports.append(elt.value)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            defined.append(node.target.id)
    imap = _ImportMap(source)
    for local, target in sorted(imap.aliases.items()):
        imports[local] = [target, imap.lines.get(local, 1)]
    return {
        "module": source.module,
        "path": str(source.path),
        "is_package": source.is_package,
        "defined": sorted(set(defined)),
        "exports": exports,
        "imports": imports,
        "allow": {
            str(line): sorted(rules)
            for line, rules in sorted(source.allow.items())
        },
    }


def _defining_module(
    symbol_origin: str,
    facts_by_module: Dict[str, Dict[str, object]],
) -> str:
    """Chase re-export chains to the module that defines a symbol.

    ``symbol_origin`` is ``"some.module.Symbol"``.  If ``some.module``
    was linted and merely re-imports ``Symbol``, follow the chain
    (bounded, cycle-safe).  Returns the deepest resolvable dotted
    module (without the symbol name).
    """
    visited: Set[str] = set()
    origin = symbol_origin
    for _ in range(16):
        module, _, symbol = origin.rpartition(".")
        if not module or module in visited:
            return module or origin
        visited.add(module)
        facts = facts_by_module.get(module)
        if facts is None:
            # maybe `module` is itself "pkg.submodule" where the symbol
            # origin was recorded one level too deep (from pkg import sub)
            return module
        if symbol in facts["defined"]:  # type: ignore[index]
            return module
        imports = facts["imports"]  # type: ignore[assignment]
        if symbol in imports:  # type: ignore[operator]
            origin = imports[symbol][0]  # type: ignore[index]
            continue
        return module
    return origin.rpartition(".")[0]


def check_reexports(
    facts_list: List[Dict[str, object]],
    contract: LintContract,
) -> List[Finding]:
    """SEC004 over the whole linted tree (call once, after per-file
    analysis; ``facts_list`` comes from :func:`extract_facts`)."""
    domains = contract.domains
    facts_by_module: Dict[str, Dict[str, object]] = {
        str(f["module"]): f for f in facts_list if f.get("module")
    }
    findings: List[Finding] = []
    for facts in facts_list:
        module = facts.get("module")
        if not facts.get("is_package") or not _in_repro_tree(
            module  # type: ignore[arg-type]
        ):
            continue
        if domains.is_crossing_root(str(module)):
            continue
        pkg_domain = domains.domain_of(str(module))
        allow: Dict[str, List[str]] = facts.get("allow", {})  # type: ignore[assignment]
        imports: Dict[str, List[object]] = facts.get("imports", {})  # type: ignore[assignment]
        for name in facts.get("exports", []):  # type: ignore[union-attr]
            entry = imports.get(str(name))
            if entry is None:
                continue  # defined locally (or star-imported: unresolvable)
            origin, line = str(entry[0]), int(entry[1])
            definer = _defining_module(origin, facts_by_module)
            foreign = _foreign_origin(definer, pkg_domain, domains)
            if foreign is None:
                continue
            if "SEC004" in allow.get(str(line), []):
                continue
            findings.append(
                Finding(
                    str(facts["path"]),
                    line,
                    "SEC004",
                    f"public __init__ of {module} re-exports {name!r}, "
                    f"defined in {foreign[1]!r}-domain module "
                    f"{definer}; domain-private symbols must not "
                    "escape through a public package surface",
                )
            )
    return findings
