"""Per-file analysis pipeline shared by the serial and parallel paths.

:func:`analyze_file` is the whole unit of work for one source file:
parse, run the selected per-file passes, extract the JSON facts the
tree-level passes need, and stamp the content hash the incremental
cache keys on.  :func:`analyze_files` orchestrates a set of files —
consulting the cache first, then analysing the misses either inline
or fanned out over a spawn-context :class:`ProcessPoolExecutor`
(the same shape as :func:`repro.experiments.runner.run_cells`:
workers mirror the parent's ``sys.path``, results are collected in
submission order so output never depends on completion order).

The pool pays off because a cold full-tree run is dominated by
``ast.parse`` + AST walks, which release no work to other files —
embarrassingly parallel.  ``jobs=1`` stays a plain loop with no
pickling, so the default path is byte-identical to the serial
behaviour.
"""

from __future__ import annotations

import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .cache import LintCache, content_hash
from .contract import LintContract
from .determinism import check_determinism
from .findings import Finding, SourceFile, load_source
from .layering import check_layering
from .obs import check_obs
from .secflow import check_secflow, extract_facts
from .seeds import check_seeds
from .snapcov import check_snapcov
from .suppress import pragma_findings
from .units import check_units

__all__ = ["STATIC_PASSES", "FileResult", "analyze_file", "analyze_files"]

STATIC_PASSES: Dict[
    str, Callable[[SourceFile, LintContract], List[Finding]]
] = {
    "determinism": check_determinism,
    "layering": check_layering,
    "units": check_units,
    "obs": check_obs,
    "secflow": check_secflow,
    "seeds": check_seeds,
    "snapcov": check_snapcov,
}


@dataclass
class FileResult:
    """Everything one file contributes to a lint run (picklable)."""

    path: str
    digest: str
    findings: List[Finding]
    #: :func:`repro.lint.secflow.extract_facts` output; None when the
    #: file failed to parse
    facts: Optional[Dict]


def analyze_file(
    path: Path, contract: LintContract, passes: Sequence[str]
) -> FileResult:
    """Parse + lint one file; a syntax error is a PARSE finding, not a crash."""
    data = path.read_bytes()
    digest = content_hash(data)
    try:
        source = load_source(path)
    except SyntaxError as exc:
        return FileResult(
            path=str(path),
            digest=digest,
            findings=[
                Finding(
                    str(path),
                    exc.lineno or 0,
                    "PARSE",
                    f"syntax error: {exc.msg}",
                )
            ],
            facts=None,
        )
    findings: List[Finding] = []
    for name in passes:
        findings.extend(STATIC_PASSES[name](source, contract))
    findings.extend(pragma_findings(source))
    return FileResult(
        path=str(path),
        digest=digest,
        findings=findings,
        facts=extract_facts(source),
    )


# ---------------------------------------------------------------- pool

_POOL_CONTRACT: Optional[LintContract] = None
_POOL_PASSES: Tuple[str, ...] = ()


def _worker_init(
    parent_path: List[str], contract: LintContract, passes: Tuple[str, ...]
) -> None:
    """Mirror the parent's ``sys.path`` (spawn children start bare) and
    park the contract once per worker instead of pickling it per file."""
    global _POOL_CONTRACT, _POOL_PASSES
    for entry in parent_path:
        if entry not in sys.path:
            sys.path.append(entry)
    _POOL_CONTRACT = contract
    _POOL_PASSES = passes


def _analyze_in_worker(path_str: str) -> FileResult:
    assert _POOL_CONTRACT is not None
    return analyze_file(Path(path_str), _POOL_CONTRACT, _POOL_PASSES)


def analyze_files(
    files: Sequence[Path],
    contract: LintContract,
    passes: Sequence[str],
    jobs: int = 1,
    cache: Optional[LintCache] = None,
) -> List[FileResult]:
    """Analyse ``files`` (cache-aware, optionally parallel), in file order."""
    passes = tuple(passes)
    results: Dict[Path, FileResult] = {}
    misses: List[Path] = []
    for path in files:
        if cache is None:
            misses.append(path)
            continue
        digest = content_hash(path.read_bytes())
        cached = cache.get(path, digest)
        if cached is None:
            misses.append(path)
        else:
            findings, facts = cached
            results[path] = FileResult(
                path=str(path), digest=digest, findings=findings, facts=facts
            )

    if jobs <= 1 or len(misses) <= 1:
        fresh = [analyze_file(path, contract, passes) for path in misses]
    else:
        import multiprocessing
        from concurrent.futures import ProcessPoolExecutor

        ctx = multiprocessing.get_context("spawn")
        with ProcessPoolExecutor(
            max_workers=min(jobs, len(misses)),
            mp_context=ctx,
            initializer=_worker_init,
            initargs=(list(sys.path), contract, passes),
        ) as pool:
            futures = [
                pool.submit(_analyze_in_worker, str(path)) for path in misses
            ]
            # submission order == file order: report order stays stable
            # no matter which worker finishes first
            fresh = [future.result() for future in futures]

    for path, result in zip(misses, fresh):
        results[path] = result
        if cache is not None:
            cache.put(path, result.digest, result.findings, result.facts)
    return [results[path] for path in files]
