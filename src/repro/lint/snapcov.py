"""Snapshot-coverage pass: the capture registry cannot rot.

:mod:`repro.snap` captures live state through the
:data:`repro.snap.fields.SNAP_FIELDS` registry — each registered class
lists every instance attribute as either captured or excluded-with-a-
reason.  A hand-rolled serializer's failure mode is silent drift: a
later PR adds ``self.retry_budget`` to ``KvmVm`` and every snapshot
quietly stops covering it.  This pass makes that a lint failure:

* **SNAP001** — an instance attribute assigned by a registered class
  (``self.x = ...`` in any method, or a dataclass field declaration)
  has no verdict in the registry.  Add it to ``fields`` or ``exclude``
  deliberately.
* **SNAP002** — a registry verdict names an attribute the class no
  longer assigns, or a registered class that no longer exists in its
  module.  Stale entries mask the next real drift, so they must go.

The registry digest salts the lint cache
(:func:`repro.lint.cache.cache_salt`), so editing coverage re-lints
every file on the next run.
"""

from __future__ import annotations

import ast
from typing import Dict, List

from ..snap.fields import SNAP_FIELDS
from .contract import LintContract
from .findings import Finding, SourceFile

__all__ = ["check_snapcov"]


def _note_target(target: ast.expr, attrs: Dict[str, int]) -> None:
    elements = target.elts if isinstance(target, ast.Tuple) else [target]
    for element in elements:
        if (
            isinstance(element, ast.Attribute)
            and isinstance(element.value, ast.Name)
            and element.value.id == "self"
        ):
            name = element.attr
            if not name.startswith("__") and name not in attrs:
                attrs[name] = element.lineno


def _collect_in(node: ast.AST, attrs: Dict[str, int]) -> None:
    """Record ``self.x`` assignment targets, not descending into nested
    classes (their ``self`` is a different object)."""
    for child in ast.iter_child_nodes(node):
        if isinstance(child, ast.ClassDef):
            continue
        if isinstance(child, ast.Assign):
            for target in child.targets:
                _note_target(target, attrs)
        elif isinstance(child, (ast.AnnAssign, ast.AugAssign)):
            _note_target(child.target, attrs)
        elif isinstance(child, ast.For):
            _note_target(child.target, attrs)
        _collect_in(child, attrs)


def _class_attrs(classdef: ast.ClassDef) -> Dict[str, int]:
    """Instance attributes a class assigns -> first assignment line.

    Two sources: ``self.x`` targets in the class's methods, and
    class-level annotated declarations (how dataclasses declare
    fields).  ``ClassVar`` annotations and dunders are skipped; plain
    class-level ``NAME = ...`` assignments are class constants, not
    instance state.
    """
    attrs: Dict[str, int] = {}
    for stmt in classdef.body:
        if isinstance(stmt, ast.AnnAssign) and isinstance(
            stmt.target, ast.Name
        ):
            annotation = ast.unparse(stmt.annotation)
            name = stmt.target.id
            if "ClassVar" not in annotation and not name.startswith("__"):
                attrs.setdefault(name, stmt.lineno)
        elif isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            _collect_in(stmt, attrs)
    return attrs


def check_snapcov(source: SourceFile, contract: LintContract) -> List[Finding]:
    module = source.module or ""
    if not (module == "repro" or module.startswith("repro.")):
        return []
    registered = {
        key.split(":", 1)[1]: key
        for key in SNAP_FIELDS
        if key.split(":", 1)[0] == module
    }
    if not registered:
        return []
    path = str(source.path)
    findings: List[Finding] = []

    def report(line: int, rule: str, message: str) -> None:
        if not source.suppressed(line, rule):
            findings.append(Finding(path, line, rule, message))

    seen_classes = set()
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ClassDef) or node.name not in registered:
            continue
        seen_classes.add(node.name)
        key = registered[node.name]
        spec = SNAP_FIELDS[key]
        attrs = _class_attrs(node)
        for name in sorted(set(attrs) - set(spec.fields) - set(spec.exclude)):
            report(
                attrs[name],
                "SNAP001",
                f"attribute {node.name}.{name} has no snapshot coverage "
                f"verdict; add it to SNAP_FIELDS[{key!r}].fields or "
                "exclude it with a reason (repro.snap.fields)",
            )
        declared = list(spec.fields) + list(spec.exclude)
        for name in sorted(set(declared) - set(attrs)):
            report(
                node.lineno,
                "SNAP002",
                f"SNAP_FIELDS[{key!r}] covers {name!r} but {node.name} "
                "no longer assigns it; delete the stale registry entry",
            )
    for class_name in sorted(set(registered) - seen_classes):
        report(
            1,
            "SNAP002",
            f"SNAP_FIELDS registers {registered[class_name]!r} but "
            f"{module} defines no class {class_name}; delete or move "
            "the stale registry entry",
        )
    return findings
