"""Determinism pass: no wall clocks, no unseeded entropy, no set order.

Rules (see :mod:`repro.lint.findings` for the registry):

* **DET001** — wall-clock reads (``time.time``, ``datetime.now``, ...).
  Simulated components must read the :class:`~repro.sim.engine.Simulator`
  clock; a wall-clock read makes traces differ between runs.
* **DET002** — entropy escapes (``os.urandom``, ``uuid.uuid4``,
  ``secrets``, ``random.SystemRandom``).
* **DET003** — use of the *global* ``random`` module stream
  (``random.random()``, ``from random import randint``): draws become
  coupled across unrelated consumers, so adding one perturbs all.
* **DET004** — constructing ``random.Random(...)`` anywhere but the
  sanctioned RNG module (``repro.sim.rng``): every substream must be
  derived from the run seed through ``RngFactory``.
* **DET005** — iterating a ``set``/``frozenset`` value: iteration order
  depends on PYTHONHASHSEED and insertion history, so anything ordered
  by it (event dispatch, trace emission) silently breaks replay.  Wrap
  in ``sorted(...)`` (or use an order-insensitive reduction).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from .contract import LintContract
from .findings import Finding, SourceFile

__all__ = ["check_determinism"]

#: fully-qualified callables that read a wall clock
_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}

#: fully-qualified callables that draw OS entropy
_ENTROPY = {
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "random.SystemRandom",
}

#: ``random`` module attributes that are *not* the global stream
_RANDOM_NON_GLOBAL = {"Random", "SystemRandom"}

#: reductions whose result does not depend on iteration order
_ORDER_INSENSITIVE = {"sorted", "min", "max", "len", "sum", "any", "all"}


def _dotted(node: ast.AST) -> Optional[str]:
    """Reconstruct ``a.b.c`` from an attribute/name chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return ".".join(parts)
    return None


class _ImportMap:
    """Resolves local names to the canonical dotted names they bind."""

    def __init__(self) -> None:
        #: local alias -> real dotted target ("dt" -> "datetime",
        #: "urandom" -> "os.urandom")
        self.aliases: Dict[str, str] = {}

    def add_import(self, node: ast.Import) -> None:
        for alias in node.names:
            local = alias.asname or alias.name.split(".")[0]
            target = alias.name if alias.asname else alias.name.split(".")[0]
            self.aliases[local] = target

    def add_import_from(self, node: ast.ImportFrom) -> None:
        if node.level or node.module is None:
            return  # relative imports never reach stdlib modules
        for alias in node.names:
            local = alias.asname or alias.name
            self.aliases[local] = f"{node.module}.{alias.name}"

    def resolve(self, dotted: str) -> str:
        head, sep, rest = dotted.partition(".")
        real = self.aliases.get(head, head)
        return real + sep + rest if rest else real


class _SetTracker:
    """Best-effort local inference of which names hold sets."""

    def __init__(self) -> None:
        self.set_names: Set[str] = set()

    @staticmethod
    def _is_set_expr(node: ast.AST) -> bool:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return True
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            return node.func.id in ("set", "frozenset")
        return False

    @staticmethod
    def _is_set_annotation(node: Optional[ast.AST]) -> bool:
        if node is None:
            return False
        target = node
        if isinstance(target, ast.Subscript):
            target = target.value
        name = _dotted(target)
        return name in (
            "set",
            "frozenset",
            "Set",
            "FrozenSet",
            "typing.Set",
            "typing.FrozenSet",
        )

    def observe(self, node: ast.AST) -> None:
        if isinstance(node, ast.Assign) and self._is_set_expr(node.value):
            for target in node.targets:
                name = _dotted(target)
                if name:
                    self.set_names.add(name)
        elif isinstance(node, ast.AnnAssign):
            name = _dotted(node.target)
            if name and (
                self._is_set_annotation(node.annotation)
                or (node.value is not None and self._is_set_expr(node.value))
            ):
                self.set_names.add(name)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            args = list(node.args.args) + list(node.args.kwonlyargs)
            for arg in args:
                if self._is_set_annotation(arg.annotation):
                    self.set_names.add(arg.arg)

    def is_set_valued(self, node: ast.AST) -> bool:
        if self._is_set_expr(node):
            return True
        name = _dotted(node)
        return name is not None and name in self.set_names


def check_determinism(
    source: SourceFile, contract: LintContract
) -> List[Finding]:
    findings: List[Finding] = []
    imports = _ImportMap()
    sets = _SetTracker()
    module = source.module or ""
    in_rng_module = module == contract.rng_module
    path = str(source.path)

    def report(node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if not source.suppressed(line, rule):
            findings.append(Finding(path, line, rule, message))

    # first sweep: imports + set-typed names (order-independent facts)
    for node in ast.walk(source.tree):
        if isinstance(node, ast.Import):
            imports.add_import(node)
        elif isinstance(node, ast.ImportFrom):
            imports.add_import_from(node)
        sets.observe(node)

    # `from random import X` (except Random, policed by DET004 at the
    # construction site) pulls in the global stream by name
    for node in ast.walk(source.tree):
        if not isinstance(node, ast.ImportFrom) or node.level:
            continue
        if node.module == "random" and not in_rng_module:
            for alias in node.names:
                if alias.name not in _RANDOM_NON_GLOBAL:
                    report(
                        node,
                        "DET003",
                        f"'from random import {alias.name}' uses the global "
                        "random stream; draw from repro.sim.rng.RngFactory",
                    )

    for node in ast.walk(source.tree):
        if isinstance(node, ast.Call):
            dotted = _dotted(node.func)
            resolved = imports.resolve(dotted) if dotted else None
            if resolved in _WALL_CLOCK:
                report(
                    node,
                    "DET001",
                    f"wall-clock call {resolved}(); use the simulated "
                    "integer-ns clock (Simulator.now)",
                )
            elif resolved in _ENTROPY:
                report(
                    node,
                    "DET002",
                    f"entropy escape {resolved}(); all randomness must "
                    "derive from the run seed via RngFactory",
                )
            elif resolved == "random.Random" and not in_rng_module:
                report(
                    node,
                    "DET004",
                    "raw random.Random() constructed outside "
                    f"{contract.rng_module}; use RngFactory.stream()/fork()",
                )
            elif (
                resolved is not None
                and resolved.startswith("random.")
                and resolved.split(".")[1] not in _RANDOM_NON_GLOBAL
                and not in_rng_module
            ):
                report(
                    node,
                    "DET003",
                    f"global random stream call {resolved}(); draw from a "
                    "named RngFactory substream instead",
                )

        iter_exprs: List[ast.AST] = []
        if isinstance(node, (ast.For, ast.AsyncFor)):
            iter_exprs.append(node.iter)
        elif isinstance(node, (ast.ListComp, ast.SetComp, ast.GeneratorExp, ast.DictComp)):
            iter_exprs.extend(gen.iter for gen in node.generators)
        for iter_expr in iter_exprs:
            if sets.is_set_valued(iter_expr):
                report(
                    iter_expr,
                    "DET005",
                    "iterating a set/frozenset: order depends on "
                    "PYTHONHASHSEED; wrap in sorted(...)",
                )

    # order-insensitive reductions over sets are fine; drop findings on
    # expressions that only appear as sorted(x)/min(x)/... arguments
    safe_lines: Set[int] = set()
    for node in ast.walk(source.tree):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id in _ORDER_INSENSITIVE
        ):
            for arg in node.args:
                safe_lines.add(getattr(arg, "lineno", -1))
    findings = [
        f
        for f in findings
        if not (f.rule == "DET005" and f.line in safe_lines)
    ]
    return findings
