"""Observability pass: every published metric name must be declared.

The metrics catalog (:mod:`repro.obs.catalog`) is the single authority
for metric names; this pass closes the loop statically so scattered
stringly-typed metrics cannot reappear:

* **OBS001** — a metric name reaching a publishing sink is not declared
  in the catalog (exactly or via a ``prefix*`` family).
* **OBS002** — a declared name is published through the wrong accessor
  for its kind (``tracer.count`` on a histogram, ``registry.gauge`` on
  a counter, ...): two subsystems disagreeing about a metric's shape is
  an accounting bug even when the name exists.

Sinks checked, by receiver naming convention (duck-typed tracers cross
layer boundaries, so the receiver *type* is unknowable statically):

========================================  ===========================
call                                       expected catalog kind
========================================  ===========================
``*tracer.count(name, ...)``               counter
``*tracer.sample(name, value)``            histogram
``*tracer.set_gauge(name, value)``         gauge
``*metrics/*registry.counter(name)``       counter
``*metrics/*registry.gauge(name)``         gauge
``*metrics/*registry.histogram(name)``     histogram
========================================  ===========================

Names are resolved from string literals and from f-string *prefixes*
(``f"exit:{reason}"`` checks ``exit:`` against the ``exit:*`` family);
a fully dynamic name (no literal prefix) is skipped — the registry
rejects it at runtime instead.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Tuple

from .contract import LintContract
from .findings import Finding, SourceFile

__all__ = ["check_obs"]

#: tracer method -> catalog kind it publishes
_TRACER_SINKS: Dict[str, str] = {
    "count": "counter",
    "sample": "histogram",
    "set_gauge": "gauge",
}

#: registry accessor -> catalog kind it asserts
_REGISTRY_SINKS: Dict[str, str] = {
    "counter": "counter",
    "gauge": "gauge",
    "histogram": "histogram",
}

#: receiver-name suffixes identifying each sink family
_TRACER_RECEIVERS = ("tracer",)
_REGISTRY_RECEIVERS = ("metrics", "registry")


def _receiver_name(node: ast.expr) -> Optional[str]:
    """Trailing identifier of the receiver (``self._tracer`` -> ``_tracer``)."""
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _literal_name(node: ast.expr) -> Tuple[Optional[str], bool]:
    """``(name, is_prefix)`` for a metric-name argument, else (None, _).

    A plain string constant resolves exactly; an f-string resolves to
    its leading literal prefix (prefix=True); anything else — a
    variable, an attribute, a ``%``/``.format`` expression — returns
    None and is skipped.
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, False
    if isinstance(node, ast.JoinedStr):
        parts = node.values
        if parts and isinstance(parts[0], ast.Constant) and isinstance(
            parts[0].value, str
        ):
            return parts[0].value, True
        return None, True  # fully dynamic: runtime's problem
    return None, False


def check_obs(source: SourceFile, contract: LintContract) -> List[Finding]:
    del contract  # the catalog, not the layering table, is the authority
    # deferred so linting trees without the package (fixture dirs in the
    # linter's own tests) degrades to a no-op rather than crashing
    try:
        from ..obs.catalog import lookup
    except ImportError:  # pragma: no cover - obs not on the path
        return []

    findings: List[Finding] = []

    def check_name(node: ast.Call, name_node: ast.expr, kind: str) -> None:
        name, is_prefix = _literal_name(name_node)
        if name is None:
            return
        spec = lookup(name)
        line = node.lineno
        if spec is None:
            if source.suppressed(line, "OBS001"):
                return
            what = f"prefix {name!r}" if is_prefix else f"name {name!r}"
            findings.append(
                Finding(
                    str(source.path),
                    line,
                    "OBS001",
                    f"metric {what} is not declared in repro.obs.catalog",
                )
            )
        elif spec.kind != kind:
            if source.suppressed(line, "OBS002"):
                return
            findings.append(
                Finding(
                    str(source.path),
                    line,
                    "OBS002",
                    f"metric {name!r} is declared as a {spec.kind} but "
                    f"published as a {kind}",
                )
            )

    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call) or not isinstance(
            node.func, ast.Attribute
        ):
            continue
        receiver = _receiver_name(node.func.value)
        if receiver is None or not node.args:
            continue
        method = node.func.attr
        receiver = receiver.lstrip("_")
        if method in _TRACER_SINKS and receiver.endswith(_TRACER_RECEIVERS):
            check_name(node, node.args[0], _TRACER_SINKS[method])
        elif method in _REGISTRY_SINKS and receiver.endswith(
            _REGISTRY_RECEIVERS
        ):
            check_name(node, node.args[0], _REGISTRY_SINKS[method])
    return findings
