"""Suppression policy: inline pragmas and the expiring baseline.

Two mechanisms, two time horizons:

* **Inline pragmas** (``# lint: ignore[RULE001] reason=...`` or the
  legacy ``# lint: allow(RULE)``) are *permanent*, reviewed-in-place
  exceptions — a deliberate design decision sitting next to the code
  it excuses.  A pragma that names no valid rule id is itself a
  finding (**SUP001**): it either suppresses nothing (typo) or was
  meant to suppress everything (never allowed).

* **The baseline file** (``lint-baseline.toml`` next to
  ``pyproject.toml``) carries *grandfathered* findings: violations
  that existed when a rule was introduced and were consciously
  deferred rather than fixed.  Every entry names the finding's stable
  fingerprint, a reason, and an **expiry date** — grandfathering is a
  loan, not a waiver.  On expiry the finding comes back as
  **BASE001**; an entry whose finding no longer exists is **BASE002**
  (stale baselines are how real regressions hide).

Baseline entry shape::

    [[entry]]
    rule = "SEED001"
    path = "src/repro/hw/machine.py"
    fingerprint = "0123456789abcdef"
    reason = "bare Machine() default; System always injects the seeded factory"
    expires = 2027-01-01

Fingerprints come from :func:`repro.lint.findings.fingerprint`
(path + rule + message, line-number free, so baselined findings
survive unrelated edits).  Run ``--explain-baseline`` to print the
fingerprint of every current finding.
"""

from __future__ import annotations

import datetime
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Tuple

try:  # Python >= 3.11
    import tomllib
except ImportError:  # pragma: no cover - 3.9/3.10 without tomli
    tomllib = None  # type: ignore[assignment]

from .findings import Finding, SourceFile, fingerprint

__all__ = [
    "BaselineEntry",
    "Baseline",
    "load_baseline",
    "find_baseline",
    "apply_baseline",
    "pragma_findings",
    "BASELINE_NAME",
]

BASELINE_NAME = "lint-baseline.toml"


@dataclass(frozen=True)
class BaselineEntry:
    rule: str
    path: str
    fingerprint: str
    reason: str
    expires: datetime.date


@dataclass
class Baseline:
    path: Optional[Path]
    entries: List[BaselineEntry]

    def by_fingerprint(self) -> Dict[str, BaselineEntry]:
        return {entry.fingerprint: entry for entry in self.entries}


def find_baseline(start: Path) -> Optional[Path]:
    """Walk up from ``start`` to the nearest ``lint-baseline.toml``."""
    current = start.resolve()
    if current.is_file():
        current = current.parent
    for candidate in [current, *current.parents]:
        baseline = candidate / BASELINE_NAME
        if baseline.exists():
            return baseline
    return None


def load_baseline(path: Optional[Path]) -> Baseline:
    """Parse the baseline file; a missing file is an empty baseline.

    Malformed entries (missing reason or expiry) raise: a baseline
    entry without an owner-visible justification and a deadline is
    exactly the silent waiver the policy exists to prevent.
    """
    if path is None or not path.exists() or tomllib is None:
        return Baseline(path=path, entries=[])
    with path.open("rb") as handle:
        data = tomllib.load(handle)
    entries: List[BaselineEntry] = []
    for raw in data.get("entry", []):
        missing = [
            key
            for key in ("rule", "path", "fingerprint", "reason", "expires")
            if key not in raw
        ]
        if missing:
            raise ValueError(
                f"{path}: baseline entry {raw.get('fingerprint', '?')!r} "
                f"missing required key(s): {', '.join(missing)}"
            )
        expires = raw["expires"]
        if isinstance(expires, datetime.datetime):
            expires = expires.date()
        if not isinstance(expires, datetime.date):
            raise ValueError(
                f"{path}: baseline entry {raw['fingerprint']!r} expires "
                f"must be a TOML date (got {expires!r})"
            )
        if not str(raw["reason"]).strip():
            raise ValueError(
                f"{path}: baseline entry {raw['fingerprint']!r} has an "
                "empty reason"
            )
        entries.append(
            BaselineEntry(
                rule=str(raw["rule"]),
                path=str(raw["path"]),
                fingerprint=str(raw["fingerprint"]),
                reason=str(raw["reason"]),
                expires=expires,
            )
        )
    return Baseline(path=path, entries=entries)


def apply_baseline(
    findings: List[Finding],
    baseline: Baseline,
    today: Optional[datetime.date] = None,
) -> Tuple[List[Finding], int]:
    """Filter grandfathered findings; surface expired/stale entries.

    Returns ``(remaining findings, suppressed count)``.  The remaining
    list gains a **BASE001** per expired-but-still-present entry and a
    **BASE002** per entry matching nothing.
    """
    if today is None:
        today = datetime.date.today()  # lint: allow(DET001)
    index = baseline.by_fingerprint()
    matched: Dict[str, Finding] = {}
    remaining: List[Finding] = []
    suppressed = 0
    for finding in findings:
        entry = index.get(fingerprint(finding))
        if entry is None or entry.rule != finding.rule:
            remaining.append(finding)
            continue
        matched[entry.fingerprint] = finding
        if entry.expires < today:
            remaining.append(
                Finding(
                    finding.path,
                    finding.line,
                    "BASE001",
                    f"baseline entry for {entry.rule} expired "
                    f"{entry.expires.isoformat()} but the finding is "
                    f"still present: {finding.message}",
                )
            )
        else:
            suppressed += 1
    baseline_path = str(baseline.path) if baseline.path else BASELINE_NAME
    for entry in baseline.entries:
        if entry.fingerprint not in matched:
            remaining.append(
                Finding(
                    baseline_path,
                    0,
                    "BASE002",
                    f"stale baseline entry {entry.fingerprint} "
                    f"({entry.rule} in {entry.path}) matches no current "
                    "finding; delete it",
                )
            )
    return remaining, suppressed


def pragma_findings(source: SourceFile) -> List[Finding]:
    """SUP001 findings for malformed ignore pragmas in one file."""
    return [
        Finding(
            str(source.path),
            line,
            "SUP001",
            "suppression pragma names no valid rule id; write "
            "'# lint: ignore[RULE001] reason=...'",
        )
        for line in source.bad_pragmas
    ]
