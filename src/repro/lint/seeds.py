"""Seed-discipline pass: every RNG stream traces back to the run seed.

PRs 1–5 enforced a convention by hand; this pass codifies it.  The
injection-proof derivation scheme of :mod:`repro.sim.rng` only
protects streams that are actually *derived*: a root factory built ad
hoc, or a stream named by a raw dynamic string, reintroduces exactly
the collision/coupling bugs ``derive_seed`` was built to kill — and a
stream drawn from another domain couples that domain's draws to ours
(a determinism bug here; a covert channel in the system being
modelled).

* **SEED001** — ``RngFactory(...)`` constructed outside the declared
  seed roots (``[tool.repro.lint.domains] seed-roots``).  Everything
  else must reach randomness via ``machine.rng.fork(...)`` /
  ``.stream(...)`` (or ``derive_seed`` for raw child seeds), so one
  run seed reaches every consumer.
* **SEED002** — a module tagged with one security domain draws from a
  stream namespace owned by another (``[tool.repro.lint.domains.streams]``
  maps the token before the first ``:`` of a stream/fork name to its
  owning domain).  Shared namespaces and untagged modules are exempt.
* **SEED003** — a stream/fork name with no literal namespace prefix
  (a bare variable, ``str(x)``, or an f-string that *starts* with a
  placeholder), or a ``derive_seed`` call whose ``kind`` argument is
  not a string literal.  Unprefixed dynamic names are exactly how the
  pre-PR-1 ``f"{seed}:{name}"`` collision happened.

Receivers are matched heuristically: ``.stream(...)``/``.fork(...)``
on anything whose dotted receiver mentions ``rng``, plus locals
assigned from a ``.fork(...)`` call.  Scripts outside the ``repro``
package are composition roots and are skipped.
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from .contract import LintContract
from .domains import SHARED
from .findings import Finding, SourceFile

__all__ = ["check_seeds"]


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        parts.reverse()
        return ".".join(parts)
    return None


def _literal_prefix(node: ast.expr) -> Tuple[Optional[str], bool]:
    """``(prefix, exact)`` of a stream-name argument.

    A plain string constant is exact; an f-string starting with a
    literal yields that literal as prefix; anything else is dynamic
    (``None``).
    """
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        return node.value, True
    if isinstance(node, ast.JoinedStr):
        parts = node.values
        if parts and isinstance(parts[0], ast.Constant) and isinstance(
            parts[0].value, str
        ):
            return parts[0].value, False
        return None, False
    return None, False


def _name_argument(node: ast.Call, position: int, keyword: str) -> Optional[ast.expr]:
    if len(node.args) > position:
        return node.args[position]
    for kw in node.keywords:
        if kw.arg == keyword:
            return kw.value
    return None


def check_seeds(source: SourceFile, contract: LintContract) -> List[Finding]:
    domains = contract.domains
    module = source.module or ""
    in_tree = module == "repro" or module.startswith("repro.")
    if not in_tree:
        return []
    path = str(source.path)
    my_domain = domains.domain_of(module)
    crossing_root = domains.is_crossing_root(module)
    findings: List[Finding] = []

    def report(node: ast.AST, rule: str, message: str) -> None:
        line = getattr(node, "lineno", 0)
        if not source.suppressed(line, rule):
            findings.append(Finding(path, line, rule, message))

    # locals assigned from a .fork(...) call are rng factories too
    rng_locals: Set[str] = set()
    for node in ast.walk(source.tree):
        if (
            isinstance(node, ast.Assign)
            and isinstance(node.value, ast.Call)
            and isinstance(node.value.func, ast.Attribute)
            and node.value.func.attr == "fork"
        ):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    rng_locals.add(target.id)

    def is_rng_receiver(receiver: ast.expr) -> bool:
        dotted = _dotted(receiver)
        if dotted is None:
            return False
        if "rng" in dotted.lower():
            return True
        return dotted in rng_locals

    for node in ast.walk(source.tree):
        if not isinstance(node, ast.Call):
            continue
        dotted = _dotted(node.func)
        base = dotted.rsplit(".", 1)[-1] if dotted else None

        # SEED001 — root factory construction
        if base == "RngFactory" and not domains.is_seed_root(module):
            report(
                node,
                "SEED001",
                "RngFactory constructed outside the declared seed roots; "
                "fork the machine's factory (machine.rng.fork(...)) or "
                "derive a child seed via derive_seed so every draw "
                "traces to the run seed",
            )
            continue

        # SEED003 (derive_seed form) — kind must be a string literal
        if base == "derive_seed":
            kind = _name_argument(node, 1, "kind")
            if kind is not None and not (
                isinstance(kind, ast.Constant)
                and isinstance(kind.value, str)
            ):
                report(
                    node,
                    "SEED003",
                    "derive_seed kind argument must be a string literal: "
                    "the literal namespace is what makes the derivation "
                    "injection-proof",
                )
            continue

        # stream/fork sinks
        if not isinstance(node.func, ast.Attribute):
            continue
        method = node.func.attr
        if method not in ("stream", "fork"):
            continue
        if not is_rng_receiver(node.func.value):
            continue
        name_arg = _name_argument(node, 0, "name")
        if name_arg is None:
            continue
        prefix, exact = _literal_prefix(name_arg)
        if prefix is None:
            report(
                node,
                "SEED003",
                f".{method}() name has no literal namespace prefix; "
                "start the name with a literal token "
                "(e.g. f\"arrivals:{tenant}\") so substreams cannot "
                "collide across consumers",
            )
            continue
        namespace = prefix.split(":", 1)[0]
        if not namespace or (not exact and ":" not in prefix):
            # f"fault{x}:..." — the namespace token itself is dynamic
            report(
                node,
                "SEED003",
                f".{method}() literal prefix {prefix!r} does not close "
                "its namespace token with ':' before the first "
                "placeholder",
            )
            continue
        owner = domains.stream_domain(namespace)
        if (
            owner is not None
            and owner != SHARED
            and my_domain is not None
            and my_domain != SHARED
            and owner != my_domain
            and not crossing_root
        ):
            report(
                node,
                "SEED002",
                f"stream namespace {namespace!r} is owned by the "
                f"{owner!r} domain but drawn from a {my_domain!r} "
                "module; sharing one stream across domains couples "
                "their draws",
            )
    return findings
